// Tests for the composed TscNtpClock facade on controlled synthetic inputs.
#include "core/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.warmup_samples = 16;
  p.offset_window = 320.0;
  p.local_rate_window = 1600.0;
  p.gap_threshold = 800.0;
  p.shift_window = 800.0;
  p.local_rate_subwindows = 10;
  p.top_window = 16.0 * 4000;
  return p;
}

TEST(TscNtpClock, RejectsInvalidExchanges) {
  TscNtpClock clock(test_params(), 2e-9);
  RawExchange bad;
  bad.ta = 100;
  bad.tf = 100;  // no round trip
  EXPECT_THROW(clock.process_exchange(bad), ContractViolation);
}

TEST(TscNtpClock, ReadsRequireInitialization) {
  TscNtpClock clock(test_params(), 2e-9);
  EXPECT_THROW((void)clock.uncorrected_time(0), ContractViolation);
  EXPECT_THROW((void)clock.absolute_time(0), ContractViolation);
}

TEST(TscNtpClock, FirstPacketAlignsClockToServer) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period * 1.00005);
  const auto ex = link.next();
  const auto report = clock.process_exchange(ex);
  EXPECT_NEAR(report.naive_offset, 0.0, 1e-9);
  EXPECT_NEAR(report.offset_estimate, 0.0, 1e-9);
  // C(Tf) sits between the server stamps adjusted by half the RTT.
  const Seconds reading = clock.uncorrected_time(ex.tf);
  EXPECT_NEAR(reading, 0.5 * (ex.tb + ex.te) + link.min_rtt() / 2, 50e-6);
}

TEST(TscNtpClock, ConvergesToTruePeriodDespiteBadGuess) {
  SyntheticLink link;
  const double truth = link.config().period;
  TscNtpClock clock(test_params(), truth * 1.00005);  // 50 PPM off
  for (int i = 0; i < 1000; ++i)
    clock.process_exchange(link.next());
  EXPECT_NEAR(clock.period() / truth, 1.0, 1e-8);
  EXPECT_TRUE(clock.status().warmed_up);
}

TEST(TscNtpClock, PeriodUpdatePreservesClockContinuity) {
  // §6.1 "Clock Offset Consistency": C may never jump when p̂ changes.
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period * 1.00005);
  Seconds prev_reading = 0;
  bool have_prev = false;
  for (int i = 0; i < 200; ++i) {
    const auto ex = link.next();
    const auto report = clock.process_exchange(ex);
    const Seconds now = clock.uncorrected_time(ex.tf);
    if (have_prev) {
      // Reading advanced by ~poll seconds; never a step (poll ± 5 ms covers
      // the initial 50 PPM guess error over 16 s which is only 0.8 ms).
      EXPECT_NEAR(now - prev_reading, 16.0, 5e-3) << "at packet " << i
                                                  << (report.rate_updated
                                                          ? " (rate update)"
                                                          : "");
    }
    prev_reading = now;
    have_prev = true;
  }
}

TEST(TscNtpClock, DifferenceClockAccuracyAfterWarmup) {
  // Paper §5.2: after a few minutes, sub-µs accuracy on few-second
  // intervals (GPS-grade for interval measurement).
  SyntheticLink link;
  const double truth = link.config().period;
  TscNtpClock clock(test_params(), truth * 1.00005);
  RawExchange last;
  for (int i = 0; i < 500; ++i) {
    last = link.next();
    clock.process_exchange(last);
  }
  const auto five_seconds = static_cast<TscCount>(5.0 / truth);
  const Seconds measured = clock.difference(last.tf, last.tf + five_seconds);
  EXPECT_NEAR(measured, 5.0, 1e-6);
}

TEST(TscNtpClock, AbsoluteClockTracksTrueTime) {
  SyntheticLink link;
  const double truth = link.config().period;
  TscNtpClock clock(test_params(), truth * 1.00005);
  RawExchange last;
  Seconds true_tf = 0;
  for (int i = 0; i < 500; ++i) {
    const Seconds before = link.now();
    last = link.next();
    // True full-arrival time of this packet:
    true_tf = before + link.config().d_forward + link.config().d_server +
              link.config().d_backward;
    clock.process_exchange(last);
  }
  // Absolute clock error vs truth: bounded by the Δ/2 = 25 µs ambiguity.
  const Seconds err = clock.absolute_time(last.tf) - true_tf;
  EXPECT_NEAR(err, link.asymmetry() / 2, 10e-6);
}

TEST(TscNtpClock, StatusCountsEvents) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period);
  for (int i = 0; i < 100; ++i) clock.process_exchange(link.next());
  // Server fault: sanity triggers counted.
  for (int i = 0; i < 5; ++i) clock.process_exchange(link.next(0, 0, 0.150));
  const auto s = clock.status();
  EXPECT_EQ(s.packets_processed, 105u);
  EXPECT_GT(s.rate_accepted, 50u);
  EXPECT_GT(s.offset_sanity_triggers, 0u);
}

TEST(TscNtpClock, UpshiftReportedThroughFacade) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period);
  for (int i = 0; i < 200; ++i) clock.process_exchange(link.next());
  bool upshift = false;
  for (int i = 0; i < 100; ++i) {
    const auto report =
        clock.process_exchange(link.next(0.45e-3, 0.45e-3));
    if (report.shift && report.shift->upward) upshift = true;
  }
  EXPECT_TRUE(upshift);
  EXPECT_EQ(clock.status().upshifts, 1u);
  // r̂ settles at the new level.
  EXPECT_NEAR(clock.status().min_rtt, link.min_rtt() + 0.9e-3, 50e-6);
}

TEST(TscNtpClock, GapDetectionFlagsLongPause) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period);
  for (int i = 0; i < 200; ++i) clock.process_exchange(link.next());
  link.advance(2000.0);  // > gap_threshold = 800 s
  const auto report = clock.process_exchange(link.next());
  EXPECT_TRUE(report.gap_detected);
}

TEST(TscNtpClock, OffsetEstimateBoundedAndStableOnCleanStream) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period * 0.99995);
  Seconds at_half = 0;
  for (int i = 0; i < 2000; ++i) {
    clock.process_exchange(link.next());
    if (i == 1000) at_half = clock.offset_estimate();
  }
  // θ̂ legitimately reports the offset C accumulated while running at the
  // −50 PPM initial guess (≈ 50 PPM × poll before the first correction),
  // bounded by ~2 polls' worth of drift...
  EXPECT_LT(std::fabs(clock.offset_estimate()), 2 * 50e-6 * 16.0 + 50e-6);
  // ...and on a clean constant-rate link it must not wander thereafter.
  EXPECT_NEAR(clock.offset_estimate(), at_half, 5e-6);
}

TEST(TscNtpClock, TopWindowUpdatesFire) {
  auto params = test_params();
  params.top_window = 16.0 * 100;  // small so updates occur
  SyntheticLink link;
  TscNtpClock clock(params, link.config().period);
  for (int i = 0; i < 400; ++i) clock.process_exchange(link.next());
  EXPECT_GE(clock.status().top_window_updates, 3u);
  // Estimates remain sane across window churn.
  EXPECT_LT(std::fabs(clock.offset_estimate()), 100e-6);
  EXPECT_NEAR(clock.period() / link.config().period, 1.0, 1e-7);
}

TEST(TscNtpClock, MonotonicInputEnforced) {
  SyntheticLink link;
  TscNtpClock clock(test_params(), link.config().period);
  const auto a = link.next();
  const auto b = link.next();
  clock.process_exchange(b);
  EXPECT_THROW(clock.process_exchange(a), ContractViolation);
}

}  // namespace
}  // namespace tscclock::core
