// Tests for the scenario sweep engine: grid expansion, identity-based seed
// derivation, the work-stealing pool, and the determinism contract (results
// bit-identical across thread counts for a fixed master seed).
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "harness/sinks.hpp"
#include "sweep/scenario_grid.hpp"
#include "sweep/thread_pool.hpp"

namespace tscclock::sweep {
namespace {

/// Small, fast grid: 2 servers × 1 environment × 2 poll periods = 4
/// scenarios of one simulated hour each.
GridSpec small_grid() {
  GridSpec grid;
  grid.servers = {sim::ServerKind::kLoc, sim::ServerKind::kInt};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0, 32.0};
  grid.duration = duration::kHour;
  grid.master_seed = 20040704;
  return grid;
}

// -- Grid expansion --------------------------------------------------------

TEST(ScenarioGrid, ExpandsFullCartesianProduct) {
  GridSpec grid;  // default: 3 servers × 2 envs × 2 polls × 1 schedule
  const auto scenarios = expand_grid(grid);
  ASSERT_EQ(scenarios.size(), 12u);
  ASSERT_EQ(scenarios.size(), grid.size());

  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& s : scenarios) {
    names.insert(s.name);
    seeds.insert(s.config.seed);
    EXPECT_EQ(s.index, names.size() - 1) << "indices follow grid order";
  }
  EXPECT_EQ(names.size(), 12u) << "scenario names are unique";
  EXPECT_EQ(seeds.size(), 12u) << "scenario seeds are unique";
}

TEST(ScenarioGrid, SeedIndependentOfEnumerationOrder) {
  GridSpec forward = small_grid();
  GridSpec reversed = small_grid();
  std::reverse(reversed.servers.begin(), reversed.servers.end());
  std::reverse(reversed.poll_periods.begin(), reversed.poll_periods.end());

  const auto a = expand_grid(forward);
  const auto b = expand_grid(reversed);
  ASSERT_EQ(a.size(), b.size());

  // Same identity → same seed, wherever it lands in the expansion.
  for (const auto& sa : a) {
    const auto it = std::find_if(b.begin(), b.end(), [&](const auto& sb) {
      return sb.name == sa.name;
    });
    ASSERT_NE(it, b.end()) << "scenario " << sa.name << " lost on reorder";
    EXPECT_EQ(it->config.seed, sa.config.seed) << sa.name;
  }
}

TEST(ScenarioGrid, SeedDependsOnMasterSeedAndIdentity) {
  EXPECT_NE(scenario_seed(1, "ServerInt/machine-room/poll16/steady"),
            scenario_seed(2, "ServerInt/machine-room/poll16/steady"));
  EXPECT_NE(scenario_seed(1, "ServerInt/machine-room/poll16/steady"),
            scenario_seed(1, "ServerInt/machine-room/poll64/steady"));
  // Stable across calls (pure function of its inputs).
  EXPECT_EQ(scenario_seed(42, "x"), scenario_seed(42, "x"));
}

TEST(ScenarioGrid, PollJitterClampedForShortPeriods) {
  GridSpec grid = small_grid();
  grid.poll_periods = {1.0};
  grid.poll_jitter = 0.6;  // would violate the Testbed jitter contract
  const auto scenarios = expand_grid(grid);
  for (const auto& s : scenarios) {
    EXPECT_LT(s.config.poll_jitter, s.config.poll_period / 2);
    sim::Testbed tb(s.config);  // must not trip the contract check
    EXPECT_TRUE(tb.next().has_value());
  }
}

TEST(ScenarioGrid, RejectsSubSecondPollPeriods) {
  // Polling faster than the paths' heavy-tailed delay scale can schedule a
  // poll before the previous exchange arrived, breaking the oscillator's
  // monotonic-read contract mid-trace — rejected up front instead.
  GridSpec grid = small_grid();
  grid.poll_periods = {0.5};
  EXPECT_THROW(expand_grid(grid), ContractViolation);
}

TEST(ScenarioGrid, RejectsDuplicateIdentities) {
  GridSpec grid = small_grid();
  grid.servers = {sim::ServerKind::kLoc, sim::ServerKind::kLoc};
  EXPECT_THROW(expand_grid(grid), ContractViolation);
}

// -- Thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> out(257, 0);
  parallel_for(pool, out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::count(out.begin(), out.end(), 1),
            static_cast<long>(out.size()));
}

TEST(ThreadPool, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &total] {
      total.fetch_add(1);
      pool.submit([&total] { total.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&completed, i] {
      if (i == 3) throw std::runtime_error("scenario 3 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7) << "remaining tasks still ran";
  // The pool stays usable and the error is not re-reported.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, SingleThreadedPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> total{0};
  parallel_for(pool, 64, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

// -- Determinism contract --------------------------------------------------

void expect_bit_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.exchanges, b.exchanges);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.final_status.server_changes, b.final_status.server_changes);
  // Bit-level double equality, not EXPECT_NEAR: the contract is that the
  // schedule cannot perturb a single ULP of any reduced value.
  EXPECT_EQ(a.clock_error.mean, b.clock_error.mean);
  EXPECT_EQ(a.clock_error.stddev, b.clock_error.stddev);
  EXPECT_EQ(a.clock_error.percentiles.p01, b.clock_error.percentiles.p01);
  EXPECT_EQ(a.clock_error.percentiles.p50, b.clock_error.percentiles.p50);
  EXPECT_EQ(a.clock_error.percentiles.p99, b.clock_error.percentiles.p99);
  EXPECT_EQ(a.offset_error.mean, b.offset_error.mean);
  EXPECT_EQ(a.offset_error.percentiles.p50, b.offset_error.percentiles.p50);
  EXPECT_EQ(a.adev_short, b.adev_short);
  EXPECT_EQ(a.adev_long, b.adev_long);
  EXPECT_EQ(a.final_status.packets_processed, b.final_status.packets_processed);
  EXPECT_EQ(a.final_status.period, b.final_status.period);
  EXPECT_EQ(a.final_status.offset, b.final_status.offset);
}

TEST(ScenarioSweep, BitIdenticalAcrossThreadCounts) {
  ScenarioSweep engine(small_grid());
  SweepOptions options;
  options.discard_warmup = 20 * duration::kMinute;

  std::vector<std::size_t> thread_counts = {1, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 1 && hw != 4) thread_counts.push_back(hw);

  options.threads = thread_counts.front();
  const auto reference = engine.run(options);
  ASSERT_EQ(reference.size(), engine.scenarios().size());

  for (std::size_t k = 1; k < thread_counts.size(); ++k) {
    options.threads = thread_counts[k];
    const auto other = engine.run(options);
    ASSERT_EQ(other.size(), reference.size())
        << "thread count " << thread_counts[k];
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_bit_identical(reference[i], other[i]);
    }
  }
}

TEST(ScenarioSweep, StreamingDefaultBitIdenticalAcrossThreadCounts) {
  // The sweep CLI now defaults to the streaming reduction; the determinism
  // contract must hold for it exactly as for the exact reduction, across
  // thread counts, over the batched drive.
  ScenarioSweep engine(small_grid());
  SweepOptions options;
  options.discard_warmup = 20 * duration::kMinute;
  options.streaming_reduction = true;

  options.threads = 1;
  const auto reference = engine.run(options);
  ASSERT_EQ(reference.size(), engine.scenarios().size());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    options.threads = threads;
    const auto other = engine.run(options);
    ASSERT_EQ(other.size(), reference.size()) << "thread count " << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_bit_identical(reference[i], other[i]);
    }
  }

  // Counts, means, stddevs and ADEV of the streaming reduction match the
  // exact reduction bit-for-bit (only percentiles are P²-approximated).
  options.threads = 2;
  options.streaming_reduction = false;
  const auto exact = engine.run(options);
  ASSERT_EQ(exact.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].evaluated, exact[i].evaluated);
    EXPECT_EQ(reference[i].clock_error.mean, exact[i].clock_error.mean);
    EXPECT_EQ(reference[i].clock_error.stddev, exact[i].clock_error.stddev);
    EXPECT_EQ(reference[i].offset_error.mean, exact[i].offset_error.mean);
    EXPECT_EQ(reference[i].adev_short, exact[i].adev_short);
    EXPECT_EQ(reference[i].adev_long, exact[i].adev_long);
  }
}

TEST(ScenarioSweep, ResultsIndexedInGridOrder) {
  ScenarioSweep engine(small_grid());
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].scenario_index, i);
    EXPECT_EQ(results[i].name, engine.scenarios()[i].name);
  }
}

// -- Scenario pipeline behaviours -----------------------------------------

TEST(ScenarioSweep, OutageScheduleSkipsPolls) {
  GridSpec grid = small_grid();
  grid.servers = {sim::ServerKind::kInt};
  grid.poll_periods = {16.0};
  ScheduleVariant outage;
  outage.name = "outage";
  outage.events.add_outage(1200.0, 2100.0);  // 900 s ≈ 56 poll slots
  grid.schedules = {outage};

  ScenarioSweep engine(grid);
  SweepOptions options;
  options.threads = 1;
  options.discard_warmup = 0;
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].skipped, 50u);
  EXPECT_LE(results[0].skipped, 60u);
  EXPECT_EQ(results[0].polls, results[0].skipped + results[0].exchanges);
}

TEST(ScenarioSweep, ServerSwitchesReachTheClock) {
  GridSpec grid = small_grid();
  grid.servers = {sim::ServerKind::kInt};
  grid.poll_periods = {16.0};
  ScheduleVariant switching;
  switching.name = "switch";
  switching.server_switches = {{1200.0, sim::ServerKind::kLoc},
                               {2400.0, sim::ServerKind::kExt}};
  grid.schedules = {switching};

  ScenarioSweep engine(grid);
  SweepOptions options;
  options.threads = 1;
  options.discard_warmup = 0;
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].final_status.server_changes, 2u)
      << "packet-layer changes must be forwarded to TscNtpClock";
}

TEST(ScenarioSweep, WarmupCoveringWholeTraceYieldsEmptySummaries) {
  GridSpec grid = small_grid();
  grid.servers = {sim::ServerKind::kLoc};
  grid.poll_periods = {16.0};
  ScenarioSweep engine(grid);
  SweepOptions options;
  options.threads = 1;
  options.discard_warmup = 2 * grid.duration;  // discards every point
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].evaluated, 0u);
  EXPECT_EQ(results[0].clock_error.count, 0u);
  EXPECT_EQ(results[0].adev_short, 0.0);
  // Reporting an all-discarded sweep must not crash, and must not print the
  // zero-initialized statistics as if they were a perfect run.
  std::ostringstream os;
  print_sweep_report(os, results);
  EXPECT_NE(os.str().find("Aggregate by server"), std::string::npos);
  EXPECT_NE(os.str().find("n/a"), std::string::npos);
}

TEST(ScenarioSweep, ReportPrintsEveryScenarioAndAggregates) {
  ScenarioSweep engine(small_grid());
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto results = engine.run(options);

  std::ostringstream os;
  print_sweep_report(os, results);
  const std::string report = os.str();
  for (const auto& scenario : engine.scenarios()) {
    EXPECT_NE(report.find(scenario.name), std::string::npos) << scenario.name;
  }
  EXPECT_NE(report.find("Aggregate by server"), std::string::npos);
  EXPECT_NE(report.find("Aggregate by environment"), std::string::npos);
}

// -- Estimator axis --------------------------------------------------------

GridSpec estimator_grid() {
  GridSpec grid = small_grid();
  grid.poll_periods = {16.0};  // 2 scenarios × 4 estimators
  // Deliberately includes the non-causal replay family: the whole point of
  // the replay lane is that offline rows ride the same drain, seed and
  // reduction as the online ones, so every axis property proven below
  // (shared seeds, thread-count determinism, robust-row invariance) must
  // hold with it present.
  const auto& registry = harness::estimator_registry();
  grid.estimators = {registry.parse("robust"), registry.parse("swntp"),
                     registry.parse("naive"), registry.parse("offline")};
  return grid;
}

/// A variant axis: the full robust algorithm, a parameter-ablated variant
/// of it, and a parameterized replay variant — the spec shapes the registry
/// redesign exists for.
GridSpec variant_grid() {
  GridSpec grid = small_grid();
  grid.poll_periods = {16.0};
  const auto& registry = harness::estimator_registry();
  grid.estimators = {registry.parse("robust"),
                     registry.parse("robust(use_local_rate=0)"),
                     registry.parse("offline(split=shifts)")};
  return grid;
}

TEST(ScenarioSweep, EstimatorAxisSharesEachScenariosSeed) {
  ScenarioSweep engine(estimator_grid());
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto results = engine.run(options);
  const std::size_t lanes = engine.grid().estimators.size();
  ASSERT_EQ(results.size(), engine.scenarios().size() * lanes);

  for (std::size_t i = 0; i < engine.scenarios().size(); ++i) {
    for (std::size_t e = 0; e < lanes; ++e) {
      const auto& r = results[i * lanes + e];
      // Scenario-major ordering, estimator minor; every estimator of a
      // scenario scores the scenario's one seed — the axis never reseeds.
      EXPECT_EQ(r.scenario_index, i);
      EXPECT_EQ(r.name, engine.scenarios()[i].name);
      EXPECT_EQ(r.seed, engine.scenarios()[i].config.seed);
      EXPECT_EQ(r.estimator, engine.grid().estimators[e]);
      // All estimators saw the identical exchange stream.
      EXPECT_EQ(r.exchanges, results[i * lanes].exchanges);
      EXPECT_EQ(r.lost, results[i * lanes].lost);
      EXPECT_EQ(r.evaluated, results[i * lanes].evaluated);
    }
  }
}

TEST(ScenarioSweep, EstimatorAxisBitIdenticalAcrossThreadCounts) {
  ScenarioSweep engine(estimator_grid());
  SweepOptions options;
  options.discard_warmup = 20 * duration::kMinute;

  options.threads = 1;
  const auto reference = engine.run(options);
  options.threads = 4;
  const auto other = engine.run(options);
  ASSERT_EQ(other.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].estimator, other[i].estimator);
    EXPECT_EQ(reference[i].steps, other[i].steps);
    expect_bit_identical(reference[i], other[i]);
  }
}

TEST(ScenarioSweep, RobustRowsUnchangedByAddingBaselineEstimators) {
  // Fanning more estimators into the session must not perturb the robust
  // lane: the estimators share the exchange stream, not any scoring state.
  GridSpec robust_only = estimator_grid();
  robust_only.estimators = {harness::EstimatorSpec{"robust", {}}};
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto solo = ScenarioSweep(robust_only).run(options);
  const auto multi = ScenarioSweep(estimator_grid()).run(options);
  const std::size_t lanes = estimator_grid().estimators.size();
  ASSERT_EQ(multi.size(), solo.size() * lanes);
  for (std::size_t i = 0; i < solo.size(); ++i) {
    expect_bit_identical(solo[i], multi[i * lanes]);
  }
}

TEST(ScenarioSweep, MultiEstimatorReportHasComparisonTable) {
  ScenarioSweep engine(estimator_grid());
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto results = engine.run(options);
  std::ostringstream os;
  print_sweep_report(os, results);
  const std::string report = os.str();
  EXPECT_NE(report.find("Estimator comparison"), std::string::npos);
  EXPECT_NE(report.find("robust"), std::string::npos);
  EXPECT_NE(report.find("swntp"), std::string::npos);
  EXPECT_NE(report.find("naive"), std::string::npos);
  EXPECT_NE(report.find("offline"), std::string::npos)
      << "replay lanes must appear in the head-to-head tables";
}

TEST(ScenarioSweep, OfflineReplayLaneScoresTheSameEvaluatedSet) {
  ScenarioSweep engine(estimator_grid());
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto results = engine.run(options);
  const std::size_t lanes = engine.grid().estimators.size();
  ASSERT_EQ(lanes, 4u);
  for (std::size_t i = 0; i < engine.scenarios().size(); ++i) {
    const auto& robust = results[i * lanes + 0];
    const auto& offline = results[i * lanes + 3];
    ASSERT_EQ(offline.estimator.label(), "offline");
    ASSERT_FALSE(offline.failed);
    // Scored from the same Testbed drain: identical counters, zero steps.
    EXPECT_EQ(offline.exchanges, robust.exchanges);
    EXPECT_EQ(offline.lost, robust.lost);
    EXPECT_EQ(offline.evaluated, robust.evaluated);
    EXPECT_EQ(offline.polls, robust.polls);
    EXPECT_EQ(offline.steps, 0u);
    // The smoother actually produced statistics over that set.
    ASSERT_GT(offline.evaluated, 0u);
    EXPECT_EQ(offline.clock_error.count, offline.evaluated);
    // Two-sided smoothing of a steady trace tracks at least to the same
    // order as the online robust clock (sub-ms on these scenarios).
    EXPECT_LT(std::fabs(offline.clock_error.percentiles.p50), 1e-3);
    // Replay clock error is the negated tracking error by construction.
    EXPECT_EQ(offline.clock_error.percentiles.p50,
              -offline.offset_error.percentiles.p50);
  }
}

TEST(ScenarioGrid, RejectsEmptyOrDuplicateEstimatorAxis) {
  GridSpec no_estimators = small_grid();
  no_estimators.estimators.clear();
  EXPECT_THROW(expand_grid(no_estimators), ContractViolation);
  GridSpec duplicates = small_grid();
  duplicates.estimators = {harness::EstimatorSpec{"robust", {}},
                           harness::EstimatorSpec{"robust", {}}};
  EXPECT_THROW(expand_grid(duplicates), ContractViolation);
  // Identity is the canonical label: `robust()` and a default-valued
  // override are the same lane as `robust`.
  GridSpec canonical_duplicates = small_grid();
  canonical_duplicates.estimators = {
      harness::estimator_registry().parse("robust"),
      harness::estimator_registry().parse("robust(use_local_rate=1)")};
  EXPECT_THROW(expand_grid(canonical_duplicates), ContractViolation);
}

// -- Spec golden: the registry lane vs the pre-redesign robust lane --------

TEST(SpecGolden, BareRobustSpecBitIdenticalToDirectRobustLane) {
  // The bare `robust` spec must reproduce the pre-redesign kRobust lane
  // exactly: same drive (ClockSession, observable warm-up cut), same
  // estimator (a TscNtpEstimator built directly from the scenario's
  // Params), same reduction (ReducerSink) — bit for bit.
  const auto scenarios = expand_grid(variant_grid());
  ASSERT_FALSE(scenarios.empty());
  const Seconds warmup = 20 * duration::kMinute;
  for (const auto& scenario : scenarios) {
    // Registry lane, exactly as the sweep runs it.
    const auto via_spec = run_scenario(scenario, warmup);
    ASSERT_FALSE(via_spec.failed);
    EXPECT_EQ(via_spec.estimator.label(), "robust");

    // The pre-redesign lane, hand-rolled: no registry anywhere.
    sim::Testbed testbed(scenario.config);
    harness::SessionConfig config;
    config.params =
        core::Params::for_poll_period(scenario.config.poll_period);
    config.discard_warmup = warmup;
    config.warmup_policy = harness::WarmupPolicy::kObservable;
    harness::ClockSession session(
        config, std::make_unique<harness::TscNtpEstimator>(
                    config.params, testbed.nominal_period()));
    harness::ReducerSink reducer(scenario.config.poll_period);
    session.add_sink(reducer);
    const auto& summary = session.run(testbed);
    const auto reduction = reducer.reduce();

    EXPECT_EQ(via_spec.exchanges, summary.exchanges);
    EXPECT_EQ(via_spec.lost, summary.lost);
    EXPECT_EQ(via_spec.evaluated, summary.evaluated);
    ASSERT_GT(via_spec.evaluated, 0u);
    // Bit-level double equality: the registry indirection must not perturb
    // a single ULP of any reduced value.
    EXPECT_EQ(via_spec.clock_error.mean, reduction.clock_error.mean);
    EXPECT_EQ(via_spec.clock_error.stddev, reduction.clock_error.stddev);
    EXPECT_EQ(via_spec.clock_error.percentiles.p01,
              reduction.clock_error.percentiles.p01);
    EXPECT_EQ(via_spec.clock_error.percentiles.p50,
              reduction.clock_error.percentiles.p50);
    EXPECT_EQ(via_spec.clock_error.percentiles.p99,
              reduction.clock_error.percentiles.p99);
    EXPECT_EQ(via_spec.offset_error.percentiles.p50,
              reduction.offset_error.percentiles.p50);
    EXPECT_EQ(via_spec.adev_short, reduction.adev_short);
    EXPECT_EQ(via_spec.adev_long, reduction.adev_long);
    EXPECT_EQ(via_spec.final_status.period, summary.final_status.period);
    EXPECT_EQ(via_spec.final_status.offset, summary.final_status.offset);
  }
}

// -- Variant axis ----------------------------------------------------------

TEST(ScenarioSweep, VariantAxisSharesSeedsAndIsThreadCountDeterministic) {
  // The satellite contract of the redesign: an axis of parameterized
  // variants behaves exactly like the family axis — per-scenario seeds are
  // estimator-independent (the ablation shares its scenario's seed with the
  // full algorithm by construction) and results are bit-identical across
  // thread counts.
  ScenarioSweep engine(variant_grid());
  SweepOptions options;
  options.discard_warmup = 20 * duration::kMinute;

  options.threads = 1;
  const auto reference = engine.run(options);
  options.threads = 4;
  const auto other = engine.run(options);
  const std::size_t lanes = engine.grid().estimators.size();
  ASSERT_EQ(reference.size(), engine.scenarios().size() * lanes);
  ASSERT_EQ(other.size(), reference.size());
  for (std::size_t i = 0; i < engine.scenarios().size(); ++i) {
    for (std::size_t e = 0; e < lanes; ++e) {
      const auto& r = reference[i * lanes + e];
      EXPECT_EQ(r.seed, engine.scenarios()[i].config.seed)
          << "variant lanes must never reseed the scenario";
      EXPECT_EQ(r.estimator, engine.grid().estimators[e]);
      EXPECT_EQ(r.exchanges, reference[i * lanes].exchanges);
      EXPECT_EQ(r.lost, reference[i * lanes].lost);
      expect_bit_identical(r, other[i * lanes + e]);
    }
  }
}

TEST(ScenarioSweep, UseLocalRateAblationDiffersMeasurablyFromRobust) {
  // On a trace long enough for the quasi-local rate to engage (its window
  // is 5000 s), switching eq. (21)/(23) prediction off must change the
  // error summaries — while still sharing the scenario's seed and packets.
  GridSpec grid = small_grid();
  grid.servers = {sim::ServerKind::kInt};
  grid.poll_periods = {16.0};
  grid.duration = 6 * duration::kHour;
  const auto& registry = harness::estimator_registry();
  grid.estimators = {registry.parse("robust"),
                     registry.parse("robust(use_local_rate=0)")};
  ScenarioSweep engine(grid);
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = duration::kHour;
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 2u);
  const auto& robust = results[0];
  const auto& ablated = results[1];
  ASSERT_FALSE(robust.failed);
  ASSERT_FALSE(ablated.failed);
  EXPECT_EQ(ablated.estimator.label(), "robust(use_local_rate=0)");
  // Same scenario, same seed, same packets…
  EXPECT_EQ(ablated.seed, robust.seed);
  EXPECT_EQ(ablated.exchanges, robust.exchanges);
  EXPECT_EQ(ablated.evaluated, robust.evaluated);
  ASSERT_GT(robust.evaluated, 0u);
  // …measurably different summaries.
  EXPECT_NE(ablated.offset_error.percentiles.p50,
            robust.offset_error.percentiles.p50);
  EXPECT_NE(ablated.clock_error.mean, robust.clock_error.mean);

  // Both lanes land in the per-cell comparison table, labelled by spec.
  std::ostringstream os;
  print_sweep_report(os, results);
  const std::string report = os.str();
  EXPECT_NE(report.find("Estimator comparison"), std::string::npos);
  EXPECT_NE(report.find("/ robust(use_local_rate=0)"), std::string::npos);
}

// -- Streaming reduction ---------------------------------------------------

TEST(ScenarioSweep, StreamingReductionMatchesExactWhereExactIsPinned) {
  GridSpec grid = small_grid();
  grid.poll_periods = {16.0};
  ScenarioSweep engine(grid);
  SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 20 * duration::kMinute;
  const auto exact = engine.run(options);
  options.streaming_reduction = true;
  const auto streaming = engine.run(options);
  ASSERT_EQ(exact.size(), streaming.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto& a = exact[i];
    const auto& b = streaming[i];
    ASSERT_GT(a.evaluated, 0u);
    // Counts, moments and ADEV are computed by the same arithmetic in the
    // same order — bit-identical.
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.clock_error.count, b.clock_error.count);
    EXPECT_EQ(a.clock_error.mean, b.clock_error.mean);
    EXPECT_EQ(a.clock_error.stddev, b.clock_error.stddev);
    EXPECT_EQ(a.clock_error.min, b.clock_error.min);
    EXPECT_EQ(a.clock_error.max, b.clock_error.max);
    EXPECT_EQ(a.adev_short, b.adev_short);
    EXPECT_EQ(a.adev_long, b.adev_long);
    // Percentiles are P² approximations: close, not exact. Tolerance is a
    // fraction of the distribution's scale.
    const double scale =
        std::max(1e-7, a.clock_error.max - a.clock_error.min);
    EXPECT_NEAR(a.clock_error.percentiles.p50, b.clock_error.percentiles.p50,
                0.15 * scale)
        << a.name;
    EXPECT_NEAR(a.offset_error.percentiles.p50,
                b.offset_error.percentiles.p50, 0.15 * scale)
        << a.name;
  }
}

}  // namespace
}  // namespace tscclock::sweep
