// Tests for the composed testbed: causal ordering of the exchange timeline,
// Table 2 characteristics, wire-format round trip and event handling.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace tscclock::sim {
namespace {

ScenarioConfig short_config(ServerKind kind = ServerKind::kInt) {
  ScenarioConfig c;
  c.server = kind;
  c.duration = 2 * duration::kHour;
  c.seed = 99;
  return c;
}

TEST(Testbed, TimelineIsCausal) {
  Testbed tb(short_config());
  while (auto ex = tb.next()) {
    if (ex->lost) continue;
    EXPECT_LT(ex->truth.ta, ex->truth.tb);
    EXPECT_LT(ex->truth.tb, ex->truth.te);
    EXPECT_LT(ex->truth.te, ex->truth.tf);
    EXPECT_GT(ex->tf_counts, ex->ta_counts);
    // Server stamps sit between the host events (up to stamp noise).
    EXPECT_GT(ex->tb_stamp, ex->truth.ta);
    EXPECT_LT(ex->te_stamp, ex->truth.tf + 2e-3);
  }
}

TEST(Testbed, RttDecompositionConsistent) {
  Testbed tb(short_config());
  while (auto ex = tb.next()) {
    if (ex->lost) continue;
    EXPECT_NEAR(ex->truth.rtt(), ex->truth.tf - ex->truth.ta, 1e-12);
  }
}

TEST(Testbed, MinRttMatchesTable2) {
  struct Case {
    ServerKind kind;
    Seconds paper_rtt;
  };
  const Case cases[] = {{ServerKind::kLoc, 0.38e-3},
                        {ServerKind::kInt, 0.89e-3},
                        {ServerKind::kExt, 14.2e-3}};
  for (const auto& c : cases) {
    Testbed tb(short_config(c.kind));
    Seconds min_rtt = 1.0;
    while (auto ex = tb.next()) {
      if (ex->lost) continue;
      min_rtt = std::min(min_rtt, ex->truth.rtt());
    }
    // Minimum approached within the light jitter scale.
    EXPECT_GT(min_rtt, c.paper_rtt);
    EXPECT_LT(min_rtt, c.paper_rtt * 1.35);
  }
}

TEST(Testbed, AsymmetryMatchesTable2) {
  EXPECT_NEAR(ScenarioConfig::path_preset(ServerKind::kLoc).forward.min_delay -
                  ScenarioConfig::path_preset(ServerKind::kLoc).backward.min_delay,
              50e-6, 1e-9);
  EXPECT_NEAR(ScenarioConfig::path_preset(ServerKind::kInt).forward.min_delay -
                  ScenarioConfig::path_preset(ServerKind::kInt).backward.min_delay,
              50e-6, 1e-9);
  EXPECT_NEAR(ScenarioConfig::path_preset(ServerKind::kExt).forward.min_delay -
                  ScenarioConfig::path_preset(ServerKind::kExt).backward.min_delay,
              500e-6, 1e-9);
}

TEST(Testbed, DagReferenceTracksArrival) {
  Testbed tb(short_config());
  while (auto ex = tb.next()) {
    if (ex->lost || !ex->ref_available) continue;
    EXPECT_NEAR(ex->tg, ex->truth.tf, 5e-6);
  }
}

TEST(Testbed, HostStampsBracketTruth) {
  // Ta is made before wire departure; Tf after full arrival.
  auto config = short_config();
  Testbed tb(config);
  const double period = tb.true_period();
  TscCount prev = 0;
  while (auto ex = tb.next()) {
    if (ex->lost) continue;
    EXPECT_GE(ex->ta_counts, prev);  // monotone stream
    prev = ex->tf_counts;
    // RTT measured by counter exceeds true RTT (send lead + recv lag).
    const Seconds host_rtt =
        delta_to_seconds(counter_delta(ex->tf_counts, ex->ta_counts), period);
    EXPECT_GT(host_rtt, ex->truth.rtt());
    EXPECT_LT(host_rtt - ex->truth.rtt(), 2e-3);
  }
}

TEST(Testbed, WireFormatPreservesStamps) {
  // With and without the wire round trip, server stamps agree to ~1 ns
  // (one 2^-32 s LSB), proving the codec is on the data path and lossless.
  auto with = short_config();
  with.duration = 600;
  auto without = with;
  without.use_wire_format = false;
  Testbed tb_with(with);
  Testbed tb_without(without);
  while (true) {
    auto a = tb_with.next();
    auto b = tb_without.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    if (a->lost) continue;
    EXPECT_NEAR(a->tb_stamp, b->tb_stamp, 2e-9);
    EXPECT_NEAR(a->te_stamp, b->te_stamp, 2e-9);
  }
}

TEST(Testbed, OutageSuppressesPolls) {
  auto config = short_config();
  config.events.add_outage(1800.0, 3600.0);
  Testbed tb(config);
  while (auto ex = tb.next()) {
    const bool inside =
        ex->truth.ta >= 1800.0 && ex->truth.ta < 3600.0;
    EXPECT_FALSE(inside) << "poll emitted inside outage at " << ex->truth.ta;
  }
}

TEST(Testbed, LossRateRoughlyMatchesConfig) {
  auto config = short_config();
  config.duration = duration::kDay;
  Testbed tb(config);
  std::size_t lost = 0;
  std::size_t total = 0;
  while (auto ex = tb.next()) {
    ++total;
    if (ex->lost) ++lost;
  }
  const double p = ScenarioConfig::path_preset(ServerKind::kInt).loss_prob;
  // Two loss opportunities per exchange.
  EXPECT_NEAR(static_cast<double>(lost) / total, 2 * p, 2 * p);
  EXPECT_GT(lost, 0u);
}

TEST(Testbed, DeterministicForSeed) {
  Testbed a(short_config());
  Testbed b(short_config());
  while (true) {
    auto ea = a.next();
    auto eb = b.next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea) break;
    EXPECT_EQ(ea->ta_counts, eb->ta_counts);
    EXPECT_EQ(ea->tf_counts, eb->tf_counts);
    EXPECT_EQ(ea->lost, eb->lost);
    EXPECT_DOUBLE_EQ(ea->tb_stamp, eb->tb_stamp);
  }
}

TEST(Testbed, GenerateAllMatchesDuration) {
  auto config = short_config();
  config.duration = 3200.0;  // 200 polls at 16 s
  Testbed tb(config);
  const auto all = tb.generate_all();
  EXPECT_GE(all.size(), 195u);
  EXPECT_LE(all.size(), 200u);
}

TEST(Testbed, ServerFaultVisibleInStamps) {
  auto config = short_config();
  config.events.add_server_fault(1000.0, 2000.0, 0.150);
  Testbed tb(config);
  bool saw_fault = false;
  while (auto ex = tb.next()) {
    if (ex->lost) continue;
    const double err = ex->tb_stamp - ex->truth.tb;
    if (ex->truth.tb > 1000.0 && ex->truth.tb < 2000.0) {
      EXPECT_NEAR(err, 0.150, 2e-3);
      saw_fault = true;
    } else {
      EXPECT_LT(std::fabs(err), 2e-3);
    }
  }
  EXPECT_TRUE(saw_fault);
}

TEST(Testbed, ServerSwitchChangesIdentityMidTrace) {
  auto config = short_config();
  config.server_switches = {{1200.0, ServerKind::kLoc},
                            {2400.0, ServerKind::kExt}};
  Testbed tb(config);
  std::uint32_t last_id = 0;
  std::vector<std::uint32_t> id_sequence;
  while (auto ex = tb.next()) {
    // Identity is assigned before loss is decided, so lost exchanges carry
    // the active attachment's id too.
    if (ex->server_id != last_id) {
      id_sequence.push_back(ex->server_id);
      last_id = ex->server_id;
    }
    const Seconds t = ex->truth.ta;
    const std::uint32_t expected = t < 1200.0 ? 1u : (t < 2400.0 ? 2u : 3u);
    EXPECT_EQ(ex->server_id, expected) << "at t=" << t;
    EXPECT_EQ(ex->server_stratum, 1);
  }
  EXPECT_EQ(id_sequence, (std::vector<std::uint32_t>{1, 2, 3}))
      << "each switch takes effect exactly once, in order";
}

TEST(Testbed, SwitchDuringOutageAppliesAtFirstPollAfterGap) {
  // The switch instant falls inside an outage: no poll is emitted at the
  // switch time itself (skipped, not lost), and the first post-outage
  // exchange already carries the new identity.
  auto config = short_config();
  config.events.add_outage(1100.0, 1500.0);
  config.server_switches = {{1200.0, ServerKind::kLoc}};
  Testbed tb(config);
  std::optional<std::uint64_t> last_index_before;
  std::optional<std::uint64_t> first_index_after;
  while (auto ex = tb.next()) {
    EXPECT_FALSE(ex->truth.ta >= 1100.0 && ex->truth.ta < 1500.0)
        << "poll emitted inside outage at " << ex->truth.ta;
    if (ex->truth.ta < 1100.0) {
      EXPECT_EQ(ex->server_id, 1u);
      last_index_before = ex->index;
    } else if (!first_index_after) {
      first_index_after = ex->index;
      EXPECT_EQ(ex->server_id, 2u)
          << "first poll after the gap must use the switched server";
    }
  }
  ASSERT_TRUE(last_index_before.has_value());
  ASSERT_TRUE(first_index_after.has_value());
  // The suppressed polls consume indices: the sequence numbers across the
  // gap jump by the number of skipped slots (≈ 400 s / 16 s), so the
  // synchronization layer sees a genuine data gap, not a renumbering.
  const auto jump = *first_index_after - *last_index_before;
  EXPECT_GE(jump, 24u);
  EXPECT_LE(jump, 27u);
}

TEST(Testbed, LostExchangesDistinctFromSkippedPolls) {
  // Loss produces an element with lost=true (the poll happened, the packet
  // died); an outage produces no element at all. Fed by ServerExt's loss
  // rate over a day so both behaviours coexist in one trace.
  auto config = short_config(ServerKind::kExt);
  config.duration = duration::kDay;
  config.events.add_outage(10000.0, 12000.0);
  config.server_switches = {{43200.0, ServerKind::kExt}};
  Testbed tb(config);
  std::size_t produced = 0;
  std::size_t lost_after_switch = 0;
  while (auto ex = tb.next()) {
    ++produced;
    EXPECT_FALSE(ex->truth.ta >= 10000.0 && ex->truth.ta < 12000.0);
    if (ex->lost && ex->truth.ta >= 43200.0) {
      ++lost_after_switch;
      EXPECT_EQ(ex->server_id, 2u)
          << "lost exchange must be attributed to the switched server";
    }
  }
  const auto slots = static_cast<std::size_t>(config.duration / 16.0);
  const auto outage_slots = static_cast<std::size_t>(2000.0 / 16.0);
  EXPECT_LE(produced, slots - outage_slots + 2);
  EXPECT_GE(produced, slots - outage_slots - 2);
  EXPECT_GT(lost_after_switch, 0u)
      << "expected ServerExt losses in half a day of polls";
}

TEST(Testbed, NamesForDisplay) {
  EXPECT_EQ(to_string(ServerKind::kLoc), "ServerLoc");
  EXPECT_EQ(to_string(ServerKind::kInt), "ServerInt");
  EXPECT_EQ(to_string(ServerKind::kExt), "ServerExt");
  EXPECT_EQ(to_string(Environment::kLaboratory), "laboratory");
  EXPECT_EQ(to_string(Environment::kMachineRoom), "machine-room");
}

}  // namespace
}  // namespace tscclock::sim
