// Tests for the reporting substrate (ASCII tables, CSV export).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace tscclock {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%8.1f", 2.5), "     2.5");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, one row.
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, RejectsEmptyHeaders) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(PrintHelpers, BannerAndComparison) {
  std::ostringstream os;
  print_banner(os, "Figure 9");
  print_comparison(os, "median", "30us", "28us");
  const std::string out = os.str();
  EXPECT_NE(out.find("==== Figure 9 ===="), std::string::npos);
  EXPECT_NE(out.find("paper=30us"), std::string::npos);
  EXPECT_NE(out.find("measured=28us"), std::string::npos);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/tscclock_test_csv.csv";
  {
    CsvWriter csv(path, {"t", "value"});
    const double row1[] = {1.0, 2.5};
    csv.write_row(row1);
    csv.write_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,value");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  const std::string path = "/tmp/tscclock_test_csv2.csv";
  CsvWriter csv(path, {"a", "b"});
  const double row[] = {1.0};
  EXPECT_THROW(csv.write_row(row), ContractViolation);
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

// -- RFC-4180 quoting (parameterized estimator labels) ----------------------

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  // Single-override labels carry ( ) = which need no quoting; multi-override
  // labels carry commas and must be quoted to stay one field.
  EXPECT_EQ(csv_escape("robust"), "robust");
  EXPECT_EQ(csv_escape("robust(use_local_rate=0)"),
            "robust(use_local_rate=0)");
  EXPECT_EQ(csv_escape("robust(use_local_rate=0,enable_aging=0)"),
            "\"robust(use_local_rate=0,enable_aging=0)\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, SplitRowRoundTripsEscapedFields) {
  const std::vector<std::string> fields = {
      "robust(use_local_rate=0,enable_aging=0)", "plain",
      "with \"quotes\", and commas", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(csv_split_row(line), fields);
  EXPECT_THROW(csv_split_row("\"unterminated"), std::runtime_error);
}

TEST(CsvWriter, QuotesCellsWithCommasSoLabelsRoundTrip) {
  const std::string path = "/tmp/tscclock_test_csv3.csv";
  const std::string label = "robust(use_local_rate=0,enable_aging=0)";
  {
    CsvWriter csv(path, {"estimator", "value"});
    csv.write_row({label, "1"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "estimator,value");
  std::getline(in, line);
  // One quoted field, not split across two columns.
  const auto fields = csv_split_row(line);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], label);
  EXPECT_EQ(fields[1], "1");
  std::remove(path.c_str());
}

TEST(TablePrinter, SizesColumnsToParameterizedLabels) {
  // Comparison-table columns must grow to the widest (possibly
  // parameterized) label, keeping every later cell aligned.
  const std::string label = "scenario / robust(use_local_rate=0)";
  TablePrinter t({"scenario / estimator", "median"});
  t.add_row({label, "1.0"});
  t.add_row({"scenario / robust", "2.0"});
  std::ostringstream os;
  t.print(os);
  // Every row pads the first column to the same width: the second column's
  // cells all start at one offset, past the widest label.
  std::string line;
  std::istringstream lines(os.str());
  std::vector<std::size_t> second_column_offsets;
  while (std::getline(lines, line)) {
    if (line.find("1.0") != std::string::npos)
      second_column_offsets.push_back(line.find("1.0"));
    if (line.find("2.0") != std::string::npos)
      second_column_offsets.push_back(line.find("2.0"));
  }
  ASSERT_EQ(second_column_offsets.size(), 2u);
  EXPECT_EQ(second_column_offsets[0], second_column_offsets[1]);
  EXPECT_GT(second_column_offsets[0], label.size());
}

}  // namespace
}  // namespace tscclock
