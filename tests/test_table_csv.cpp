// Tests for the reporting substrate (ASCII tables, CSV export).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace tscclock {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%8.1f", 2.5), "     2.5");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, one row.
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TablePrinter, RejectsEmptyHeaders) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(PrintHelpers, BannerAndComparison) {
  std::ostringstream os;
  print_banner(os, "Figure 9");
  print_comparison(os, "median", "30us", "28us");
  const std::string out = os.str();
  EXPECT_NE(out.find("==== Figure 9 ===="), std::string::npos);
  EXPECT_NE(out.find("paper=30us"), std::string::npos);
  EXPECT_NE(out.find("measured=28us"), std::string::npos);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/tscclock_test_csv.csv";
  {
    CsvWriter csv(path, {"t", "value"});
    const double row1[] = {1.0, 2.5};
    csv.write_row(row1);
    csv.write_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,value");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  const std::string path = "/tmp/tscclock_test_csv2.csv";
  CsvWriter csv(path, {"a", "b"});
  const double row[] = {1.0};
  EXPECT_THROW(csv.write_row(row), ContractViolation);
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace tscclock
