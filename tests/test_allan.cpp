// Tests for the Allan deviation analysis, including the two canonical noise
// signatures the paper relies on (§3.1): white phase noise → ADEV ∝ 1/τ,
// and a pure constant skew → ADEV = 0.
#include "common/allan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tscclock {
namespace {

TEST(Allan, ZeroForPerfectLinearPhase) {
  // θ(t) = θ0 + γt: second differences vanish, so ADEV = 0 at every τ.
  std::vector<double> phase;
  for (int k = 0; k < 1000; ++k) phase.push_back(1e-3 + 5e-6 * k);
  const std::size_t ms[] = {1, 2, 5, 10, 50};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& p : pts) EXPECT_NEAR(p.deviation, 0.0, 1e-15);
}

TEST(Allan, WhitePhaseNoiseFallsAsOneOverTau) {
  // x_k iid N(0, σ²) ⇒ AVAR(τ) = 3σ²/τ² ⇒ ADEV = √3·σ/τ.
  Rng rng(101);
  const double sigma = 2e-6;
  std::vector<double> phase;
  for (int k = 0; k < 200000; ++k) phase.push_back(rng.normal(sigma));
  const std::size_t ms[] = {1, 10, 100};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) {
    const double expected = std::sqrt(3.0) * sigma / p.tau;
    EXPECT_NEAR(p.deviation / expected, 1.0, 0.1) << "tau=" << p.tau;
  }
}

TEST(Allan, FrequencyStepShowsAtLargeTau) {
  // A rate that flips between ±γ on a long cycle leaves ~γ at τ near the
  // half cycle.
  std::vector<double> phase;
  double x = 0;
  const double gamma = 1e-7;
  for (int k = 0; k < 40000; ++k) {
    const double rate = (k / 1000) % 2 == 0 ? gamma : -gamma;
    x += rate;  // tau0 = 1 s steps
    phase.push_back(x);
  }
  const std::size_t ms[] = {1000};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].deviation, gamma, 0.5 * gamma);
}

TEST(Allan, SkipsOversizedFactors) {
  std::vector<double> phase(10, 0.0);
  const std::size_t ms[] = {1, 2, 3, 4, 100};
  const auto pts = allan_deviation(phase, 1.0, ms);
  EXPECT_EQ(pts.size(), 4u);  // m=4 needs 2m+2=10 ok; m=100 skipped
}

TEST(Allan, TermsCountIsNMinus2m) {
  std::vector<double> phase(100, 0.0);
  const std::size_t ms[] = {10};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].terms, 80u);
}

TEST(Allan, RejectsNonPositiveTau0) {
  std::vector<double> phase(10, 0.0);
  const std::size_t ms[] = {1};
  EXPECT_THROW(allan_deviation(phase, 0.0, ms), ContractViolation);
}

TEST(LogSpacedFactors, StrictlyIncreasingAndBounded) {
  const auto f = log_spaced_factors(10000, 4);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f.front(), 1u);
  for (std::size_t k = 1; k < f.size(); ++k) EXPECT_GT(f[k], f[k - 1]);
  EXPECT_LE(f.back(), 10000u / 3);
}

TEST(LogSpacedFactors, EmptyForTinySeries) {
  EXPECT_TRUE(log_spaced_factors(3, 4).empty());
}

TEST(ResampleLinear, ExactOnLinearSeries) {
  std::vector<double> times{0.0, 10.0, 20.0};
  std::vector<double> values{0.0, 100.0, 200.0};
  const auto r = resample_linear(times, values, 2.5);
  ASSERT_EQ(r.size(), 9u);  // 0, 2.5, ..., 20
  for (std::size_t k = 0; k < r.size(); ++k)
    EXPECT_NEAR(r[k], 25.0 * static_cast<double>(k), 1e-9);
}

TEST(ResampleLinear, HandlesIrregularSpacing) {
  std::vector<double> times{0.0, 1.0, 5.0};
  std::vector<double> values{0.0, 1.0, 9.0};
  const auto r = resample_linear(times, values, 1.0);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
  EXPECT_NEAR(r[3], 5.0, 1e-12);  // interpolated on the 1→5 segment
}

TEST(ResampleLinear, RejectsBadInput) {
  std::vector<double> times{0.0};
  std::vector<double> values{0.0};
  EXPECT_THROW(resample_linear(times, values, 1.0), ContractViolation);
  std::vector<double> t2{0.0, 1.0};
  std::vector<double> v1{0.0};
  EXPECT_THROW(resample_linear(t2, v1, 1.0), ContractViolation);
}

}  // namespace
}  // namespace tscclock
