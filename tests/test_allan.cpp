// Tests for the Allan deviation analysis, including the two canonical noise
// signatures the paper relies on (§3.1): white phase noise → ADEV ∝ 1/τ,
// and a pure constant skew → ADEV = 0.
#include "common/allan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tscclock {
namespace {

TEST(Allan, ZeroForPerfectLinearPhase) {
  // θ(t) = θ0 + γt: second differences vanish, so ADEV = 0 at every τ.
  std::vector<double> phase;
  for (int k = 0; k < 1000; ++k) phase.push_back(1e-3 + 5e-6 * k);
  const std::size_t ms[] = {1, 2, 5, 10, 50};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& p : pts) EXPECT_NEAR(p.deviation, 0.0, 1e-15);
}

TEST(Allan, WhitePhaseNoiseFallsAsOneOverTau) {
  // x_k iid N(0, σ²) ⇒ AVAR(τ) = 3σ²/τ² ⇒ ADEV = √3·σ/τ.
  Rng rng(101);
  const double sigma = 2e-6;
  std::vector<double> phase;
  for (int k = 0; k < 200000; ++k) phase.push_back(rng.normal(sigma));
  const std::size_t ms[] = {1, 10, 100};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) {
    const double expected = std::sqrt(3.0) * sigma / p.tau;
    EXPECT_NEAR(p.deviation / expected, 1.0, 0.1) << "tau=" << p.tau;
  }
}

TEST(Allan, FrequencyStepShowsAtLargeTau) {
  // A rate that flips between ±γ on a long cycle leaves ~γ at τ near the
  // half cycle.
  std::vector<double> phase;
  double x = 0;
  const double gamma = 1e-7;
  for (int k = 0; k < 40000; ++k) {
    const double rate = (k / 1000) % 2 == 0 ? gamma : -gamma;
    x += rate;  // tau0 = 1 s steps
    phase.push_back(x);
  }
  const std::size_t ms[] = {1000};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].deviation, gamma, 0.5 * gamma);
}

TEST(Allan, SkipsOversizedFactors) {
  std::vector<double> phase(10, 0.0);
  const std::size_t ms[] = {1, 2, 3, 4, 100};
  const auto pts = allan_deviation(phase, 1.0, ms);
  EXPECT_EQ(pts.size(), 4u);  // m=4 needs 2m+2=10 ok; m=100 skipped
}

TEST(Allan, TermsCountIsNMinus2m) {
  std::vector<double> phase(100, 0.0);
  const std::size_t ms[] = {10};
  const auto pts = allan_deviation(phase, 1.0, ms);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].terms, 80u);
}

TEST(Allan, RejectsNonPositiveTau0) {
  std::vector<double> phase(10, 0.0);
  const std::size_t ms[] = {1};
  EXPECT_THROW(allan_deviation(phase, 0.0, ms), ContractViolation);
}

TEST(LogSpacedFactors, StrictlyIncreasingAndBounded) {
  const auto f = log_spaced_factors(10000, 4);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f.front(), 1u);
  for (std::size_t k = 1; k < f.size(); ++k) EXPECT_GT(f[k], f[k - 1]);
  EXPECT_LE(f.back(), 10000u / 3);
}

TEST(LogSpacedFactors, EmptyForTinySeries) {
  EXPECT_TRUE(log_spaced_factors(3, 4).empty());
}

TEST(ResampleLinear, ExactOnLinearSeries) {
  std::vector<double> times{0.0, 10.0, 20.0};
  std::vector<double> values{0.0, 100.0, 200.0};
  const auto r = resample_linear(times, values, 2.5);
  ASSERT_EQ(r.size(), 9u);  // 0, 2.5, ..., 20
  for (std::size_t k = 0; k < r.size(); ++k)
    EXPECT_NEAR(r[k], 25.0 * static_cast<double>(k), 1e-9);
}

TEST(ResampleLinear, HandlesIrregularSpacing) {
  std::vector<double> times{0.0, 1.0, 5.0};
  std::vector<double> values{0.0, 1.0, 9.0};
  const auto r = resample_linear(times, values, 1.0);
  ASSERT_EQ(r.size(), 6u);
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
  EXPECT_NEAR(r[3], 5.0, 1e-12);  // interpolated on the 1→5 segment
}

TEST(ResampleLinear, RejectsBadInput) {
  std::vector<double> times{0.0};
  std::vector<double> values{0.0};
  EXPECT_THROW(resample_linear(times, values, 1.0), ContractViolation);
  std::vector<double> t2{0.0, 1.0};
  std::vector<double> v1{0.0};
  EXPECT_THROW(resample_linear(t2, v1, 1.0), ContractViolation);
}

// -- StreamingGapAdev ------------------------------------------------------

/// The buffered reference: split at gaps > 4·tau0, longest stretch first-
/// wins, resample, overlapping ADEV — the exact pipeline ReducerSink uses.
std::vector<AllanPoint> buffered_gap_adev(const std::vector<double>& times,
                                          const std::vector<double>& values,
                                          double tau0,
                                          std::span<const std::size_t> ms) {
  if (times.size() < 3) return {};
  std::size_t best_begin = 0;
  std::size_t best_len = 0;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= times.size(); ++i) {
    if (i == times.size() || times[i] - times[i - 1] > 4 * tau0) {
      if (i - begin > best_len) {
        best_len = i - begin;
        best_begin = begin;
      }
      begin = i;
    }
  }
  if (best_len < 3) return {};
  const std::span<const double> seg_times(times.data() + best_begin,
                                          best_len);
  const std::span<const double> seg_values(values.data() + best_begin,
                                           best_len);
  const auto regular = resample_linear(seg_times, seg_values, tau0);
  return allan_deviation(regular, tau0, ms);
}

/// Irregular sample times with jitter and two injected gaps (one splitting
/// the series into unequal stretches, so the longest-stretch selection has
/// real work to do).
void make_gappy_series(Rng& rng, std::size_t n, double tau0,
                       std::vector<double>& times,
                       std::vector<double>& values) {
  double t = 0.0;
  double walk = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    t += tau0 * rng.uniform(0.8, 1.2);
    if (k == n / 5 || k == (3 * n) / 4) t += 20 * tau0;  // gaps
    walk += rng.normal(1e-7);
    times.push_back(t);
    values.push_back(walk + rng.normal(5e-7));
  }
}

TEST(StreamingGapAdev, BitIdenticalToBufferedPipeline) {
  Rng rng(2024);
  std::vector<double> times;
  std::vector<double> values;
  const double tau0 = 16.0;
  make_gappy_series(rng, 4000, tau0, times, values);

  const std::size_t ms[] = {16, 256};
  const auto reference = buffered_gap_adev(times, values, tau0, ms);
  ASSERT_EQ(reference.size(), 2u);

  StreamingGapAdev streaming(tau0, {16, 256});
  for (std::size_t k = 0; k < times.size(); ++k)
    streaming.add(times[k], values[k]);
  const auto result = streaming.result();
  ASSERT_EQ(result.size(), reference.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].tau, reference[i].tau);
    // Bit-level equality: the streaming resampler and accumulator replicate
    // the buffered arithmetic exactly.
    EXPECT_EQ(result[i].deviation, reference[i].deviation);
    EXPECT_EQ(result[i].terms, reference[i].terms);
  }
}

TEST(StreamingGapAdev, MidStreamResultMatchesBufferedPrefix) {
  Rng rng(77);
  std::vector<double> times;
  std::vector<double> values;
  const double tau0 = 16.0;
  make_gappy_series(rng, 2000, tau0, times, values);

  StreamingGapAdev streaming(tau0, {16});
  const std::size_t cut = 1234;
  for (std::size_t k = 0; k < cut; ++k) streaming.add(times[k], values[k]);

  std::vector<double> prefix_times(times.begin(), times.begin() + cut);
  std::vector<double> prefix_values(values.begin(), values.begin() + cut);
  const std::size_t ms[] = {16};
  const auto reference = buffered_gap_adev(prefix_times, prefix_values, tau0,
                                           ms);
  const auto result = streaming.result();
  ASSERT_EQ(result.size(), reference.size());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].deviation, reference[0].deviation);
  EXPECT_EQ(result[0].terms, reference[0].terms);

  // result() is a snapshot: continuing afterwards still matches the full
  // buffered reduction.
  for (std::size_t k = cut; k < times.size(); ++k)
    streaming.add(times[k], values[k]);
  const auto full_reference = buffered_gap_adev(times, values, tau0, ms);
  const auto full = streaming.result();
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].deviation, full_reference[0].deviation);
}

TEST(StreamingGapAdev, TooShortSeriesYieldsNoPoints) {
  StreamingGapAdev streaming(1.0, {4});
  streaming.add(0.0, 1e-6);
  streaming.add(1.0, 2e-6);
  EXPECT_TRUE(streaming.result().empty());
}

}  // namespace
}  // namespace tscclock
