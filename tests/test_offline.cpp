// Tests for the offline (two-sided) offset smoother.
#include "core/offline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/clock.hpp"
#include "core/naive.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.offset_window = 320.0;
  return p;
}

std::vector<RawExchange> clean_trace(SyntheticLink& link, int n) {
  std::vector<RawExchange> out;
  for (int i = 0; i < n; ++i) out.push_back(link.next());
  return out;
}

// True offset of the smoother's clock at a counter value: the smoother
// anchors C at the first packet's server midpoint, which absorbs +Δ/2
// (so tracking error = offsets[k] − theta_true(k) ≈ −Δ/2, the ambiguity).
Seconds theta_true(const OfflineResult& result, const SyntheticLink& link,
                   TscCount tf_counts) {
  const Seconds true_time =
      static_cast<double>(counter_delta(tf_counts,
                                        link.config().counter_base)) *
      link.config().period;
  return result.timescale.read(tf_counts) - true_time;
}

TEST(Offline, RejectsTinyTraces) {
  SyntheticLink link;
  std::vector<RawExchange> one{link.next()};
  EXPECT_THROW(smooth_offsets(one, test_params(), link.config().period),
               ContractViolation);
}

TEST(Offline, RecoversPeriodAndMinimum) {
  SyntheticLink link;
  auto trace = clean_trace(link, 400);
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period * 1.00005);
  EXPECT_NEAR(result.period / link.config().period, 1.0, 1e-7);
  EXPECT_NEAR(delta_to_seconds(result.rhat_counts, result.period),
              link.min_rtt(), 20e-6);
}

TEST(Offline, CleanTraceSitsAtAsymmetryAmbiguity) {
  SyntheticLink link;
  auto trace = clean_trace(link, 400);
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  ASSERT_EQ(result.offsets.size(), trace.size());
  for (std::size_t k = 5; k + 5 < result.offsets.size(); ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 5e-6)
        << "packet " << k;
  EXPECT_EQ(result.poor_windows, 0u);
}

TEST(Offline, SmoothsThroughCongestionBurst) {
  // A burst of congested packets in the middle: the two-sided window sees
  // clean packets on BOTH sides, so even mid-burst estimates stay clean —
  // the §5.3 advantage over the causal estimator.
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  for (int i = 0; i < 12; ++i) trace.push_back(link.next(6e-3, 6e-3));
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  for (std::size_t k = 100; k < 112; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 10e-6)
        << "mid-burst packet " << k;
}

TEST(Offline, FallsBackWhenWholeWindowCongested) {
  // Congestion longer than the whole window: the best packet in the
  // two-sided window is still congested → poor_windows counted, estimate
  // equals that best packet's naive value.
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 60; ++i) trace.push_back(link.next());
  for (int i = 0; i < 60; ++i) trace.push_back(link.next(5e-3, 5e-3));
  for (int i = 0; i < 60; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  EXPECT_GT(result.poor_windows, 0u);
  // Even the fallback stays bounded: symmetric congestion cancels in the
  // naive midpoint, so errors remain µs-scale here.
  for (std::size_t k = 85; k < 95; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 50e-6);
}

TEST(Offline, PoorWindowFallbackIsExactlyTheBestPacketsNaiveOffset) {
  // Direct contract test for the §5.3 fallback path: when every packet in a
  // two-sided window exceeds E**, the estimate must be the *naive offset of
  // the best (lowest total error) packet in that window* — bit-exactly, no
  // residual weighting — and exactly those windows must be counted in
  // poor_windows.
  //
  // Deterministic construction: symmetric congestion growing by 100 µs per
  // direction per packet, so point errors ramp ~200 µs per packet. Packets
  // 0 and 1 stay below E** = 360 µs; from packet 2 on everything is poor.
  // Early windows still contain a good packet (not poor); windows that have
  // slid past packet 1 contain only poor packets and must all fall back.
  SyntheticLink link;
  const Params params = test_params();
  std::vector<RawExchange> trace;
  const std::size_t n = 60;
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds spike = static_cast<double>(i) * 100e-6;
    trace.push_back(link.next(spike, spike));
  }
  const auto result = smooth_offsets(trace, params, link.config().period);
  ASSERT_EQ(result.offsets.size(), n);

  // Replicate the documented window/total-error rule to predict, per
  // packet, the best window member and whether the window is poor.
  const Seconds half_window = params.offset_window / 2;
  std::size_t expected_poor = 0;
  for (std::size_t k = 0; k < n; ++k) {
    Seconds best_total = std::numeric_limits<double>::infinity();
    std::size_t best = k;
    for (std::size_t i = 0; i < n; ++i) {
      const Seconds signed_distance =
          result.timescale.between(trace[i].tf, trace[k].tf);
      if (i < k && signed_distance > half_window) continue;  // left of window
      const Seconds distance = std::fabs(signed_distance);
      if (i > k && distance > half_window) break;  // right of window
      const Seconds point_error = delta_to_seconds(
          trace[i].rtt_counts() - result.rhat_counts, result.period);
      const Seconds total = point_error + params.aging_rate * distance;
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    if (best_total > params.extreme_quality()) {
      ++expected_poor;
      // The fallback is the best packet's naive value, bit for bit.
      EXPECT_EQ(result.offsets[k],
                naive_offset(trace[best], result.timescale))
          << "poor-window packet " << k << " (best " << best << ")";
    }
  }
  EXPECT_EQ(result.poor_windows, expected_poor);
  // The construction must exercise both paths.
  EXPECT_GT(expected_poor, 10u);
  EXPECT_LT(expected_poor, n);
}

TEST(Offline, HandlesGapsWithoutStateDecay) {
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  link.advance(2 * duration::kDay);
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  // Packets right after the gap are estimated from the fresh side only.
  for (std::size_t k = 100; k < 110; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 10e-6);
}

TEST(Offline, AgreesWithOnlineOnCleanData) {
  // On clean data the smoother and the on-line estimator must agree to
  // within the noise floor (both sit at −Δ/2 with µs spread).
  SyntheticLink link;
  auto trace = clean_trace(link, 300);
  const auto offline =
      smooth_offsets(trace, test_params(), link.config().period);
  TscNtpClock online(test_params(), link.config().period);
  std::vector<Seconds> online_offsets;
  for (const auto& ex : trace)
    online_offsets.push_back(online.process_exchange(ex).offset_estimate);
  for (std::size_t k = 50; k < trace.size(); ++k)
    EXPECT_NEAR(offline.offsets[k], online_offsets[k], 10e-6)
        << "packet " << k;
}

TEST(Offline, DegenerateBestPairTfSpanKeepsNominalPeriod) {
  // Regression for the whole-trace rate's quality gate. When the best
  // packets of the first and last quarter do not span a positive Tf
  // baseline, the ratio (ei + ej) / span is not a meaningful quality:
  // span == 0 makes it inf/NaN and span < 0 makes it *negative*, and a
  // non-positive or NaN ratio fails the `> rate_error_bound` comparison —
  // so a garbage candidate rate (orders of magnitude off) used to be
  // silently accepted and poisoned every downstream conversion. The guard
  // must fall back to the nominal period instead.
  const double nominal = 2.0e-9;
  const Params params = test_params();

  // span < 0: sends causally ordered (Ta_1 > Ta_0) but the earlier packet's
  // reply arrives later (huge RTT), so the best-pair Tf baseline is
  // negative. The ratio is negative → not > bound → the old code accepted
  // naive_rate's garbage (~7e-5 s/count against a 2e-9 nominal).
  std::vector<RawExchange> inverted(2);
  inverted[0] = RawExchange{0, 0.0005, 0.0006, 2'000'000};
  inverted[1] = RawExchange{100'000, 16.0005, 16.0006, 1'000'000};
  const auto inverted_result = smooth_offsets(inverted, params, nominal);
  EXPECT_EQ(inverted_result.period, nominal);
  ASSERT_EQ(inverted_result.offsets.size(), 2u);
  for (const auto offset : inverted_result.offsets)
    EXPECT_TRUE(std::isfinite(offset));

  // span == 0: the two best packets share the same Tf; the ratio is inf
  // (or NaN once the totals degenerate too). Must also keep the nominal.
  std::vector<RawExchange> same_tf(2);
  same_tf[0] = RawExchange{0, 0.0005, 0.0006, 1'000'000};
  same_tf[1] = RawExchange{100'000, 16.0005, 16.0006, 1'000'000};
  const auto same_tf_result = smooth_offsets(same_tf, params, nominal);
  EXPECT_EQ(same_tf_result.period, nominal);
  for (const auto offset : same_tf_result.offsets)
    EXPECT_TRUE(std::isfinite(offset));
}

TEST(Offline, AgingCanBeDisabled) {
  SyntheticLink link;
  auto trace = clean_trace(link, 200);
  auto params = test_params();
  params.enable_aging = false;
  const auto result =
      smooth_offsets(trace, params, link.config().period);
  EXPECT_EQ(result.offsets.size(), trace.size());
  EXPECT_NEAR(result.offsets[100] - theta_true(result, link, trace[100].tf),
              -link.asymmetry() / 2, 5e-6);
}

}  // namespace
}  // namespace tscclock::core
