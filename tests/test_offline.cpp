// Tests for the offline (two-sided) offset smoother.
#include "core/offline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/clock.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.offset_window = 320.0;
  return p;
}

std::vector<RawExchange> clean_trace(SyntheticLink& link, int n) {
  std::vector<RawExchange> out;
  for (int i = 0; i < n; ++i) out.push_back(link.next());
  return out;
}

// True offset of the smoother's clock at a counter value: the smoother
// anchors C at the first packet's server midpoint, which absorbs +Δ/2
// (so tracking error = offsets[k] − theta_true(k) ≈ −Δ/2, the ambiguity).
Seconds theta_true(const OfflineResult& result, const SyntheticLink& link,
                   TscCount tf_counts) {
  const Seconds true_time =
      static_cast<double>(counter_delta(tf_counts,
                                        link.config().counter_base)) *
      link.config().period;
  return result.timescale.read(tf_counts) - true_time;
}

TEST(Offline, RejectsTinyTraces) {
  SyntheticLink link;
  std::vector<RawExchange> one{link.next()};
  EXPECT_THROW(smooth_offsets(one, test_params(), link.config().period),
               ContractViolation);
}

TEST(Offline, RecoversPeriodAndMinimum) {
  SyntheticLink link;
  auto trace = clean_trace(link, 400);
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period * 1.00005);
  EXPECT_NEAR(result.period / link.config().period, 1.0, 1e-7);
  EXPECT_NEAR(delta_to_seconds(result.rhat_counts, result.period),
              link.min_rtt(), 20e-6);
}

TEST(Offline, CleanTraceSitsAtAsymmetryAmbiguity) {
  SyntheticLink link;
  auto trace = clean_trace(link, 400);
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  ASSERT_EQ(result.offsets.size(), trace.size());
  for (std::size_t k = 5; k + 5 < result.offsets.size(); ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 5e-6)
        << "packet " << k;
  EXPECT_EQ(result.poor_windows, 0u);
}

TEST(Offline, SmoothsThroughCongestionBurst) {
  // A burst of congested packets in the middle: the two-sided window sees
  // clean packets on BOTH sides, so even mid-burst estimates stay clean —
  // the §5.3 advantage over the causal estimator.
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  for (int i = 0; i < 12; ++i) trace.push_back(link.next(6e-3, 6e-3));
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  for (std::size_t k = 100; k < 112; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 10e-6)
        << "mid-burst packet " << k;
}

TEST(Offline, FallsBackWhenWholeWindowCongested) {
  // Congestion longer than the whole window: the best packet in the
  // two-sided window is still congested → poor_windows counted, estimate
  // equals that best packet's naive value.
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 60; ++i) trace.push_back(link.next());
  for (int i = 0; i < 60; ++i) trace.push_back(link.next(5e-3, 5e-3));
  for (int i = 0; i < 60; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  EXPECT_GT(result.poor_windows, 0u);
  // Even the fallback stays bounded: symmetric congestion cancels in the
  // naive midpoint, so errors remain µs-scale here.
  for (std::size_t k = 85; k < 95; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 50e-6);
}

TEST(Offline, HandlesGapsWithoutStateDecay) {
  SyntheticLink link;
  std::vector<RawExchange> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  link.advance(2 * duration::kDay);
  for (int i = 0; i < 100; ++i) trace.push_back(link.next());
  const auto result =
      smooth_offsets(trace, test_params(), link.config().period);
  // Packets right after the gap are estimated from the fresh side only.
  for (std::size_t k = 100; k < 110; ++k)
    EXPECT_NEAR(result.offsets[k] - theta_true(result, link, trace[k].tf),
                -link.asymmetry() / 2, 10e-6);
}

TEST(Offline, AgreesWithOnlineOnCleanData) {
  // On clean data the smoother and the on-line estimator must agree to
  // within the noise floor (both sit at −Δ/2 with µs spread).
  SyntheticLink link;
  auto trace = clean_trace(link, 300);
  const auto offline =
      smooth_offsets(trace, test_params(), link.config().period);
  TscNtpClock online(test_params(), link.config().period);
  std::vector<Seconds> online_offsets;
  for (const auto& ex : trace)
    online_offsets.push_back(online.process_exchange(ex).offset_estimate);
  for (std::size_t k = 50; k < trace.size(); ++k)
    EXPECT_NEAR(offline.offsets[k], online_offsets[k], 10e-6)
        << "packet " << k;
}

TEST(Offline, AgingCanBeDisabled) {
  SyntheticLink link;
  auto trace = clean_trace(link, 200);
  auto params = test_params();
  params.enable_aging = false;
  const auto result =
      smooth_offsets(trace, params, link.config().period);
  EXPECT_EQ(result.offsets.size(), trace.size());
  EXPECT_NEAR(result.offsets[100] - theta_true(result, link, trace[100].tf),
              -link.asymmetry() / 2, 5e-6);
}

}  // namespace
}  // namespace tscclock::core
