// The fleet-scale sweep's artifact layer: cell serialization bit-identity,
// shard dump round-trips and validation, the golden merge property (an
// N-way shard split reassembles into the byte-identical single-process
// report and trace CSV), and the checkpoint resume contract (torn tails
// discarded, incompatible checkpoints refused, FAILED cells propagated,
// resumed output byte-identical).
#include "sweep/result_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"

namespace tscclock::sweep {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// A result exercising the serialization's hard cases: negative zero,
/// denormals, infinities, NaN, and strings carrying the record separators.
ScenarioResult gnarly_result() {
  ScenarioResult r;
  r.scenario_index = 7;
  r.name = "ServerInt/machine-room/poll16/steady";
  r.seed = 0xdeadbeefcafe1234ULL;
  r.server = sim::ServerKind::kExt;
  r.environment = sim::Environment::kLaboratory;
  r.estimator =
      harness::EstimatorSpec{"robust", {{"use_local_rate", "0"}}};
  r.failed = true;
  r.error = "tab\there\nnewline \\backslash\r";
  r.polls = 5400;
  r.skipped = 12;
  r.exchanges = 5388;
  r.lost = 54;
  r.evaluated = 5334;
  r.clock_error.count = 5334;
  r.clock_error.min = -0.0;
  r.clock_error.max = std::numeric_limits<double>::denorm_min();
  r.clock_error.mean = -1.23456789e-6;
  r.clock_error.stddev = std::numeric_limits<double>::infinity();
  r.clock_error.percentiles.p01 = -std::numeric_limits<double>::infinity();
  r.clock_error.percentiles.p25 = std::numeric_limits<double>::quiet_NaN();
  r.clock_error.percentiles.p50 = 0.1;  // not exactly representable
  r.clock_error.percentiles.p75 = 1e-300;
  r.clock_error.percentiles.p99 = std::numeric_limits<double>::max();
  r.offset_error = r.clock_error;
  r.adev_short_tau = 256.0;
  r.adev_short = 3.3e-8;
  r.adev_long_tau = 4096.0;
  r.adev_long = 0;
  r.steps = 3;
  r.final_status.packets_processed = 5388;
  r.final_status.upshifts = 2;
  r.final_status.warmed_up = true;
  r.final_status.period = 1.0000000123e-9;
  r.final_status.period_quality = 0.25;
  r.final_status.local_rate_usable = true;
  r.final_status.local_rate_residual = 5e-9;
  r.final_status.offset = -42.5e-6;
  r.final_status.min_rtt = 0.000831;
  r.clients = 16;
  r.fleet_dispersion = 7.25e-6;
  r.fleet_worst_p99 = -0.0;  // sign must round-trip like every double field
  r.fleet_pairwise_spread = 1.5e-305;
  return r;
}

/// Field-exact equality via the serialized form (doubles are hexfloat, so
/// this is bit-identity including -0.0; NaN serializes to the same token).
void expect_results_identical(const ScenarioResult& a,
                              const ScenarioResult& b) {
  EXPECT_EQ(serialize_result(a), serialize_result(b));
}

TEST(CellSerialization, RoundTripsGnarlyValuesExactly) {
  const ScenarioResult original = gnarly_result();
  const std::string line = serialize_result(original);
  // One line, no separators leaking out of escaped fields.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const ScenarioResult parsed = parse_result(line);
  EXPECT_EQ(serialize_result(parsed), line);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.error, original.error);
  EXPECT_EQ(parsed.estimator.label(), "robust(use_local_rate=0)");
  EXPECT_TRUE(parsed.failed);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_TRUE(std::signbit(parsed.clock_error.min));
  EXPECT_TRUE(std::isnan(parsed.clock_error.percentiles.p25));
  EXPECT_EQ(parsed.clock_error.percentiles.p50, 0.1);
  EXPECT_EQ(parsed.final_status.period, original.final_status.period);
  EXPECT_EQ(parsed.clients, 16u);
  EXPECT_TRUE(std::signbit(parsed.fleet_worst_p99));
  EXPECT_EQ(parsed.fleet_pairwise_spread, original.fleet_pairwise_spread);
}

TEST(CellSerialization, RejectsTornAndReshapedRecords) {
  const std::string line = serialize_result(gnarly_result());
  // Every strict prefix is torn: wrong field count or a half field.
  EXPECT_THROW(parse_result(line.substr(0, line.size() / 2)), ResultIoError);
  EXPECT_THROW(parse_result(line.substr(0, line.rfind('\t'))), ResultIoError);
  EXPECT_THROW(parse_result(line + "\textra"), ResultIoError);
  EXPECT_THROW(parse_result(""), ResultIoError);
  // A corrupted numeric field is rejected, not misread.
  std::string corrupt = line;
  corrupt.replace(corrupt.find('\t'), 1, "x\t");
  EXPECT_THROW(parse_result(corrupt), ResultIoError);
}

TEST(RunHash, SensitiveToResultAffectingInputsOnly) {
  GridSpec grid;
  grid.duration = 0.2 * duration::kHour;
  const std::uint64_t base = sweep_run_hash(grid, 60.0, false);
  EXPECT_EQ(sweep_run_hash(grid, 60.0, false), base);

  GridSpec reseeded = grid;
  reseeded.master_seed = 43;
  EXPECT_NE(sweep_run_hash(reseeded, 60.0, false), base);

  GridSpec fewer = grid;
  fewer.poll_periods = {16.0};
  EXPECT_NE(sweep_run_hash(fewer, 60.0, false), base);

  GridSpec relabeled = grid;
  relabeled.estimators = {
      harness::EstimatorSpec{"robust", {{"use_local_rate", "0"}}}};
  EXPECT_NE(sweep_run_hash(relabeled, 60.0, false), base);

  EXPECT_NE(sweep_run_hash(grid, 120.0, false), base);
  EXPECT_NE(sweep_run_hash(grid, 60.0, true), base);

  // Schedule *contents* matter, not just the name.
  GridSpec scheduled = grid;
  scheduled.schedules[0].events.add_outage(100.0, 200.0);
  EXPECT_NE(sweep_run_hash(scheduled, 60.0, false), base);
}

// -- Shard dumps --------------------------------------------------------------

class DumpFixture : public ::testing::Test {
 protected:
  fs::path tmp_{::testing::TempDir()};

  ShardDumpHeader header(std::size_t index = 1, std::size_t count = 1) {
    ShardDumpHeader h;
    h.run_hash = 0x1234abcd5678ef00ULL;
    h.shard = ShardSpec{index, count};
    h.scenario_total = 2;
    h.duration = 720.0;
    h.master_seed = 42;
    h.estimator_labels = {"robust", "offline"};
    return h;
  }
};

TEST_F(DumpFixture, WriteReadRoundTrip) {
  const fs::path path = tmp_ / "round_trip.dump";
  std::vector<ScenarioResult> cells;
  for (std::size_t s = 0; s < 2; ++s) {
    for (const char* label : {"robust", "offline"}) {
      ScenarioResult r = gnarly_result();
      r.scenario_index = s;
      r.estimator = harness::EstimatorSpec{label, {}};
      cells.push_back(r);
    }
  }
  ShardDumpWriter writer(path.string(), header(), cells.size());
  writer.write_cells(cells);

  const ShardDump dump = read_shard_dump(path.string());
  EXPECT_EQ(dump.header, header());
  ASSERT_EQ(dump.results.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_results_identical(dump.results[i], cells[i]);
  }
}

TEST_F(DumpFixture, HeaderIsWrittenBeforeCells) {
  // The fail-fast contract: the file exists (with its header) right after
  // construction, before any scenario has produced results.
  const fs::path path = tmp_ / "early_header.dump";
  ShardDumpWriter writer(path.string(), header(), 0);
  const std::string content = read_file(path);
  EXPECT_NE(content.find("tscclock-sweep-results 3"), std::string::npos);
  // ... but without cells + end marker it is refused as incomplete.
  EXPECT_THROW(read_shard_dump(path.string()), ResultIoError);
  writer.write_cells({});
  EXPECT_EQ(read_shard_dump(path.string()).results.size(), 0u);
}

TEST_F(DumpFixture, RejectsVersionSkewNamingBothVersions) {
  const fs::path path = tmp_ / "skew.dump";
  ShardDumpWriter writer(path.string(), header(), 0);
  writer.write_cells({});
  std::string content = read_file(path);
  const std::string old_line = "tscclock-sweep-results 3";
  content.replace(content.find(old_line), old_line.size(),
                  "tscclock-sweep-results 4");
  write_file(path, content);
  try {
    read_shard_dump(path.string());
    FAIL() << "expected ResultIoError";
  } catch (const ResultIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 4"), std::string::npos) << what;
    EXPECT_NE(what.find("version 3"), std::string::npos) << what;
  }
}

TEST_F(DumpFixture, RejectsTruncatedDump) {
  const fs::path path = tmp_ / "truncated.dump";
  ScenarioResult r = gnarly_result();
  r.scenario_index = 0;
  r.estimator = harness::EstimatorSpec{"robust", {}};
  ScenarioResult r2 = r;
  r2.estimator = harness::EstimatorSpec{"offline", {}};
  ShardDumpWriter writer(path.string(), header(), 2);
  writer.write_cells(std::vector<ScenarioResult>{r, r2});
  const std::string content = read_file(path);
  // Drop the end marker; then also drop half a cell line.
  write_file(path, content.substr(0, content.size() - 4));
  EXPECT_THROW(read_shard_dump(path.string()), ResultIoError);
  write_file(path, content.substr(0, content.size() / 2));
  EXPECT_THROW(read_shard_dump(path.string()), ResultIoError);
}

TEST_F(DumpFixture, MergeRejectsInconsistentSets) {
  // Build two valid shards of a 2-scenario, 2-lane run.
  std::vector<ShardDump> dumps(2);
  for (std::size_t i = 0; i < 2; ++i) {
    dumps[i].header = header(i + 1, 2);
    for (const char* label : {"robust", "offline"}) {
      ScenarioResult r = gnarly_result();
      r.scenario_index = i;  // shard 1 owns scenario 0, shard 2 scenario 1
      r.estimator = harness::EstimatorSpec{label, {}};
      dumps[i].results.push_back(r);
    }
  }
  // The consistent set merges.
  EXPECT_EQ(merge_shard_dumps(dumps).results.size(), 4u);

  // Missing shard.
  EXPECT_THROW(merge_shard_dumps({dumps[0]}), ResultIoError);
  // Duplicate shard index.
  EXPECT_THROW(merge_shard_dumps({dumps[0], dumps[0]}), ResultIoError);
  // Fingerprint skew.
  {
    auto skewed = dumps;
    skewed[1].header.run_hash ^= 1;
    EXPECT_THROW(merge_shard_dumps(skewed), ResultIoError);
  }
  // Disagreeing estimator axes despite equal fingerprints.
  {
    auto skewed = dumps;
    skewed[1].header.estimator_labels = {"robust", "naive"};
    EXPECT_THROW(merge_shard_dumps(skewed), ResultIoError);
  }
  // Wrong cell count for the shard's slice.
  {
    auto skewed = dumps;
    skewed[1].results.pop_back();
    EXPECT_THROW(merge_shard_dumps(skewed), ResultIoError);
  }
  // A cell claiming a scenario the shard does not own.
  {
    auto skewed = dumps;
    skewed[1].results[0].scenario_index = 0;
    EXPECT_THROW(merge_shard_dumps(skewed), ResultIoError);
  }
  EXPECT_THROW(merge_shard_dumps({}), ResultIoError);
}

// -- Golden merge + checkpoint resume over a real mixed grid ------------------

/// Small but real mixed online+replay grid: 6 scenarios (3 servers x 2
/// environments) x 2 lanes, 12 simulated minutes each — heavy enough that
/// cells have data, light enough for tier-1.
GridSpec golden_grid() {
  GridSpec grid;
  grid.poll_periods = {16.0};
  grid.duration = 0.2 * duration::kHour;
  grid.estimators = {harness::EstimatorSpec{"robust", {}},
                     harness::EstimatorSpec{"offline", {}}};
  return grid;
}

SweepOptions golden_options() {
  SweepOptions options;
  options.discard_warmup = 120.0;
  options.threads = 2;
  return options;
}

std::string report_text(const std::vector<ScenarioResult>& results) {
  std::ostringstream os;
  print_sweep_report(os, results);
  return os.str();
}

class GoldenFixture : public ::testing::Test {
 protected:
  fs::path tmp_{::testing::TempDir()};
};

TEST_F(GoldenFixture, ThreeShardSplitMergesByteIdentical) {
  const GridSpec grid = golden_grid();
  ScenarioSweep engine(grid);
  ASSERT_EQ(engine.scenarios().size(), 6u);

  // Single-process reference: report text + trace CSV bytes.
  SweepOptions single = golden_options();
  single.csv_path = (tmp_ / "golden_single.csv").string();
  const auto reference = engine.run(single);
  ASSERT_TRUE(engine.csv_error().empty()) << engine.csv_error();
  const std::string reference_report = report_text(reference);
  const std::string reference_csv = read_file(single.csv_path);

  // 3-shard split, each with a result dump and its own trace file.
  std::vector<ShardDump> dumps;
  std::vector<std::string> traces;
  for (std::size_t i = 1; i <= 3; ++i) {
    SweepOptions options = golden_options();
    options.shard = ShardSpec{i, 3};
    options.csv_path =
        (tmp_ / ("golden_shard" + std::to_string(i) + ".csv")).string();
    options.dump_path =
        (tmp_ / ("golden_shard" + std::to_string(i) + ".dump")).string();
    const auto shard_results = engine.run(options);
    ASSERT_TRUE(engine.csv_error().empty()) << engine.csv_error();
    ASSERT_TRUE(engine.dump_error().empty()) << engine.dump_error();
    EXPECT_EQ(shard_results.size(), 2u * 2u);  // 2 scenarios x 2 lanes
    dumps.push_back(read_shard_dump(options.dump_path));
    traces.push_back(options.csv_path);
  }

  const MergedSweep merged = merge_shard_dumps(dumps);
  ASSERT_EQ(merged.results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_results_identical(merged.results[i], reference[i]);
  }
  // Byte-identical comparison tables and aggregates...
  EXPECT_EQ(report_text(merged.results), reference_report);
  // ... and byte-identical re-interleaved trace CSV.
  const fs::path merged_csv = tmp_ / "golden_merged.csv";
  merge_trace_csv(merged, dumps, traces, merged_csv.string());
  EXPECT_EQ(read_file(merged_csv), reference_csv);
}

TEST_F(GoldenFixture, ResumeAfterTruncatedCheckpointIsByteIdentical) {
  const GridSpec grid = golden_grid();
  ScenarioSweep engine(grid);

  // Uninterrupted checkpointed run: the reference artifacts.
  SweepOptions options = golden_options();
  options.threads = 1;  // grid-order completion → every scenario committed
  options.csv_path = (tmp_ / "resume.csv").string();
  options.checkpoint_path = (tmp_ / "resume.ck").string();
  fs::remove(options.checkpoint_path);  // TempDir() persists across runs
  const auto reference = engine.run(options);
  ASSERT_TRUE(engine.csv_error().empty()) << engine.csv_error();
  ASSERT_TRUE(engine.checkpoint_error().empty()) << engine.checkpoint_error();
  const std::string full_ck = read_file(options.checkpoint_path);
  const std::string full_csv = read_file(options.csv_path);

  // Simulate a kill mid-write: keep ~60% of the checkpoint, cutting inside
  // a record, and leave the CSV ahead of the surviving watermark (the
  // in-flight scenario's rows were already flushed when the run died).
  write_file(options.checkpoint_path, full_ck.substr(0, full_ck.size() * 3 / 5));

  const auto resumed = engine.run(options);
  ASSERT_TRUE(engine.csv_error().empty()) << engine.csv_error();
  ASSERT_TRUE(engine.checkpoint_error().empty()) << engine.checkpoint_error();
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_results_identical(resumed[i], reference[i]);
  }
  EXPECT_EQ(report_text(resumed), report_text(reference));
  EXPECT_EQ(read_file(options.checkpoint_path), full_ck);
  EXPECT_EQ(read_file(options.csv_path), full_csv);
}

// -- Checkpoint validation ----------------------------------------------------

class CheckpointFixture : public ::testing::Test {
 protected:
  fs::path tmp_{::testing::TempDir()};
  GridSpec grid_ = golden_grid();
  ScenarioSweep engine_{grid_};
  SweepOptions options_ = golden_options();

  CheckpointFixture() {
    options_.threads = 1;
    options_.checkpoint_path = (tmp_ / "ck_fixture.ck").string();
    // TempDir() is one shared directory; never resume a previous test's file.
    fs::remove(options_.checkpoint_path);
  }

  CheckpointHeader expected_header(bool with_csv = false) {
    CheckpointHeader h;
    h.run_hash = sweep_run_hash(grid_, options_.discard_warmup,
                                options_.streaming_reduction);
    h.shard = options_.shard;
    h.with_csv = with_csv;
    return h;
  }

  std::vector<std::string> labels() {
    return {"robust", "offline"};
  }
};

TEST_F(CheckpointFixture, TornTrailingRecordIsDiscardedAndRecomputed) {
  const auto reference = engine_.run(options_);
  const std::string full = read_file(options_.checkpoint_path);

  // Cut inside the final scenario's records: the loader must keep the
  // longest valid committed prefix and flag the discarded tail.
  const std::string torn = full.substr(0, full.size() - full.size() / 6);
  write_file(options_.checkpoint_path, torn);
  const std::vector<std::string> lanes = labels();
  const CheckpointLoad load =
      load_checkpoint(options_.checkpoint_path, expected_header(),
                      engine_.scenarios(), lanes);
  EXPECT_TRUE(load.discarded_tail);
  EXPECT_LT(load.committed_scenarios, engine_.scenarios().size());
  EXPECT_EQ(load.results.size(), load.committed_scenarios * lanes.size());
  EXPECT_LE(load.valid_bytes, torn.size());
  // The committed prefix carries the exact reference cells.
  for (std::size_t i = 0; i < load.results.size(); ++i) {
    expect_results_identical(load.results[i], reference[i]);
  }

  // Resuming recomputes the discarded cell(s) to the identical bytes.
  engine_.run(options_);
  EXPECT_EQ(read_file(options_.checkpoint_path), full);
}

TEST_F(CheckpointFixture, CorruptedMidFileRecordEndsTheCommittedPrefix) {
  engine_.run(options_);
  std::string content = read_file(options_.checkpoint_path);
  // Flip a digit inside the *first* done record's scenario index: every
  // later record is unreachable (corruption is never skipped over).
  const std::size_t done = content.find("done\t");
  ASSERT_NE(done, std::string::npos);
  content[done + 5] = '9';
  write_file(options_.checkpoint_path, content);
  const std::vector<std::string> lanes = labels();
  const CheckpointLoad load =
      load_checkpoint(options_.checkpoint_path, expected_header(),
                      engine_.scenarios(), lanes);
  EXPECT_EQ(load.committed_scenarios, 0u);
  EXPECT_TRUE(load.discarded_tail);
}

TEST_F(CheckpointFixture, FingerprintMismatchIsAPreciseUsageError) {
  engine_.run(options_);
  CheckpointHeader other = expected_header();
  other.run_hash ^= 0xff;
  try {
    load_checkpoint(options_.checkpoint_path, other, engine_.scenarios(),
                    labels());
    FAIL() << "expected SweepUsageError";
  } catch (const SweepUsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("different sweep invocation"), std::string::npos)
        << what;
    EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
  }
}

TEST_F(CheckpointFixture, ShardAndCsvMismatchesAreUsageErrors) {
  engine_.run(options_);
  CheckpointHeader wrong_shard = expected_header();
  wrong_shard.shard = ShardSpec{2, 3};
  EXPECT_THROW(load_checkpoint(options_.checkpoint_path, wrong_shard,
                               engine_.scenarios(), labels()),
               SweepUsageError);
  EXPECT_THROW(load_checkpoint(options_.checkpoint_path,
                               expected_header(/*with_csv=*/true),
                               engine_.scenarios(), labels()),
               SweepUsageError);
}

TEST_F(CheckpointFixture, RunRefusesIncompatibleCheckpointBeforeAnyWork) {
  engine_.run(options_);
  // Same checkpoint file, different master seed: the resume must be
  // refused as a usage error before any scenario runs.
  GridSpec reseeded = grid_;
  reseeded.master_seed = 43;
  ScenarioSweep other(reseeded);
  EXPECT_THROW(other.run(options_), SweepUsageError);
}

TEST_F(CheckpointFixture, FailedCellInCheckpointPropagatesOnResume) {
  // Hand-write a checkpoint whose first committed scenario FAILED, then
  // resume: the loaded FAILED cell must flow into the results (and from
  // there into the CLI's non-zero exit), not be silently dropped.
  const auto& scenario = engine_.scenarios().front();
  std::vector<ScenarioResult> cells;
  for (const char* label : {"robust", "offline"}) {
    ScenarioResult r;
    r.scenario_index = scenario.index;
    r.name = scenario.name;
    r.seed = scenario.config.seed;
    r.server = scenario.config.server;
    r.environment = scenario.config.environment;
    r.estimator = harness::EstimatorSpec{label, {}};
    r.failed = true;
    r.error = "injected failure";
    cells.push_back(r);
  }
  {
    CheckpointWriter writer(options_.checkpoint_path, expected_header());
    writer.record_scenario(cells, scenario.index, 0);
    writer.close();
  }
  const auto results = engine_.run(options_);
  ASSERT_EQ(results.size(), engine_.scenarios().size() * 2);
  EXPECT_TRUE(results[0].failed);
  EXPECT_EQ(results[0].error, "injected failure");
  EXPECT_TRUE(results[1].failed);
  // The rest of the grid still ran.
  EXPECT_FALSE(results[2].failed);
}

}  // namespace
}  // namespace tscclock::sweep
