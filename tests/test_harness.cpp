// Tests for the unified drive layer (harness::ClockSession + sinks).
//
// The load-bearing guarantees:
//   * golden equivalence — driving a fixed-seed scenario through the harness
//     is bit-identical to the pre-refactor hand-rolled loops (the legacy
//     bench and sweep drive loops are preserved below as reference
//     implementations), including a server-switch + outage schedule;
//   * the two warm-up policies cut on their documented timebases;
//   * each sink sees exactly the records the session emits.
#include "harness/session.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/server_change.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"
#include "sweep/sweep.hpp"

namespace tscclock::harness {
namespace {

/// One-hour MR-Int scenario with the §6 robustness events the golden tests
/// exercise: a mid-trace outage and two server switches.
sim::ScenarioConfig stress_scenario() {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = duration::kHour;
  scenario.seed = 987654321;
  scenario.events.add_outage(1200.0, 1500.0);
  scenario.server_switches = {{1800.0, sim::ServerKind::kLoc},
                              {2700.0, sim::ServerKind::kExt}};
  return scenario;
}

sim::ScenarioConfig plain_scenario(std::uint64_t seed = 24680) {
  sim::ScenarioConfig scenario;
  scenario.poll_period = 16.0;
  scenario.duration = duration::kHour;
  scenario.seed = seed;
  return scenario;
}

core::Params params_for(const sim::ScenarioConfig& scenario) {
  return core::Params::for_poll_period(scenario.poll_period);
}

// -- Golden equivalence: the legacy figure-bench drive loop ----------------

/// The pre-refactor bench::run_clock loop (bench/support.cpp before the
/// harness migration), verbatim: no server-change forwarding, warm-up cut
/// on ground truth. Collects the same per-point fields as SampleRecord.
struct LegacyBenchResult {
  std::vector<SampleRecord> points;
  core::ClockStatus final_status;
  std::size_t exchanges = 0;
  std::size_t lost = 0;
};

LegacyBenchResult legacy_run_clock(sim::Testbed& testbed,
                                   const core::Params& params,
                                   Seconds discard_warmup_s) {
  LegacyBenchResult result;
  core::TscNtpClock clock(params, testbed.nominal_period());
  while (auto ex = testbed.next()) {
    ++result.exchanges;
    if (ex->lost) {
      ++result.lost;
      continue;
    }
    core::RawExchange raw{ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                          ex->tf_counts};
    const auto report = clock.process_exchange(raw);
    if (!ex->ref_available) continue;
    if (ex->truth.tb < discard_warmup_s) continue;

    SampleRecord pt;
    pt.t_day = ex->tb_stamp / duration::kDay;
    pt.reference_offset = clock.uncorrected_time(ex->tf_counts) - ex->tg;
    pt.report = report;
    pt.offset_error = report.offset_estimate - pt.reference_offset;
    pt.naive_error = report.naive_offset - pt.reference_offset;
    pt.abs_clock_error = clock.absolute_time(ex->tf_counts) - ex->tg;
    result.points.push_back(pt);
  }
  result.final_status = clock.status();
  return result;
}

TEST(ClockSessionGolden, BitIdenticalToLegacyBenchLoop) {
  const auto scenario = plain_scenario();
  const auto params = params_for(scenario);
  const Seconds warmup = 20 * duration::kMinute;

  sim::Testbed legacy_testbed(scenario);
  const auto legacy = legacy_run_clock(legacy_testbed, params, warmup);

  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params;
  config.discard_warmup = warmup;
  config.warmup_policy = WarmupPolicy::kGroundTruth;
  ClockSession session(config, testbed.nominal_period());
  CollectorSink collector;
  session.add_sink(collector);
  const auto& summary = session.run(testbed);

  EXPECT_EQ(summary.exchanges, legacy.exchanges);
  EXPECT_EQ(summary.lost, legacy.lost);
  ASSERT_EQ(collector.records().size(), legacy.points.size());
  for (std::size_t i = 0; i < legacy.points.size(); ++i) {
    const auto& a = collector.records()[i];
    const auto& b = legacy.points[i];
    // Bit-level double equality: the migration must not perturb a ULP.
    EXPECT_EQ(a.t_day, b.t_day) << i;
    EXPECT_EQ(a.reference_offset, b.reference_offset) << i;
    EXPECT_EQ(a.offset_error, b.offset_error) << i;
    EXPECT_EQ(a.naive_error, b.naive_error) << i;
    EXPECT_EQ(a.abs_clock_error, b.abs_clock_error) << i;
    EXPECT_EQ(a.report.point_error, b.report.point_error) << i;
    EXPECT_EQ(a.report.offset_estimate, b.report.offset_estimate) << i;
    EXPECT_EQ(a.report.sanity_triggered, b.report.sanity_triggered) << i;
  }
  EXPECT_EQ(summary.final_status.packets_processed,
            legacy.final_status.packets_processed);
  EXPECT_EQ(summary.final_status.period, legacy.final_status.period);
  EXPECT_EQ(summary.final_status.offset, legacy.final_status.offset);
  EXPECT_EQ(summary.final_status.upshifts, legacy.final_status.upshifts);
}

TEST(ClockSessionGolden, ServerChangesNowReachFigureBenchConsumers) {
  // The pre-refactor figure benches never forwarded server changes — the
  // divergence this layer exists to remove. On a switching schedule the
  // harness-driven session must register every switch.
  const auto scenario = stress_scenario();
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.warmup_policy = WarmupPolicy::kGroundTruth;
  ClockSession session(config, testbed.nominal_period());
  const auto& summary = session.run(testbed);
  EXPECT_EQ(summary.final_status.server_changes, 2u);
}

// -- Golden equivalence: the legacy sweep drive loop -----------------------

/// The pre-refactor sweep::run_scenario loop (src/sweep/sweep.cpp before the
/// harness migration), verbatim: server changes forwarded, warm-up cut on
/// the observable tb_stamp. Reduction fields are compared through the public
/// ScenarioResult produced by today's implementation.
struct LegacySweepSeries {
  std::size_t exchanges = 0;
  std::size_t lost = 0;
  std::size_t evaluated = 0;
  std::vector<double> times;
  std::vector<double> clock_errors;
  std::vector<double> offset_errors;
  core::ClockStatus final_status;
};

LegacySweepSeries legacy_run_sweep_scenario(const sim::ScenarioConfig& config,
                                            Seconds discard_warmup) {
  LegacySweepSeries out;
  sim::Testbed testbed(config);
  const core::Params params =
      core::Params::for_poll_period(config.poll_period);
  core::TscNtpClock clock(params, testbed.nominal_period());
  core::ServerChangeDetector server_changes;
  while (auto ex = testbed.next()) {
    ++out.exchanges;
    if (ex->lost) {
      ++out.lost;
      continue;
    }
    if (server_changes.observe(
            core::ServerIdentity{ex->server_id, ex->server_stratum},
            ex->index)) {
      clock.notify_server_change();
    }
    const core::RawExchange raw{ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                                ex->tf_counts};
    const auto report = clock.process_exchange(raw);
    if (!ex->ref_available) continue;
    if (ex->tb_stamp < discard_warmup) continue;
    ++out.evaluated;
    const Seconds reference_offset =
        clock.uncorrected_time(ex->tf_counts) - ex->tg;
    out.times.push_back(ex->tb_stamp);
    out.clock_errors.push_back(clock.absolute_time(ex->tf_counts) - ex->tg);
    out.offset_errors.push_back(report.offset_estimate - reference_offset);
  }
  out.final_status = clock.status();
  return out;
}

TEST(ClockSessionGolden, BitIdenticalToLegacySweepLoop) {
  sweep::GridSpec grid;
  grid.servers = {sim::ServerKind::kInt};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0};
  grid.duration = duration::kHour;
  grid.master_seed = 1357;
  sweep::ScheduleVariant stress;
  stress.name = "stress";
  stress.events.add_outage(1200.0, 1500.0);
  stress.server_switches = {{1800.0, sim::ServerKind::kLoc},
                            {2700.0, sim::ServerKind::kExt}};
  grid.schedules = {stress};
  const auto scenarios = sweep::expand_grid(grid);
  ASSERT_EQ(scenarios.size(), 1u);
  const Seconds warmup = 20 * duration::kMinute;

  const auto legacy =
      legacy_run_sweep_scenario(scenarios[0].config, warmup);
  const auto result = sweep::run_scenario(scenarios[0], warmup);

  EXPECT_EQ(result.exchanges, legacy.exchanges);
  EXPECT_EQ(result.lost, legacy.lost);
  EXPECT_EQ(result.evaluated, legacy.evaluated);
  EXPECT_EQ(result.final_status.server_changes,
            legacy.final_status.server_changes);
  EXPECT_EQ(result.final_status.server_changes, 2u);
  EXPECT_EQ(result.final_status.period, legacy.final_status.period);
  EXPECT_EQ(result.final_status.offset, legacy.final_status.offset);

  // The reductions must match a from-scratch reduction of the legacy series
  // bit-for-bit (same summarize(), same ADEV stretch selection).
  ASSERT_FALSE(legacy.clock_errors.empty());
  const auto clock_summary = summarize(legacy.clock_errors);
  const auto offset_summary = summarize(legacy.offset_errors);
  EXPECT_EQ(result.clock_error.mean, clock_summary.mean);
  EXPECT_EQ(result.clock_error.stddev, clock_summary.stddev);
  EXPECT_EQ(result.clock_error.percentiles.p01, clock_summary.percentiles.p01);
  EXPECT_EQ(result.clock_error.percentiles.p50, clock_summary.percentiles.p50);
  EXPECT_EQ(result.clock_error.percentiles.p99, clock_summary.percentiles.p99);
  EXPECT_EQ(result.offset_error.mean, offset_summary.mean);
  EXPECT_EQ(result.offset_error.percentiles.p50,
            offset_summary.percentiles.p50);

  ReducerSink reference_reducer(scenarios[0].config.poll_period);
  {
    SampleRecord rec;
    rec.evaluated = true;
    for (std::size_t i = 0; i < legacy.times.size(); ++i) {
      rec.raw.tb = legacy.times[i];
      rec.abs_clock_error = legacy.clock_errors[i];
      rec.offset_error = legacy.offset_errors[i];
      reference_reducer.on_sample(rec);
    }
  }
  const auto reference = reference_reducer.reduce();
  EXPECT_EQ(result.adev_short_tau, reference.adev_short_tau);
  EXPECT_EQ(result.adev_short, reference.adev_short);
  EXPECT_EQ(result.adev_long_tau, reference.adev_long_tau);
  EXPECT_EQ(result.adev_long, reference.adev_long);
}

// -- Warm-up policies ------------------------------------------------------

TEST(ClockSessionWarmup, PoliciesCutOnTheirDocumentedTimebase) {
  const auto scenario = plain_scenario(111);
  const Seconds cut = 0.5 * scenario.duration;

  // Expected counts replayed from the raw exchange stream.
  std::size_t expect_observable = 0;
  std::size_t expect_truth = 0;
  {
    sim::Testbed testbed(scenario);
    for (const auto& ex : testbed.generate_all()) {
      if (ex.lost || !ex.ref_available) continue;
      if (ex.tb_stamp >= cut) ++expect_observable;
      if (ex.truth.tb >= cut) ++expect_truth;
    }
  }
  ASSERT_GT(expect_observable, 0u);

  const auto run_policy = [&](WarmupPolicy policy) {
    sim::Testbed testbed(scenario);
    SessionConfig config;
    config.params = params_for(scenario);
    config.discard_warmup = cut;
    config.warmup_policy = policy;
    ClockSession session(config, testbed.nominal_period());
    return session.run(testbed).evaluated;
  };
  EXPECT_EQ(run_policy(WarmupPolicy::kObservable), expect_observable);
  EXPECT_EQ(run_policy(WarmupPolicy::kGroundTruth), expect_truth);
}

TEST(ClockSessionWarmup, FullDiscardYieldsNoEvaluatedRecords) {
  const auto scenario = plain_scenario(222);
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = 2 * scenario.duration;
  ClockSession session(config, testbed.nominal_period());
  CollectorSink collector;
  session.add_sink(collector);
  const auto& summary = session.run(testbed);
  EXPECT_EQ(summary.evaluated, 0u);
  EXPECT_TRUE(collector.records().empty());
  EXPECT_GT(summary.exchanges, 0u);
}

// -- Sinks -----------------------------------------------------------------

TEST(Sinks, CollectorAndCallbackSeeTheSameEvaluatedStream) {
  const auto scenario = plain_scenario(333);
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  ClockSession session(config, testbed.nominal_period());
  CollectorSink collector;
  std::size_t callback_count = 0;
  CallbackSink counter([&](const SampleRecord& rec) {
    EXPECT_TRUE(rec.evaluated);
    ++callback_count;
  });
  session.add_sink(collector);
  session.add_sink(counter);
  const auto& summary = session.run(testbed);
  EXPECT_EQ(collector.records().size(), summary.evaluated);
  EXPECT_EQ(callback_count, summary.evaluated);
  EXPECT_GT(summary.evaluated, 0u);
}

TEST(Sinks, EmitUnevaluatedFlagsLostAndWarmupRecords) {
  auto scenario = plain_scenario(444);
  scenario.events.add_outage(1200.0, 1500.0);
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = 600.0;
  config.emit_unevaluated = true;
  ClockSession session(config, testbed.nominal_period());
  CollectorSink collector;
  session.add_sink(collector);
  const auto& summary = session.run(testbed);

  // Every exchange produces exactly one record when emit_unevaluated is on.
  EXPECT_EQ(collector.records().size(), summary.exchanges);
  std::size_t lost = 0;
  std::size_t evaluated = 0;
  std::size_t warmup = 0;
  for (const auto& rec : collector.records()) {
    if (rec.lost) ++lost;
    if (rec.evaluated) ++evaluated;
    if (rec.in_warmup) {
      ++warmup;
      EXPECT_FALSE(rec.evaluated);
    }
  }
  EXPECT_EQ(lost, summary.lost);
  EXPECT_EQ(evaluated, summary.evaluated);
  EXPECT_GT(warmup, 0u);
}

TEST(Sinks, ReducerMatchesSummarizeOfCollectedSeries) {
  const auto scenario = plain_scenario(555);
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = 600.0;
  ClockSession session(config, testbed.nominal_period());
  CollectorSink collector;
  ReducerSink reducer(scenario.poll_period);
  session.add_sink(collector);
  session.add_sink(reducer);
  session.run(testbed);

  std::vector<double> clock_errors;
  std::vector<double> offset_errors;
  for (const auto& rec : collector.records()) {
    clock_errors.push_back(rec.abs_clock_error);
    offset_errors.push_back(rec.offset_error);
  }
  ASSERT_FALSE(clock_errors.empty());
  const auto reduction = reducer.reduce();
  EXPECT_EQ(reduction.evaluated, clock_errors.size());
  const auto clock_summary = summarize(clock_errors);
  const auto offset_summary = summarize(offset_errors);
  EXPECT_EQ(reduction.clock_error.mean, clock_summary.mean);
  EXPECT_EQ(reduction.clock_error.percentiles.p50,
            clock_summary.percentiles.p50);
  EXPECT_EQ(reduction.offset_error.percentiles.p99,
            offset_summary.percentiles.p99);
  // One simulated hour at a 16 s poll supports the short ADEV scale.
  EXPECT_EQ(reduction.adev_short_tau, 16 * scenario.poll_period);
  EXPECT_GT(reduction.adev_short, 0.0);
}

TEST(Sinks, ReducerOfEmptyStreamIsZeroInitialized) {
  ReducerSink reducer(16.0);
  const auto reduction = reducer.reduce();
  EXPECT_EQ(reduction.evaluated, 0u);
  EXPECT_EQ(reduction.clock_error.count, 0u);
  EXPECT_EQ(reduction.adev_short, 0.0);
  EXPECT_EQ(reduction.adev_long, 0.0);
}

TEST(Sinks, CsvTraceSinkWritesHeaderAndOneRowPerRecord) {
  const std::string path = "test_harness_trace.csv";
  auto scenario = plain_scenario(666);
  scenario.duration = 20 * duration::kMinute;
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.emit_unevaluated = true;
  ClockSession session(config, testbed.nominal_period());
  {
    CsvTraceSink csv(path);
    csv.set_scenario("unit-test");
    session.add_sink(csv);
    const auto& summary = session.run(testbed);
    EXPECT_EQ(csv.rows_written(), summary.exchanges);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("scenario"), std::string::npos);
  EXPECT_NE(header.find("offset_error"), std::string::npos);
  EXPECT_NE(header.find("abs_clock_error"), std::string::npos);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      ++rows;
      EXPECT_EQ(line.substr(0, line.find(',')), "unit-test");
    }
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_GT(rows, 0u);
}

// -- Streaming reduction (O(1)-memory ReducerSink replacement) -------------

TEST(Sinks, StreamingReducerMatchesExactReducerOnLongTrace) {
  // Several hours with an outage: exercises the gap-split stretch selection
  // inside the ADEV reduction as well as the P² percentile sketch.
  auto scenario = plain_scenario(31337);
  scenario.duration = 8 * duration::kHour;
  scenario.events.add_outage(4 * duration::kHour, 4.5 * duration::kHour);
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = duration::kHour;
  ClockSession session(config, testbed.nominal_period());
  ReducerSink exact(scenario.poll_period);
  StreamingReducerSink streaming(scenario.poll_period);
  session.add_sink(exact);
  session.add_sink(streaming);
  session.run(testbed);

  const auto a = exact.reduce();
  const auto b = streaming.reduce();
  ASSERT_GT(a.evaluated, 1000u);
  EXPECT_EQ(a.evaluated, b.evaluated);

  // Exact-by-construction fields: same arithmetic in the same order.
  EXPECT_EQ(a.clock_error.count, b.clock_error.count);
  EXPECT_EQ(a.clock_error.mean, b.clock_error.mean);
  EXPECT_EQ(a.clock_error.stddev, b.clock_error.stddev);
  EXPECT_EQ(a.clock_error.min, b.clock_error.min);
  EXPECT_EQ(a.clock_error.max, b.clock_error.max);
  EXPECT_EQ(a.offset_error.mean, b.offset_error.mean);
  EXPECT_EQ(a.offset_error.stddev, b.offset_error.stddev);
  EXPECT_EQ(a.adev_short_tau, b.adev_short_tau);
  EXPECT_EQ(a.adev_long_tau, b.adev_long_tau);
  // The streaming ADEV replicates stretch selection, resampling and the
  // accumulation order of the buffered pipeline exactly.
  EXPECT_EQ(a.adev_short, b.adev_short);
  EXPECT_EQ(a.adev_long, b.adev_long);
  ASSERT_GT(a.adev_short, 0.0);
  ASSERT_GT(a.adev_long, 0.0);

  // P² percentiles: approximate, bounded by a fraction of the spread.
  const double clock_scale = a.clock_error.max - a.clock_error.min;
  ASSERT_GT(clock_scale, 0.0);
  EXPECT_NEAR(a.clock_error.percentiles.p50, b.clock_error.percentiles.p50,
              0.10 * clock_scale);
  EXPECT_NEAR(a.clock_error.percentiles.p25, b.clock_error.percentiles.p25,
              0.10 * clock_scale);
  EXPECT_NEAR(a.clock_error.percentiles.p75, b.clock_error.percentiles.p75,
              0.10 * clock_scale);
  EXPECT_NEAR(a.clock_error.percentiles.p99, b.clock_error.percentiles.p99,
              0.20 * clock_scale);
  const double offset_scale = a.offset_error.max - a.offset_error.min;
  EXPECT_NEAR(a.offset_error.percentiles.p50, b.offset_error.percentiles.p50,
              0.10 * offset_scale);
}

TEST(Sinks, StreamingReducerOfEmptyStreamIsZeroInitialized) {
  StreamingReducerSink reducer(16.0);
  const auto reduction = reducer.reduce();
  EXPECT_EQ(reduction.evaluated, 0u);
  EXPECT_EQ(reduction.clock_error.count, 0u);
  EXPECT_EQ(reduction.adev_short, 0.0);
  EXPECT_EQ(reduction.adev_long, 0.0);
}

// -- Sweep CSV dump (the --csv satellite, via the library API) -------------

TEST(SweepCsv, DumpWritesScenarioLabelledRowsInGridOrder) {
  sweep::GridSpec grid;
  grid.servers = {sim::ServerKind::kLoc, sim::ServerKind::kInt};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0};
  grid.duration = 20 * duration::kMinute;
  grid.master_seed = 2468;
  sweep::ScenarioSweep engine(grid);
  sweep::SweepOptions options;
  options.threads = 2;
  options.discard_warmup = 300.0;
  options.csv_path = "test_harness_sweep_trace.csv";
  const auto results = engine.run(options);
  ASSERT_EQ(results.size(), 2u);

  std::ifstream in(options.csv_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::string> scenario_column;
  while (std::getline(in, line)) {
    if (!line.empty()) scenario_column.push_back(line.substr(0, line.find(',')));
  }
  in.close();
  std::remove(options.csv_path.c_str());

  // One row per exchange of each scenario, grouped in grid order.
  std::size_t expected = 0;
  for (const auto& r : results) expected += r.exchanges;
  EXPECT_EQ(scenario_column.size(), expected);
  EXPECT_EQ(scenario_column.front(), engine.scenarios()[0].name);
  EXPECT_EQ(scenario_column.back(), engine.scenarios()[1].name);
  // Rows of the two scenarios must not interleave.
  std::size_t transitions = 0;
  for (std::size_t i = 1; i < scenario_column.size(); ++i)
    if (scenario_column[i] != scenario_column[i - 1]) ++transitions;
  EXPECT_EQ(transitions, 1u);
}

}  // namespace
}  // namespace tscclock::harness
