// Tests for the bounded FIFO used by all windowed estimators.
#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tscclock {
namespace {

TEST(RingBuffer, PushAndIndex) {
  RingBuffer<int> rb(3);
  rb.push_back(1);
  rb.push_back(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb[0], 1);
  EXPECT_EQ(rb[1], 2);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 2);
}

TEST(RingBuffer, EvictsOldestAtCapacity) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, UnboundedWhenCapacityZero) {
  RingBuffer<int> rb(0);
  for (int i = 0; i < 1000; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 1000u);
  EXPECT_EQ(rb.front(), 0);
}

TEST(RingBuffer, DropFront) {
  RingBuffer<int> rb(0);
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  rb.drop_front(4);
  EXPECT_EQ(rb.size(), 6u);
  EXPECT_EQ(rb.front(), 4);
  rb.drop_front(100);  // more than size clears
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PopFront) {
  RingBuffer<int> rb(2);
  rb.push_back(1);
  rb.push_back(2);
  rb.pop_front();
  EXPECT_EQ(rb.front(), 2);
}

TEST(RingBuffer, ContractsOnEmptyAccess) {
  RingBuffer<int> rb(2);
  EXPECT_THROW((void)rb.front(), ContractViolation);
  EXPECT_THROW((void)rb.back(), ContractViolation);
  EXPECT_THROW(rb.pop_front(), ContractViolation);
  EXPECT_THROW((void)rb[0], ContractViolation);
}

TEST(RingBuffer, IterationInOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 6; ++i) rb.push_back(i);  // holds 3..6
  int expected = 3;
  for (int v : rb) EXPECT_EQ(v, expected++);
}

TEST(RingBuffer, MutableAccess) {
  RingBuffer<std::string> rb(2);
  rb.push_back("a");
  rb[0] = "b";
  EXPECT_EQ(rb.front(), "b");
  rb.back() = "c";
  EXPECT_EQ(rb[0], "c");
}

TEST(RingBuffer, ClearEmpties) {
  RingBuffer<int> rb(2);
  rb.push_back(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

}  // namespace
}  // namespace tscclock
