// Tests for parameter defaults (they must equal the paper's values) and
// validation.
#include "core/params.hpp"

#include <gtest/gtest.h>

namespace tscclock::core {
namespace {

TEST(Params, PaperDefaults) {
  const Params p;
  EXPECT_DOUBLE_EQ(p.delta, 15e-6);                      // δ = 15 µs
  EXPECT_DOUBLE_EQ(p.rate_accept_error, 20 * 15e-6);     // E* = 20δ
  EXPECT_DOUBLE_EQ(p.skm_scale, 1000.0);                 // τ*
  EXPECT_DOUBLE_EQ(p.local_rate_window, 5000.0);         // τ̄ = 5τ*
  EXPECT_EQ(p.local_rate_subwindows, 30u);               // W
  EXPECT_DOUBLE_EQ(p.local_rate_quality, 0.05e-6);       // γ*
  EXPECT_DOUBLE_EQ(p.rate_sanity_threshold, 3e-7);
  EXPECT_DOUBLE_EQ(p.offset_window, 1000.0);             // τ' = τ*
  EXPECT_DOUBLE_EQ(p.offset_quality, 60e-6);             // E = 4δ
  EXPECT_DOUBLE_EQ(p.aging_rate, 0.02e-6);               // ε
  EXPECT_DOUBLE_EQ(p.extreme_quality(), 6 * 60e-6);      // E** = 6E
  EXPECT_DOUBLE_EQ(p.offset_sanity, 1e-3);               // Es
  EXPECT_DOUBLE_EQ(p.shift_window, 2500.0);              // Ts = τ̄/2
  EXPECT_DOUBLE_EQ(p.shift_detect_factor, 4.0);          // 4E
  EXPECT_DOUBLE_EQ(p.top_window, 7 * 86400.0);           // T = 1 week
  EXPECT_DOUBLE_EQ(p.rate_error_bound, 0.1e-6);          // 0.1 PPM
  EXPECT_DOUBLE_EQ(p.gap_threshold, 2500.0);             // τ̄/2
}

TEST(Params, PacketsConversion) {
  Params p;
  p.poll_period = 16.0;
  EXPECT_EQ(p.packets(1000.0), 62u);
  EXPECT_EQ(p.packets(16.0), 1u);
  EXPECT_EQ(p.packets(1.0), 1u);  // never zero
  p.poll_period = 256.0;
  EXPECT_EQ(p.packets(1000.0), 3u);
}

TEST(Params, ForPollPeriodKeepsTimeWindows) {
  const auto p = Params::for_poll_period(64.0);
  EXPECT_DOUBLE_EQ(p.poll_period, 64.0);
  EXPECT_DOUBLE_EQ(p.offset_window, 1000.0);  // unchanged in *time*
  EXPECT_EQ(p.packets(p.offset_window), 15u);
}

TEST(Params, ValidationCatchesNonsense) {
  Params p;
  p.delta = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = Params{};
  p.local_rate_subwindows = 2;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = Params{};
  p.extreme_quality_factor = 1.0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = Params{};
  p.top_window = 100.0;  // smaller than τ̄
  EXPECT_THROW(p.validate(), ContractViolation);
  p = Params{};
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace tscclock::core
