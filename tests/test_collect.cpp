// The live-collection path (trace/collector.hpp) against the in-process
// loopback SNTP mock (trace/sntp_mock.hpp): a normal collection produces a
// valid relative-only trace, kiss-o'-death aborts, each refusable
// misbehavior is refused without killing the run, and a silent server
// yields lost records. Every test skips (not fails) when the sandbox
// refuses loopback sockets.
#include "trace/collector.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "trace/sntp_mock.hpp"
#include "trace/trace_io.hpp"

namespace tscclock::trace {
namespace {

namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() / ("tscclock_collect_" + name);
}

/// Short timeouts throughout: the mock answers in microseconds, and the
/// refusal paths must wait out the full per-poll deadline.
CollectorOptions loopback_options(const MockSntpServer& server,
                                  std::size_t count) {
  CollectorOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  options.count = count;
  options.interval = 0.001;
  options.timeout = 0.3;
  options.client_id = 9;
  options.label = "mock test";
  return options;
}

#define SKIP_WITHOUT_LOOPBACK(server)                                   \
  if (!(server).ok()) {                                                 \
    GTEST_SKIP() << "loopback UDP socket unavailable in this sandbox";  \
  }

TEST(Collector, NormalCollectionProducesValidRelativeTrace) {
  MockSntpServer server(MockSntpServer::Behavior::kNormal);
  SKIP_WITHOUT_LOOPBACK(server);
  const auto options = loopback_options(server, 6);
  const auto path = temp_path("normal.trace");

  TraceWriter writer(path.string(), collector_meta(options));
  const CollectorReport report = collect(options, writer);
  writer.close(report.attempted);

  EXPECT_EQ(report.attempted, 6u);
  EXPECT_EQ(report.received, 6u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.refused, 0u);
  EXPECT_GE(server.requests_seen(), 6u);

  const ReadTrace loaded = read_trace(path.string());
  EXPECT_EQ(loaded.meta.mode, harness::GroundTruthMode::kRelativeOnly);
  EXPECT_EQ(loaded.meta.nominal_period, collector_nominal_period());
  EXPECT_EQ(loaded.meta.client_id, 9u);
  EXPECT_EQ(loaded.meta.label, "mock test");
  ASSERT_EQ(loaded.trace.samples.size(), 6u);
  for (const auto& sample : loaded.trace.samples) {
    EXPECT_FALSE(sample.lost);
    EXPECT_FALSE(sample.ref_available);
    // The exchange ordering invariants the replay pipeline relies on: the
    // reader would have thrown on non-monotone Ta, so reaching here means
    // the monotonic stamps are sane; Tb/Te are small rebased doubles.
    EXPECT_LT(sample.raw.ta, sample.raw.tf);
    EXPECT_LE(sample.raw.tb, sample.raw.te);
    EXPECT_LT(sample.raw.tb, 3600.0) << "rebasing failed: era-sized stamp";
    EXPECT_GT(sample.raw.tb, -3600.0);
  }
  fs::remove(path);
}

TEST(Collector, KissOfDeathAbortsNamingTheCode) {
  MockSntpServer server(MockSntpServer::Behavior::kKissOfDeath);
  SKIP_WITHOUT_LOOPBACK(server);
  const auto options = loopback_options(server, 4);
  const auto path = temp_path("kod.trace");
  TraceWriter writer(path.string(), collector_meta(options));
  try {
    collect(options, writer);
    FAIL() << "kiss-o'-death must abort the collection";
  } catch (const CollectorError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kiss-o'-death"), std::string::npos) << what;
    EXPECT_NE(what.find("RATE"), std::string::npos) << what;
  }
  fs::remove(path);
}

/// Refusable misbehaviors: the reply is discarded, the poll waits out its
/// deadline and becomes a lost record, and the collection completes.
class CollectorRefusal
    : public ::testing::TestWithParam<MockSntpServer::Behavior> {};

TEST_P(CollectorRefusal, RefusedRepliesBecomeLostRecordsNotCrashes) {
  MockSntpServer server(GetParam());
  SKIP_WITHOUT_LOOPBACK(server);
  const auto options = loopback_options(server, 2);
  const auto path = temp_path("refused.trace");
  TraceWriter writer(path.string(), collector_meta(options));
  const CollectorReport report = collect(options, writer);
  writer.close(report.attempted);

  EXPECT_EQ(report.attempted, 2u);
  EXPECT_EQ(report.received, 0u);
  EXPECT_EQ(report.lost, 2u);
  EXPECT_GE(report.refused, 2u) << "each poll saw at least one bad reply";

  // The lossy trace is still a valid file (gaps are data).
  const ReadTrace loaded = read_trace(path.string());
  EXPECT_EQ(loaded.trace.lost, 2u);
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    Misbehaviors, CollectorRefusal,
    ::testing::Values(MockSntpServer::Behavior::kUnsynchronized,
                      MockSntpServer::Behavior::kZeroTimestamps,
                      MockSntpServer::Behavior::kWrongOrigin,
                      MockSntpServer::Behavior::kTruncated));

TEST(Collector, SilentServerYieldsLostRecords) {
  MockSntpServer server(MockSntpServer::Behavior::kSilent);
  SKIP_WITHOUT_LOOPBACK(server);
  const auto options = loopback_options(server, 2);
  const auto path = temp_path("silent.trace");
  TraceWriter writer(path.string(), collector_meta(options));
  const CollectorReport report = collect(options, writer);
  writer.close(report.attempted);
  EXPECT_EQ(report.attempted, 2u);
  EXPECT_EQ(report.received, 0u);
  EXPECT_EQ(report.lost, 2u);
  EXPECT_EQ(report.refused, 0u);
  fs::remove(path);
}

TEST(Collector, UnresolvableHostAborts) {
  CollectorOptions options;
  options.host = "no-such-host.invalid";
  options.count = 1;
  options.timeout = 0.1;
  const auto path = temp_path("unresolvable.trace");
  TraceWriter writer(path.string(), collector_meta(options));
  EXPECT_THROW(collect(options, writer), CollectorError);
  fs::remove(path);
}

TEST(Collector, MetaDefaultsLabelToHostPort) {
  CollectorOptions options;
  options.host = "pool.example.org";
  options.port = 1234;
  const TraceMeta meta = collector_meta(options);
  EXPECT_EQ(meta.mode, harness::GroundTruthMode::kRelativeOnly);
  EXPECT_EQ(meta.nominal_period, collector_nominal_period());
  EXPECT_NE(meta.label.find("pool.example.org:1234"), std::string::npos)
      << meta.label;
}

}  // namespace
}  // namespace tscclock::trace
