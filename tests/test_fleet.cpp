// Fleet simulation tests: the seed-identity contract (a 1-client fleet is
// bit-identical to the classic single-client Testbed/ClockSession drive),
// merge determinism across thread counts and shard slices, the correlated
// shared-congestion coupling, the bridge-hierarchy warm-up ordering, the
// mixed-client replay rejection, and the fleet(...) spec parser.
#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/estimator.hpp"
#include "harness/fleet_session.hpp"
#include "harness/replay.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sweep/result_io.hpp"
#include "sweep/scenario_grid.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"

namespace tscclock {
namespace {

sim::ScenarioConfig fast_scenario() {
  sim::ScenarioConfig config;
  config.server = sim::ServerKind::kInt;
  config.environment = sim::Environment::kMachineRoom;
  config.poll_period = 16.0;
  config.duration = duration::kHour;
  config.seed = 20040704;
  return config;
}

harness::SessionConfig fast_session_config(const sim::ScenarioConfig& s) {
  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(s.poll_period);
  config.discard_warmup = 10 * duration::kMinute;
  config.warmup_policy = harness::WarmupPolicy::kObservable;
  return config;
}

void expect_exchanges_identical(const sim::Exchange& a, const sim::Exchange& b,
                                std::size_t i) {
  ASSERT_EQ(a.index, b.index) << "exchange " << i;
  ASSERT_EQ(a.lost, b.lost) << "exchange " << i;
  ASSERT_EQ(a.ta_counts, b.ta_counts) << "exchange " << i;
  ASSERT_EQ(a.tf_counts, b.tf_counts) << "exchange " << i;
  ASSERT_EQ(a.tb_stamp, b.tb_stamp) << "exchange " << i;
  ASSERT_EQ(a.te_stamp, b.te_stamp) << "exchange " << i;
  ASSERT_EQ(a.tf_counts_corrected, b.tf_counts_corrected) << "exchange " << i;
  ASSERT_EQ(a.server_id, b.server_id) << "exchange " << i;
  ASSERT_EQ(a.server_stratum, b.server_stratum) << "exchange " << i;
  ASSERT_EQ(a.ref_available, b.ref_available) << "exchange " << i;
  ASSERT_EQ(a.tg, b.tg) << "exchange " << i;
  ASSERT_EQ(a.truth.ta, b.truth.ta) << "exchange " << i;
  ASSERT_EQ(a.truth.tb, b.truth.tb) << "exchange " << i;
  ASSERT_EQ(a.truth.te, b.truth.te) << "exchange " << i;
  ASSERT_EQ(a.truth.tf, b.truth.tf) << "exchange " << i;
  ASSERT_EQ(a.truth.d_forward, b.truth.d_forward) << "exchange " << i;
  ASSERT_EQ(a.truth.d_server, b.truth.d_server) << "exchange " << i;
  ASSERT_EQ(a.truth.d_backward, b.truth.d_backward) << "exchange " << i;
}

// -- Seed-identity contract --------------------------------------------------

TEST(FleetSeeds, ClientZeroKeepsTheBaseSeedVerbatim) {
  EXPECT_EQ(sim::FleetTestbed::client_seed(42, 0), 42u);
  EXPECT_EQ(sim::FleetTestbed::client_seed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(FleetSeeds, ClientSeedsAreDistinctAndIdentityDerived) {
  std::set<std::uint64_t> seeds;
  for (std::size_t k = 0; k < 16; ++k)
    seeds.insert(sim::FleetTestbed::client_seed(42, k));
  EXPECT_EQ(seeds.size(), 16u);
  // Identity-derived: client k's seed does not depend on the fleet size.
  EXPECT_EQ(sim::FleetTestbed::client_seed(42, 3),
            sim::FleetTestbed::client_seed(42, 3));
}

TEST(FleetStream, SingleClientFleetIsBitIdenticalToTestbed) {
  const sim::ScenarioConfig config = fast_scenario();
  sim::Testbed classic(config);
  sim::FleetTestbed fleet(config, sim::FleetConfig{});

  sim::Exchange expected;
  sim::Exchange actual;
  std::uint32_t client = 99;
  std::size_t i = 0;
  while (classic.next_into(expected)) {
    ASSERT_TRUE(fleet.next_into(client, actual)) << "fleet ran dry early";
    ASSERT_EQ(client, 0u);
    expect_exchanges_identical(expected, actual, i++);
  }
  EXPECT_FALSE(fleet.next_into(client, actual)) << "fleet ran long";
  EXPECT_GT(i, 100u);
  EXPECT_EQ(fleet.polls_enumerated(), classic.polls_enumerated());
}

TEST(FleetStream, SingleClientFleetSessionMatchesClockSessionBatched) {
  const sim::ScenarioConfig scenario = fast_scenario();
  const harness::SessionConfig config = fast_session_config(scenario);

  sim::Testbed classic(scenario);
  harness::ClockSession session(config, classic.nominal_period());
  harness::ReducerSink classic_reducer(scenario.poll_period);
  session.add_sink(classic_reducer);
  const harness::SessionSummary classic_summary =
      session.run_batched(classic);

  sim::FleetTestbed fleet(scenario, sim::FleetConfig{});
  harness::FleetSession fleet_session;
  fleet_session.add_client(config,
                           std::make_unique<harness::TscNtpEstimator>(
                               config.params, fleet.client(0).nominal_period()));
  harness::ReducerSink fleet_reducer(scenario.poll_period);
  fleet_session.add_sink(0, fleet_reducer);
  fleet_session.run_batched(fleet);
  const harness::SessionSummary fleet_summary =
      fleet_session.combined_summary();

  EXPECT_EQ(fleet_summary.exchanges, classic_summary.exchanges);
  EXPECT_EQ(fleet_summary.lost, classic_summary.lost);
  EXPECT_EQ(fleet_summary.evaluated, classic_summary.evaluated);
  EXPECT_EQ(fleet_summary.polls_enumerated, classic_summary.polls_enumerated);

  // The reduced statistics must match bit for bit: same chunking, same
  // emission order, same arithmetic.
  const auto classic_reduction = classic_reducer.reduce();
  const auto fleet_reduction = fleet_reducer.reduce();
  EXPECT_EQ(fleet_reduction.evaluated, classic_reduction.evaluated);
  EXPECT_EQ(fleet_reduction.clock_error.mean, classic_reduction.clock_error.mean);
  EXPECT_EQ(fleet_reduction.clock_error.percentiles.p50,
            classic_reduction.clock_error.percentiles.p50);
  EXPECT_EQ(fleet_reduction.clock_error.percentiles.p99,
            classic_reduction.clock_error.percentiles.p99);
  EXPECT_EQ(fleet_reduction.offset_error.stddev,
            classic_reduction.offset_error.stddev);
  EXPECT_EQ(fleet_reduction.adev_short, classic_reduction.adev_short);
  EXPECT_EQ(fleet_reduction.adev_long, classic_reduction.adev_long);
}

TEST(FleetStream, SingleClientSweepCellMatchesPreFleetCell) {
  // The sweep-level pin: a grid whose fleet axis holds only the default
  // spec produces the same names, seeds and serialized results as the
  // pre-fleet sweep path (which a non-fleet GridSpec still runs).
  sweep::GridSpec grid;
  grid.servers = {sim::ServerKind::kInt};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0};
  grid.duration = duration::kHour;
  grid.master_seed = 7;

  sweep::SweepOptions options;
  options.threads = 1;
  options.discard_warmup = 10 * duration::kMinute;
  const auto classic = sweep::ScenarioSweep(grid).run(options);

  sweep::GridSpec with_axis = grid;
  with_axis.fleets = {sweep::FleetSpec{}};
  const auto fleet = sweep::ScenarioSweep(with_axis).run(options);

  ASSERT_EQ(fleet.size(), classic.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(sweep::serialize_result(fleet[i]),
              sweep::serialize_result(classic[i]));
    EXPECT_EQ(fleet[i].clients, 1u);
  }
}

// -- Merge determinism -------------------------------------------------------

TEST(FleetMerge, GenerateBatchMatchesScalarMergeStream) {
  const sim::ScenarioConfig config = fast_scenario();
  sim::FleetConfig topology;
  topology.n_clients = 3;
  sim::FleetTestbed scalar_fleet(config, topology);
  sim::FleetTestbed batched_fleet(config, topology);

  sim::FleetBatch batch;
  sim::Exchange expected;
  sim::Exchange actual;
  std::uint32_t client = 0;
  std::size_t i = 0;
  while (true) {
    const std::size_t n = batched_fleet.generate_batch(batch, 256);
    for (std::size_t row = 0; row < n; ++row) {
      ASSERT_TRUE(scalar_fleet.next_into(client, expected));
      ASSERT_EQ(batch.client_id[row], client) << "row " << i;
      batch.exchanges.materialize(row, actual);
      if (!expected.lost) {
        expect_exchanges_identical(expected, actual, i);
      } else {
        ASSERT_TRUE(actual.lost) << "row " << i;
      }
      ++i;
    }
    if (n < 256) break;
  }
  EXPECT_FALSE(scalar_fleet.next_into(client, expected));
  EXPECT_GT(i, 500u);
}

TEST(FleetMerge, StreamIsOrderedBySendTime) {
  sim::FleetConfig topology;
  topology.n_clients = 4;
  sim::FleetTestbed fleet(fast_scenario(), topology);
  sim::Exchange ex;
  std::uint32_t client = 0;
  double last_ta = -1.0;
  std::set<std::uint32_t> seen;
  while (fleet.next_into(client, ex)) {
    ASSERT_GE(ex.truth.ta, last_ta);
    last_ta = ex.truth.ta;
    seen.insert(client);
  }
  EXPECT_EQ(seen.size(), 4u) << "every client contributes to the merge";
}

sweep::GridSpec fleet_grid() {
  sweep::GridSpec grid;
  grid.servers = {sim::ServerKind::kInt};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0};
  grid.duration = duration::kHour;
  grid.master_seed = 20040704;
  sweep::FleetSpec shared;
  shared.config.n_clients = 3;
  shared.config.shared_congestion = true;
  sweep::FleetSpec chain;
  chain.config.n_clients = 3;
  chain.config.hierarchy = true;
  chain.config.bridge_warmup = 600.0;
  grid.fleets = {sweep::FleetSpec{}, shared, chain};
  return grid;
}

TEST(FleetSweep, BitIdenticalAcrossThreadCounts) {
  const sweep::GridSpec grid = fleet_grid();
  sweep::SweepOptions options;
  options.discard_warmup = 10 * duration::kMinute;
  options.threads = 1;
  const auto reference = sweep::ScenarioSweep(grid).run(options);
  ASSERT_EQ(reference.size(), 3u);
  for (const auto& r : reference) EXPECT_FALSE(r.failed) << r.error;

  options.threads = 4;
  const auto parallel = sweep::ScenarioSweep(grid).run(options);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(sweep::serialize_result(parallel[i]),
              sweep::serialize_result(reference[i]));
  }
}

TEST(FleetSweep, ShardSlicesReassembleTheUnshardedResults) {
  const sweep::GridSpec grid = fleet_grid();
  sweep::SweepOptions options;
  options.discard_warmup = 10 * duration::kMinute;
  options.threads = 2;
  const sweep::ScenarioSweep engine(grid);
  const auto whole = engine.run(options);

  std::vector<std::string> reassembled(whole.size());
  for (std::size_t shard = 1; shard <= 2; ++shard) {
    options.shard = sweep::ShardSpec{shard, 2};
    const auto slice = engine.run(options);
    const auto owned =
        sweep::shard_scenarios(engine.scenarios().size(), options.shard);
    ASSERT_EQ(slice.size(), owned.size());
    for (std::size_t j = 0; j < owned.size(); ++j)
      reassembled[owned[j]] = sweep::serialize_result(slice[j]);
  }
  for (std::size_t i = 0; i < whole.size(); ++i)
    EXPECT_EQ(reassembled[i], sweep::serialize_result(whole[i])) << i;
}

TEST(FleetSweep, QuotedScenarioNamesSurviveTraceCsvMerge) {
  // A fleet label carries a comma, so the scenario name is RFC-4180-quoted
  // in the trace CSV's first column; the merge reader must unquote it to
  // claim the rows (regression: it used to split on the first comma and
  // refuse the whole merge).
  namespace fs = std::filesystem;
  const fs::path tmp = fs::path(testing::TempDir()) / "fleet_trace_merge";
  fs::create_directories(tmp);
  const auto read_file = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };

  sweep::GridSpec grid;
  grid.servers = {sim::ServerKind::kLoc};
  grid.environments = {sim::Environment::kMachineRoom};
  grid.poll_periods = {16.0};
  grid.duration = duration::kHour;
  grid.master_seed = 20040704;
  sweep::FleetSpec shared;
  shared.config.n_clients = 2;
  shared.config.shared_congestion = true;  // label: fleet(n=2,shared_congestion=1)
  grid.fleets = {sweep::FleetSpec{}, shared};
  const sweep::ScenarioSweep engine(grid);

  sweep::SweepOptions single;
  single.threads = 1;
  single.discard_warmup = 10 * duration::kMinute;
  single.csv_path = (tmp / "single.csv").string();
  engine.run(single);
  ASSERT_TRUE(engine.csv_error().empty()) << engine.csv_error();
  const std::string reference_csv = read_file(tmp / "single.csv");
  ASSERT_NE(reference_csv.find("\"ServerLoc"), std::string::npos)
      << "expected a quoted scenario column";

  std::vector<sweep::ShardDump> dumps;
  std::vector<std::string> traces;
  for (std::size_t i = 1; i <= 2; ++i) {
    sweep::SweepOptions options = single;
    options.shard = sweep::ShardSpec{i, 2};
    options.csv_path = (tmp / ("s" + std::to_string(i) + ".csv")).string();
    options.dump_path = (tmp / ("s" + std::to_string(i) + ".dump")).string();
    engine.run(options);
    ASSERT_TRUE(engine.dump_error().empty()) << engine.dump_error();
    dumps.push_back(sweep::read_shard_dump(options.dump_path));
    traces.push_back(options.csv_path);
  }

  const sweep::MergedSweep merged = sweep::merge_shard_dumps(dumps);
  const fs::path merged_csv = tmp / "merged.csv";
  sweep::merge_trace_csv(merged, dumps, traces, merged_csv.string());
  EXPECT_EQ(read_file(merged_csv), reference_csv);
}

TEST(FleetSweep, FleetMetricsPopulatedAndPrinted) {
  const sweep::GridSpec grid = fleet_grid();
  sweep::SweepOptions options;
  options.discard_warmup = 10 * duration::kMinute;
  options.threads = 2;
  const auto results = sweep::ScenarioSweep(grid).run(options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].clients, 1u);
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_EQ(results[i].clients, 3u);
    EXPECT_GT(results[i].evaluated, 0u);
    EXPECT_GT(results[i].fleet_worst_p99, 0.0);
    EXPECT_GE(results[i].fleet_pairwise_spread, 0.0);
  }
  std::ostringstream report;
  sweep::print_sweep_report(report, results);
  EXPECT_NE(report.str().find("Fleet metrics"), std::string::npos);
  EXPECT_NE(report.str().find("dispersion [us]"), std::string::npos);
  EXPECT_NE(report.str().find("fleet(n=3,shared_congestion=1)"),
            std::string::npos);
}

// -- Correlated path conditions ----------------------------------------------

TEST(FleetCoupling, SharedCongestionInflatesEveryClientsRtt) {
  sim::ScenarioConfig config = fast_scenario();
  config.duration = 4 * duration::kHour;
  sim::FleetConfig topology;
  topology.n_clients = 3;
  topology.shared_congestion = true;
  sim::FleetTestbed fleet(config, topology);

  const auto& windows = fleet.shared_congestion_windows();
  ASSERT_FALSE(windows.empty());
  const auto in_shared_window = [&](Seconds t) {
    for (const auto& w : windows)
      if (t >= w.start && t < w.end) return true;
    return false;
  };

  // Per client: the minimum forward one-way delay inside the shared windows
  // must sit a full shift above the out-of-window floor — for EVERY client,
  // which is exactly the cross-client correlation private noise cannot fake.
  std::vector<double> min_inside(3, 1e9);
  std::vector<double> min_outside(3, 1e9);
  std::vector<std::size_t> inside_count(3, 0);
  sim::Exchange ex;
  std::uint32_t client = 0;
  while (fleet.next_into(client, ex)) {
    if (ex.lost) continue;
    auto& bucket = in_shared_window(ex.truth.ta) ? min_inside : min_outside;
    bucket[client] = std::min(bucket[client], ex.truth.d_forward);
    if (in_shared_window(ex.truth.ta)) ++inside_count[client];
  }
  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_GT(inside_count[k], 20u) << "client " << k;
    // The shared windows add 1.5 ms to the forward floor; the private
    // asymmetry adds at most 0.8 ms elsewhere, so a 1.2 ms gap is
    // unambiguous shared-window signal.
    EXPECT_GT(min_inside[k] - min_outside[k], 1.2e-3) << "client " << k;
  }
}

TEST(FleetCoupling, SharedCongestionDoesNotPerturbClientZeroIdentity) {
  // Coupling changes the schedule, not the seeds: client 0 still uses the
  // scenario seed verbatim and client k its identity-derived seed.
  sim::FleetConfig topology;
  topology.n_clients = 2;
  topology.shared_congestion = true;
  sim::FleetTestbed fleet(fast_scenario(), topology);
  EXPECT_EQ(fleet.client(0).config().seed, fast_scenario().seed);
  EXPECT_EQ(fleet.client(1).config().seed,
            sim::FleetTestbed::client_seed(fast_scenario().seed, 1));
}

// -- Hierarchy ----------------------------------------------------------------

TEST(FleetHierarchy, SlavesReceiveNothingBeforeTheBridgeWarmsUp) {
  sim::FleetConfig topology;
  topology.n_clients = 3;
  topology.hierarchy = true;
  topology.bridge_warmup = 900.0;
  sim::FleetTestbed fleet(fast_scenario(), topology);

  std::vector<std::size_t> early_arrivals(3, 0);
  std::vector<std::size_t> late_arrivals(3, 0);
  sim::Exchange ex;
  std::uint32_t client = 0;
  while (fleet.next_into(client, ex)) {
    if (ex.lost) continue;
    if (ex.truth.tb < topology.bridge_warmup) {
      ++early_arrivals[client];
    } else {
      ++late_arrivals[client];
    }
    if (client > 0) {
      // Slaves answer from the bridge's served clock at stratum 2 and can
      // only do so once the bridge serves time: the warm-up ordering of the
      // chain (master -> bridge -> slaves).
      EXPECT_GE(ex.truth.tb, topology.bridge_warmup);
      EXPECT_EQ(ex.server_stratum, 2);
    }
  }
  EXPECT_GT(early_arrivals[0], 0u) << "the bridge itself polls from t=0";
  EXPECT_EQ(early_arrivals[1], 0u);
  EXPECT_EQ(early_arrivals[2], 0u);
  EXPECT_GT(late_arrivals[1], 0u);
  EXPECT_GT(late_arrivals[2], 0u);
}

// -- Replay rejection ---------------------------------------------------------

TEST(FleetReplay, MixedClientTraceIsRejectedWithAPreciseError) {
  const sim::ScenarioConfig scenario = fast_scenario();
  harness::SessionConfig config = fast_session_config(scenario);
  harness::ReplayTrace trace;
  harness::ReplaySample sample;
  sample.client_id = 0;
  trace.samples.push_back(sample);
  sample.client_id = 1;
  trace.samples.push_back(sample);
  trace.exchanges = 2;

  harness::ReplaySession replay(
      config, std::make_unique<harness::OfflineSmootherEstimator>(
                  config.params, 1e-9));
  try {
    replay.run(trace);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("client_id 0 and 1"), std::string::npos) << what;
    EXPECT_NE(what.find("demultiplex"), std::string::npos) << what;
  }
}

TEST(FleetReplay, UniformClientTraceIsAccepted) {
  const sim::ScenarioConfig scenario = fast_scenario();
  harness::SessionConfig config = fast_session_config(scenario);
  harness::ReplayTrace trace;
  harness::ReplaySample sample;
  sample.client_id = 3;  // any single client is fine, not just 0
  sample.lost = true;
  trace.samples.push_back(sample);
  trace.exchanges = 1;
  trace.lost = 1;

  harness::ReplaySession replay(
      config, std::make_unique<harness::OfflineSmootherEstimator>(
                  config.params, 1e-9));
  EXPECT_EQ(replay.run(trace).evaluated, 0u);
}

TEST(FleetReplay, MultiClientFleetCellRefusesReplaySpecs) {
  sweep::GridSpec grid = fleet_grid();
  grid.fleets = {grid.fleets[1]};  // the 3-client shared-congestion value
  grid.estimators = {harness::EstimatorSpec{"robust", {}},
                     harness::EstimatorSpec{"offline", {}}};
  sweep::SweepOptions options;
  options.threads = 1;
  options.discard_warmup = 10 * duration::kMinute;
  const auto results = sweep::ScenarioSweep(grid).run(options);
  ASSERT_EQ(results.size(), 2u);
  // The library contains the throw in the cell: both lanes FAILED with the
  // replay explanation (the CLI refuses the combination up front, exit 2).
  for (const auto& r : results) {
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.error.find("replays a recorded single-client trace"),
              std::string::npos)
        << r.error;
  }
}

// -- Fleet spec parsing -------------------------------------------------------

TEST(FleetSpecParse, AcceptsCanonicalShapes) {
  const auto single = sweep::parse_fleet_specs("fleet");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(single[0].single());
  EXPECT_EQ(single[0].label(), "fleet");

  const auto multi = sweep::parse_fleet_specs(
      "fleet,fleet(n=16),fleet(n=8,shared_congestion=1,hierarchy=1,"
      "bridge_warmup=600)");
  ASSERT_EQ(multi.size(), 3u);
  EXPECT_EQ(multi[1].config.n_clients, 16u);
  EXPECT_FALSE(multi[1].single());
  EXPECT_EQ(multi[1].label(), "fleet(n=16)");
  EXPECT_EQ(multi[2].config.n_clients, 8u);
  EXPECT_TRUE(multi[2].config.shared_congestion);
  EXPECT_TRUE(multi[2].config.hierarchy);
  EXPECT_EQ(multi[2].config.bridge_warmup, 600.0);
  EXPECT_EQ(multi[2].label(),
            "fleet(n=8,shared_congestion=1,hierarchy=1,bridge_warmup=600)");
}

TEST(FleetSpecParse, RejectsMalformedShapesWithPreciseErrors) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      sweep::parse_fleet_specs(text);
      FAIL() << "expected SweepUsageError for '" << text << "'";
    } catch (const sweep::SweepUsageError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_error("", "empty");
  expect_error("fleet,,fleet(n=2)", "empty");
  expect_error("gleet(n=2)", "fleet");
  expect_error("fleet(n=0)", "n must be in [1, 1024]");
  expect_error("fleet(n=1025)", "n must be in [1, 1024]");
  expect_error("fleet(m=2)", "unknown key 'm'");
  expect_error("fleet(n=2,n=3)", "duplicate");
  expect_error("fleet(shared_congestion=2)", "shared_congestion");
  expect_error("fleet(hierarchy=yes)", "hierarchy");
  expect_error("fleet(bridge_warmup=-1)", "bridge_warmup");
  expect_error("fleet(n=4", "missing ')'");
  expect_error("fleet(n=2),fleet(n=2)", "duplicate");
}

// -- Grid identity ------------------------------------------------------------

TEST(FleetGrid, NonSingleValuesExtendNamesWithoutReseedingSingles) {
  sweep::GridSpec base;
  base.servers = {sim::ServerKind::kInt};
  base.environments = {sim::Environment::kMachineRoom};
  base.poll_periods = {16.0};
  const auto classic = sweep::expand_grid(base);

  sweep::GridSpec extended = base;
  sweep::FleetSpec big;
  big.config.n_clients = 4;
  extended.fleets = {sweep::FleetSpec{}, big};
  const auto with_fleet = sweep::expand_grid(extended);

  ASSERT_EQ(classic.size(), 1u);
  ASSERT_EQ(with_fleet.size(), 2u);
  EXPECT_EQ(with_fleet[0].name, classic[0].name);
  EXPECT_EQ(with_fleet[0].config.seed, classic[0].config.seed);
  EXPECT_EQ(with_fleet[1].name, classic[0].name + "/fleet(n=4)");
  EXPECT_NE(with_fleet[1].config.seed, classic[0].config.seed);
}

TEST(FleetGrid, DescriptorCarriesTheFleetAxis) {
  sweep::GridSpec base;
  const std::string plain = sweep::grid_descriptor(base);
  EXPECT_NE(plain.find("tscclock-grid v3"), std::string::npos);
  EXPECT_NE(plain.find("fleets"), std::string::npos);

  sweep::GridSpec extended = base;
  sweep::FleetSpec big;
  big.config.n_clients = 4;
  extended.fleets.push_back(big);
  EXPECT_NE(sweep::grid_descriptor(extended), plain);
}

}  // namespace
}  // namespace tscclock
