// Synthetic exchange generator for unit-testing the core estimators with
// exact, controllable inputs (no random testbed): a perfect constant-rate
// counter, fixed minimum delays, and caller-chosen queueing/noise per packet.
//
// With q = 0 the naive rate between any two exchanges equals `period`
// exactly (up to counter rounding), and the naive offset error against an
// aligned clock is −Δ/2 (the asymmetry ambiguity) exactly.
#pragma once

#include <cmath>

#include "common/time_types.hpp"
#include "core/records.hpp"

namespace tscclock::testing {

class SyntheticLink {
 public:
  struct Config {
    double period = 2.0e-9;   ///< true counter period [s/count] (500 MHz)
    Seconds d_forward = 450e-6;
    Seconds d_server = 40e-6;
    Seconds d_backward = 400e-6;
    Seconds poll = 16.0;
    TscCount counter_base = 1'000'000'000ULL;
  };

  SyntheticLink() : SyntheticLink(Config{}) {}
  explicit SyntheticLink(const Config& config) : config_(config) {}

  /// Counter value at true time t (perfect constant-rate oscillator).
  [[nodiscard]] TscCount counts(Seconds t) const {
    return config_.counter_base +
           static_cast<TscCount>(std::llround(t / config_.period));
  }

  /// Produce the next exchange with the given queueing delays added to the
  /// forward/backward minimum, and `server_stamp_error` added to Tb and Te
  /// (a faulty-server knob).
  core::RawExchange next(Seconds q_forward = 0.0, Seconds q_backward = 0.0,
                         Seconds server_stamp_error = 0.0) {
    core::RawExchange ex;
    const Seconds ta = now_;
    const Seconds tb = ta + config_.d_forward + q_forward;
    const Seconds te = tb + config_.d_server;
    const Seconds tf = te + config_.d_backward + q_backward;
    ex.ta = counts(ta);
    ex.tb = tb + server_stamp_error;
    ex.te = te + server_stamp_error;
    ex.tf = counts(tf);
    now_ += config_.poll;
    return ex;
  }

  /// Skip forward in time without producing packets (gap/outage).
  void advance(Seconds gap) { now_ += gap; }

  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Seconds min_rtt() const {
    return config_.d_forward + config_.d_server + config_.d_backward;
  }
  [[nodiscard]] Seconds asymmetry() const {
    return config_.d_forward - config_.d_backward;
  }

 private:
  Config config_;
  Seconds now_ = 0.0;
};

}  // namespace tscclock::testing
