// Tests for the quasi-local rate estimator p̂_l (paper §5.2).
#include "core/local_rate.hpp"

#include <gtest/gtest.h>

#include "core/point_error.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.local_rate_window = 1600.0;  // 100 packets: manageable test sizes
  p.gap_threshold = 800.0;
  p.local_rate_subwindows = 10;
  return p;
}

struct Harness {
  explicit Harness(const Params& params)
      : params(params), filter(params), local(params) {}

  LocalRateEstimator::Result feed(const RawExchange& ex, double pbar) {
    filter.add(ex.rtt_counts());
    PacketRecord rec;
    rec.seq = seq++;
    rec.stamps = ex;
    rec.rtt = ex.rtt_counts();
    rec.error_counts = rec.rtt - filter.rhat();
    return local.process(rec, filter.point_error(rec.rtt, pbar), pbar);
  }

  Params params;
  RttFilter filter;
  LocalRateEstimator local;
  std::uint64_t seq = 0;
};

TEST(LocalRate, NoEstimateUntilFarWindowReached) {
  SyntheticLink link;
  const double pbar = link.config().period;
  Harness h(test_params());
  // Window is 100 packets; nothing before ~90 packets of history.
  for (int i = 0; i < 50; ++i) {
    const auto res = h.feed(link.next(), pbar);
    EXPECT_FALSE(res.evaluated);
  }
  EXPECT_FALSE(h.local.usable());
}

TEST(LocalRate, ConvergesOnCleanData) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params());
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  ASSERT_TRUE(h.local.usable());
  EXPECT_NEAR(h.local.period() / truth, 1.0, 1e-8);
  EXPECT_NEAR(h.local.residual_rate(truth), 0.0, 1e-8);
}

TEST(LocalRate, QualityGateHoldsPreviousValue) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params());
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  ASSERT_TRUE(h.local.usable());
  const double before = h.local.period();
  // Congest everything. While clean packets remain in the near sub-window
  // (first ~10 packets) candidates can still pass; once the near window is
  // all-congested, every candidate fails the γ* gate and the value holds.
  double last = before;
  for (int i = 0; i < 40; ++i) {
    const auto res = h.feed(link.next(3e-3, 3e-3), truth);
    if (i >= 15) {
      EXPECT_FALSE(res.accepted) << "at congested packet " << i;
    }
    if (res.accepted) last = h.local.period();
  }
  EXPECT_DOUBLE_EQ(h.local.period(), last);         // held since last accept
  EXPECT_NEAR(h.local.period() / before, 1.0, 1e-7);  // and still sane
}

TEST(LocalRate, SanityCheckBlocksWildCandidates) {
  // Force a candidate differing by > 3e-7 in relative terms via corrupted
  // server stamps on otherwise low-delay packets.
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  Harness h(params);
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  ASSERT_TRUE(h.local.usable());
  const double before = h.local.period();
  // Server stamps advance 1 ms too fast across the near window: the
  // candidate rate shifts by ~1ms/1600s ≈ 6e-7 > 3e-7.
  bool blocked = false;
  for (int i = 0; i < 30; ++i) {
    const auto res = h.feed(link.next(0, 0, 1e-3 * (i + 1)), truth);
    blocked = blocked || res.sanity_blocked;
  }
  EXPECT_TRUE(blocked);
  EXPECT_GT(h.local.sanity_count(), 0u);
  EXPECT_DOUBLE_EQ(h.local.period(), before);
}

TEST(LocalRate, SanityCheckCanBeDisabled) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  params.enable_rate_sanity = false;
  Harness h(params);
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  for (int i = 0; i < 30; ++i) h.feed(link.next(0, 0, 1e-3 * (i + 1)), truth);
  EXPECT_EQ(h.local.sanity_count(), 0u);
}

TEST(LocalRate, GapMarksStaleAndRecovers) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params());
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  ASSERT_TRUE(h.local.usable());

  link.advance(2000.0);  // > τ̄/2 = 800 s gap
  const auto res = h.feed(link.next(), truth);
  EXPECT_TRUE(res.gap_reset);
  EXPECT_TRUE(h.local.stale());
  EXPECT_FALSE(h.local.usable());
  EXPECT_DOUBLE_EQ(h.local.residual_rate(truth), 0.0);  // unusable → 0

  // A fresh full window clears staleness.
  for (int i = 0; i < 150; ++i) h.feed(link.next(), truth);
  EXPECT_FALSE(h.local.stale());
  EXPECT_TRUE(h.local.usable());
}

TEST(LocalRate, DetectsGenuineLocalRateChange) {
  // A link whose true period drifts by 0.04 PPM between the far and near
  // windows: p̂_l must land between the two, closer to the recent value,
  // while staying within the sanity bound.
  SyntheticLink::Config config;
  Harness h(test_params());
  const double p0 = config.period;
  SyntheticLink link(config);
  for (int i = 0; i < 120; ++i) h.feed(link.next(), p0);
  // Simulate drift by shifting server stamps progressively (equivalent to a
  // slightly different true rate over the recent past).
  const double drift = ppm(0.04);
  for (int i = 0; i < 120; ++i)
    h.feed(link.next(0, 0, drift * 16.0 * (i + 1)), p0);
  ASSERT_TRUE(h.local.usable());
  const double gamma = h.local.residual_rate(p0);
  EXPECT_GT(gamma, ppm(0.01));
  EXPECT_LT(gamma, ppm(0.08));
}

TEST(LocalRate, ResidualRateRequiresPositivePbar) {
  LocalRateEstimator local(test_params());
  EXPECT_THROW((void)local.residual_rate(0.0), ContractViolation);
}

}  // namespace
}  // namespace tscclock::core
