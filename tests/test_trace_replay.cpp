// The sim→file→replay golden (trace/trace_io.hpp × harness/replay.hpp): a
// trace exported to disk and read back replays bit-identically to the
// in-memory recording — same per-record errors, same reduction — and a
// relative-only export of the same stream scores under the
// GroundTruthMode::kRelativeOnly semantics (structurally empty clock
// series, tracking residual θ̂ − θ̂_naive in the offset columns, ADEV over
// the residual).
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/offline.hpp"
#include "harness/replay.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

namespace tscclock::trace {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() / ("tscclock_trace_replay_" + name);
}

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// An eventful scenario: losses (outage) and a server switch must survive
/// the disk round trip along with the quadruples.
sim::ScenarioConfig trace_scenario() {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = 3 * duration::kHour;
  scenario.seed = 20040917;
  scenario.events.add_outage(4000.0, 4900.0);
  scenario.server_switches = {{7200.0, sim::ServerKind::kLoc}};
  return scenario;
}

harness::SessionConfig trace_config(const sim::ScenarioConfig& scenario) {
  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.poll_period);
  config.discard_warmup = 30 * duration::kMinute;
  config.warmup_policy = harness::WarmupPolicy::kObservable;
  config.record_trace = true;
  config.emit_unevaluated = true;
  return config;
}

struct ReplayOutcome {
  std::vector<harness::SampleRecord> records;
  harness::ReducerSink::Reduction reduction;
  harness::SessionSummary summary;
};

/// Score `trace` through the offline smoother with the mode-aware exact
/// reduction — the same lane shape the sweep's trace cells run.
ReplayOutcome replay_trace(const harness::ReplayTrace& trace,
                           const harness::SessionConfig& config,
                           double nominal_period) {
  harness::ReplaySession replay(
      config, std::make_unique<harness::OfflineSmootherEstimator>(
                  config.params, nominal_period));
  harness::CollectorSink records;
  harness::ReducerSink reducer(16.0, 16, 256, trace.ground_truth);
  replay.add_sink(records);
  replay.add_sink(reducer);
  ReplayOutcome outcome;
  outcome.summary = replay.run(trace);
  outcome.records = records.records();
  outcome.reduction = reducer.reduce();
  return outcome;
}

void expect_summary_bits(const SeriesSummary& got, const SeriesSummary& want) {
  EXPECT_EQ(got.count, want.count);
  EXPECT_TRUE(same_bits(got.min, want.min));
  EXPECT_TRUE(same_bits(got.max, want.max));
  EXPECT_TRUE(same_bits(got.mean, want.mean));
  EXPECT_TRUE(same_bits(got.stddev, want.stddev));
  EXPECT_TRUE(same_bits(got.percentiles.p01, want.percentiles.p01));
  EXPECT_TRUE(same_bits(got.percentiles.p50, want.percentiles.p50));
  EXPECT_TRUE(same_bits(got.percentiles.p99, want.percentiles.p99));
}

TEST(TraceReplayGolden, ExportedTraceReplaysBitIdenticalToInMemory) {
  const auto scenario = trace_scenario();
  const auto config = trace_config(scenario);
  sim::Testbed testbed(scenario);
  harness::ClockSession session(config, testbed.nominal_period());
  session.run(testbed);
  const harness::ReplayTrace& recorded = session.trace();
  ASSERT_GT(recorded.lost, 0u) << "the outage must cost polls";

  const ReplayOutcome direct =
      replay_trace(recorded, config, testbed.nominal_period());
  ASSERT_GT(direct.reduction.evaluated, 0u);

  TraceMeta meta;
  meta.mode = harness::GroundTruthMode::kReference;
  meta.nominal_period = testbed.nominal_period();
  meta.poll_period = scenario.poll_period;
  meta.label = "sim export golden";
  const auto path = temp_path("golden.trace");
  write_trace(path.string(), meta, recorded);

  const ReadTrace loaded = read_trace(path.string());
  EXPECT_TRUE(loaded.warnings.empty());
  const ReplayOutcome replayed =
      replay_trace(loaded.trace, config, loaded.meta.nominal_period);

  EXPECT_EQ(replayed.summary.exchanges, direct.summary.exchanges);
  EXPECT_EQ(replayed.summary.lost, direct.summary.lost);
  EXPECT_EQ(replayed.summary.evaluated, direct.summary.evaluated);
  ASSERT_EQ(replayed.records.size(), direct.records.size());
  for (std::size_t i = 0; i < direct.records.size(); ++i) {
    SCOPED_TRACE(i);
    const auto& d = direct.records[i];
    const auto& r = replayed.records[i];
    EXPECT_EQ(r.index, d.index);
    EXPECT_EQ(r.lost, d.lost);
    EXPECT_EQ(r.evaluated, d.evaluated);
    EXPECT_TRUE(same_bits(r.offset_error, d.offset_error));
    EXPECT_TRUE(same_bits(r.abs_clock_error, d.abs_clock_error));
    EXPECT_TRUE(same_bits(r.naive_error, d.naive_error));
    EXPECT_TRUE(same_bits(r.reference_offset, d.reference_offset));
  }
  EXPECT_EQ(replayed.reduction.evaluated, direct.reduction.evaluated);
  expect_summary_bits(replayed.reduction.clock_error,
                      direct.reduction.clock_error);
  expect_summary_bits(replayed.reduction.offset_error,
                      direct.reduction.offset_error);
  EXPECT_TRUE(same_bits(replayed.reduction.adev_short,
                        direct.reduction.adev_short));
  EXPECT_TRUE(
      same_bits(replayed.reduction.adev_long, direct.reduction.adev_long));

  // And the file itself is a fixed point: re-exporting the loaded trace
  // reproduces it byte for byte.
  const auto path2 = temp_path("golden2.trace");
  write_trace(path2.string(), loaded.meta, loaded.trace);
  EXPECT_EQ(read_file(path), read_file(path2));
  fs::remove(path);
  fs::remove(path2);
}

TEST(TraceReplayGolden, RelativeOnlyExportScoresTrackingResidual) {
  const auto scenario = trace_scenario();
  const auto config = trace_config(scenario);
  sim::Testbed testbed(scenario);
  harness::ClockSession session(config, testbed.nominal_period());
  session.run(testbed);

  // Strip the ground truth on export — the "what would the field see" view
  // of the identical exchange stream.
  TraceMeta meta;
  meta.mode = harness::GroundTruthMode::kRelativeOnly;
  meta.nominal_period = testbed.nominal_period();
  meta.poll_period = scenario.poll_period;
  const auto path = temp_path("relative.trace");
  write_trace(path.string(), meta, session.trace());

  const ReadTrace loaded = read_trace(path.string());
  EXPECT_EQ(loaded.trace.ground_truth,
            harness::GroundTruthMode::kRelativeOnly);
  const ReplayOutcome outcome =
      replay_trace(loaded.trace, config, loaded.meta.nominal_period);

  // The clock-error series is structurally empty: no reference exists, and
  // a zero-filled summary must never masquerade as a perfect run.
  EXPECT_EQ(outcome.reduction.clock_error.count, 0u);
  ASSERT_GT(outcome.reduction.evaluated, 0u);
  EXPECT_EQ(outcome.reduction.offset_error.count,
            outcome.reduction.evaluated);

  std::size_t evaluated = 0;
  for (const auto& record : outcome.records) {
    if (record.lost) continue;
    // Relative evaluation: every post-warm-up arrival scores (there is no
    // ref_available gate — the mode has no reference to gate on).
    EXPECT_EQ(record.evaluated, !record.in_warmup);
    if (!record.evaluated) continue;
    ++evaluated;
    // The offset column carries θ̂ − θ̂_naive: the estimator's disagreement
    // with the instantaneous symmetric-path measurement, computable from
    // the four wire stamps alone.
    EXPECT_TRUE(same_bits(
        record.offset_error,
        record.report.offset_estimate - record.report.naive_offset));
    EXPECT_TRUE(same_bits(record.abs_clock_error, 0.0));
  }
  EXPECT_EQ(evaluated, outcome.reduction.evaluated);
  // 3 hours at 16 s polls leaves plenty of stretch for the short ADEV
  // scale, now computed over the tracking residual.
  EXPECT_GT(outcome.reduction.adev_short, 0.0);

  // The streaming reduction implements the same relative-mode semantics:
  // identical counts, means and ADEV, bit for bit.
  harness::ReplaySession replay(
      config, std::make_unique<harness::OfflineSmootherEstimator>(
                  config.params, loaded.meta.nominal_period));
  harness::StreamingReducerSink streaming(
      16.0, 16, 256, harness::GroundTruthMode::kRelativeOnly);
  replay.add_sink(streaming);
  replay.run(loaded.trace);
  const auto stream_reduction = streaming.reduce();
  EXPECT_EQ(stream_reduction.evaluated, outcome.reduction.evaluated);
  EXPECT_EQ(stream_reduction.clock_error.count, 0u);
  EXPECT_TRUE(same_bits(stream_reduction.offset_error.mean,
                        outcome.reduction.offset_error.mean));
  EXPECT_TRUE(same_bits(stream_reduction.adev_short,
                        outcome.reduction.adev_short));
  EXPECT_TRUE(
      same_bits(stream_reduction.adev_long, outcome.reduction.adev_long));
  fs::remove(path);
}

}  // namespace
}  // namespace tscclock::trace
