// Golden equivalence of the batched hot path against the scalar reference
// lane:
//   * Testbed::next_batch / next_into produce the byte-identical exchange
//     stream next() produces, across chunk boundaries, outages and server
//     switches;
//   * ClockSession::process_batch / run_batched emit bit-identical reduced
//     values and summaries to the scalar step loop — for the exact and the
//     streaming reducer, single-lane and multi-lane with trace recording,
//     and under the stress (switch + outage) schedule;
//   * with a record-shaped sink attached, process_batch degrades to the
//     scalar per-record sequence (identical SampleRecords).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "harness/replay.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

namespace tscclock::harness {
namespace {

/// One-hour MR-Int scenario with the §6 robustness events: a mid-trace
/// outage and two server switches (mirrors test_harness.cpp).
sim::ScenarioConfig stress_scenario() {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = duration::kHour;
  scenario.seed = 987654321;
  scenario.events.add_outage(1200.0, 1500.0);
  scenario.server_switches = {{1800.0, sim::ServerKind::kLoc},
                              {2700.0, sim::ServerKind::kExt}};
  return scenario;
}

sim::ScenarioConfig plain_scenario(std::uint64_t seed = 24680) {
  sim::ScenarioConfig scenario;
  scenario.poll_period = 16.0;
  scenario.duration = duration::kHour;
  scenario.seed = seed;
  return scenario;
}

SessionConfig session_config_for(const sim::ScenarioConfig& scenario) {
  SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.poll_period);
  config.discard_warmup = 600.0;
  config.warmup_policy = WarmupPolicy::kObservable;
  return config;
}

void expect_exchange_eq(const sim::Exchange& a, const sim::Exchange& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.ta_counts, b.ta_counts);
  EXPECT_EQ(a.tf_counts, b.tf_counts);
  EXPECT_EQ(a.tf_counts_corrected, b.tf_counts_corrected);
  EXPECT_EQ(a.tb_stamp, b.tb_stamp);
  EXPECT_EQ(a.te_stamp, b.te_stamp);
  EXPECT_EQ(a.server_id, b.server_id);
  EXPECT_EQ(a.server_stratum, b.server_stratum);
  EXPECT_EQ(a.ref_available, b.ref_available);
  EXPECT_EQ(a.tg, b.tg);
  EXPECT_EQ(a.truth.ta, b.truth.ta);
  EXPECT_EQ(a.truth.tb, b.truth.tb);
  EXPECT_EQ(a.truth.te, b.truth.te);
  EXPECT_EQ(a.truth.tf, b.truth.tf);
  EXPECT_EQ(a.truth.d_forward, b.truth.d_forward);
  EXPECT_EQ(a.truth.d_server, b.truth.d_server);
  EXPECT_EQ(a.truth.d_backward, b.truth.d_backward);
}

void expect_summary_eq(const SeriesSummary& a, const SeriesSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.percentiles.p01, b.percentiles.p01);
  EXPECT_EQ(a.percentiles.p25, b.percentiles.p25);
  EXPECT_EQ(a.percentiles.p50, b.percentiles.p50);
  EXPECT_EQ(a.percentiles.p75, b.percentiles.p75);
  EXPECT_EQ(a.percentiles.p99, b.percentiles.p99);
}

void expect_reduction_eq(const ReducerSink::Reduction& a,
                         const ReducerSink::Reduction& b) {
  EXPECT_EQ(a.evaluated, b.evaluated);
  expect_summary_eq(a.clock_error, b.clock_error);
  expect_summary_eq(a.offset_error, b.offset_error);
  EXPECT_EQ(a.adev_short_tau, b.adev_short_tau);
  EXPECT_EQ(a.adev_short, b.adev_short);
  EXPECT_EQ(a.adev_long_tau, b.adev_long_tau);
  EXPECT_EQ(a.adev_long, b.adev_long);
}

// -- Testbed batch API -----------------------------------------------------

TEST(TestbedBatch, NextBatchStreamIdenticalToNext) {
  // A chunk size that never divides the stream evenly exercises the
  // boundaries; the stress schedule exercises outage skips and switches.
  sim::Testbed scalar(stress_scenario());
  sim::Testbed batched(stress_scenario());

  std::vector<sim::Exchange> reference;
  while (auto ex = scalar.next()) reference.push_back(*ex);

  std::vector<sim::Exchange> buffer(37);
  std::size_t seen = 0;
  while (true) {
    const std::size_t n = batched.next_batch(buffer);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_LT(seen, reference.size());
      expect_exchange_eq(reference[seen], buffer[k]);
      ++seen;
    }
    if (n < buffer.size()) break;
  }
  EXPECT_EQ(seen, reference.size());
  EXPECT_EQ(scalar.polls_enumerated(), batched.polls_enumerated());
}

TEST(TestbedBatch, GenerateBatchColumnsIdenticalToNext) {
  // The SoA stream: every column of every row — materialized back into an
  // Exchange — must reproduce next()'s stream bit-for-bit, across awkward
  // chunk boundaries, outage skips, server switches, and loss rows (which
  // keep their produced-up-to-the-loss fields and zeros elsewhere).
  sim::Testbed scalar(stress_scenario());
  sim::Testbed batched(stress_scenario());

  std::vector<sim::Exchange> reference;
  while (auto ex = scalar.next()) reference.push_back(*ex);

  sim::ExchangeBatch batch;
  sim::Exchange row;
  std::size_t seen = 0;
  while (true) {
    const std::size_t n = batched.generate_batch(batch, 37);
    ASSERT_EQ(n, batch.size());
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_LT(seen, reference.size());
      batch.materialize(k, row);
      expect_exchange_eq(reference[seen], row);
      ++seen;
    }
    if (n < 37) break;
  }
  EXPECT_EQ(seen, reference.size());
  EXPECT_EQ(scalar.polls_enumerated(), batched.polls_enumerated());
}

TEST(TestbedBatch, GenerateBatchReusedAcrossChunkSizes) {
  // Reusing one batch object across different chunk sizes must leave no
  // stale tail: the trailing short batch is trimmed to the produced rows.
  sim::Testbed a(plain_scenario());
  sim::Testbed b(plain_scenario());

  sim::ExchangeBatch wide;
  std::uint64_t total_wide = 0;
  while (true) {
    const std::size_t n = a.generate_batch(wide, 1024);
    total_wide += n;
    if (n < 1024) break;
  }
  sim::ExchangeBatch narrow;
  std::uint64_t total_narrow = 0;
  while (true) {
    const std::size_t n = b.generate_batch(narrow, 7);
    total_narrow += n;
    if (n < 7) break;
  }
  EXPECT_EQ(total_wide, total_narrow);
  EXPECT_EQ(a.polls_enumerated(), b.polls_enumerated());
}

TEST(TestbedBatch, CheckWireModeAssertsQuantizeMatchesRealWire) {
  // check_wire replays every produced stamp through the real packet
  // encode/decode and contract-asserts equality with the algebraic
  // quantization — so simply draining a check_wire testbed is the
  // end-to-end equivalence test. The stream must also be unchanged.
  auto checked_scenario = stress_scenario();
  checked_scenario.check_wire = true;
  sim::Testbed checked(checked_scenario);
  sim::Testbed plain(stress_scenario());

  std::vector<sim::Exchange> reference;
  while (auto ex = plain.next()) reference.push_back(*ex);

  sim::ExchangeBatch batch;
  sim::Exchange row;
  std::size_t seen = 0;
  while (true) {
    const std::size_t n = checked.generate_batch(batch, 64);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_LT(seen, reference.size());
      batch.materialize(k, row);
      expect_exchange_eq(reference[seen], row);
      ++seen;
    }
    if (n < 64) break;
  }
  EXPECT_EQ(seen, reference.size());

  // The scalar path has its own check-wire call site; drain it too.
  sim::Testbed checked_scalar(checked_scenario);
  std::size_t scalar_seen = 0;
  while (auto ex = checked_scalar.next()) {
    ASSERT_LT(scalar_seen, reference.size());
    expect_exchange_eq(reference[scalar_seen], *ex);
    ++scalar_seen;
  }
  EXPECT_EQ(scalar_seen, reference.size());
}

TEST(TestbedBatch, PollsRemainingBoundsTheStream) {
  sim::Testbed testbed(stress_scenario());
  const std::uint64_t total = testbed.polls_remaining();
  const auto all = testbed.generate_all();
  // polls_remaining counts slots (outage-skipped ones included); after a
  // full drain the enumerated counter equals the upfront bound.
  EXPECT_EQ(testbed.polls_enumerated(), total);
  EXPECT_LE(all.size(), total);
  EXPECT_EQ(testbed.polls_remaining(), 0u);
}

TEST(TestbedBatch, GenerateAllReservesUpfront) {
  sim::Testbed counting(plain_scenario());
  const std::uint64_t slots = counting.polls_remaining();
  sim::Testbed testbed(plain_scenario());
  const auto all = testbed.generate_all();
  // The drain must not have grown past the poll-slot reservation.
  EXPECT_GE(slots, all.size());
  EXPECT_LE(all.capacity(), static_cast<std::size_t>(slots));
}

// -- ClockSession batch lane ----------------------------------------------

TEST(BatchLane, SingleLaneExactReducerBitIdentical) {
  const auto scenario = plain_scenario();
  const auto config = session_config_for(scenario);

  sim::Testbed scalar_bed(scenario);
  ClockSession scalar(config, scalar_bed.nominal_period());
  ReducerSink scalar_reducer(scenario.poll_period);
  scalar.add_sink(scalar_reducer);
  const auto scalar_summary = scalar.run(scalar_bed);

  sim::Testbed batch_bed(scenario);
  ClockSession batched(config, batch_bed.nominal_period());
  ReducerSink batch_reducer(scenario.poll_period);
  batched.add_sink(batch_reducer);
  const auto batch_summary = batched.run_batched(batch_bed);

  EXPECT_EQ(scalar_summary.exchanges, batch_summary.exchanges);
  EXPECT_EQ(scalar_summary.lost, batch_summary.lost);
  EXPECT_EQ(scalar_summary.evaluated, batch_summary.evaluated);
  EXPECT_EQ(scalar_summary.polls_enumerated, batch_summary.polls_enumerated);
  EXPECT_EQ(scalar_summary.final_status.packets_processed,
            batch_summary.final_status.packets_processed);
  EXPECT_EQ(scalar_summary.final_status.period,
            batch_summary.final_status.period);
  EXPECT_EQ(scalar_summary.final_status.offset,
            batch_summary.final_status.offset);
  expect_reduction_eq(scalar_reducer.reduce(), batch_reducer.reduce());
}

TEST(BatchLane, SingleLaneStreamingReducerBitIdentical) {
  const auto scenario = plain_scenario(1357);
  const auto config = session_config_for(scenario);

  sim::Testbed scalar_bed(scenario);
  ClockSession scalar(config, scalar_bed.nominal_period());
  StreamingReducerSink scalar_reducer(scenario.poll_period);
  scalar.add_sink(scalar_reducer);
  scalar.run(scalar_bed);

  sim::Testbed batch_bed(scenario);
  ClockSession batched(config, batch_bed.nominal_period());
  StreamingReducerSink batch_reducer(scenario.poll_period);
  batched.add_sink(batch_reducer);
  batched.run_batched(batch_bed);

  expect_reduction_eq(scalar_reducer.reduce(), batch_reducer.reduce());
}

TEST(BatchLane, StressScheduleBitIdentical) {
  const auto scenario = stress_scenario();
  const auto config = session_config_for(scenario);

  sim::Testbed scalar_bed(scenario);
  ClockSession scalar(config, scalar_bed.nominal_period());
  ReducerSink scalar_reducer(scenario.poll_period);
  scalar.add_sink(scalar_reducer);
  const auto scalar_summary = scalar.run(scalar_bed);

  sim::Testbed batch_bed(scenario);
  ClockSession batched(config, batch_bed.nominal_period());
  ReducerSink batch_reducer(scenario.poll_period);
  batched.add_sink(batch_reducer);
  const auto batch_summary = batched.run_batched(batch_bed);

  EXPECT_EQ(scalar_summary.exchanges, batch_summary.exchanges);
  EXPECT_EQ(scalar_summary.lost, batch_summary.lost);
  EXPECT_EQ(scalar_summary.evaluated, batch_summary.evaluated);
  EXPECT_EQ(scalar_summary.final_status.server_changes,
            batch_summary.final_status.server_changes);
  expect_reduction_eq(scalar_reducer.reduce(), batch_reducer.reduce());
}

TEST(BatchLane, MultiLaneWithTraceRecordingBitIdentical) {
  const auto scenario = stress_scenario();
  const auto config = session_config_for(scenario);

  const auto build = [&](MultiEstimatorSession& session, double nominal,
                         std::vector<ReducerSink>& reducers) {
    session.enable_trace_recording(config);
    reducers.reserve(3);
    const std::size_t robust = session.add_lane(
        config, std::make_unique<TscNtpEstimator>(config.params, nominal));
    const std::size_t swntp = session.add_lane(
        config,
        std::make_unique<SwNtpEstimator>(baseline::PllConfig{}, nominal));
    const std::size_t naive =
        session.add_lane(config, std::make_unique<NaiveEstimator>(nominal));
    for (const std::size_t lane : {robust, swntp, naive}) {
      reducers.emplace_back(scenario.poll_period);
      session.add_sink(lane, reducers.back());
    }
  };

  sim::Testbed scalar_bed(scenario);
  MultiEstimatorSession scalar;
  std::vector<ReducerSink> scalar_reducers;
  build(scalar, scalar_bed.nominal_period(), scalar_reducers);
  scalar.run(scalar_bed);

  sim::Testbed batch_bed(scenario);
  MultiEstimatorSession batched;
  std::vector<ReducerSink> batch_reducers;
  build(batched, batch_bed.nominal_period(), batch_reducers);
  batched.run_batched(batch_bed);

  for (std::size_t lane = 0; lane < 3; ++lane) {
    SCOPED_TRACE(lane);
    expect_reduction_eq(scalar_reducers[lane].reduce(),
                        batch_reducers[lane].reduce());
    const auto& a = scalar.lane(lane).summary();
    const auto& b = batched.lane(lane).summary();
    EXPECT_EQ(a.exchanges, b.exchanges);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.polls_enumerated, b.polls_enumerated);
  }

  // The shared recording must be sample-for-sample identical too.
  const ReplayTrace& ta = scalar.trace();
  const ReplayTrace& tb = batched.trace();
  EXPECT_EQ(ta.exchanges, tb.exchanges);
  EXPECT_EQ(ta.lost, tb.lost);
  EXPECT_EQ(ta.polls_enumerated, tb.polls_enumerated);
  ASSERT_EQ(ta.samples.size(), tb.samples.size());
  for (std::size_t i = 0; i < ta.samples.size(); ++i) {
    const auto& sa = ta.samples[i];
    const auto& sb = tb.samples[i];
    ASSERT_EQ(sa.index, sb.index);
    ASSERT_EQ(sa.lost, sb.lost);
    ASSERT_EQ(sa.raw.ta, sb.raw.ta);
    ASSERT_EQ(sa.raw.tb, sb.raw.tb);
    ASSERT_EQ(sa.raw.te, sb.raw.te);
    ASSERT_EQ(sa.raw.tf, sb.raw.tf);
    ASSERT_EQ(sa.ref_available, sb.ref_available);
    ASSERT_EQ(sa.tg, sb.tg);
    ASSERT_EQ(sa.in_warmup, sb.in_warmup);
    ASSERT_EQ(sa.server_changed, sb.server_changed);
  }
}

TEST(BatchLane, RecordSinkDegradesToScalarSequence) {
  // With a record-shaped sink attached, process_batch must emit the exact
  // SampleRecord stream the scalar loop emits (per-record, in order).
  const auto scenario = plain_scenario(97531);
  const auto config = session_config_for(scenario);

  sim::Testbed scalar_bed(scenario);
  ClockSession scalar(config, scalar_bed.nominal_period());
  CollectorSink scalar_collector;
  ReducerSink scalar_reducer(scenario.poll_period);
  scalar.add_sink(scalar_collector);
  scalar.add_sink(scalar_reducer);
  scalar.run(scalar_bed);

  sim::Testbed batch_bed(scenario);
  const auto all = batch_bed.generate_all();
  ClockSession batched(config, batch_bed.nominal_period());
  CollectorSink batch_collector;
  ReducerSink batch_reducer(scenario.poll_period);
  batched.add_sink(batch_collector);
  batched.add_sink(batch_reducer);
  batched.process_batch(all);
  batched.set_polls_enumerated(batch_bed.polls_enumerated());

  // The mixed-sink path feeds the reducer through on_sample, identically.
  expect_reduction_eq(scalar_reducer.reduce(), batch_reducer.reduce());
  const auto& ra = scalar_collector.records();
  const auto& rb = batch_collector.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].index, rb[i].index);
    ASSERT_EQ(ra[i].evaluated, rb[i].evaluated);
    ASSERT_EQ(ra[i].report.offset_estimate, rb[i].report.offset_estimate);
    ASSERT_EQ(ra[i].offset_error, rb[i].offset_error);
    ASSERT_EQ(ra[i].abs_clock_error, rb[i].abs_clock_error);
    ASSERT_EQ(ra[i].naive_error, rb[i].naive_error);
    ASSERT_EQ(ra[i].period, rb[i].period);
    ASSERT_EQ(ra[i].warmed_up, rb[i].warmed_up);
    ASSERT_EQ(ra[i].server_changed, rb[i].server_changed);
  }
}

}  // namespace
}  // namespace tscclock::harness
