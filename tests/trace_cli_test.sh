#!/usr/bin/env bash
# CLI contract tests for the trace-ingestion tools (tools/trace-import,
# tools/ntp-collect) and the sweep's --trace-in/--trace-out axis, run by
# ctest (see tests/CMakeLists.txt).
#
# Covers what the GoogleTest binaries cannot: the trace-import --validate
# exit contract (0 clean / 1 warnings / 2 malformed, one-line diagnostics
# naming the offending record), ntp-collect usage errors and the offline
# --mock collection, the sweep's exit-2 refusals for malformed/missing
# --trace-in files and online×--trace-in combinations, and the full
# record → export → import → replay round trip: a sim-exported trace must
# replay into byte-identical per-exchange CSV rows, and a mock-collected
# trace must import cleanly and produce a populated relative-only row.
set -u

SWEEP="$1"
TRACE_IMPORT="$2"
NTP_COLLECT="$3"
failures=0
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
OUT="$WORK/out.txt"

# run_expect <expected-exit> <description> <binary> -- <args...>
run_expect() {
  local expected="$1" description="$2" binary="$3"
  shift 4  # expected, description, binary, "--"
  "$binary" "$@" >"$OUT" 2>&1
  local got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: $description: expected exit $expected, got $got" >&2
    sed 's/^/    /' "$OUT" >&2
    failures=$((failures + 1))
  else
    echo "ok: $description"
  fi
}

# expect_in_output <description> <pattern>: grep the last run's output.
expect_in_output() {
  local description="$1" pattern="$2"
  if ! grep -q "$pattern" "$OUT"; then
    echo "FAIL: $description: output does not contain '$pattern'" >&2
    sed 's/^/    /' "$OUT" >&2
    failures=$((failures + 1))
  else
    echo "ok: $description"
  fi
}

# -- trace-import usage and --validate exit contract -------------------------
run_expect 2 "trace-import with no mode" "$TRACE_IMPORT" --
run_expect 2 "trace-import --validate plus --in is ambiguous" \
  "$TRACE_IMPORT" -- --validate x --in y --out z
run_expect 2 "trace-import --in without --out" "$TRACE_IMPORT" -- --in x
run_expect 2 "trace-import unknown option" "$TRACE_IMPORT" -- --frobnicate
run_expect 0 "trace-import --help exits 0" "$TRACE_IMPORT" -- --help

run_expect 2 "validate: nonexistent file" "$TRACE_IMPORT" -- \
  --validate "$WORK/does_not_exist.trace"
printf 'garbage\n' > "$WORK/garbage.trace"
run_expect 2 "validate: not a trace file" "$TRACE_IMPORT" -- \
  --validate "$WORK/garbage.trace"
expect_in_output "diagnostic names the format" "not a tscclock-trace file"

# A malformed record: reference-mode truth fields inside a relative trace.
cat > "$WORK/badrecord.trace" <<'EOF'
tscclock-trace 1
ground_truth relative
nominal_period 0x1p-30
poll_period 0x1p+4
client 0
samples
x	0	0	0	0	0	100	0x1p+0	0x1.8p+0	200	200	0x1p+0	0x1p+0	0x1p+0
end 1 0 1
EOF
run_expect 2 "validate: per-mode field-count violation" "$TRACE_IMPORT" -- \
  --validate "$WORK/badrecord.trace"
expect_in_output "diagnostic names the offending record" "record 0"

# A warning-but-valid file: a single exchange is well-formed yet unscorable.
cat > "$WORK/short.trace" <<'EOF'
tscclock-trace 1
ground_truth relative
nominal_period 0x1p-30
poll_period 0x1p+4
client 0
samples
x	0	0	0	0	0	100	0x1p+0	0x1.8p+0	200	200
end 1 0 1
EOF
run_expect 1 "validate: unscorable trace exits 1" "$TRACE_IMPORT" -- \
  --validate "$WORK/short.trace"
expect_in_output "warning names the defect" "not scorable"

# -- ntp-collect usage errors ------------------------------------------------
run_expect 2 "ntp-collect with no server or mock" "$NTP_COLLECT" --
run_expect 2 "ntp-collect --server plus --mock" "$NTP_COLLECT" -- \
  --server localhost --mock --out "$WORK/x.trace"
run_expect 2 "ntp-collect without --out" "$NTP_COLLECT" -- --mock
run_expect 2 "ntp-collect bad --count" "$NTP_COLLECT" -- \
  --mock --out "$WORK/x.trace" --count 0
run_expect 2 "ntp-collect bad --server port" "$NTP_COLLECT" -- \
  --server localhost:99999 --out "$WORK/x.trace"
run_expect 0 "ntp-collect --help exits 0" "$NTP_COLLECT" -- --help

# -- sweep --trace-in/--trace-out refusals -----------------------------------
run_expect 2 "sweep refuses empty --trace-in" "$SWEEP" -- --trace-in ""
run_expect 2 "sweep refuses duplicate --trace-in" "$SWEEP" -- \
  --trace-in "$WORK/short.trace" --trace-in "$WORK/short.trace" \
  --estimators offline
run_expect 2 "sweep refuses nonexistent --trace-in" "$SWEEP" -- \
  --trace-in "$WORK/does_not_exist.trace" --estimators offline
run_expect 2 "sweep refuses malformed --trace-in" "$SWEEP" -- \
  --trace-in "$WORK/garbage.trace" --estimators offline
expect_in_output "refusal carries the validator's message" \
  "not a tscclock-trace file"
run_expect 2 "sweep refuses online estimators with --trace-in" "$SWEEP" -- \
  --trace-in "$WORK/short.trace" --estimators robust
expect_in_output "refusal points at replay specs" "replay specs"
run_expect 2 "sweep refuses multi-scenario --trace-out" "$SWEEP" -- \
  --trace-out "$WORK/x.trace" --estimators offline
run_expect 2 "sweep refuses fleet --trace-out" "$SWEEP" -- \
  --servers int --envs lab --polls 16 --fleet "fleet(n=2)" \
  --trace-out "$WORK/x.trace"

# -- End-to-end: record → export → import → replay, byte-identical -----------
SIM_ARGS=(--servers int --envs lab --polls 16 --schedules steady
          --estimators offline --duration-hours 2 --warmup-s 600 --seed 7)
run_expect 0 "sim run exporting a reference trace" "$SWEEP" -- \
  "${SIM_ARGS[@]}" --trace-out "$WORK/ref.trace" --csv "$WORK/direct.csv"
run_expect 0 "exported trace validates clean" "$TRACE_IMPORT" -- \
  --validate "$WORK/ref.trace"
run_expect 0 "canonicalize is byte-stable" "$TRACE_IMPORT" -- \
  --in "$WORK/ref.trace" --out "$WORK/ref2.trace"
if ! cmp -s "$WORK/ref.trace" "$WORK/ref2.trace"; then
  echo "FAIL: canonicalized trace differs from its canonical source" >&2
  failures=$((failures + 1))
else
  echo "ok: canonicalized trace is byte-identical"
fi
run_expect 0 "replaying the exported trace" "$SWEEP" -- \
  "${SIM_ARGS[@]}" --trace-in "$WORK/ref.trace" --csv "$WORK/replayed.csv"
# The imported cell's per-exchange rows must be byte-identical to the direct
# run's, modulo the scenario-name column.
cut -d, -f2- "$WORK/direct.csv" > "$WORK/direct.cut"
grep "^trace:\|^scenario," "$WORK/replayed.csv" | cut -d, -f2- \
  > "$WORK/replayed.cut"
if ! cmp -s "$WORK/direct.cut" "$WORK/replayed.cut"; then
  echo "FAIL: replayed CSV differs from the direct run's" >&2
  failures=$((failures + 1))
else
  echo "ok: exported trace replays byte-identical to the in-memory run"
fi

# -- End-to-end: offline collection through the loopback mock ----------------
"$NTP_COLLECT" --mock --count 64 --out "$WORK/live.trace" --quiet \
  >"$OUT" 2>&1
collect_status=$?
if [ "$collect_status" -ne 0 ] && grep -q "mock server unavailable" "$OUT"
then
  echo "skip: loopback UDP unavailable in this sandbox" >&2
else
  if [ "$collect_status" -ne 0 ]; then
    echo "FAIL: mock collection: expected exit 0, got $collect_status" >&2
    sed 's/^/    /' "$OUT" >&2
    failures=$((failures + 1))
  else
    echo "ok: mock collection"
  fi
  run_expect 0 "collected trace validates clean" "$TRACE_IMPORT" -- \
    --validate "$WORK/live.trace"
  run_expect 0 "collected trace replays as a relative-only cell" "$SWEEP" -- \
    "${SIM_ARGS[@]}" --trace-in "$WORK/live.trace"
  expect_in_output "relative row is marked (rel)" "(rel)"
  # The tracking percentiles must be populated numbers, not n/a: the (rel)
  # comparison row carries at least one digit column.
  if grep "(rel)" "$OUT" | grep -q "n/a"; then
    echo "FAIL: relative-only row is unpopulated (n/a)" >&2
    failures=$((failures + 1))
  else
    echo "ok: relative-only row is populated"
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures trace CLI test(s) failed" >&2
  exit 1
fi
echo "all trace CLI tests passed"
