// Tests for the RTT filter (point errors, running and windowed minima).
#include "core/point_error.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace tscclock::core {
namespace {

Params small_params() {
  Params p;
  p.poll_period = 16.0;
  p.shift_window = 160.0;  // 10-packet local window for tight tests
  return p;
}

TEST(RttFilter, TracksRunningMinimum) {
  RttFilter f(small_params());
  EXPECT_FALSE(f.valid());
  f.add(1000);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.rhat(), 1000);
  f.add(1200);
  EXPECT_EQ(f.rhat(), 1000);
  f.add(900);
  EXPECT_EQ(f.rhat(), 900);
  EXPECT_EQ(f.samples(), 3u);
}

TEST(RttFilter, PointErrorInSeconds) {
  RttFilter f(small_params());
  f.add(1000);
  f.add(1500);
  EXPECT_DOUBLE_EQ(f.point_error(1500, 1e-6), 500e-6);
  EXPECT_DOUBLE_EQ(f.point_error(1000, 1e-6), 0.0);
}

TEST(RttFilter, PointErrorReEvaluatesWithPeriod) {
  // §6.1: point errors change implicitly when p̂ changes.
  RttFilter f(small_params());
  f.add(1000);
  EXPECT_DOUBLE_EQ(f.point_error(1100, 1e-6), 100e-6);
  EXPECT_DOUBLE_EQ(f.point_error(1100, 2e-6), 200e-6);
}

TEST(RttFilter, LocalMinFillsAfterWindow) {
  auto params = small_params();
  RttFilter f(params);
  const std::size_t w = params.packets(params.shift_window);
  for (std::size_t i = 0; i < w - 1; ++i) f.add(1000 + static_cast<int>(i));
  EXPECT_FALSE(f.local_min_full());
  f.add(2000);
  EXPECT_TRUE(f.local_min_full());
  EXPECT_EQ(f.local_min(), 1000);
}

TEST(RttFilter, LocalMinSlidesAboveGlobal) {
  // After an upward shift in delays, r̂_l floats above r̂ — the §6.2
  // detection signal.
  auto params = small_params();
  const std::size_t w = params.packets(params.shift_window);
  RttFilter f(params);
  for (std::size_t i = 0; i < w; ++i) f.add(1000);
  for (std::size_t i = 0; i < w; ++i) f.add(1900);  // shifted up
  EXPECT_EQ(f.rhat(), 1000);       // global min remembers the old level
  EXPECT_EQ(f.local_min(), 1900);  // local window sees only the new level
}

TEST(RttFilter, ForceRhatOverridesAndRecovers) {
  RttFilter f(small_params());
  f.add(1000);
  f.force_rhat(1800);
  EXPECT_EQ(f.rhat(), 1800);
  f.add(1500);  // downward shifts re-assert automatically
  EXPECT_EQ(f.rhat(), 1500);
}

TEST(RttFilter, ResetLocalWindow) {
  auto params = small_params();
  RttFilter f(params);
  for (int i = 0; i < 20; ++i) f.add(1000);
  f.reset_local_window();
  EXPECT_FALSE(f.local_min_valid());
  f.add(1100);
  EXPECT_TRUE(f.local_min_valid());
  EXPECT_EQ(f.local_min(), 1100);
}

TEST(RttFilter, ContractsOnMisuse) {
  RttFilter f(small_params());
  EXPECT_THROW((void)f.rhat(), ContractViolation);
  EXPECT_THROW((void)f.point_error(100, 1e-6), ContractViolation);
  EXPECT_THROW(f.add(0), ContractViolation);
  EXPECT_THROW(f.add(-5), ContractViolation);
  f.add(100);
  EXPECT_THROW((void)f.point_error(100, 0.0), ContractViolation);
  EXPECT_THROW(f.force_rhat(0), ContractViolation);
}

}  // namespace
}  // namespace tscclock::core
