// Tests for the robust global rate estimator p̄ (paper §5.2 + §6.1 warm-up).
#include "core/rate.hpp"

#include <gtest/gtest.h>

#include "core/point_error.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.warmup_samples = 8;
  return p;
}

PacketRecord record_of(const RawExchange& ex, std::uint64_t seq,
                       TscDelta rhat) {
  PacketRecord rec;
  rec.seq = seq;
  rec.stamps = ex;
  rec.rtt = ex.rtt_counts();
  rec.error_counts = rec.rtt - rhat;
  if (rec.error_counts < 0) rec.error_counts = 0;
  return rec;
}

// Drive estimator + filter together over n packets from the link.
struct Harness {
  explicit Harness(const Params& params, double initial_period)
      : filter(params), rate(params, initial_period) {}

  GlobalRateEstimator::Result feed(const RawExchange& ex, double period_hint) {
    filter.add(ex.rtt_counts());
    const Seconds e = filter.point_error(ex.rtt_counts(), period_hint);
    const auto rec = record_of(ex, seq++, filter.rhat());
    return rate.process(rec, e);
  }

  RttFilter filter;
  GlobalRateEstimator rate;
  std::uint64_t seq = 0;
};

TEST(GlobalRate, StartsFromInitialGuess) {
  GlobalRateEstimator rate(test_params(), 2.1e-9);
  EXPECT_DOUBLE_EQ(rate.period(), 2.1e-9);
  EXPECT_FALSE(rate.warmed_up());
}

TEST(GlobalRate, WarmupConvergesOnCleanData) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth * 1.00005);  // 50 PPM initial error
  for (int i = 0; i < 8; ++i) h.feed(link.next(), truth);
  EXPECT_TRUE(h.rate.warmed_up());
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-7);
}

TEST(GlobalRate, ErrorDampsWithGrowingBaseline) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth);
  // Mild queueing noise on every packet.
  for (int i = 0; i < 2000; ++i)
    h.feed(link.next(50e-6 * ((i * 7) % 3), 50e-6 * ((i * 5) % 2)), truth);
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-8);  // ≤ 0.01 PPM
  EXPECT_LT(h.rate.quality(), 1e-7);
}

TEST(GlobalRate, RejectsHighDelayPackets) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  Harness h(params, truth);
  for (int i = 0; i < 20; ++i) h.feed(link.next(), truth);
  const std::uint64_t accepted_before = h.rate.accepted_count();
  // A burst of congested packets (far above E* = 0.3 ms): all rejected.
  for (int i = 0; i < 10; ++i) {
    const auto res = h.feed(link.next(5e-3, 5e-3), truth);
    EXPECT_FALSE(res.accepted);
  }
  EXPECT_EQ(h.rate.accepted_count(), accepted_before);
}

TEST(GlobalRate, EstimateSurvivesTotalOutage) {
  // §5.2: "even if connectivity were lost completely, the current value of
  // p̂ remains valid" — nothing decays or resets.
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth);
  for (int i = 0; i < 100; ++i) h.feed(link.next(), truth);
  const double before = h.rate.period();
  link.advance(3 * duration::kDay);  // outage: no packets at all
  EXPECT_DOUBLE_EQ(h.rate.period(), before);
  // Estimation resumes immediately with an even longer baseline.
  const auto res = h.feed(link.next(), truth);
  EXPECT_TRUE(res.accepted);
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-8);
}

TEST(GlobalRate, CorruptedServerStampsBoundedByAcceptance) {
  // Server stamp errors do not change the RTT, so such packets pass the
  // filter; but the damage to p̂ is bounded by the growing baseline.
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth);
  for (int i = 0; i < 5000; ++i) h.feed(link.next(), truth);
  // One poisoned accepted packet: +1 ms on both stamps.
  h.feed(link.next(0, 0, 1e-3), truth);
  // Baseline is 5000·16 s = 8e4 s; damage ≤ 1ms/8e4s = 1.25e-8.
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 3e-8);
}

TEST(GlobalRate, QualityBoundIsHonest) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth);
  for (int i = 0; i < 1000; ++i)
    h.feed(link.next(20e-6 * ((i * 3) % 4), 0), truth);
  const double actual_err = std::fabs(h.rate.period() / truth - 1.0);
  EXPECT_LE(actual_err, h.rate.quality() + 1e-10);
}

TEST(GlobalRate, AnchorReplacementKeepsEstimateIfQualityWorse) {
  SyntheticLink link;
  const double truth = link.config().period;
  Harness h(test_params(), truth);
  for (int i = 0; i < 100; ++i) h.feed(link.next(), truth);
  // Capture a mid-stream packet to pose as the (older-than-latest)
  // replacement candidate, then keep feeding so `latest` moves past it.
  const auto candidate = record_of(link.next(), h.seq++, h.filter.rhat());
  for (int i = 0; i < 100; ++i) h.feed(link.next(), truth);
  const double before = h.rate.period();
  ASSERT_TRUE(h.rate.anchor().has_value());

  // Pretend the candidate had a terrible point error: the pair quality is
  // worse than the current one, so the value must not change...
  h.rate.replace_anchor(candidate, 8e-3);
  EXPECT_DOUBLE_EQ(h.rate.period(), before);
  // ...but the anchor itself moved (its data would otherwise be gone).
  EXPECT_EQ(h.rate.anchor()->seq, candidate.seq);
}

TEST(GlobalRate, AnchorReplacementAdoptsBetterPair) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  Harness h(params, truth);
  for (int i = 0; i < 50; ++i) h.feed(link.next(200e-6, 200e-6), truth);
  // All packets so far carried 400 µs of queueing → mediocre quality.
  for (int i = 0; i < 500; ++i) link.next();  // time passes (discarded polls)
  const auto clean = record_of(link.next(), h.seq++, h.filter.rhat());
  // The clean far-past candidate paired with the current latest improves
  // quality — but the candidate must be older than `latest`, so feed a new
  // clean latest first.
  h.feed(link.next(), truth);
  h.rate.replace_anchor(clean, 0.0);
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-7);
}

TEST(GlobalRate, WarmupHandlesIdenticalBestPacket) {
  // Degenerate warm-up input: near/far windows may select the same packet
  // when n is small; the estimator must not divide by zero.
  SyntheticLink link;
  const double truth = link.config().period;
  GlobalRateEstimator rate(test_params(), truth);
  RttFilter filter(test_params());
  const auto ex = link.next();
  filter.add(ex.rtt_counts());
  const auto rec = record_of(ex, 0, filter.rhat());
  EXPECT_NO_THROW(rate.process(rec, 0.0));
  EXPECT_DOUBLE_EQ(rate.period(), truth);  // unchanged: only one packet
}

}  // namespace
}  // namespace tscclock::core
