// Unit tests for the time/counter vocabulary (common/time_types).
#include "common/time_types.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace tscclock {
namespace {

TEST(PpmConversion, RoundTrips) {
  EXPECT_DOUBLE_EQ(ppm(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(to_ppm(ppm(0.1)), 0.1);
  EXPECT_DOUBLE_EQ(ppm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ppm(-50.0), -5e-5);
}

TEST(CounterDelta, HandlesForwardDifferences) {
  EXPECT_EQ(counter_delta(100, 40), 60);
  EXPECT_EQ(counter_delta(40, 100), -60);
  EXPECT_EQ(counter_delta(0, 0), 0);
}

TEST(CounterDelta, HandlesLargeCounters) {
  const TscCount big = 4'000'000'000'000'000ULL;  // months at ~550 MHz
  EXPECT_EQ(counter_delta(big + 123, big), 123);
}

TEST(DeltaToSeconds, ConvertsWithPeriod) {
  const double period = 2e-9;  // 500 MHz
  EXPECT_DOUBLE_EQ(delta_to_seconds(500'000'000, period), 1.0);
  EXPECT_DOUBLE_EQ(delta_to_seconds(-500'000'000, period), -1.0);
  EXPECT_NEAR(seconds_to_delta(1.0, period), 5e8, 1e-3);
}

TEST(CounterTimescale, ReadsAffine) {
  CounterTimescale ts(1000, 5.0, 1e-3);
  EXPECT_DOUBLE_EQ(ts.read(1000), 5.0);
  EXPECT_DOUBLE_EQ(ts.read(2000), 6.0);
  EXPECT_DOUBLE_EQ(ts.read(0), 4.0);
}

TEST(CounterTimescale, BetweenUsesPeriodOnly) {
  CounterTimescale ts(1000, 5.0, 1e-3);
  EXPECT_DOUBLE_EQ(ts.between(1000, 3000), 2.0);
  EXPECT_DOUBLE_EQ(ts.between(3000, 1000), -2.0);
}

TEST(CounterTimescale, RebaseKeepsClockFunction) {
  CounterTimescale ts(0, 0.0, 1e-6);
  const Seconds before = ts.read(12345678);
  ts.rebase(10'000'000);
  EXPECT_DOUBLE_EQ(ts.read(12345678), before);
  EXPECT_EQ(ts.anchor_count(), 10'000'000u);
}

TEST(CounterTimescale, PeriodChangePreservesReadingAtAnchor) {
  CounterTimescale ts(0, 0.0, 1.0e-9);
  const TscCount pivot = 500'000'000;
  const Seconds at_pivot = ts.read(pivot);
  ts.set_period_preserving_reading(pivot, 1.1e-9);
  EXPECT_DOUBLE_EQ(ts.read(pivot), at_pivot);          // continuity
  EXPECT_DOUBLE_EQ(ts.period(), 1.1e-9);
  // Future readings use the new period.
  EXPECT_NEAR(ts.read(pivot + 1'000'000) - at_pivot, 1.1e-3, 1e-12);
}

TEST(CounterTimescale, ShiftMovesWholeTimescale) {
  CounterTimescale ts(0, 0.0, 1e-9);
  const Seconds before = ts.read(1000);
  ts.shift(0.5);
  EXPECT_DOUBLE_EQ(ts.read(1000), before + 0.5);
}

TEST(CounterTimescale, RejectsNonPositivePeriod) {
  EXPECT_THROW(CounterTimescale(0, 0.0, 0.0), ContractViolation);
  EXPECT_THROW(CounterTimescale(0, 0.0, -1e-9), ContractViolation);
  CounterTimescale ts(0, 0.0, 1e-9);
  EXPECT_THROW(ts.set_period_preserving_reading(0, 0.0), ContractViolation);
}

TEST(CounterTimescale, SubNanosecondConsistencyAtMonthScale) {
  // Differencing first keeps double error < 1 ns even at ~4e15 counts.
  const double period = 1.822e-9;
  CounterTimescale ts(4'000'000'000'000'000ULL, 7.0e6, period);
  const TscCount a = 4'000'000'000'000'000ULL + 1'000'000;
  const TscCount b = a + 548'000'000;  // ~1 s later
  EXPECT_NEAR(ts.read(b) - ts.read(a), 548'000'000 * period, 1e-9);
}

TEST(FormatDuration, PicksAdaptiveUnits) {
  EXPECT_EQ(format_duration(30e-6), "30.0us");
  EXPECT_EQ(format_duration(1.5e-3), "1.500ms");
  EXPECT_EQ(format_duration(2.0), "2.000s");
  EXPECT_EQ(format_duration(5e-9), "5.0ns");
}

TEST(FormatRateError, QuotesPpm) {
  EXPECT_EQ(format_rate_error(ppm(0.1)), "0.1 PPM");
}

}  // namespace
}  // namespace tscclock
