// Tests for server-identity tracking and the clock's server-change
// reaction, including the testbed's mid-trace server switching.
#include "core/server_change.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/clock.hpp"
#include "sim/scenario.hpp"
#include "synthetic_link.hpp"

namespace tscclock {
namespace {

using core::ServerChangeDetector;
using core::ServerIdentity;
using testing::SyntheticLink;

TEST(ServerChangeDetector, FirstObservationIsNotAChange) {
  ServerChangeDetector det;
  EXPECT_FALSE(det.has_identity());
  EXPECT_FALSE(det.observe({1, 1}, 0).has_value());
  EXPECT_TRUE(det.has_identity());
  EXPECT_EQ(det.changes(), 0u);
}

TEST(ServerChangeDetector, DetectsIdentityChange) {
  ServerChangeDetector det;
  det.observe({1, 1}, 0);
  const auto change = det.observe({2, 1}, 5);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(change->previous.reference_id, 1u);
  EXPECT_EQ(change->current.reference_id, 2u);
  EXPECT_EQ(change->packet_index, 5u);
  EXPECT_EQ(det.changes(), 1u);
}

TEST(ServerChangeDetector, StratumChangeCounts) {
  ServerChangeDetector det;
  det.observe({1, 1}, 0);
  EXPECT_TRUE(det.observe({1, 2}, 1).has_value());
}

TEST(ServerChangeDetector, StableIdentityIsSilent) {
  ServerChangeDetector det;
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(det.observe({7, 1}, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(det.changes(), 0u);
}

TEST(ClockServerChange, ResetsRttLevel) {
  // After notify_server_change the minimum re-forms from new data only:
  // a *smaller* new minimum is adopted instantly even though the old path's
  // minimum was larger — exactly what a route/server change needs.
  SyntheticLink::Config far_config;
  far_config.d_forward = 900e-6;
  far_config.d_backward = 850e-6;
  SyntheticLink far_link(far_config);
  core::Params params;
  params.poll_period = 16.0;
  params.warmup_samples = 8;
  core::TscNtpClock clock(params, far_config.period);
  for (int i = 0; i < 100; ++i) clock.process_exchange(far_link.next());
  const double rhat_far = clock.status().min_rtt;
  EXPECT_NEAR(rhat_far, 900e-6 + 40e-6 + 850e-6, 30e-6);

  clock.notify_server_change();
  EXPECT_EQ(clock.status().server_changes, 1u);

  // New nearby server: same oscillator (continue the counter timeline).
  SyntheticLink::Config near_config = far_config;
  near_config.d_forward = 200e-6;
  near_config.d_backward = 150e-6;
  SyntheticLink near_link(near_config);
  near_link.advance(far_link.now());
  for (int i = 0; i < 50; ++i) clock.process_exchange(near_link.next());
  EXPECT_NEAR(clock.status().min_rtt, 200e-6 + 40e-6 + 150e-6, 30e-6);
}

TEST(ClockServerChange, OffsetSurvivesSwitchToCloserServer) {
  // Switching servers changes Δ (so the ambiguity moves by ΔΔ/2) but must
  // not destabilize the estimate.
  SyntheticLink::Config config;
  SyntheticLink link(config);
  core::Params params;
  params.poll_period = 16.0;
  params.warmup_samples = 8;
  params.offset_window = 320.0;
  core::TscNtpClock clock(params, config.period);
  for (int i = 0; i < 200; ++i) clock.process_exchange(link.next());
  const Seconds before = clock.offset_estimate();

  clock.notify_server_change();
  SyntheticLink::Config closer = config;
  closer.d_forward = 200e-6;
  closer.d_backward = 180e-6;  // Δ: 50 µs → 20 µs
  SyntheticLink near_link(closer);
  near_link.advance(link.now());
  Seconds last = 0;
  for (int i = 0; i < 100; ++i)
    last = clock.process_exchange(near_link.next()).offset_estimate;
  // New ambiguity −10 µs instead of −25 µs: estimate moves by ~15 µs.
  EXPECT_NEAR(last - before, 15e-6, 10e-6);
}

TEST(TestbedServerSwitch, IdentityChangesAtSwitchTime) {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.duration = 2 * duration::kHour;
  scenario.seed = 11;
  scenario.server_switches.push_back(
      {duration::kHour, sim::ServerKind::kLoc});
  sim::Testbed testbed(scenario);
  bool saw_switch = false;
  std::uint32_t before_id = 0;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    if (ex->truth.ta < duration::kHour) {
      before_id = ex->server_id;
    } else {
      EXPECT_NE(ex->server_id, before_id);
      saw_switch = true;
      // The RTT level now reflects ServerLoc (0.38 ms not 0.89 ms).
      EXPECT_LT(ex->truth.rtt(), 0.7e-3 + 20e-3);
    }
  }
  EXPECT_TRUE(saw_switch);
}

TEST(TestbedServerSwitch, RttLevelDropsAfterSwitch) {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.duration = 2 * duration::kHour;
  scenario.seed = 13;
  scenario.server_switches.push_back(
      {duration::kHour, sim::ServerKind::kLoc});
  sim::Testbed testbed(scenario);
  double min_before = 1;
  double min_after = 1;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    auto& slot = ex->truth.ta < duration::kHour ? min_before : min_after;
    slot = std::min(slot, ex->truth.rtt());
  }
  EXPECT_NEAR(min_before, 0.89e-3, 0.15e-3);
  EXPECT_NEAR(min_after, 0.38e-3, 0.10e-3);
}

TEST(TestbedServerSwitch, RejectsOutOfOrderSwitches) {
  sim::ScenarioConfig scenario;
  scenario.server_switches.push_back({200.0, sim::ServerKind::kLoc});
  scenario.server_switches.push_back({100.0, sim::ServerKind::kExt});
  EXPECT_THROW(sim::Testbed{scenario}, ContractViolation);
}

TEST(EndToEnd, NotifiedClockRecoversFasterAfterSwitchToFartherServer) {
  // Switching Int → Ext raises the minimum RTT by ~13 ms. Without
  // notification this looks like a massive upward shift (detected only
  // after Ts, all packets mis-rated meanwhile); with notification the
  // filter restarts instantly.
  const auto run = [](bool notify) {
    sim::ScenarioConfig scenario;
    scenario.duration = 4 * duration::kHour;
    scenario.seed = 17;
    scenario.server_switches.push_back(
        {2 * duration::kHour, sim::ServerKind::kExt});
    sim::Testbed testbed(scenario);
    core::Params params;
    params.poll_period = scenario.poll_period;
    core::TscNtpClock clock(params, testbed.nominal_period());
    core::ServerChangeDetector detector;
    std::size_t weighted_after_switch = 0;
    std::size_t total_after_switch = 0;
    std::uint64_t idx = 0;
    while (auto ex = testbed.next()) {
      if (ex->lost) continue;
      if (notify &&
          detector.observe({ex->server_id, ex->server_stratum}, idx++))
        clock.notify_server_change();
      const auto report = clock.process_exchange(
          {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
      if (ex->truth.ta > 2 * duration::kHour + 600) {
        ++total_after_switch;
        if (report.offset_weighted) ++weighted_after_switch;
      }
    }
    return std::make_pair(weighted_after_switch, total_after_switch);
  };
  const auto with = run(true);
  const auto without = run(false);
  ASSERT_GT(with.second, 100u);
  // With notification the weighted path resumes essentially immediately.
  EXPECT_GT(with.first * 10, with.second * 9);
  // Without it, a large fraction of post-switch packets are mis-rated
  // until the level-shift machinery reacts.
  EXPECT_LT(without.first, with.first);
}

}  // namespace
}  // namespace tscclock
