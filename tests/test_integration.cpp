// Integration tests: the full pipeline (testbed → wire → TscNtpClock)
// must reproduce the paper's headline behaviours on multi-hour/day runs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "core/clock.hpp"
#include "sim/scenario.hpp"

namespace tscclock {
namespace {

struct RunStats {
  std::vector<double> errors;  // θ̂ − θg per packet (post warm-up)
  core::ClockStatus status;
  double period_error_ppm = 0;
};

RunStats run(sim::ScenarioConfig scenario, core::Params params,
             Seconds skip = 2 * duration::kHour) {
  sim::Testbed testbed(scenario);
  core::TscNtpClock clock(params, testbed.nominal_period());
  RunStats out;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available || ex->truth.tb < skip) continue;
    const Seconds theta_g = clock.uncorrected_time(ex->tf_counts) - ex->tg;
    out.errors.push_back(report.offset_estimate - theta_g);
  }
  out.status = clock.status();
  out.period_error_ppm =
      (clock.period() / testbed.true_period() - 1.0) * 1e6;
  return out;
}

core::Params params_for_poll(Seconds poll) {
  core::Params p;
  p.poll_period = poll;
  return p;
}

TEST(Integration, HeadlineAccuracyServerInt) {
  // Paper: median ≈ 30 µs magnitude, IQR ~15-25 µs with ServerInt.
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.duration = duration::kDay;
  scenario.seed = 1234;
  const auto stats = run(scenario, params_for_poll(16.0));
  ASSERT_GT(stats.errors.size(), 3000u);
  const auto s = percentile_summary(stats.errors);
  EXPECT_LT(std::fabs(s.p50), 60e-6);  // tens of µs
  EXPECT_LT(s.iqr(), 60e-6);
  EXPECT_LT(s.p99 - s.p01, 300e-6);
}

TEST(Integration, RateAccuracyBeats0_1PPM) {
  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 77;
  const auto stats = run(scenario, params_for_poll(16.0));
  EXPECT_LT(std::fabs(stats.period_error_ppm), 0.1);
  EXPECT_TRUE(stats.status.warmed_up);
}

TEST(Integration, LocalServerBeatsExternalServer) {
  // Fig. 10 ordering: ServerLoc < ServerInt < ServerExt in error spread.
  auto make = [](sim::ServerKind kind) {
    sim::ScenarioConfig s;
    s.server = kind;
    s.duration = duration::kDay;
    s.seed = 5150;
    return s;
  };
  const auto loc = run(make(sim::ServerKind::kLoc), params_for_poll(16.0));
  const auto ext = run(make(sim::ServerKind::kExt), params_for_poll(16.0));
  const auto s_loc = percentile_summary(loc.errors);
  const auto s_ext = percentile_summary(ext.errors);
  EXPECT_LT(std::fabs(s_loc.p50), std::fabs(s_ext.p50));
  EXPECT_LT(s_loc.iqr(), s_ext.iqr());
  // ServerExt's median error reflects its Δ/2 = 250 µs ambiguity.
  EXPECT_GT(std::fabs(s_ext.p50), 100e-6);
}

TEST(Integration, PollingPeriodInsensitivity) {
  // Fig. 9(c): 16 s vs 256 s changes the median only slightly.
  sim::ScenarioConfig base;
  base.duration = duration::kDay;
  base.seed = 888;
  auto s16 = base;
  s16.poll_period = 16.0;
  auto s256 = base;
  s256.poll_period = 256.0;
  const auto r16 = run(s16, params_for_poll(16.0));
  const auto r256 = run(s256, params_for_poll(256.0));
  const double m16 = percentile_summary(r16.errors).p50;
  const double m256 = percentile_summary(r256.errors).p50;
  EXPECT_LT(std::fabs(m16 - m256), 40e-6);
}

TEST(Integration, SurvivesMultiDayOutage) {
  // Fig. 11(a): a 3.8-day gap, then fast recovery.
  sim::ScenarioConfig scenario;
  scenario.duration = 6 * duration::kDay;
  scenario.seed = 404;
  scenario.events.add_outage(1.0 * duration::kDay, 4.8 * duration::kDay);
  sim::Testbed testbed(scenario);
  core::TscNtpClock clock(params_for_poll(16.0), testbed.nominal_period());
  std::vector<double> post_gap_errors;
  std::size_t packets_after_gap = 0;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available) continue;
    if (ex->truth.tb > 4.8 * duration::kDay) {
      ++packets_after_gap;
      if (packets_after_gap > 20) {  // allow a brief re-acquisition
        const Seconds theta_g =
            clock.uncorrected_time(ex->tf_counts) - ex->tg;
        post_gap_errors.push_back(report.offset_estimate - theta_g);
      }
    }
  }
  ASSERT_GT(post_gap_errors.size(), 1000u);
  const auto s = percentile_summary(post_gap_errors);
  EXPECT_LT(std::fabs(s.p50), 100e-6);  // recovered to tens of µs
}

TEST(Integration, ServerFaultDamageBounded) {
  // Fig. 11(b): 150 ms server error for a few minutes → damage ≤ ~1 ms.
  sim::ScenarioConfig scenario;
  scenario.duration = 12 * duration::kHour;
  scenario.seed = 2718;
  scenario.events.add_server_fault(6 * duration::kHour,
                                   6 * duration::kHour + 5 * duration::kMinute,
                                   0.150);
  sim::Testbed testbed(scenario);
  core::TscNtpClock clock(params_for_poll(16.0), testbed.nominal_period());
  double worst_during_fault = 0;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available || ex->truth.tb < 2 * duration::kHour) continue;
    const Seconds theta_g = clock.uncorrected_time(ex->tf_counts) - ex->tg;
    const double err = std::fabs(report.offset_estimate - theta_g);
    worst_during_fault = std::max(worst_during_fault, err);
  }
  // Paper Fig. 11(b): damage limited "to a millisecond or less" at a 64 s
  // poll; at 16 s the window is 4× larger so the pre-freeze creep can reach
  // a couple of ms — still 50× smaller than the 150 ms fault.
  EXPECT_LT(worst_during_fault, 3e-3);
  EXPECT_GT(clock.status().offset_sanity_triggers, 0u);
}

TEST(Integration, PermanentUpshiftDetectedAndAbsorbed) {
  // Fig. 11(c): +0.9 ms host→server shift, detected after Ts; estimates
  // jump by ~Δshift/2 (the asymmetry changed) but stay stable.
  sim::ScenarioConfig scenario;
  scenario.duration = 12 * duration::kHour;
  scenario.seed = 31337;
  scenario.events.add_level_shift(
      {6 * duration::kHour, sim::kForever, 0.9e-3, 0.0});
  sim::Testbed testbed(scenario);
  core::TscNtpClock clock(params_for_poll(16.0), testbed.nominal_period());
  std::vector<double> tail_errors;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available) continue;
    if (ex->truth.tb > 9 * duration::kHour) {
      const Seconds theta_g = clock.uncorrected_time(ex->tf_counts) - ex->tg;
      tail_errors.push_back(report.offset_estimate - theta_g);
    }
  }
  EXPECT_GE(clock.status().upshifts, 1u);
  ASSERT_GT(tail_errors.size(), 100u);
  // After absorption the error settles near −(Δ + 0.9ms)/2 relative to
  // truth, i.e. shifted by −0.45 ms from the pre-shift level against the
  // *reference* convention (which tracks the true offset): the estimate is
  // stable with small spread.
  const auto s = percentile_summary(tail_errors);
  EXPECT_LT(s.iqr(), 100e-6);
}

TEST(Integration, SymmetricDownshiftIsSeamless) {
  // Fig. 11(d): a symmetric downward shift has no visible effect.
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kExt;
  scenario.duration = 8 * duration::kHour;
  scenario.seed = 6022;
  scenario.events.add_level_shift(
      {4 * duration::kHour, sim::kForever, -0.18e-3, -0.18e-3});
  sim::Testbed testbed(scenario);
  core::TscNtpClock clock(params_for_poll(16.0), testbed.nominal_period());
  std::vector<double> before;
  std::vector<double> after;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available || ex->truth.tb < 2 * duration::kHour) continue;
    const Seconds theta_g = clock.uncorrected_time(ex->tf_counts) - ex->tg;
    const double err = report.offset_estimate - theta_g;
    (ex->truth.tb < 4 * duration::kHour ? before : after).push_back(err);
  }
  ASSERT_GT(before.size(), 100u);
  ASSERT_GT(after.size(), 100u);
  // Median moves by well under the shift magnitude (Δ unchanged).
  EXPECT_LT(std::fabs(percentile_summary(after).p50 -
                      percentile_summary(before).p50),
            80e-6);
}

TEST(Integration, LaboratoryNoisierThanMachineRoom) {
  auto make = [](sim::Environment env) {
    sim::ScenarioConfig s;
    s.environment = env;
    s.duration = duration::kDay;
    s.seed = 1999;
    return s;
  };
  const auto lab = run(make(sim::Environment::kLaboratory),
                       params_for_poll(16.0));
  const auto mr = run(make(sim::Environment::kMachineRoom),
                      params_for_poll(16.0));
  EXPECT_GT(percentile_summary(lab.errors).p99 -
                percentile_summary(lab.errors).p01,
            0.8 * (percentile_summary(mr.errors).p99 -
                   percentile_summary(mr.errors).p01));
}

}  // namespace
}  // namespace tscclock
