// Tests for trace persistence (sim/trace): exact round-trip of counter
// values, format validation, and the offline-processing workflow.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/offline.hpp"

namespace tscclock::sim {
namespace {

std::vector<Exchange> sample_trace(Seconds duration = 1800.0) {
  ScenarioConfig scenario;
  scenario.duration = duration;
  scenario.seed = 77;
  Testbed testbed(scenario);
  return testbed.generate_all();
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/tscclock_trace_test.csv";
};

TEST_F(TraceTest, RoundTripIsExact) {
  const auto original = sample_trace();
  ASSERT_FALSE(original.empty());
  write_trace(path_, original);
  const auto loaded = read_trace(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t k = 0; k < original.size(); ++k) {
    const auto& a = original[k];
    const auto& b = loaded[k];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.lost, b.lost);
    // Counter values are integers and must survive exactly.
    EXPECT_EQ(a.ta_counts, b.ta_counts);
    EXPECT_EQ(a.tf_counts, b.tf_counts);
    EXPECT_EQ(a.tf_counts_corrected, b.tf_counts_corrected);
    EXPECT_EQ(a.server_id, b.server_id);
    EXPECT_EQ(a.server_stratum, b.server_stratum);
    // Seconds survive to sub-ns at these magnitudes.
    EXPECT_NEAR(a.tb_stamp, b.tb_stamp, 1e-9);
    EXPECT_NEAR(a.te_stamp, b.te_stamp, 1e-9);
    EXPECT_NEAR(a.tg, b.tg, 1e-9);
    EXPECT_NEAR(a.truth.tf, b.truth.tf, 1e-9);
  }
}

TEST_F(TraceTest, EmptyTraceRoundTrips) {
  write_trace(path_, {});
  EXPECT_TRUE(read_trace(path_).empty());
}

TEST_F(TraceTest, RejectsMissingFile) {
  EXPECT_THROW(read_trace("/tmp/definitely_missing_tscclock.csv"),
               std::runtime_error);
}

TEST_F(TraceTest, RejectsBadHeader) {
  std::ofstream out(path_);
  out << "not,a,trace\n";
  out.close();
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, RejectsCorruptRow) {
  const auto original = sample_trace(600.0);
  write_trace(path_, original);
  std::ofstream out(path_, std::ios::app);
  out << "1,0,not_a_number,0,0,0,0,1,0,1,1,0,0,0,0,0,0,0\n";
  out.close();
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, RejectsWrongArity) {
  const auto original = sample_trace(600.0);
  write_trace(path_, original);
  std::ofstream out(path_, std::ios::app);
  out << "1,2,3\n";
  out.close();
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceTest, SupportsOfflineWorkflow) {
  // The intended pipeline: generate → persist → reload → smooth offline.
  ScenarioConfig scenario;
  scenario.duration = 2 * duration::kHour;
  scenario.seed = 99;
  Testbed testbed(scenario);
  write_trace(path_, testbed.generate_all());

  const auto loaded = read_trace(path_);
  std::vector<core::RawExchange> raws;
  for (const auto& ex : loaded) {
    if (ex.lost) continue;
    raws.push_back({ex.ta_counts, ex.tb_stamp, ex.te_stamp, ex.tf_counts});
  }
  core::Params params;
  params.poll_period = scenario.poll_period;
  const auto result = core::smooth_offsets(
      raws, params, 1.0 / 548.6552e6);
  EXPECT_EQ(result.offsets.size(), raws.size());
  // Smoothed offsets track the reference within tens of µs.
  std::size_t checked = 0;
  std::size_t idx = 0;
  for (const auto& ex : loaded) {
    if (ex.lost) continue;
    const std::size_t k = idx++;
    if (!ex.ref_available || k < 50) continue;
    const Seconds theta_g = result.timescale.read(ex.tf_counts) - ex.tg;
    EXPECT_NEAR(result.offsets[k], theta_g, 120e-6);
    ++checked;
  }
  EXPECT_GT(checked, 300u);
}

}  // namespace
}  // namespace tscclock::sim
