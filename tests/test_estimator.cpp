// Tests for the estimator abstraction layer (harness::ClockEstimator, the
// three adapters, and MultiEstimatorSession).
//
// The load-bearing guarantees:
//   * golden equivalence — an SwNtpEstimator lane of a MultiEstimatorSession
//     scores bit-identically to the legacy pattern of co-driving an
//     SwNtpClock from a CallbackSink attached to the robust session (the
//     pre-refactor duel loop of bench/ablation_baseline.cpp is preserved
//     below as the reference implementation);
//   * the default ClockSession constructor and an explicit TscNtpEstimator
//     are the same thing, bit for bit;
//   * every lane of a MultiEstimatorSession sees the identical exchange
//     stream with its own independent scoring state;
//   * the registry round-trips names and builds working estimators (the
//     spec/parsing layer itself is covered in test_estimator_spec.cpp).
#include "harness/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baseline/swntp.hpp"
#include "common/contracts.hpp"
#include "harness/estimator_spec.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

namespace tscclock::harness {
namespace {

sim::ScenarioConfig duel_scenario(std::uint64_t seed = 777) {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = 2 * duration::kHour;
  scenario.seed = seed;
  // A server fault long enough to make the SW clock's discipline work and a
  // loss burst, so the co-driven equivalence covers the interesting paths.
  scenario.events.add_server_fault(4000.0, 5500.0, 0.150);
  scenario.events.add_outage(2000.0, 2300.0);
  return scenario;
}

core::Params params_for(const sim::ScenarioConfig& scenario) {
  return core::Params::for_poll_period(scenario.poll_period);
}

SessionConfig duel_config(const sim::ScenarioConfig& scenario) {
  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = 20 * duration::kMinute;
  config.warmup_policy = WarmupPolicy::kGroundTruth;
  return config;
}

// -- Golden equivalence: the legacy co-driven duel loop --------------------

/// The pre-refactor head-to-head pattern (bench/ablation_baseline.cpp before
/// the estimator layer), verbatim: the robust clock runs in the harness with
/// emit_unevaluated on, and the SW clock is co-driven from the record stream
/// inside a CallbackSink.
struct LegacyDuel {
  std::vector<double> sw_errors;   ///< sw.time(Tf) − Tg per evaluated record
  std::vector<double> sw_rates;    ///< effective_rate() per evaluated record
  std::uint64_t sw_steps = 0;
  std::uint64_t sw_samples = 0;
};

LegacyDuel legacy_codriven_duel(const sim::ScenarioConfig& scenario) {
  sim::Testbed testbed(scenario);
  auto config = duel_config(scenario);
  config.emit_unevaluated = true;  // the SW clock must also eat warm-up
  ClockSession session(config, testbed.nominal_period());
  baseline::SwNtpClock sw(baseline::PllConfig{}, testbed.nominal_period());

  LegacyDuel duel;
  CallbackSink duel_sink([&](const SampleRecord& rec) {
    if (rec.lost) return;
    sw.process_exchange(rec.raw);
    if (!rec.evaluated) return;
    duel.sw_errors.push_back(sw.time(rec.raw.tf) - rec.tg);
    duel.sw_rates.push_back(sw.effective_rate());
  });
  session.add_sink(duel_sink);
  session.run(testbed);
  duel.sw_steps = sw.status().steps;
  duel.sw_samples = sw.status().samples;
  return duel;
}

TEST(MultiEstimatorGolden, SwNtpLaneBitIdenticalToLegacyCodrivenLoop) {
  const auto scenario = duel_scenario();
  const auto legacy = legacy_codriven_duel(scenario);
  ASSERT_FALSE(legacy.sw_errors.empty());

  sim::Testbed testbed(scenario);
  const auto config = duel_config(scenario);
  MultiEstimatorSession session;
  const std::size_t tsc_lane = session.add_lane(
      config, std::make_unique<TscNtpEstimator>(config.params,
                                                testbed.nominal_period()));
  auto sw_estimator = std::make_unique<SwNtpEstimator>(
      baseline::PllConfig{}, testbed.nominal_period());
  const baseline::SwNtpClock& sw = sw_estimator->sw_clock();
  const std::size_t sw_lane =
      session.add_lane(config, std::move(sw_estimator));

  std::vector<double> sw_errors;
  std::vector<double> sw_rates;
  CallbackSink sw_sink([&](const SampleRecord& rec) {
    sw_errors.push_back(rec.abs_clock_error);
    sw_rates.push_back(sw.effective_rate());
  });
  session.add_sink(sw_lane, sw_sink);
  session.run(testbed);

  ASSERT_EQ(sw_errors.size(), legacy.sw_errors.size());
  for (std::size_t i = 0; i < sw_errors.size(); ++i) {
    // Bit-level double equality: the lane must score the SW clock exactly
    // as the hand-rolled loop did — same exchanges, same order, same reads.
    EXPECT_EQ(sw_errors[i], legacy.sw_errors[i]) << i;
    EXPECT_EQ(sw_rates[i], legacy.sw_rates[i]) << i;
  }
  EXPECT_EQ(sw.status().steps, legacy.sw_steps);
  EXPECT_EQ(sw.status().samples, legacy.sw_samples);
  EXPECT_EQ(session.lane(sw_lane).estimator().steps(), legacy.sw_steps);
  // Both lanes saw every exchange.
  EXPECT_EQ(session.lane(tsc_lane).summary().exchanges,
            session.lane(sw_lane).summary().exchanges);
}

TEST(MultiEstimatorGolden, DefaultSessionEqualsExplicitTscNtpEstimator) {
  const auto scenario = duel_scenario(888);
  const auto config = duel_config(scenario);

  sim::Testbed default_testbed(scenario);
  ClockSession default_session(config, default_testbed.nominal_period());
  CollectorSink default_records;
  default_session.add_sink(default_records);
  default_session.run(default_testbed);

  sim::Testbed explicit_testbed(scenario);
  ClockSession explicit_session(
      config, std::make_unique<TscNtpEstimator>(
                  config.params, explicit_testbed.nominal_period()));
  CollectorSink explicit_records;
  explicit_session.add_sink(explicit_records);
  explicit_session.run(explicit_testbed);

  ASSERT_EQ(default_records.records().size(),
            explicit_records.records().size());
  ASSERT_GT(default_records.records().size(), 0u);
  for (std::size_t i = 0; i < default_records.records().size(); ++i) {
    const auto& a = default_records.records()[i];
    const auto& b = explicit_records.records()[i];
    EXPECT_EQ(a.offset_error, b.offset_error) << i;
    EXPECT_EQ(a.abs_clock_error, b.abs_clock_error) << i;
    EXPECT_EQ(a.period, b.period) << i;
  }
  EXPECT_EQ(default_session.summary().final_status.offset,
            explicit_session.summary().final_status.offset);
}

// -- Adapter behaviours ----------------------------------------------------

TEST(Estimators, AllKindsTrackACleanTraceToPlausibleAccuracy) {
  sim::ScenarioConfig scenario;
  scenario.poll_period = 16.0;
  scenario.duration = 2 * duration::kHour;
  scenario.seed = 31415;
  sim::Testbed testbed(scenario);

  SessionConfig config;
  config.params = params_for(scenario);
  config.discard_warmup = 30 * duration::kMinute;
  config.warmup_policy = WarmupPolicy::kObservable;

  MultiEstimatorSession session;
  std::vector<std::unique_ptr<CollectorSink>> sinks;
  const auto& registry = estimator_registry();
  for (const auto* family : registry.families()) {
    if (family->replay) continue;  // scored post-hoc, not online
    const std::size_t lane = session.add_lane(
        config, registry.make_online(EstimatorSpec{family->name, {}},
                                     config.params,
                                     testbed.nominal_period()));
    sinks.push_back(std::make_unique<CollectorSink>());
    session.add_sink(lane, *sinks.back());
  }
  session.run(testbed);

  ASSERT_EQ(sinks.size(), 3u);
  std::vector<double> worst(3, 0.0);
  for (std::size_t e = 0; e < sinks.size(); ++e) {
    ASSERT_FALSE(sinks[e]->records().empty());
    // Identical evaluated set on every lane: the stream and the warm-up cut
    // are estimator-independent.
    ASSERT_EQ(sinks[e]->records().size(), sinks[0]->records().size());
    for (const auto& rec : sinks[e]->records())
      worst[e] = std::max(worst[e], std::fabs(rec.abs_clock_error));
  }
  // Robust and SW-NTP both track a clean machine-room trace to sub-ms;
  // the naive estimator is sane but visibly worse than the robust clock.
  EXPECT_LT(worst[0], 1e-3);
  EXPECT_LT(worst[1], 5e-3);
  EXPECT_LT(worst[2], 50e-3);
  EXPECT_GT(worst[2], worst[0]);
}

TEST(Estimators, NaiveEstimatorWarmsUpAfterTwoPackets) {
  sim::ScenarioConfig scenario;
  scenario.poll_period = 16.0;
  scenario.duration = 10 * duration::kMinute;
  scenario.seed = 99;
  sim::Testbed testbed(scenario);
  NaiveEstimator naive(testbed.nominal_period());
  EXPECT_FALSE(naive.warmed_up());
  std::size_t processed = 0;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    naive.process_exchange(
        core::RawExchange{ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                          ex->tf_counts});
    ++processed;
    if (processed == 1) EXPECT_FALSE(naive.warmed_up());
    if (processed >= 2) break;
  }
  ASSERT_GE(processed, 2u);
  EXPECT_TRUE(naive.warmed_up());
  EXPECT_EQ(naive.steps(), 0u);
  // The widening-baseline rate converges toward the true period.
  EXPECT_NEAR(naive.period() / testbed.true_period(), 1.0, 1e-3);
}

TEST(Estimators, ClockAccessorRequiresRobustEstimator) {
  sim::ScenarioConfig scenario;
  scenario.seed = 5;
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = params_for(scenario);
  ClockSession robust_session(config, testbed.nominal_period());
  EXPECT_NO_THROW(robust_session.clock());
  ClockSession sw_session(
      config, std::make_unique<SwNtpEstimator>(baseline::PllConfig{},
                                               testbed.nominal_period()));
  EXPECT_THROW(sw_session.clock(), ContractViolation);
  EXPECT_EQ(sw_session.estimator().name(), "swntp");
}

// -- Registry --------------------------------------------------------------

TEST(EstimatorRegistry, FamilyNamesRoundTripThroughSpecParsing) {
  const auto& registry = estimator_registry();
  for (const auto* family : registry.families()) {
    const auto spec = registry.parse(family->name);
    EXPECT_EQ(spec.family, family->name);
    EXPECT_EQ(spec.label(), family->name);
    EXPECT_FALSE(family->description.empty());
  }
  EXPECT_THROW(registry.parse("ntpd"), EstimatorSpecError);
  EXPECT_THROW(registry.parse(""), EstimatorSpecError);
}

TEST(EstimatorRegistry, FactoryBuildsMatchingAdapters) {
  const core::Params params = core::Params::for_poll_period(16.0);
  const double nominal = 1.8e-9;
  const auto& registry = estimator_registry();
  for (const auto* family : registry.families()) {
    const EstimatorSpec spec{family->name, {}};
    if (family->replay) {
      // Replay families are built by the replay factory; the online factory
      // must reject them loudly (see test_replay.cpp for the replay side).
      EXPECT_THROW(registry.make_online(spec, params, nominal),
                   ContractViolation);
      continue;
    }
    const auto estimator = registry.make_online(spec, params, nominal);
    ASSERT_NE(estimator, nullptr);
    EXPECT_EQ(estimator->name(), family->name);
    EXPECT_EQ(estimator->steps(), 0u);
  }
}

}  // namespace
}  // namespace tscclock::harness
