// Property suites for the NTP wire substrate: round-trip exactness across
// value sweeps, and decode robustness against arbitrary byte patterns
// (malformed input must throw, never crash or mis-parse silently).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "wire/ntp_packet.hpp"
#include "wire/ntp_timestamp.hpp"

namespace tscclock::wire {
namespace {

// ---------------------------------------------------- timestamp round trip
class TimestampRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TimestampRoundTrip, ExactToOneLsb) {
  const Seconds value = GetParam();
  const auto ts = to_ntp_timestamp(value);
  EXPECT_NEAR(from_ntp_timestamp(ts), std::fmod(value, 4294967296.0),
              kNtpTimestampResolution);
}

INSTANTIATE_TEST_SUITE_P(
    Values, TimestampRoundTrip,
    ::testing::Values(0.0, 1e-9, 0.5, 1.0, 16.000001, 3600.0, 86400.25,
                      3.3e9, 4.294967295e9));

class EpochRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(EpochRoundTrip, SubNanosecond) {
  constexpr std::uint32_t epoch = 3'297'000'000u;
  const Seconds value = GetParam();
  const auto ts = to_ntp_timestamp_at_epoch(value, epoch);
  EXPECT_NEAR(from_ntp_timestamp_at_epoch(ts, epoch), value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Values, EpochRoundTrip,
    ::testing::Values(0.0, 1e-6, 1.0, 16.123456789, 86400.0, 7.9e6,
                      7.9e6 + 1e-6));

// -------------------------------------------------------- random packets
TEST(PacketProperties, RandomPacketsRoundTrip) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    NtpPacket p;
    p.leap = static_cast<LeapIndicator>(rng.engine()() % 4);
    p.version = static_cast<std::uint8_t>(1 + rng.engine()() % 4);
    p.mode = static_cast<NtpMode>(1 + rng.engine()() % 7);
    p.stratum = static_cast<std::uint8_t>(rng.engine()());
    p.poll = static_cast<std::int8_t>(rng.engine()());
    p.precision = static_cast<std::int8_t>(rng.engine()());
    p.root_delay = NtpShort::from_packed(
        static_cast<std::uint32_t>(rng.engine()()));
    p.root_dispersion = NtpShort::from_packed(
        static_cast<std::uint32_t>(rng.engine()()));
    p.reference_id = static_cast<std::uint32_t>(rng.engine()());
    p.reference_time = NtpTimestamp::from_packed(rng.engine()());
    p.origin_time = NtpTimestamp::from_packed(rng.engine()());
    p.receive_time = NtpTimestamp::from_packed(rng.engine()());
    p.transmit_time = NtpTimestamp::from_packed(rng.engine()());
    ASSERT_EQ(decode(encode(p)), p) << "trial " << trial;
  }
}

TEST(PacketProperties, ArbitraryBytesNeverCrash) {
  // Decode of random 48-byte buffers either succeeds (structurally valid)
  // or throws PacketError — never UB, never a partial parse.
  Rng rng(808);
  int ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::array<std::uint8_t, kNtpPacketSize> bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.engine()());
    try {
      const auto p = decode(bytes);
      // If it parsed, re-encoding must reproduce the input exactly.
      EXPECT_EQ(encode(p), bytes);
      ++ok;
    } catch (const PacketError&) {
      ++rejected;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(ok + rejected, 5000);
}

TEST(PacketProperties, TruncatedBuffersAlwaysThrow) {
  const auto full = encode(make_client_request({1, 2}, 4));
  for (std::size_t len = 0; len < kNtpPacketSize; ++len) {
    std::vector<std::uint8_t> truncated(full.begin(),
                                        full.begin() + static_cast<long>(len));
    EXPECT_THROW(decode(truncated), PacketError) << "length " << len;
  }
}

TEST(PacketProperties, OversizedBuffersIgnoreTrailingBytes) {
  // Real UDP datagrams may carry extensions/MAC after the 48-byte header;
  // decode parses the header and ignores the rest.
  const auto p = make_client_request({9, 9}, 6);
  const auto bytes = encode(p);
  std::vector<std::uint8_t> oversized(bytes.begin(), bytes.end());
  oversized.resize(kNtpPacketSize + 20, 0xab);
  EXPECT_EQ(decode(oversized), p);
}

// ------------------------------------------------------------ short format
class ShortRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ShortRoundTrip, WithinOneLsb) {
  const Seconds value = GetParam();
  EXPECT_NEAR(from_ntp_short(to_ntp_short(value)), value, 1.0 / 65536.0);
}

INSTANTIATE_TEST_SUITE_P(Values, ShortRoundTrip,
                         ::testing::Values(0.0, 1.0 / 65536.0, 0.015, 1.0,
                                           100.5, 65535.99));

// -------------------------------------------------- algebraic quantization
//
// quantize_timestamp_at_epoch is the testbed's fast path for the wire
// truncation: it must equal — bit for bit — what a server stamp experiences
// through the full packet path (encode at the server, decode at the client,
// timestamp conversion at both ends). These suites pin that equivalence so
// the fast path can never drift from the real wire.

constexpr std::uint32_t kEra = 3'297'000'000u;

/// The reference implementation: the stamp's full journey through an NTP
/// reply packet, exactly as Testbed's check-wire mode replays it.
Seconds wire_round_trip(Seconds since_epoch) {
  const auto request =
      make_client_request(to_ntp_timestamp_at_epoch(1.0, kEra), 4);
  const auto request_rx = decode(encode(request));
  const auto reply = make_server_reply(
      request_rx, to_ntp_timestamp_at_epoch(since_epoch, kEra),
      to_ntp_timestamp_at_epoch(since_epoch, kEra), /*stratum=*/1,
      reference_id_from_string("GPS"));
  const auto reply_rx = decode(encode(reply));
  return from_ntp_timestamp_at_epoch(reply_rx.receive_time, kEra);
}

class QuantizeEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(QuantizeEquivalence, MatchesPacketRoundTripExactly) {
  const Seconds value = GetParam();
  EXPECT_EQ(quantize_timestamp_at_epoch(value, kEra), wire_round_trip(value));
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, QuantizeEquivalence,
    ::testing::Values(
        0.0,                      // era epoch itself
        0x1p-33,                  // below half an LSB: rounds to zero
        0.5 / 4294967296.0,       // exactly half an LSB (llround ties)
        1.5 / 4294967296.0,       // ties again, odd multiple
        1.0 / 4294967296.0,       // exactly one fraction LSB
        1.0 - 0x1p-33,            // fraction rounds up: carry into seconds
        16.000000000116415,       // real server stamp shape (16 s + sub-ns)
        86400.25,                 // day boundary with exact fraction
        997000000.0 - 0x1p-33,    // carry high in the u32 range
        997967295.875));          // the largest era-representable second

TEST(QuantizeEquivalence, RandomizedSweepMatchesPacketRoundTrip) {
  Rng draw(3297000000ull);
  for (int k = 0; k < 5000; ++k) {
    // Span the whole era-representable range, including values with dense
    // fractional parts (uniform reals) and values built from exact binary
    // fractions (LSB-edge stress).
    const Seconds value = draw.uniform(0.0, 997967295.0);
    EXPECT_EQ(quantize_timestamp_at_epoch(value, kEra), wire_round_trip(value))
        << "value=" << value;
  }
  for (int k = 0; k < 2000; ++k) {
    const double whole = std::floor(draw.uniform(0.0, 997967295.0));
    const double frac =
        std::floor(draw.uniform(0.0, 4294967296.0)) / 4294967296.0;
    const Seconds value = whole + frac;  // exact multiple of one LSB
    EXPECT_EQ(quantize_timestamp_at_epoch(value, kEra), wire_round_trip(value))
        << "value=" << value;
  }
}

TEST(QuantizeEquivalence, QuantizationIsIdempotent) {
  // A stamp that already sits on the wire grid must pass through unchanged —
  // this is what makes the testbed's quantized stamps indistinguishable from
  // stamps that truly crossed the wire.
  Rng draw(424242);
  for (int k = 0; k < 2000; ++k) {
    const Seconds once =
        quantize_timestamp_at_epoch(draw.uniform(0.0, 997967295.0), kEra);
    EXPECT_EQ(quantize_timestamp_at_epoch(once, kEra), once);
  }
}

}  // namespace
}  // namespace tscclock::wire
