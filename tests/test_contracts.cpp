// Contract-checking machinery tests.
#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tscclock {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(TSC_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(TSC_EXPECTS(1 + 1 == 3), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(TSC_ENSURES(false), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    TSC_EXPECTS(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsLogicError) {
  // Catchable as std::logic_error per the exception taxonomy.
  try {
    TSC_EXPECTS(false);
    FAIL();
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

TEST(Contracts, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  TSC_EXPECTS(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace tscclock
