// Property suites for the oscillator model across environments and seeds:
// the hardware abstraction the algorithms are built on must hold for every
// realization, and the phase integration must be step-size independent.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/oscillator.hpp"

namespace tscclock::sim {
namespace {

enum class Env { kLab, kMachineRoom };

OscillatorConfig config_for(Env env, std::uint64_t seed) {
  return env == Env::kLab ? OscillatorConfig::laboratory(seed)
                          : OscillatorConfig::machine_room(seed);
}

class OscillatorSweep
    : public ::testing::TestWithParam<std::tuple<Env, std::uint64_t>> {};

TEST_P(OscillatorSweep, RateBoundHoldsOverTwoDays) {
  const auto [env, seed] = GetParam();
  Oscillator osc(config_for(env, seed));
  const double p = osc.mean_period();
  const Seconds step = 500.0;
  TscCount prev = osc.read(0.0);
  Seconds prev_t = 0;
  for (Seconds t = step; t <= 2 * duration::kDay; t += step) {
    const TscCount now = osc.read(t);
    const double implied =
        delta_to_seconds(counter_delta(now, prev), p);
    const double rate_error = implied / (t - prev_t) - 1.0;
    // The paper's 0.1 PPM bound is an Allan-deviation (RMS) statement;
    // *peak* windowed excursions run a few sigma higher, especially in the
    // uncontrolled laboratory. Bound peaks at 0.3 PPM.
    EXPECT_LT(std::fabs(rate_error), ppm(0.3))
        << "window ending " << t;
    prev = now;
    prev_t = t;
  }
}

TEST_P(OscillatorSweep, InstantaneousRateErrorBounded) {
  const auto [env, seed] = GetParam();
  Oscillator osc(config_for(env, seed));
  const double skew = ppm(osc.config().skew_ppm);
  for (Seconds t = 0; t <= duration::kDay; t += 997.0) {
    osc.read(t);
    // Wander (total minus constant skew) bounded by several OU sigmas
    // plus all deterministic components.
    EXPECT_LT(std::fabs(osc.rate_error() - skew), ppm(0.4)) << t;
  }
}

TEST_P(OscillatorSweep, CounterStrictlyIncreasing) {
  const auto [env, seed] = GetParam();
  Oscillator osc(config_for(env, seed));
  TscCount prev = osc.read(0.0);
  for (int k = 1; k <= 2000; ++k) {
    const TscCount now = osc.read(k * 0.1);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnvsSeeds, OscillatorSweep,
    ::testing::Combine(::testing::Values(Env::kLab, Env::kMachineRoom),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Env::kLab ? "lab"
                                                              : "mroom") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(OscillatorIntegration, StepSizeIndependentForDeterministicPart) {
  // With the stochastic components disabled, reading at coarse vs fine
  // steps must integrate the deterministic wander identically (trapezoid
  // error at 20 s substeps on day-period sinusoids is < 1 cycle).
  auto config = OscillatorConfig::machine_room(9);
  config.ou_sigma_ppm = 0.0;
  config.oscillatory_amplitude_ppm = 0.0;

  Oscillator coarse(config);
  Oscillator fine(config);
  const Seconds horizon = duration::kDay / 2;
  for (Seconds t = 0; t <= horizon; t += 1.0) fine.read(t);
  const TscCount fine_final = fine.read(horizon);
  const TscCount coarse_final = coarse.read(horizon);
  const auto diff =
      std::llabs(counter_delta(fine_final, coarse_final));
  EXPECT_LE(diff, 4) << "integration differs by " << diff << " cycles";
}

TEST(OscillatorIntegration, GapAndSteppedReadsAgreeStatistically) {
  // With stochastic wander the exact counts differ (different RNG draw
  // sequences), but the implied mean rate over 4 days must agree within
  // the wander bound.
  const auto config = OscillatorConfig::machine_room(10);
  Oscillator stepped(config);
  Oscillator jumped(config);
  const Seconds horizon = 4 * duration::kDay;
  for (Seconds t = 0; t <= horizon; t += 300.0) stepped.read(t);
  const auto a = stepped.read(horizon);
  const auto b = jumped.read(horizon);
  const double rel =
      std::fabs(static_cast<double>(counter_delta(a, b))) /
      (horizon / config.nominal_frequency_hz > 0
           ? horizon * config.nominal_frequency_hz
           : 1.0);
  EXPECT_LT(rel, ppm(0.1));
}

}  // namespace
}  // namespace tscclock::sim
