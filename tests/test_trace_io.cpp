// The trace file format (trace/trace_io.hpp): bit-identical round trips
// through the hexfloat edge cases (−0.0, denormals, ±inf, NaN), the
// per-mode field-count contract, torn tails and version skew, end-marker
// completeness witnessing, and the warning (exit-1) taxonomy.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/time_types.hpp"

namespace tscclock::trace {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() / ("tscclock_trace_io_" + name);
}

/// Bitwise double equality: the round-trip contract is representation
/// identity, which operator== cannot express for NaN or −0.0.
bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

TraceMeta reference_meta() {
  TraceMeta meta;
  meta.mode = harness::GroundTruthMode::kReference;
  meta.nominal_period = 1.000000013e-9;
  meta.poll_period = 16.0;
  meta.client_id = 3;
  meta.label = "gnarly \t tab \n newline \\ backslash";
  return meta;
}

harness::ReplaySample make_sample(std::size_t index, TscCount ta,
                                  Seconds tb) {
  harness::ReplaySample s;
  s.index = index;
  s.client_id = 3;
  s.raw = {ta, tb, tb + 1e-3, ta + 1000};
  s.tf_counts_corrected = ta + 990;
  s.t_day = tb / duration::kDay;
  s.ref_available = true;
  s.tg = tb + 2e-3;
  s.truth_ta = tb - 5e-4;
  s.truth_tb = tb + 1e-6;
  return s;
}

/// A reference trace exercising the serialization's hard cases in the
/// unconstrained double columns (te, tg, truth_ta, truth_tb) while Ta/Tb
/// stay monotone so the file reads back warning-free.
harness::ReplayTrace gnarly_trace() {
  harness::ReplayTrace trace;
  trace.ground_truth = harness::GroundTruthMode::kReference;
  const double gnarly[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(), 0.1};
  for (std::size_t i = 0; i < 6; ++i) {
    harness::ReplaySample s = make_sample(i, 1000 + 100 * i, 16.0 * (i + 1));
    s.tg = gnarly[i];
    s.truth_ta = gnarly[(i + 1) % 6];
    s.truth_tb = gnarly[(i + 2) % 6];
    s.raw.te = gnarly[(i + 3) % 6];
    trace.samples.push_back(s);
  }
  // A lost record mid-stream: no observables, flags only.
  harness::ReplaySample lost;
  lost.index = 6;
  lost.client_id = 3;
  lost.lost = true;
  lost.truth_ta = 100.5;  // filled for lost polls too
  trace.samples.push_back(lost);
  harness::ReplaySample last = make_sample(7, 1700, 128.0);
  last.in_warmup = true;
  last.server_changed = true;
  trace.samples.push_back(last);
  trace.exchanges = trace.samples.size();
  trace.lost = 1;
  trace.polls_enumerated = 10;  // three outage-skipped slots
  return trace;
}

void expect_sample_bits(const harness::ReplaySample& got,
                        const harness::ReplaySample& want) {
  EXPECT_EQ(got.index, want.index);
  EXPECT_EQ(got.lost, want.lost);
  EXPECT_EQ(got.client_id, want.client_id);
  EXPECT_EQ(got.in_warmup, want.in_warmup);
  EXPECT_EQ(got.server_changed, want.server_changed);
  EXPECT_EQ(got.ref_available, want.ref_available);
  EXPECT_EQ(got.raw.ta, want.raw.ta);
  EXPECT_TRUE(same_bits(got.raw.tb, want.raw.tb));
  EXPECT_TRUE(same_bits(got.raw.te, want.raw.te));
  EXPECT_EQ(got.raw.tf, want.raw.tf);
  EXPECT_EQ(got.tf_counts_corrected, want.tf_counts_corrected);
  EXPECT_TRUE(same_bits(got.tg, want.tg));
  EXPECT_TRUE(same_bits(got.truth_ta, want.truth_ta));
  EXPECT_TRUE(same_bits(got.truth_tb, want.truth_tb));
}

std::string read_error(const fs::path& path) {
  try {
    read_trace(path.string());
  } catch (const TraceIoError& e) {
    return e.what();
  }
  return {};
}

// -- Round trips -------------------------------------------------------------

TEST(TraceIo, ReferenceRoundTripIsBitIdentical) {
  const auto path = temp_path("ref_roundtrip.trace");
  const TraceMeta meta = reference_meta();
  const harness::ReplayTrace trace = gnarly_trace();
  write_trace(path.string(), meta, trace);

  const ReadTrace loaded = read_trace(path.string());
  EXPECT_TRUE(loaded.warnings.empty()) << loaded.warnings.front();
  EXPECT_EQ(loaded.meta.mode, harness::GroundTruthMode::kReference);
  EXPECT_TRUE(same_bits(loaded.meta.nominal_period, meta.nominal_period));
  EXPECT_TRUE(same_bits(loaded.meta.poll_period, meta.poll_period));
  EXPECT_EQ(loaded.meta.client_id, meta.client_id);
  EXPECT_EQ(loaded.meta.label, meta.label);
  EXPECT_EQ(loaded.trace.ground_truth, harness::GroundTruthMode::kReference);
  EXPECT_EQ(loaded.trace.exchanges, trace.exchanges);
  EXPECT_EQ(loaded.trace.lost, trace.lost);
  EXPECT_EQ(loaded.trace.polls_enumerated, trace.polls_enumerated);
  ASSERT_EQ(loaded.trace.samples.size(), trace.samples.size());
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    SCOPED_TRACE(i);
    expect_sample_bits(loaded.trace.samples[i], trace.samples[i]);
    if (!trace.samples[i].lost) {
      // t_day is derived, not stored: recomputed exactly from tb.
      EXPECT_TRUE(same_bits(loaded.trace.samples[i].t_day,
                            trace.samples[i].raw.tb / duration::kDay));
    }
  }

  // Serialization is canonical: re-writing the loaded trace reproduces the
  // file byte for byte.
  const auto path2 = temp_path("ref_roundtrip2.trace");
  write_trace(path2.string(), loaded.meta, loaded.trace);
  EXPECT_EQ(read_file(path), read_file(path2));
  fs::remove(path);
  fs::remove(path2);
}

TEST(TraceIo, RelativeWriterStripsGroundTruth) {
  const auto path = temp_path("relative.trace");
  TraceMeta meta = reference_meta();
  meta.mode = harness::GroundTruthMode::kRelativeOnly;
  meta.label.clear();
  // Exporting reference-bearing samples through a relative writer is the
  // "what would the field see" path: truth columns dropped, ref forced 0.
  write_trace(path.string(), meta, gnarly_trace());

  const ReadTrace loaded = read_trace(path.string());
  EXPECT_TRUE(loaded.warnings.empty());
  EXPECT_EQ(loaded.meta.mode, harness::GroundTruthMode::kRelativeOnly);
  EXPECT_EQ(loaded.meta.label, "");
  EXPECT_EQ(loaded.trace.ground_truth,
            harness::GroundTruthMode::kRelativeOnly);
  for (const auto& sample : loaded.trace.samples) {
    EXPECT_FALSE(sample.ref_available);
    EXPECT_TRUE(same_bits(sample.tg, 0.0));
    EXPECT_TRUE(same_bits(sample.truth_tb, 0.0));
    EXPECT_EQ(sample.client_id, meta.client_id);
  }
  fs::remove(path);
}

TEST(TraceIo, StreamingWriterMatchesOneShotExport) {
  const auto one_shot = temp_path("oneshot.trace");
  const auto streamed = temp_path("streamed.trace");
  const TraceMeta meta = reference_meta();
  const harness::ReplayTrace trace = gnarly_trace();
  write_trace(one_shot.string(), meta, trace);
  {
    TraceWriter writer(streamed.string(), meta);
    for (const auto& sample : trace.samples) writer.write(sample);
    EXPECT_EQ(writer.exchanges(), trace.exchanges);
    EXPECT_EQ(writer.lost(), trace.lost);
    writer.close(trace.polls_enumerated);
  }
  EXPECT_EQ(read_file(one_shot), read_file(streamed));
  fs::remove(one_shot);
  fs::remove(streamed);
}

// -- Structural validation ---------------------------------------------------

/// One canonical small file as mutation base.
std::string canonical_file() {
  const auto path = temp_path("canonical.trace");
  TraceMeta meta = reference_meta();
  meta.label.clear();
  harness::ReplayTrace trace;
  trace.ground_truth = harness::GroundTruthMode::kReference;
  for (std::size_t i = 0; i < 4; ++i)
    trace.samples.push_back(make_sample(i, 1000 + 100 * i, 16.0 * (i + 1)));
  trace.exchanges = 4;
  trace.polls_enumerated = 4;
  write_trace(path.string(), meta, trace);
  const std::string content = read_file(path);
  fs::remove(path);
  return content;
}

std::string mutated_error(const std::string& content, const char* name) {
  const auto path = temp_path(std::string("mut_") + name + ".trace");
  write_file(path, content);
  const std::string what = read_error(path);
  fs::remove(path);
  return what;
}

TEST(TraceIo, RefusesNonTraceFile) {
  const std::string what = mutated_error("not a trace\n", "garbage");
  EXPECT_NE(what.find("not a tscclock-trace file"), std::string::npos)
      << what;
}

TEST(TraceIo, VersionSkewNamesBothVersions) {
  std::string content = canonical_file();
  content.replace(content.find("tscclock-trace 1"),
                  std::strlen("tscclock-trace 1"), "tscclock-trace 2");
  const std::string what = mutated_error(content, "skew");
  EXPECT_NE(what.find("version 2"), std::string::npos) << what;
  EXPECT_NE(what.find("expected version 1"), std::string::npos) << what;
}

TEST(TraceIo, RefusesTornTail) {
  const std::string content = canonical_file();
  // Cut mid final record: no trailing newline → kill-mid-write signature.
  const std::string torn = content.substr(0, content.size() - 15);
  const std::string what = mutated_error(torn, "torn");
  EXPECT_NE(what.find("torn trailing line"), std::string::npos) << what;
}

TEST(TraceIo, RefusesMissingEndMarker) {
  std::string content = canonical_file();
  content.erase(content.rfind("end "));
  const std::string what = mutated_error(content, "noend");
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
}

TEST(TraceIo, RefusesEndCountMismatch) {
  std::string content = canonical_file();
  content.replace(content.rfind("end 4 0 4"), 9, "end 3 0 4");
  const std::string what = mutated_error(content, "endcount");
  EXPECT_NE(what.find("end marker declares 3"), std::string::npos) << what;
}

TEST(TraceIo, RefusesEndPollsBelowExchanges) {
  std::string content = canonical_file();
  content.replace(content.rfind("end 4 0 4"), 9, "end 4 0 2");
  const std::string what = mutated_error(content, "endpolls");
  EXPECT_NE(what.find("fewer than"), std::string::npos) << what;
}

TEST(TraceIo, RefusesContentAfterEndMarker) {
  const std::string what = mutated_error(canonical_file() + "trailing\n",
                                         "afterend");
  EXPECT_NE(what.find("content after the end marker"), std::string::npos)
      << what;
}

TEST(TraceIo, RefusesDuplicateAndUnknownAndMissingHeaderKeys) {
  std::string content = canonical_file();
  EXPECT_NE(mutated_error("tscclock-trace 1\nclient 1\nclient 2\n" +
                              content.substr(content.find("samples")),
                          "duphdr")
                .find("duplicate header key"),
            std::string::npos);
  const std::size_t samples_at = content.find("samples");
  EXPECT_NE(mutated_error(content.substr(0, samples_at) + "frobnicate 1\n" +
                              content.substr(samples_at),
                          "unkhdr")
                .find("unknown header key 'frobnicate'"),
            std::string::npos);
  const std::size_t client_at = content.find("client ");
  std::string missing = content;
  missing.erase(client_at, content.find('\n', client_at) + 1 - client_at);
  EXPECT_NE(mutated_error(missing, "misshdr").find("missing client"),
            std::string::npos);
}

TEST(TraceIo, RefusesUnknownGroundTruthMode) {
  std::string content = canonical_file();
  content.replace(content.find("ground_truth reference"),
                  std::strlen("ground_truth reference"),
                  "ground_truth absolute");
  const std::string what = mutated_error(content, "badmode");
  EXPECT_NE(what.find("unknown ground_truth mode 'absolute'"),
            std::string::npos)
      << what;
}

TEST(TraceIo, FieldCountErrorsNameTheModeMismatch) {
  // Reference record inside a relative-only declaration.
  std::string content = canonical_file();
  content.replace(content.find("ground_truth reference"),
                  std::strlen("ground_truth reference"),
                  "ground_truth relative");
  const std::string what = mutated_error(content, "refinrel");
  EXPECT_NE(what.find("record 0"), std::string::npos) << what;
  EXPECT_NE(what.find("reference-mode truth fields in a relative-only"),
            std::string::npos)
      << what;

  // Relative record inside a reference declaration: strip one record's
  // truth fields (drop the last three tab-separated fields).
  std::string stripped = canonical_file();
  const std::size_t rec = stripped.find("x\t");
  std::size_t eol = stripped.find('\n', rec);
  std::string record = stripped.substr(rec, eol - rec);
  for (int i = 0; i < 3; ++i) record.erase(record.rfind('\t'));
  stripped.replace(rec, eol - rec, record);
  const std::string what2 = mutated_error(stripped, "relinref");
  EXPECT_NE(what2.find("missing the truth fields"), std::string::npos)
      << what2;
}

TEST(TraceIo, RefusesNonMonotoneSendTimes) {
  const auto path = temp_path("nonmono.trace");
  TraceMeta meta = reference_meta();
  harness::ReplayTrace trace;
  trace.ground_truth = harness::GroundTruthMode::kReference;
  trace.samples.push_back(make_sample(0, 2000, 16.0));
  trace.samples.push_back(make_sample(1, 1500, 32.0));  // Ta goes backwards
  trace.exchanges = 2;
  trace.polls_enumerated = 2;
  write_trace(path.string(), meta, trace);
  const std::string what = read_error(path);
  EXPECT_NE(what.find("record 1"), std::string::npos) << what;
  EXPECT_NE(what.find("1500"), std::string::npos) << what;
  EXPECT_NE(what.find("2000"), std::string::npos) << what;
  fs::remove(path);
}

// -- Warnings (the trace-import exit-1 taxonomy) -----------------------------

TEST(TraceIo, WarnsOnceOnBackwardsServerStamps) {
  const auto path = temp_path("tbback.trace");
  TraceMeta meta = reference_meta();
  harness::ReplayTrace trace;
  trace.ground_truth = harness::GroundTruthMode::kReference;
  trace.samples.push_back(make_sample(0, 1000, 64.0));
  trace.samples.push_back(make_sample(1, 1100, 32.0));  // server steps back
  trace.samples.push_back(make_sample(2, 1200, 16.0));  // ...and again
  trace.exchanges = 3;
  trace.polls_enumerated = 3;
  write_trace(path.string(), meta, trace);
  const ReadTrace loaded = read_trace(path.string());
  ASSERT_EQ(loaded.warnings.size(), 1u) << "deduplicated to one warning";
  EXPECT_NE(loaded.warnings[0].find("record 1"), std::string::npos);
  EXPECT_NE(loaded.warnings[0].find("backwards"), std::string::npos);
  fs::remove(path);
}

TEST(TraceIo, WarnsOnUnscorableLengthAndZeroReferenceCoverage) {
  const auto path = temp_path("warnings.trace");
  TraceMeta meta = reference_meta();
  harness::ReplayTrace trace;
  trace.ground_truth = harness::GroundTruthMode::kReference;
  harness::ReplaySample only = make_sample(0, 1000, 16.0);
  only.ref_available = false;  // declared reference, no truth anywhere
  trace.samples.push_back(only);
  trace.exchanges = 1;
  trace.polls_enumerated = 1;
  write_trace(path.string(), meta, trace);
  const ReadTrace loaded = read_trace(path.string());
  ASSERT_EQ(loaded.warnings.size(), 2u);
  EXPECT_NE(loaded.warnings[0].find("no record carries a reference sample"),
            std::string::npos)
      << loaded.warnings[0];
  EXPECT_NE(loaded.warnings[1].find("not scorable"), std::string::npos)
      << loaded.warnings[1];
  fs::remove(path);
}

}  // namespace
}  // namespace tscclock::trace
