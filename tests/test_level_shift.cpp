// Tests for level-shift detection and reaction (paper §6.2).
#include "core/level_shift.hpp"

#include <gtest/gtest.h>

#include "core/point_error.hpp"

namespace tscclock::core {
namespace {

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.shift_window = 160.0;  // Ts = 10 packets
  return p;
}

constexpr double kPeriod = 2e-9;

// Convenience: RTT counts for a given RTT in seconds.
TscDelta counts(Seconds rtt) { return static_cast<TscDelta>(rtt / kPeriod); }

struct Harness {
  Harness() : filter(test_params()), detector(test_params()) {}

  std::optional<LevelShiftDetector::Event> feed(Seconds rtt) {
    filter.add(counts(rtt));
    return detector.check(filter, kPeriod, seq++);
  }

  RttFilter filter;
  LevelShiftDetector detector;
  std::uint64_t seq = 0;
};

TEST(LevelShift, NoEventOnStableStream) {
  Harness h;
  for (int i = 0; i < 100; ++i) {
    const auto ev = h.feed(0.9e-3 + (i % 3) * 20e-6);
    EXPECT_FALSE(ev.has_value());
  }
  EXPECT_EQ(h.detector.upshift_count(), 0u);
  EXPECT_EQ(h.detector.downshift_count(), 0u);
}

TEST(LevelShift, CongestionDoesNotTriggerUpshift) {
  // Congestion raises *some* RTTs; as long as occasional quality packets
  // arrive within Ts, the windowed minimum stays near r̂.
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  for (int i = 0; i < 100; ++i) {
    const Seconds rtt = (i % 5 == 0) ? 0.9e-3 : 0.9e-3 + 5e-3;
    h.feed(rtt);
  }
  EXPECT_EQ(h.detector.upshift_count(), 0u);
}

TEST(LevelShift, PermanentUpshiftDetectedAfterTs) {
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  // Permanent +0.9 ms shift: detection exactly when the whole Ts window
  // (10 packets) sits above the threshold.
  int detected_at = -1;
  for (int i = 0; i < 30; ++i) {
    const auto ev = h.feed(1.8e-3);
    if (ev && ev->upward) {
      detected_at = i;
      break;
    }
  }
  ASSERT_GE(detected_at, 8);  // needs the window to flush the old level
  ASSERT_LE(detected_at, 11);
  EXPECT_EQ(h.detector.upshift_count(), 1u);
  // Reaction: r̂ moved to the new level.
  EXPECT_NEAR(delta_to_seconds(h.filter.rhat(), kPeriod), 1.8e-3, 50e-6);
}

TEST(LevelShift, ShiftSeqPointsTsBack) {
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  std::optional<LevelShiftDetector::Event> event;
  for (int i = 0; i < 30 && !event; ++i) {
    auto ev = h.feed(1.8e-3);
    if (ev && ev->upward) event = ev;
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->shift_seq, event->detect_seq - 10);  // Ts = 10 packets
  EXPECT_EQ(h.detector.last_upshift_seq(), event->shift_seq);
}

TEST(LevelShift, TemporaryShiftShorterThanTsIgnored) {
  // Fig. 11(c): an up-shift lasting less than Ts never fires.
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  for (int i = 0; i < 6; ++i) {  // 6 < Ts = 10 packets
    const auto ev = h.feed(1.8e-3);
    EXPECT_FALSE(ev && ev->upward);
  }
  for (int i = 0; i < 30; ++i) {
    const auto ev = h.feed(0.9e-3);
    EXPECT_FALSE(ev && ev->upward);
  }
  EXPECT_EQ(h.detector.upshift_count(), 0u);
}

TEST(LevelShift, DownshiftImmediate) {
  // Fig. 11(d): a downward shift is unambiguous and absorbed instantly.
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  const auto ev = h.feed(0.5e-3);
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->upward);
  EXPECT_EQ(h.detector.downshift_count(), 1u);
  EXPECT_NEAR(delta_to_seconds(h.filter.rhat(), kPeriod), 0.5e-3, 1e-6);
}

TEST(LevelShift, SmallMinimumImprovementsAreNotEvents) {
  // Normal warm-up: the minimum creeps down by < 4E without reports.
  Harness h;
  h.feed(0.94e-3);
  const auto ev1 = h.feed(0.93e-3);
  EXPECT_FALSE(ev1.has_value());
  const auto ev2 = h.feed(0.91e-3);
  EXPECT_FALSE(ev2.has_value());
  EXPECT_EQ(h.detector.downshift_count(), 0u);
}

TEST(LevelShift, UpshiftAfterDownshiftSequence) {
  // Fig. 11(c) full cycle: up 0.9 ms (detected), back down (instant).
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  for (int i = 0; i < 15; ++i) h.feed(1.8e-3);
  EXPECT_EQ(h.detector.upshift_count(), 1u);
  const auto ev = h.feed(0.9e-3);  // route restored
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->upward);
  EXPECT_NEAR(delta_to_seconds(h.filter.rhat(), kPeriod), 0.9e-3, 50e-6);
}

TEST(LevelShift, DisabledDetectorNeverFiresUpward) {
  auto params = test_params();
  params.enable_level_shift = false;
  RttFilter filter(params);
  LevelShiftDetector detector(params);
  for (int i = 0; i < 20; ++i) {
    filter.add(counts(0.9e-3));
    detector.check(filter, kPeriod, i);
  }
  for (int i = 20; i < 60; ++i) {
    filter.add(counts(1.8e-3));
    const auto ev = detector.check(filter, kPeriod, i);
    EXPECT_FALSE(ev && ev->upward);
  }
  EXPECT_EQ(detector.upshift_count(), 0u);
}

TEST(LevelShift, NoRetriggerAfterReaction) {
  Harness h;
  for (int i = 0; i < 20; ++i) h.feed(0.9e-3);
  int upshifts = 0;
  for (int i = 0; i < 100; ++i) {
    const auto ev = h.feed(1.8e-3);
    if (ev && ev->upward) ++upshifts;
  }
  EXPECT_EQ(upshifts, 1);  // reaction re-bases r̂; condition clears
}

}  // namespace
}  // namespace tscclock::core
