// Tests for the deterministic random source and its distributions.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace tscclock {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkedChildrenAreDecorrelated) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.uniform() == c2.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsReproducible) {
  Rng p1(7);
  Rng p2(7);
  Rng a = p1.fork(3);
  Rng b = p2.fork(3);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  RunningMoments m;
  for (int i = 0; i < 50000; ++i) m.update(rng.exponential(2.5));
  EXPECT_NEAR(m.mean(), 2.5, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, ParetoMeanMatchesLomaxFormula) {
  // Lomax mean = scale / (shape - 1) for shape > 1.
  Rng rng(17);
  RunningMoments m;
  const double shape = 3.0;
  const double scale = 2.0;
  for (int i = 0; i < 200000; ++i) m.update(rng.pareto(shape, scale));
  EXPECT_NEAR(m.mean(), scale / (shape - 1.0), 0.05);
}

TEST(Rng, ParetoIsHeavyTailed) {
  // P(X > 10·mean) should exceed the exponential equivalent by far.
  Rng rng(19);
  const double mean = 1.0;
  int pareto_exceed = 0;
  int exp_exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(2.0, mean) > 10 * mean) ++pareto_exceed;
    if (rng.exponential(mean) > 10 * mean) ++exp_exceed;
  }
  EXPECT_GT(pareto_exceed, 5 * (exp_exceed + 1));
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningMoments m;
  for (int i = 0; i < 100000; ++i) m.update(rng.normal(0.5));
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.stddev(), 0.5, 0.01);
}

TEST(Rng, NormalZeroStddevIsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.normal(0.0), 0.0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.categorical(weights) == 1) ++ones;
  EXPECT_NEAR(ones / 100000.0, 0.75, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng rng(41);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal_median(3.0, 0.5));
  EXPECT_NEAR(percentile(draws, 0.5), 3.0, 0.1);
}

}  // namespace
}  // namespace tscclock
