// Read-path tests for TscNtpClock: the difference and absolute clocks are
// the library's actual products, so their behaviour *between* exchanges —
// extrapolation, continuity, coherence with the status report — gets its
// own suite.
#include <gtest/gtest.h>

#include <cmath>

#include "core/clock.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.warmup_samples = 16;
  p.offset_window = 320.0;
  p.local_rate_window = 1600.0;
  p.gap_threshold = 800.0;
  p.shift_window = 800.0;
  p.local_rate_subwindows = 10;
  return p;
}

struct WarmClock {
  WarmClock() : clock(test_params(), link.config().period * 1.00002) {
    for (int i = 0; i < 400; ++i) {
      last = link.next();
      clock.process_exchange(last);
    }
  }
  SyntheticLink link;
  TscNtpClock clock;
  RawExchange last{};
};

TEST(ClockReads, AbsoluteTimeMonotoneBetweenExchanges) {
  WarmClock w;
  Seconds prev = w.clock.absolute_time(w.last.tf);
  for (int k = 1; k <= 1000; ++k) {
    const TscCount t = w.last.tf + static_cast<TscCount>(k) * 8'000'000;
    const Seconds now = w.clock.absolute_time(t);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(ClockReads, AbsoluteMinusUncorrectedIsOffsetAtAnchor) {
  WarmClock w;
  const Seconds diff = w.clock.uncorrected_time(w.last.tf) -
                       w.clock.absolute_time(w.last.tf);
  EXPECT_NEAR(diff, w.clock.offset_estimate(), 1e-12);
}

TEST(ClockReads, ExtrapolationUsesLocalRateSlope) {
  WarmClock w;
  const auto status = w.clock.status();
  ASSERT_TRUE(status.local_rate_usable);
  const double gamma = status.local_rate_residual;
  // θ̂ extrapolated per eq. (23): reading one hour ahead shifts the
  // correction by −γ̂_l·3600.
  const TscCount hour_ahead =
      w.last.tf + static_cast<TscCount>(3600.0 / w.clock.period());
  const Seconds implied_theta = w.clock.uncorrected_time(hour_ahead) -
                                w.clock.absolute_time(hour_ahead);
  EXPECT_NEAR(implied_theta, w.clock.offset_estimate() - gamma * 3600.0,
              1e-9);
}

TEST(ClockReads, DifferenceMatchesStatusPeriod) {
  WarmClock w;
  const TscCount a = w.last.tf;
  const TscCount b = a + 123'456'789;
  EXPECT_DOUBLE_EQ(w.clock.difference(a, b),
                   123'456'789.0 * w.clock.period());
}

TEST(ClockReads, StatusIsIdempotent) {
  WarmClock w;
  const auto s1 = w.clock.status();
  const auto s2 = w.clock.status();
  EXPECT_EQ(s1.packets_processed, s2.packets_processed);
  EXPECT_DOUBLE_EQ(s1.period, s2.period);
  EXPECT_DOUBLE_EQ(s1.offset, s2.offset);
  // Reads do not mutate state either.
  (void)w.clock.absolute_time(w.last.tf + 1000);
  (void)w.clock.difference(w.last.tf, w.last.tf + 1000);
  const auto s3 = w.clock.status();
  EXPECT_DOUBLE_EQ(s3.offset, s1.offset);
}

TEST(ClockReads, AbsoluteClockErrorBoundedOverIdleHour) {
  // No exchanges for an hour: the absolute clock keeps extrapolating; on a
  // constant-rate link the error stays within the local-rate residual
  // times the idle span plus the ambiguity.
  WarmClock w;
  const Seconds idle = 3600.0;
  const TscCount t =
      w.last.tf + static_cast<TscCount>(idle / w.link.config().period);
  const Seconds true_t =
      static_cast<double>(counter_delta(t, w.link.config().counter_base)) *
      w.link.config().period;
  const Seconds err = w.clock.absolute_time(t) - true_t;
  EXPECT_NEAR(err, w.link.asymmetry() / 2, 60e-6);
}

TEST(ClockReads, ReadsConsistentAcrossRateUpdates) {
  // Snapshot a future instant's reading, process more packets (which
  // update p̂), and re-read: the change is bounded by Δp̂·distance, never a
  // step.
  WarmClock w;
  const TscCount probe =
      w.last.tf + static_cast<TscCount>(100.0 / w.clock.period());
  const Seconds before = w.clock.uncorrected_time(probe);
  for (int i = 0; i < 50; ++i) w.clock.process_exchange(w.link.next());
  const Seconds after = w.clock.uncorrected_time(probe);
  EXPECT_NEAR(after, before, 1e-3 /* generous: ~µs expected */);
}

TEST(ClockReads, WarmupBoundaryIsSeamless) {
  // The packet at which warm-up completes must not produce a read step.
  SyntheticLink link;
  auto params = test_params();
  TscNtpClock clock(params, link.config().period * 1.00005);
  Seconds prev_reading = 0;
  bool warmed_prev = false;
  for (int i = 0; i < 60; ++i) {
    const auto ex = link.next();
    clock.process_exchange(ex);
    const Seconds reading = clock.uncorrected_time(ex.tf);
    const bool warmed = clock.status().warmed_up;
    if (i > 0) {
      EXPECT_NEAR(reading - prev_reading, 16.0, 2e-3)
          << "packet " << i
          << (warmed != warmed_prev ? " (warm-up boundary)" : "");
    }
    prev_reading = reading;
    warmed_prev = warmed;
  }
  EXPECT_TRUE(clock.status().warmed_up);
}

}  // namespace
}  // namespace tscclock::core
