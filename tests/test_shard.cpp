// ShardSpec parsing and the round-robin partition property behind the
// fleet-scale sweep: for any fleet size N, the union of the N shards'
// scenario slices covers the expanded grid exactly once — no gaps, no
// overlaps — including grids smaller than the fleet and grids whose
// estimator axis carries replay families (which must not change the
// partition: replay lanes ride inside their owning scenario).
#include "sweep/shard.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "harness/estimator_spec.hpp"
#include "sweep/scenario_grid.hpp"
#include "sweep/sweep.hpp"

namespace tscclock::sweep {
namespace {

TEST(ShardParse, AcceptsOneBasedShapes) {
  EXPECT_EQ(parse_shard("1/1"), (ShardSpec{1, 1}));
  EXPECT_EQ(parse_shard("2/8"), (ShardSpec{2, 8}));
  // The last shard of N is a valid index (1-based convention).
  EXPECT_EQ(parse_shard("3/3"), (ShardSpec{3, 3}));
  EXPECT_EQ(parse_shard("16/16"), (ShardSpec{16, 16}));
}

TEST(ShardParse, RejectsMalformedShapes) {
  // Zero-based indices, out-of-range indices, zero fleets, non-numeric
  // parts and missing separators are all usage errors.
  for (const char* text :
       {"0/3", "4/3", "1/0", "0/0", "x/y", "13", "", "/", "1/", "/3", "1//3",
        "1/3/5", "-1/3", "1/-3", " 1/3", "1/3 ", "3x/3", "3/3x",
        "99999999999999999999/3"}) {
    EXPECT_THROW(parse_shard(text), SweepUsageError) << "'" << text << "'";
  }
}

TEST(ShardParse, ErrorsNameTheOffendingValue) {
  try {
    parse_shard("0/3");
    FAIL() << "expected SweepUsageError";
  } catch (const SweepUsageError& e) {
    EXPECT_NE(std::string(e.what()).find("0/3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1-based"), std::string::npos);
  }
}

TEST(ShardSpecTest, LabelRoundTrips) {
  for (const auto& spec :
       {ShardSpec{1, 1}, ShardSpec{2, 8}, ShardSpec{16, 16}}) {
    EXPECT_EQ(parse_shard(spec.label()), spec);
  }
}

TEST(ShardSpecTest, WholeIsTheSingleShardFleet) {
  EXPECT_TRUE((ShardSpec{1, 1}).whole());
  EXPECT_FALSE((ShardSpec{1, 2}).whole());
}

/// The covering property the merge relies on, checked exhaustively for one
/// grid size and fleet size.
void expect_exact_cover(std::size_t total, std::size_t fleet) {
  std::set<std::size_t> seen;
  for (std::size_t i = 1; i <= fleet; ++i) {
    const auto owned = shard_scenarios(total, ShardSpec{i, fleet});
    // Slices are sorted grid indices (the dump/merge order contract).
    EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
    for (const std::size_t scenario : owned) {
      EXPECT_LT(scenario, total) << "shard " << i << "/" << fleet;
      EXPECT_TRUE(seen.insert(scenario).second)
          << "scenario " << scenario << " covered twice (fleet " << fleet
          << ")";
    }
  }
  EXPECT_EQ(seen.size(), total) << "gaps in the cover (fleet " << fleet << ")";
}

TEST(ShardPartition, UnionCoversEveryGridExactlyOnce) {
  for (const std::size_t fleet : {1u, 2u, 3u, 7u, 16u}) {
    // Grid sizes from empty through smaller-than-fleet to several multiples,
    // plus an off-multiple size — the edges where round-robin arithmetic
    // goes wrong first.
    for (const std::size_t total : {0u, 1u, 2u, 3u, 5u, 7u, 12u, 16u, 48u,
                                    49u}) {
      expect_exact_cover(total, fleet);
    }
  }
}

TEST(ShardPartition, SmallerGridThanFleetLeavesTrailingShardsEmpty) {
  // 2 scenarios across 7 shards: shards 1 and 2 get one each, 3..7 none —
  // an empty slice is a valid (zero-cell) shard, not an error.
  EXPECT_EQ(shard_scenarios(2, ShardSpec{1, 7}),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(shard_scenarios(2, ShardSpec{2, 7}),
            (std::vector<std::size_t>{1}));
  for (std::size_t i = 3; i <= 7; ++i) {
    EXPECT_TRUE(shard_scenarios(2, ShardSpec{i, 7}).empty()) << i;
  }
}

TEST(ShardPartition, OwnsAgreesWithShardScenarios) {
  const std::size_t total = 23;
  for (const std::size_t fleet : {1u, 3u, 7u}) {
    for (std::size_t i = 1; i <= fleet; ++i) {
      const ShardSpec shard{i, fleet};
      const auto owned = shard_scenarios(total, shard);
      const std::set<std::size_t> owned_set(owned.begin(), owned.end());
      for (std::size_t s = 0; s < total; ++s) {
        EXPECT_EQ(shard.owns(s), owned_set.count(s) == 1)
            << "scenario " << s << ", shard " << shard.label();
      }
    }
  }
}

/// The property on a *real* expanded grid whose estimator axis includes a
/// replay family: the partition is over scenarios, so the replay lanes of a
/// scenario always land in the same shard as the online lanes that share
/// its Testbed drain and recording.
TEST(ShardPartition, RealGridWithReplayEstimatorsPartitionsByScenario) {
  GridSpec grid;
  grid.duration = 0.1 * duration::kHour;
  grid.estimators = {harness::EstimatorSpec{"robust", {}},
                     harness::EstimatorSpec{"offline", {}}};
  const ScenarioSweep engine(grid);
  const std::size_t total = engine.scenarios().size();
  ASSERT_GT(total, 0u);
  for (const std::size_t fleet : {1u, 2u, 3u, 7u, 16u}) {
    expect_exact_cover(total, fleet);
  }
}

}  // namespace
}  // namespace tscclock::sweep
