// Tests for the testbed component models: host timestamping, one-way path,
// server, DAG monitor and the event schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "sim/dag.hpp"
#include "sim/events.hpp"
#include "sim/path.hpp"
#include "sim/server.hpp"
#include "sim/timestamping.hpp"

namespace tscclock::sim {
namespace {

// ---------------------------------------------------------- timestamping
TEST(HostTimestamper, LatenciesRespectMinima) {
  HostTimestamper h(TimestampingConfig{}, Rng(1));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(h.draw_send_lead(), TimestampingConfig{}.send_latency_min);
    EXPECT_GE(h.draw_recv_lag(), TimestampingConfig{}.recv_latency_min);
  }
}

TEST(HostTimestamper, RecvLagMostlyWithinDelta) {
  // δ = 15 µs is the paper's *maximum* typical timestamping error; the bulk
  // of interrupt latencies must fall well inside it.
  HostTimestamper h(TimestampingConfig{}, Rng(2));
  int within = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (h.draw_recv_lag() < 15e-6) ++within;
  EXPECT_GT(within, n * 90 / 100);
}

TEST(HostTimestamper, SideModesAppear) {
  TimestampingConfig config;
  config.side_mode_10us_prob = 1.0;  // force the mode
  config.side_mode_31us_prob = 0.0;
  config.outlier_prob = 0.0;
  HostTimestamper h(config, Rng(3));
  for (int i = 0; i < 100; ++i) EXPECT_GE(h.draw_recv_lag(), 10e-6);
}

TEST(HostTimestamper, OutliersAreRareAndBounded) {
  TimestampingConfig config;
  HostTimestamper h(config, Rng(4));
  int outliers = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (h.draw_recv_lag() > 0.1e-3) ++outliers;
  // ~1e-4 probability.
  EXPECT_LT(outliers, 40);
  EXPECT_GT(outliers, 0);
}

TEST(HostTimestamper, ConfigValidation) {
  TimestampingConfig config;
  config.send_latency_mean = 0.0;  // below min
  EXPECT_THROW(HostTimestamper(config, Rng(1)), ContractViolation);
}

// ------------------------------------------------------------------ path
TEST(OneWayDelayModel, DelayNeverBelowMinimum) {
  OneWayDelayConfig config;
  OneWayDelayModel m(config, Rng(5));
  for (int i = 0; i < 5000; ++i) {
    const Seconds d = m.delay(i * 16.0);
    EXPECT_GE(d, config.min_delay);
  }
}

TEST(OneWayDelayModel, MinimumIsApproached) {
  OneWayDelayConfig config;
  config.spike_prob = 0.0;
  OneWayDelayModel m(config, Rng(6));
  Seconds lowest = 1.0;
  for (int i = 0; i < 5000; ++i) lowest = std::min(lowest, m.delay(i * 16.0));
  EXPECT_LT(lowest - config.min_delay, 3 * config.jitter_mean / 100);
}

TEST(OneWayDelayModel, CongestionEpisodesRaiseDelays) {
  OneWayDelayConfig config;
  config.congestion_mean_interval = 600;  // frequent for the test
  config.congestion_mean_duration = 300;
  OneWayDelayModel m(config, Rng(7));
  RunningMoments congested;
  RunningMoments clear;
  for (int i = 0; i < 200000; ++i) {
    const Seconds t = i * 1.0;
    const Seconds d = m.delay(t);
    if (m.in_congestion(t))
      congested.update(d);
    else
      clear.update(d);
  }
  ASSERT_GT(congested.count(), 100u);
  EXPECT_GT(congested.mean(), 2 * clear.mean());
}

TEST(OneWayDelayModel, RejectsBadConfig) {
  OneWayDelayConfig config;
  config.min_delay = 0.0;
  EXPECT_THROW(OneWayDelayModel(config, Rng(1)), ContractViolation);
  config = OneWayDelayConfig{};
  config.pareto_shape = 1.0;
  EXPECT_THROW(OneWayDelayModel(config, Rng(1)), ContractViolation);
}

TEST(PathModel, AsymmetryMatchesConfiguredMinima) {
  PathConfig config;
  config.forward.min_delay = 450e-6;
  config.backward.min_delay = 400e-6;
  PathModel path(config, nullptr, Rng(8));
  EXPECT_NEAR(path.asymmetry(0.0), 50e-6, 1e-12);
}

TEST(PathModel, LevelShiftDisplacesMinimum) {
  PathConfig config;
  EventSchedule events;
  events.add_level_shift({1000.0, kForever, 0.9e-3, 0.0});
  PathModel path(config, &events, Rng(9));
  EXPECT_NEAR(path.forward_min(999.0), config.forward.min_delay, 1e-12);
  EXPECT_NEAR(path.forward_min(1001.0), config.forward.min_delay + 0.9e-3,
              1e-12);
  EXPECT_NEAR(path.backward_min(1001.0), config.backward.min_delay, 1e-12);
  // Asymmetry changes by the one-sided shift.
  EXPECT_NEAR(path.asymmetry(1001.0) - path.asymmetry(999.0), 0.9e-3, 1e-12);
}

TEST(PathModel, TemporaryShiftEnds) {
  PathConfig config;
  EventSchedule events;
  events.add_level_shift({1000.0, 2000.0, 0.5e-3, 0.5e-3});
  PathModel path(config, &events, Rng(10));
  EXPECT_NEAR(path.forward_min(1500.0), config.forward.min_delay + 0.5e-3,
              1e-12);
  EXPECT_NEAR(path.forward_min(2500.0), config.forward.min_delay, 1e-12);
}

TEST(PathModel, LossFrequencyMatchesProbability) {
  PathConfig config;
  config.loss_prob = 0.05;
  PathModel path(config, nullptr, Rng(11));
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (path.forward(i * 16.0).lost) ++lost;
    if (path.backward(i * 16.0 + 1.0).lost) ++lost;
  }
  EXPECT_NEAR(lost / (2.0 * n), 0.05, 0.01);
}

// ---------------------------------------------------------------- server
TEST(NtpServer, ProcessingRespectsMinimum) {
  NtpServer server(ServerConfig{}, nullptr, Rng(12));
  for (int i = 0; i < 2000; ++i) {
    const auto r = server.handle(i * 16.0);
    EXPECT_GE(r.te_true - r.tb_true, ServerConfig{}.min_processing);
    EXPECT_EQ(r.tb_true, i * 16.0);
  }
}

TEST(NtpServer, StampsTrackTruthToMicroseconds) {
  NtpServer server(ServerConfig{}, nullptr, Rng(13));
  for (int i = 0; i < 2000; ++i) {
    const auto r = server.handle(i * 16.0);
    EXPECT_LT(std::fabs(r.tb_stamp - r.tb_true), 10e-6);
    // Te is usually early (stamped before true departure) but bounded.
    EXPECT_LT(r.te_stamp - r.te_true, 1.1e-3);
    EXPECT_GT(r.te_stamp - r.te_true, -50e-6);
  }
}

TEST(NtpServer, SchedulingSpikesExist) {
  ServerConfig config;
  config.sched_spike_prob = 0.05;  // raise for the test
  NtpServer server(config, nullptr, Rng(14));
  int spikes = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = server.handle(i * 16.0);
    if (r.te_true - r.tb_true > 0.5e-3) ++spikes;
  }
  EXPECT_GT(spikes, 50);
}

TEST(NtpServer, FaultOffsetsBothStamps) {
  EventSchedule events;
  events.add_server_fault(100.0, 200.0, 0.150);
  NtpServer server(ServerConfig{}, &events, Rng(15));
  const auto before = server.handle(50.0);
  EXPECT_LT(std::fabs(before.tb_stamp - before.tb_true), 1e-3);
  const auto during = server.handle(150.0);
  EXPECT_NEAR(during.tb_stamp - during.tb_true, 0.150, 1e-3);
  EXPECT_NEAR(during.te_stamp - during.te_true, 0.150, 2e-3);
  const auto after = server.handle(250.0);
  EXPECT_LT(std::fabs(after.tb_stamp - after.tb_true), 1e-3);
}

// ------------------------------------------------------------------- dag
TEST(DagMonitor, CorrectedStampNearFullArrival) {
  DagMonitor dag(DagConfig{}, Rng(16));
  RunningMoments err;
  for (int i = 0; i < 5000; ++i) {
    const auto s = dag.observe(i * 16.0);
    if (!s.available) continue;
    err.update(s.corrected - i * 16.0);
  }
  // Bias = card latency (~0.3 µs), spread ~0.1 µs: far below the 5 µs
  // verification limit the paper quotes.
  EXPECT_LT(std::fabs(err.mean()), 1e-6);
  EXPECT_LT(err.stddev(), 0.5e-6);
}

TEST(DagMonitor, SomeStampsAreMissing) {
  DagConfig config;
  config.missing_prob = 0.01;
  DagMonitor dag(config, Rng(17));
  int missing = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (!dag.observe(i * 1.0).available) ++missing;
  EXPECT_NEAR(missing / static_cast<double>(n), 0.01, 0.005);
}

// ---------------------------------------------------------------- events
TEST(EventSchedule, OutageQuery) {
  EventSchedule ev;
  ev.add_outage(100.0, 200.0);
  EXPECT_FALSE(ev.in_outage(99.0));
  EXPECT_TRUE(ev.in_outage(100.0));
  EXPECT_TRUE(ev.in_outage(199.9));
  EXPECT_FALSE(ev.in_outage(200.0));
}

TEST(EventSchedule, FaultsAccumulate) {
  EventSchedule ev;
  ev.add_server_fault(0.0, 100.0, 0.1).add_server_fault(50.0, 100.0, 0.05);
  EXPECT_DOUBLE_EQ(ev.server_fault_offset(75.0), 0.15);
  EXPECT_DOUBLE_EQ(ev.server_fault_offset(25.0), 0.1);
  EXPECT_DOUBLE_EQ(ev.server_fault_offset(150.0), 0.0);
}

TEST(EventSchedule, ShiftsCompose) {
  EventSchedule ev;
  ev.add_level_shift({0.0, kForever, 1e-3, 0.0});
  ev.add_level_shift({10.0, 20.0, 0.0, 2e-3});
  const auto at15 = ev.path_shift(15.0);
  EXPECT_DOUBLE_EQ(at15.forward, 1e-3);
  EXPECT_DOUBLE_EQ(at15.backward, 2e-3);
  const auto at25 = ev.path_shift(25.0);
  EXPECT_DOUBLE_EQ(at25.forward, 1e-3);
  EXPECT_DOUBLE_EQ(at25.backward, 0.0);
}

TEST(EventSchedule, RejectsEmptyIntervals) {
  EventSchedule ev;
  EXPECT_THROW(ev.add_outage(10.0, 10.0), ContractViolation);
  EXPECT_THROW(ev.add_server_fault(10.0, 5.0, 0.1), ContractViolation);
}

}  // namespace
}  // namespace tscclock::sim
