// Tests for the top-level sliding window (paper §6.1 "Windowing").
#include "core/window.hpp"

#include <gtest/gtest.h>

namespace tscclock::core {
namespace {

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.top_window = 16.0 * 20;  // 20-packet top window for tight tests
  // Keep the cross-field invariant top_window >= local_rate_window.
  p.local_rate_window = 16.0 * 10;
  p.gap_threshold = 16.0 * 5;
  p.shift_window = 16.0 * 5;
  return p;
}

PacketRecord make_record(std::uint64_t seq, TscDelta rtt) {
  PacketRecord rec;
  rec.seq = seq;
  rec.rtt = rtt;
  rec.stamps.ta = 1000 * seq;
  rec.stamps.tf = 1000 * seq + static_cast<TscCount>(rtt);
  return rec;
}

TEST(TopWindow, NoUpdateUntilFull) {
  TopWindow w(test_params());
  for (std::uint64_t i = 0; i < 19; ++i) {
    const auto u = w.add(make_record(i, 1000), 0);
    EXPECT_FALSE(u.triggered);
  }
  EXPECT_EQ(w.stored(), 19u);
}

TEST(TopWindow, UpdateDiscardsOldestHalf) {
  TopWindow w(test_params());
  TopWindow::Update update;
  for (std::uint64_t i = 0; i < 20; ++i)
    update = w.add(make_record(i, 1000 + static_cast<TscDelta>(i)), 0);
  EXPECT_TRUE(update.triggered);
  EXPECT_EQ(w.stored(), 10u);
  EXPECT_EQ(update.oldest_seq, 10u);
  EXPECT_EQ(w.updates(), 1u);
}

TEST(TopWindow, NewMinimumFromRetainedHalf) {
  TopWindow w(test_params());
  TopWindow::Update update;
  // Oldest half has the global min (900); retained half bottoms at 1000.
  for (std::uint64_t i = 0; i < 10; ++i)
    update = w.add(make_record(i, 900 + static_cast<TscDelta>(i)), 0);
  for (std::uint64_t i = 10; i < 20; ++i)
    update = w.add(make_record(i, 1000 + static_cast<TscDelta>(i)), 0);
  ASSERT_TRUE(update.triggered);
  EXPECT_EQ(update.new_rhat, 1010);  // min of retained half
}

TEST(TopWindow, MinRespectsShiftPoint) {
  TopWindow w(test_params());
  TopWindow::Update update;
  for (std::uint64_t i = 0; i < 20; ++i)
    update = w.add(make_record(i, i < 15 ? 1000 : 2000), /*min_valid_seq=*/15);
  ASSERT_TRUE(update.triggered);
  // Only packets with seq >= 15 count: minimum is the post-shift level.
  EXPECT_EQ(update.new_rhat, 2000);
}

TEST(TopWindow, MinFallsBackWhenNoPacketBeyondShiftPoint) {
  TopWindow w(test_params());
  TopWindow::Update update;
  for (std::uint64_t i = 0; i < 20; ++i)
    update = w.add(make_record(i, 1000), /*min_valid_seq=*/1000);
  ASSERT_TRUE(update.triggered);
  EXPECT_EQ(update.new_rhat, 1000);  // all-retained fallback
}

TEST(TopWindow, AnchorCandidateFromOldestQuarterBestQuality) {
  TopWindow w(test_params());
  TopWindow::Update update;
  for (std::uint64_t i = 0; i < 20; ++i) {
    // Retained half = seqs 10..19; its oldest quarter = seqs 10,11.
    const TscDelta rtt = (i == 11) ? 500 : 1000;
    update = w.add(make_record(i, rtt), 0);
  }
  ASSERT_TRUE(update.triggered);
  ASSERT_TRUE(update.anchor_candidate.has_value());
  EXPECT_EQ(update.anchor_candidate->seq, 11u);
  EXPECT_EQ(update.anchor_error_counts, 0);  // it *is* the minimum
}

TEST(TopWindow, RepeatedUpdatesEveryHalfWindow) {
  TopWindow w(test_params());
  int updates = 0;
  for (std::uint64_t i = 0; i < 100; ++i)
    if (w.add(make_record(i, 1000), 0).triggered) ++updates;
  // First at 20, then every 10 packets: (100-20)/10 + 1 = 9.
  EXPECT_EQ(updates, 9);
  EXPECT_EQ(w.updates(), 9u);
}

TEST(TopWindow, AnchorErrorNonNegative) {
  TopWindow w(test_params());
  TopWindow::Update update;
  for (std::uint64_t i = 0; i < 20; ++i)
    update = w.add(make_record(i, 1500 - static_cast<TscDelta>(i * 10)), 0);
  ASSERT_TRUE(update.triggered);
  EXPECT_GE(update.anchor_error_counts, 0);
}

}  // namespace
}  // namespace tscclock::core
