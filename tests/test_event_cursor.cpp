// EventCursor vs the from-scratch EventSchedule queries: the cursor is a
// pure lookup accelerator, so its three answers must be exactly equal to
// the naive scans at every time — under monotone streams (the testbed's
// case), non-monotonic jumps (the binary-search fallback), mid-stream
// schedule edits (revision invalidation), and with no schedule at all.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "sim/events.hpp"

namespace tscclock::sim {
namespace {

/// A schedule exercising every event kind with overlaps, shared edges, and a
/// permanent (kForever) shift — the shapes the sweep's fault grid uses.
EventSchedule stress_schedule() {
  EventSchedule events;
  events.add_outage(1200.0, 1500.0);
  events.add_outage(1400.0, 1600.0);  // overlapping outage
  events.add_server_fault(500.0, 900.0, 0.25);
  events.add_server_fault(800.0, 2000.0, -0.05);  // overlaps the first
  events.add_level_shift({/*start=*/300.0, /*end=*/700.0,
                          /*forward_delta=*/0.003, /*backward_delta=*/0.0});
  events.add_level_shift({/*start=*/700.0, /*end=*/2500.0,
                          /*forward_delta=*/-0.001,
                          /*backward_delta=*/0.002});  // edge-adjacent
  events.add_level_shift({/*start=*/1800.0, /*end=*/kForever,
                          /*forward_delta=*/0.0005,
                          /*backward_delta=*/0.0005});  // permanent
  return events;
}

void expect_cursor_matches(EventCursor& cursor, const EventSchedule& events,
                           Seconds t) {
  EXPECT_EQ(cursor.in_outage(t), events.in_outage(t)) << "t=" << t;
  EXPECT_EQ(cursor.server_fault_offset(t), events.server_fault_offset(t))
      << "t=" << t;
  const auto cursor_shift = cursor.path_shift(t);
  const auto naive_shift = events.path_shift(t);
  EXPECT_EQ(cursor_shift.forward, naive_shift.forward) << "t=" << t;
  EXPECT_EQ(cursor_shift.backward, naive_shift.backward) << "t=" << t;
}

TEST(EventCursor, MonotoneSweepMatchesFromScratchQueries) {
  const EventSchedule events = stress_schedule();
  EventCursor cursor(&events);
  // Fine sweep crossing every boundary, including exact edge times (all
  // intervals are half-open [start, end), which the sweep must reproduce).
  for (Seconds t = -100.0; t <= 3000.0; t += 12.5)
    expect_cursor_matches(cursor, events, t);
}

TEST(EventCursor, ExactBoundaryTimesMatch) {
  const EventSchedule events = stress_schedule();
  EventCursor cursor(&events);
  for (const Seconds t : {300.0, 500.0, 700.0, 800.0, 900.0, 1200.0, 1400.0,
                          1500.0, 1600.0, 1800.0, 2000.0, 2500.0})
    expect_cursor_matches(cursor, events, t);
}

TEST(EventCursor, NonMonotonicQueriesFallBackCorrectly) {
  const EventSchedule events = stress_schedule();
  EventCursor cursor(&events);
  // Advance deep into the schedule, then jump backwards repeatedly; every
  // backward query must trigger the from-scratch fallback and still agree.
  expect_cursor_matches(cursor, events, 2600.0);
  for (const Seconds t : {1450.0, 350.0, 2600.0, 0.0, 1850.0, 650.0})
    expect_cursor_matches(cursor, events, t);
}

TEST(EventCursor, RandomWalkMatchesFromScratchQueries) {
  const EventSchedule events = stress_schedule();
  EventCursor cursor(&events);
  Rng rng(20260808);
  for (int k = 0; k < 2000; ++k)
    expect_cursor_matches(cursor, events, rng.uniform(-200.0, 3200.0));
}

TEST(EventCursor, SeesEventsAddedAfterFirstQuery) {
  EventSchedule events;
  events.add_outage(100.0, 200.0);
  EventCursor cursor(&events);
  EXPECT_TRUE(cursor.in_outage(150.0));
  EXPECT_FALSE(cursor.in_outage(300.0));

  // Mid-stream edit: the revision bump must invalidate the cursor's segment
  // index even for a non-decreasing query stream.
  events.add_outage(250.0, 400.0);
  EXPECT_TRUE(cursor.in_outage(300.0));
  events.add_server_fault(500.0, 600.0, 1.5);
  EXPECT_EQ(cursor.server_fault_offset(550.0), 1.5);
  expect_cursor_matches(cursor, events, 550.0);
}

TEST(EventCursor, NullScheduleAnswersNoEventActive) {
  EventCursor cursor;  // default-constructed: no schedule attached
  for (const Seconds t : {-1e9, 0.0, 12345.6, 1e12}) {
    EXPECT_FALSE(cursor.in_outage(t));
    EXPECT_EQ(cursor.server_fault_offset(t), 0.0);
    EXPECT_EQ(cursor.path_shift(t).forward, 0.0);
    EXPECT_EQ(cursor.path_shift(t).backward, 0.0);
  }
}

TEST(EventCursor, CompiledSegmentsCoverScheduleBitIdentically) {
  // The compiled timeline itself: segment 0 reaches back to -infinity, and
  // evaluating the naive queries at each segment start reproduces exactly
  // the stored values (the compiler calls those same scans).
  const EventSchedule events = stress_schedule();
  const auto& segments = events.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_TRUE(std::isinf(segments.front().start));
  EXPECT_LT(segments.front().start, 0.0);
  for (std::size_t k = 1; k < segments.size(); ++k) {
    const auto& seg = segments[k];
    EXPECT_LT(segments[k - 1].start, seg.start);
    EXPECT_EQ(seg.outage, events.in_outage(seg.start));
    EXPECT_EQ(seg.fault_offset, events.server_fault_offset(seg.start));
    EXPECT_EQ(seg.shift.forward, events.path_shift(seg.start).forward);
    EXPECT_EQ(seg.shift.backward, events.path_shift(seg.start).backward);
  }
}

}  // namespace
}  // namespace tscclock::sim
