// Hostile-input hardening of the wire layer (wire/ntp_packet.hpp): decode
// against truncated datagrams and validate_server_reply against every
// misbehavior class the live collector must refuse — kiss-o'-death (naming
// the kiss code), unsynchronized servers, reserved strata, zero timestamps
// and origin-echo mismatches. Each case must surface as a precise
// PacketError, never as a garbage exchange.
#include "wire/ntp_packet.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tscclock::wire {
namespace {

NtpTimestamp stamp(std::uint32_t seconds, std::uint32_t fraction) {
  NtpTimestamp t;
  t.seconds = seconds;
  t.fraction = fraction;
  return t;
}

/// A well-formed stratum-2 reply answering a request whose transmit
/// timestamp was `origin` — the baseline every mutation below starts from.
NtpPacket good_reply(const NtpTimestamp& origin) {
  const NtpPacket request = make_client_request(origin, 4);
  return make_server_reply(request, stamp(0xe0000000, 0x40000000),
                           stamp(0xe0000000, 0x50000000), 2,
                           reference_id_from_string("GPS "));
}

const NtpTimestamp kOrigin = stamp(0xdeadbeef, 0xcafe1234);

std::string validation_error(const NtpPacket& reply,
                             const NtpTimestamp& origin = kOrigin) {
  try {
    validate_server_reply(reply, origin);
  } catch (const PacketError& e) {
    return e.what();
  }
  return {};
}

// -- decode: truncated and malformed datagrams -----------------------------

TEST(WireValidate, DecodeRefusesTruncatedDatagrams) {
  const auto bytes = encode(good_reply(kOrigin));
  // Every length short of the 48-byte header must throw — a truncated
  // datagram can never half-parse into a plausible packet.
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                std::size_t{20}, std::size_t{47}}) {
    try {
      decode(std::span<const std::uint8_t>(bytes.data(), len));
      FAIL() << "decode accepted a " << len << "-byte datagram";
    } catch (const PacketError& e) {
      EXPECT_NE(std::string(e.what()).find(std::to_string(len)),
                std::string::npos)
          << "error should name the actual length: " << e.what();
    }
  }
}

TEST(WireValidate, DecodeAcceptsExactHeaderAndIgnoresTrailingBytes) {
  const NtpPacket reply = good_reply(kOrigin);
  const auto bytes = encode(reply);
  EXPECT_EQ(decode(bytes), reply);
  // Extensions/MAC ride behind the header and are ignored.
  std::vector<std::uint8_t> padded(bytes.begin(), bytes.end());
  padded.resize(kNtpPacketSize + 20, 0xab);
  EXPECT_EQ(decode(padded), reply);
}

// -- validate_server_reply --------------------------------------------------

TEST(WireValidate, AcceptsWellFormedReply) {
  EXPECT_NO_THROW(validate_server_reply(good_reply(kOrigin), kOrigin));
}

TEST(WireValidate, RefusesNonServerMode) {
  NtpPacket reply = good_reply(kOrigin);
  reply.mode = NtpMode::kClient;
  EXPECT_NE(validation_error(reply).find("mode"), std::string::npos);
  reply.mode = NtpMode::kBroadcast;
  EXPECT_FALSE(validation_error(reply).empty());
}

TEST(WireValidate, KissOfDeathNamesTheKissCode) {
  NtpPacket reply = good_reply(kOrigin);
  reply.stratum = 0;
  reply.reference_id = reference_id_from_string("RATE");
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("kiss-o'-death"), std::string::npos) << what;
  EXPECT_NE(what.find("RATE"), std::string::npos) << what;
}

TEST(WireValidate, KissCodeWithUnprintableBytesStaysPrintable) {
  NtpPacket reply = good_reply(kOrigin);
  reply.stratum = 0;
  reply.reference_id = 0x01020304;  // no printable rendering of its own
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("kiss-o'-death"), std::string::npos) << what;
  // The diagnostic renders non-printable id bytes as '.', never raw bytes.
  for (const char c : what) {
    EXPECT_TRUE(c >= 0x20 || c == '\t') << "unprintable byte in: " << what;
  }
}

TEST(WireValidate, RefusesReservedStratum) {
  NtpPacket reply = good_reply(kOrigin);
  reply.stratum = 16;
  EXPECT_NE(validation_error(reply).find("stratum"), std::string::npos);
}

TEST(WireValidate, RefusesUnsynchronizedLeapIndicator) {
  NtpPacket reply = good_reply(kOrigin);
  reply.leap = LeapIndicator::kUnsynchronized;
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("unsynchronized"), std::string::npos) << what;
}

TEST(WireValidate, RefusesZeroReceiveOrTransmitTimestamp) {
  NtpPacket reply = good_reply(kOrigin);
  reply.receive_time = stamp(0, 0);
  EXPECT_FALSE(validation_error(reply).empty());
  reply = good_reply(kOrigin);
  reply.transmit_time = stamp(0, 0);
  EXPECT_FALSE(validation_error(reply).empty());
}

TEST(WireValidate, RefusesZeroOrigin) {
  NtpPacket reply = good_reply(kOrigin);
  reply.origin_time = stamp(0, 0);
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("origin"), std::string::npos) << what;
}

TEST(WireValidate, RefusesMismatchedOriginEcho) {
  // An off-path attacker cannot know the request's transmit timestamp; a
  // reply whose origin does not echo it — even by one fraction LSB — does
  // not answer our request.
  NtpPacket reply = good_reply(kOrigin);
  reply.origin_time.fraction ^= 1;
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("origin"), std::string::npos) << what;
}

TEST(WireValidate, ChecksRunInDocumentedOrder) {
  // A packet wrong in several ways reports the first documented check:
  // kiss-o'-death wins over the (also present) zero origin.
  NtpPacket reply = good_reply(kOrigin);
  reply.stratum = 0;
  reply.reference_id = reference_id_from_string("DENY");
  reply.origin_time = stamp(0, 0);
  reply.leap = LeapIndicator::kUnsynchronized;
  const std::string what = validation_error(reply);
  EXPECT_NE(what.find("kiss-o'-death"), std::string::npos) << what;
}

TEST(WireValidate, ReferenceIdRoundTrip) {
  EXPECT_EQ(reference_id_to_string(reference_id_from_string("RATE")), "RATE");
  EXPECT_EQ(reference_id_to_string(reference_id_from_string("GPS ")), "GPS ");
}

}  // namespace
}  // namespace tscclock::wire
