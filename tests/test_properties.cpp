// Property-based suites (parameterized gtest): invariants that must hold
// across seeds, servers, environments and polling periods.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/stats.hpp"
#include "core/clock.hpp"
#include "sim/scenario.hpp"
#include "synthetic_link.hpp"

namespace tscclock {
namespace {

// ---------------------------------------------------------------------
// Property 1 — across random scenarios: the offset sanity check bounds the
// step between successive reported estimates by Es; the clock C(t) never
// steps; point errors are never negative; r̂ is non-increasing between
// upward-shift reactions and window updates.
// ---------------------------------------------------------------------
class ScenarioProperties
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 sim::ServerKind, Seconds>> {};

TEST_P(ScenarioProperties, CoreInvariantsHold) {
  const auto [seed, kind, poll] = GetParam();
  sim::ScenarioConfig scenario;
  scenario.server = kind;
  scenario.poll_period = poll;
  scenario.duration = 6 * duration::kHour;
  scenario.seed = seed;
  // Stress: a fault and a shift in every run.
  scenario.events.add_server_fault(2 * duration::kHour,
                                   2 * duration::kHour + 300, 0.150);
  scenario.events.add_level_shift(
      {4 * duration::kHour, sim::kForever, 0.7e-3, 0.0});

  sim::Testbed testbed(scenario);
  core::Params params;
  params.poll_period = poll;
  core::TscNtpClock clock(params, testbed.nominal_period());

  bool have_prev = false;
  Seconds prev_estimate = 0;
  Seconds prev_reading = 0;
  TscCount prev_tf = 0;
  bool prev_gap_blend = false;

  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});

    // Point errors are non-negative by construction.
    EXPECT_GE(report.point_error, 0.0);

    if (have_prev) {
      // Sanity invariant: successive reported estimates differ by ≤ Es
      // except through the gap-blend path (its own guard), the lock-out
      // escapes (which exist precisely to accept a persistent large
      // correction), and warm-up (where p̂ legitimately moves by tens of
      // PPM per packet and θ̂ must track the resulting clock drift).
      if (!report.gap_blend && !prev_gap_blend &&
          !report.offset_sanity_released && !report.rate_sanity_released &&
          clock.status().warmed_up) {
        EXPECT_LE(std::fabs(report.offset_estimate - prev_estimate),
                  params.offset_sanity + 1e-9)
            << "packet " << clock.status().packets_processed;
      }
      // The clock function is affine: under the *current* timescale the
      // reading difference equals the difference clock exactly.
      const Seconds reading = clock.uncorrected_time(ex->tf_counts);
      const Seconds prev_now = clock.uncorrected_time(prev_tf);
      const Seconds elapsed = clock.difference(prev_tf, ex->tf_counts);
      EXPECT_NEAR(reading - prev_now, elapsed, 1e-9);
      EXPECT_GT(reading, prev_reading);
      // Continuity (§6.1): a p̂ update re-anchors at the current packet, so
      // the reading of the *previous* packet's timestamp moves by at most
      // |Δp̂|·interval. Post-warm-up, the rate sanity check bounds |Δp̂| by
      // max(3e-7, 4·Σquality); during warm-up the initial guess error
      // (tens of PPM) dominates.
      // Steps where the rate lock-out escape fired legitimately accept a
      // large p̂ change (that is its purpose) — exempt, like warm-up.
      const double dp_allow =
          clock.status().warmed_up && !report.rate_sanity_released
              ? 2 * std::max(3e-7, 8 * clock.status().period_quality)
              : ppm(400.0);
      const double dp_bound = dp_allow * elapsed;
      EXPECT_NEAR(prev_now, prev_reading, dp_bound);
    }
    prev_estimate = report.offset_estimate;
    prev_reading = clock.uncorrected_time(ex->tf_counts);
    prev_tf = ex->tf_counts;
    prev_gap_blend = report.gap_blend;
    have_prev = true;
  }
  // After six hours the clock is warmed up and rate is within the paper's
  // bound for every tested configuration.
  EXPECT_TRUE(clock.status().warmed_up);
  EXPECT_LT(std::fabs(clock.period() / testbed.true_period() - 1.0),
            ppm(0.3));
}

std::string scenario_name(
    const ::testing::TestParamInfo<
        std::tuple<std::uint64_t, sim::ServerKind, Seconds>>& info) {
  const auto seed = std::get<0>(info.param);
  const auto kind = std::get<1>(info.param);
  const auto poll = std::get<2>(info.param);
  return "seed" + std::to_string(seed) + "_" + sim::to_string(kind) +
         "_poll" + std::to_string(static_cast<int>(poll));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsServersPolls, ScenarioProperties,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Values(sim::ServerKind::kLoc,
                                         sim::ServerKind::kInt,
                                         sim::ServerKind::kExt),
                       ::testing::Values(16.0, 64.0)),
    scenario_name);

// ---------------------------------------------------------------------
// Property 2 — the difference clock is exact-additive: for any split point,
// difference(a, c) == difference(a, b) + difference(b, c).
// ---------------------------------------------------------------------
class DifferenceClockProperties : public ::testing::TestWithParam<int> {};

TEST_P(DifferenceClockProperties, Additivity) {
  testing::SyntheticLink link;
  core::Params params;
  params.warmup_samples = 8;
  core::TscNtpClock clock(params, link.config().period);
  for (int i = 0; i < 100; ++i) clock.process_exchange(link.next());
  const TscCount base = link.counts(link.now());
  const auto step = static_cast<TscCount>(GetParam());
  const TscCount a = base;
  const TscCount b = base + step;
  const TscCount c = base + 3 * step;
  EXPECT_DOUBLE_EQ(clock.difference(a, c),
                   clock.difference(a, b) + clock.difference(b, c));
  // Anti-symmetry.
  EXPECT_DOUBLE_EQ(clock.difference(a, b), -clock.difference(b, a));
}

INSTANTIATE_TEST_SUITE_P(Steps, DifferenceClockProperties,
                         ::testing::Values(1, 1000, 500'000'000));

// ---------------------------------------------------------------------
// Property 3 — rate estimate quality bound is honest on clean synthetic
// links across skews and polling periods.
// ---------------------------------------------------------------------
class RateQualityProperties
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RateQualityProperties, QualityBoundCoversTrueError) {
  const auto [skew_ppm, poll] = GetParam();
  testing::SyntheticLink::Config config;
  config.poll = poll;
  testing::SyntheticLink link(config);
  core::Params params;
  params.poll_period = poll;
  params.warmup_samples = 8;
  core::TscNtpClock clock(params, config.period * (1.0 + ppm(skew_ppm)));
  for (int i = 0; i < 600; ++i) clock.process_exchange(link.next());
  const double true_error = std::fabs(clock.period() / config.period - 1.0);
  EXPECT_LE(true_error, clock.status().period_quality + 1e-10);
  EXPECT_LT(true_error, ppm(0.05));
}

INSTANTIATE_TEST_SUITE_P(
    SkewsPolls, RateQualityProperties,
    ::testing::Combine(::testing::Values(-80.0, -5.0, 0.0, 5.0, 80.0),
                       ::testing::Values(16.0, 64.0)));

// ---------------------------------------------------------------------
// Property 4 — ablation direction: each robustness stage must not *hurt*
// under the fault it was designed for (and must measurably help).
// ---------------------------------------------------------------------
class SanityAblation : public ::testing::TestWithParam<bool> {};

TEST_P(SanityAblation, ServerFaultDamage) {
  const bool enable_sanity = GetParam();
  testing::SyntheticLink link;
  core::Params params;
  params.warmup_samples = 8;
  params.offset_window = 320.0;
  params.enable_offset_sanity = enable_sanity;
  core::TscNtpClock clock(params, link.config().period);
  for (int i = 0; i < 100; ++i) clock.process_exchange(link.next());
  const Seconds before = clock.offset_estimate();
  double worst = 0;
  for (int i = 0; i < 30; ++i) {
    const auto r = clock.process_exchange(link.next(0, 0, 0.150));
    worst = std::max(worst, std::fabs(r.offset_estimate - before));
  }
  if (enable_sanity) {
    EXPECT_LT(worst, 2e-3);  // contained
  } else {
    EXPECT_GT(worst, 50e-3);  // dragged to the fault level
  }
}

INSTANTIATE_TEST_SUITE_P(OnOff, SanityAblation, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "enabled" : "disabled";
                         });

// ---------------------------------------------------------------------
// Property 5 — determinism: identical configuration ⇒ identical results,
// across every server kind.
// ---------------------------------------------------------------------
class DeterminismProperties
    : public ::testing::TestWithParam<sim::ServerKind> {};

TEST_P(DeterminismProperties, RunsAreReproducible) {
  auto once = [&] {
    sim::ScenarioConfig scenario;
    scenario.server = GetParam();
    scenario.duration = duration::kHour;
    scenario.seed = 4242;
    sim::Testbed testbed(scenario);
    core::Params params;
    core::TscNtpClock clock(params, testbed.nominal_period());
    Seconds last = 0;
    while (auto ex = testbed.next()) {
      if (ex->lost) continue;
      last = clock
                 .process_exchange({ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                                    ex->tf_counts})
                 .offset_estimate;
    }
    return std::make_pair(last, clock.period());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Servers, DeterminismProperties,
                         ::testing::Values(sim::ServerKind::kLoc,
                                           sim::ServerKind::kInt,
                                           sim::ServerKind::kExt),
                         [](const auto& info) {
                           return sim::to_string(info.param);
                         });

}  // namespace
}  // namespace tscclock
