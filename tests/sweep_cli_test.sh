#!/usr/bin/env bash
# CLI contract tests for tools/sweep and tools/sweep-merge, run by ctest
# (see tests/CMakeLists.txt).
#
# Covers what the GoogleTest binaries cannot: the exit-status contract of the
# argument parser (exit 2 on usage errors — in particular the empty-list-item
# class: "robust,,naive", trailing commas, empty values, which used to be
# silently dropped — and every malformed estimator-spec shape: unbalanced
# parens, unknown families, unknown/duplicated keys, empty values), plus
# small end-to-end runs of the replay lane (--estimators robust,offline) and
# of a parameterized variant axis straight through main(). The fleet-scale
# section pins the --shard / --checkpoint / sweep-merge exit contracts:
# malformed shard shapes and incompatible checkpoints exit 2, and
# sweep-merge exits 2 on missing shards, duplicate shard indices and
# version-skewed dumps.
set -u

SWEEP="$1"
SWEEP_MERGE="${2:-}"
failures=0

# expect_status <expected-exit> <description> -- <args...>
expect_status() {
  local expected="$1" description="$2"
  shift 3  # expected, description, "--"
  "$SWEEP" "$@" >/tmp/sweep_cli_out.$$ 2>&1
  local got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: $description: expected exit $expected, got $got" >&2
    sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
    failures=$((failures + 1))
  else
    echo "ok: $description"
  fi
}

# -- Empty list items are usage errors, not silent drops --------------------
expect_status 2 "double comma in --estimators" -- \
  --estimators robust,,naive
expect_status 2 "trailing comma in --estimators" -- \
  --estimators robust,
expect_status 2 "leading comma in --servers" -- \
  --servers ,int
expect_status 2 "empty --polls value" -- \
  --polls ""
expect_status 2 "bare comma in --schedules" -- \
  --schedules ,

# -- Malformed estimator specs are usage errors ------------------------------
expect_status 2 "unbalanced open paren in spec" -- \
  --estimators "robust("
expect_status 2 "unbalanced close paren in spec" -- \
  --estimators "robust)"
expect_status 2 "unknown family" -- \
  --estimators "frobust"
expect_status 2 "unknown tunable key" -- \
  --estimators "robust(bogus_key=1)"
expect_status 2 "duplicated tunable key" -- \
  --estimators "robust(use_local_rate=0,use_local_rate=1)"
expect_status 2 "empty tunable value" -- \
  --estimators "robust(use_local_rate=)"
expect_status 2 "ill-typed tunable value" -- \
  --estimators "robust(use_local_rate=maybe)"
expect_status 2 "unknown choice value" -- \
  --estimators "offline(split=sideways)"
expect_status 2 "boundary value the PLL would reject at runtime" -- \
  --estimators "swntp(step_threshold=0)"
expect_status 2 "duplicate lanes by canonical label" -- \
  --estimators "robust,robust()"

# -- Malformed fleet specs are usage errors ----------------------------------
expect_status 2 "malformed --fleet: n=0" -- \
  --fleet "fleet(n=0)"
expect_status 2 "malformed --fleet: n above the 1024 cap" -- \
  --fleet "fleet(n=1025)"
expect_status 2 "malformed --fleet: unknown key" -- \
  --fleet "fleet(x=1)"
expect_status 2 "malformed --fleet: unbalanced paren" -- \
  --fleet "fleet(n=4"
expect_status 2 "malformed --fleet: non-boolean hierarchy" -- \
  --fleet "fleet(hierarchy=yes)"
expect_status 2 "malformed --fleet: duplicate spec" -- \
  --fleet "fleet(n=2),fleet(n=2)"
expect_status 2 "malformed --fleet: unknown family" -- \
  --fleet "flotilla(n=2)"

# A replay estimator cannot score a multi-client fleet cell; the CLI refuses
# the combination up front with a precise message.
expect_status 2 "replay estimator x multi-client fleet" -- \
  --fleet "fleet(n=2)" --estimators robust,offline \
  --servers loc --envs machine --polls 16 --duration-hours 0.2 --warmup-s 60
if ! grep -q "single-client trace" /tmp/sweep_cli_out.$$; then
  echo "FAIL: replay x fleet refusal does not explain itself" >&2
  failures=$((failures + 1))
else
  echo "ok: replay x fleet refusal names the replay/fleet conflict"
fi

# -- --list-topologies surfaces the fleet tunables ---------------------------
"$SWEEP" --list-topologies >/tmp/sweep_cli_out.$$ 2>&1
got=$?
if [ "$got" -ne 0 ]; then
  echo "FAIL: --list-topologies: expected exit 0, got $got" >&2
  failures=$((failures + 1))
else
  echo "ok: --list-topologies exits 0"
fi
for needle in "n" "shared_congestion" "hierarchy" "bridge_warmup" "fleet("; do
  if ! grep -qF "$needle" /tmp/sweep_cli_out.$$; then
    echo "FAIL: --list-topologies does not surface '$needle'" >&2
    failures=$((failures + 1))
  else
    echo "ok: --list-topologies surfaces $needle"
  fi
done

# -- Fleet axis end-to-end ----------------------------------------------------
expect_status 0 "tiny 3-client fleet sweep" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.3 \
  --warmup-s 300 --threads 2 --fleet "fleet,fleet(n=3)"
for needle in "Fleet metrics" "fleet(n=3)"; do
  if ! grep -qF "$needle" /tmp/sweep_cli_out.$$; then
    echo "FAIL: fleet sweep report has no '$needle'" >&2
    failures=$((failures + 1))
  else
    echo "ok: fleet sweep report includes $needle"
  fi
done

# -- Other usage errors keep exiting 2 --------------------------------------
expect_status 2 "unknown estimator name" -- \
  --estimators robust,bogus
expect_status 2 "unknown option" -- \
  --frobnicate

# -- Replay lane end-to-end --------------------------------------------------
expect_status 0 "tiny replay-lane sweep (robust,offline)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.5 \
  --warmup-s 600 --threads 2 --estimators robust,offline
if ! grep -q "offline" /tmp/sweep_cli_out.$$; then
  echo "FAIL: replay-lane sweep report has no offline rows" >&2
  failures=$((failures + 1))
else
  echo "ok: replay-lane sweep report includes offline rows"
fi
if ! "$SWEEP" --list-estimators | grep -q "offline"; then
  echo "FAIL: --list-estimators does not list offline" >&2
  failures=$((failures + 1))
else
  echo "ok: --list-estimators lists offline"
fi

# -- Variant axis end-to-end --------------------------------------------------
# The spec list carries parens and an in-paren comma; the run must succeed
# and every canonical label must reach the report.
expect_status 0 "variant-axis sweep (robust ablation + split smoother)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.5 \
  --warmup-s 600 --threads 2 \
  --estimators "robust,robust(use_local_rate=0,enable_aging=0),offline(split=shifts)"
for label in "robust(use_local_rate=0,enable_aging=0)" "offline(split=shifts)"; do
  if ! grep -qF "$label" /tmp/sweep_cli_out.$$; then
    echo "FAIL: variant-axis report has no '$label' rows" >&2
    failures=$((failures + 1))
  else
    echo "ok: variant-axis report includes $label"
  fi
done

# -- --list-estimators surfaces tunable keys and defaults --------------------
"$SWEEP" --list-estimators >/tmp/sweep_cli_out.$$ 2>&1
for needle in "use_local_rate" "enable_level_shift" "split" "default" \
              "none|shifts" "0.128"; do
  if ! grep -qF "$needle" /tmp/sweep_cli_out.$$; then
    echo "FAIL: --list-estimators does not surface '$needle'" >&2
    failures=$((failures + 1))
  else
    echo "ok: --list-estimators surfaces $needle"
  fi
done

# -- Fleet-scale flags: malformed --shard shapes are usage errors ------------
# The convention is 1-based: I/N with 1 <= I <= N, so index 0, index > N,
# zero fleets, non-numeric parts and missing separators all exit 2, while
# the last shard N/N is valid.
for shape in 0/3 4/3 1/0 x/y 13 1/ /3 1//3 -1/3; do
  expect_status 2 "malformed --shard '$shape'" -- \
    --shard "$shape" --servers loc --envs machine --polls 16 \
    --duration-hours 0.2 --warmup-s 60
done
expect_status 2 "empty --checkpoint path" -- --checkpoint ""
expect_status 2 "empty --dump-results path" -- --dump-results ""

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The last 1-based shard is valid — and a shard of a grid smaller than the
# fleet is a valid empty run, not an error.
expect_status 0 "valid last shard 3/3" -- \
  --shard 3/3 --servers loc,int,ext --envs machine --polls 16 \
  --duration-hours 0.2 --warmup-s 60 --threads 2
expect_status 0 "empty shard of a grid smaller than the fleet" -- \
  --shard 5/8 --servers loc --envs machine --polls 16 \
  --duration-hours 0.2 --warmup-s 60

# A checkpoint from a different invocation (different seed => different run
# fingerprint) is refused with exit 2 and a message naming the mismatch.
CK="$WORK/mismatch.ck"
expect_status 0 "checkpointed run (seed 1)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.2 \
  --warmup-s 60 --seed 1 --checkpoint "$CK"
"$SWEEP" --servers loc --envs machine --polls 16 --duration-hours 0.2 \
  --warmup-s 60 --seed 2 --checkpoint "$CK" >/tmp/sweep_cli_out.$$ 2>&1
got=$?
if [ "$got" -ne 2 ] || ! grep -q "different sweep invocation" /tmp/sweep_cli_out.$$; then
  echo "FAIL: checkpoint fingerprint mismatch: expected exit 2 + precise message, got $got" >&2
  sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
  failures=$((failures + 1))
else
  echo "ok: checkpoint fingerprint mismatch exits 2 with a precise message"
fi

# -- sweep-merge exit contract -----------------------------------------------
if [ -n "$SWEEP_MERGE" ]; then
  merge_expect_status() {
    local expected="$1" description="$2"
    shift 3  # expected, description, "--"
    "$SWEEP_MERGE" "$@" >/tmp/sweep_cli_out.$$ 2>&1
    local got=$?
    if [ "$got" -ne "$expected" ]; then
      echo "FAIL: $description: expected exit $expected, got $got" >&2
      sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
      failures=$((failures + 1))
    else
      echo "ok: $description"
    fi
  }

  SHARD_ARGS=(--servers loc,int,ext --envs machine --polls 16
              --duration-hours 0.2 --warmup-s 60 --threads 2)
  for i in 1 2 3; do
    expect_status 0 "shard $i/3 with result dump" -- \
      "${SHARD_ARGS[@]}" --shard "$i/3" --dump-results "$WORK/s$i.dump"
  done

  merge_expect_status 0 "merging all three shards" -- \
    "$WORK/s1.dump" "$WORK/s2.dump" "$WORK/s3.dump"
  merge_expect_status 2 "no dumps at all" --
  merge_expect_status 2 "missing shard 3/3" -- \
    "$WORK/s1.dump" "$WORK/s2.dump"
  merge_expect_status 2 "duplicate shard index" -- \
    "$WORK/s1.dump" "$WORK/s1.dump" "$WORK/s2.dump"
  merge_expect_status 2 "nonexistent dump file" -- \
    "$WORK/s1.dump" "$WORK/s2.dump" "$WORK/does_not_exist.dump"

  # Version skew: bump the format version in one dump's first line.
  sed '1s/tscclock-sweep-results 3/tscclock-sweep-results 99/' \
    "$WORK/s1.dump" > "$WORK/skewed.dump"
  "$SWEEP_MERGE" "$WORK/skewed.dump" "$WORK/s2.dump" "$WORK/s3.dump" \
    >/tmp/sweep_cli_out.$$ 2>&1
  got=$?
  if [ "$got" -ne 2 ] || ! grep -q "version 99" /tmp/sweep_cli_out.$$; then
    echo "FAIL: version-skewed dump: expected exit 2 naming version 99, got $got" >&2
    sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
    failures=$((failures + 1))
  else
    echo "ok: version-skewed dump exits 2 naming both versions"
  fi

  # Fingerprint skew: a shard from a different seed cannot be merged in.
  expect_status 0 "shard 1/3 with a different seed" -- \
    "${SHARD_ARGS[@]}" --shard 1/3 --seed 7 --dump-results "$WORK/alien.dump"
  merge_expect_status 2 "fingerprint-skewed dump set" -- \
    "$WORK/alien.dump" "$WORK/s2.dump" "$WORK/s3.dump"

  merge_expect_status 2 "--csv without matching --trace count" -- \
    --csv "$WORK/merged.csv" "$WORK/s1.dump" "$WORK/s2.dump" "$WORK/s3.dump"
else
  echo "ok: sweep-merge binary not given; skipping merge contract tests"
fi

rm -f /tmp/sweep_cli_out.$$
exit $((failures > 0 ? 1 : 0))
