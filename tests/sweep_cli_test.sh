#!/usr/bin/env bash
# CLI contract tests for tools/sweep, run by ctest (see tests/CMakeLists.txt).
#
# Covers what the GoogleTest binaries cannot: the exit-status contract of the
# argument parser (exit 2 on usage errors — in particular the empty-list-item
# class: "robust,,naive", trailing commas, empty values, which used to be
# silently dropped — and every malformed estimator-spec shape: unbalanced
# parens, unknown families, unknown/duplicated keys, empty values), plus
# small end-to-end runs of the replay lane (--estimators robust,offline) and
# of a parameterized variant axis straight through main().
set -u

SWEEP="$1"
failures=0

# expect_status <expected-exit> <description> -- <args...>
expect_status() {
  local expected="$1" description="$2"
  shift 3  # expected, description, "--"
  "$SWEEP" "$@" >/tmp/sweep_cli_out.$$ 2>&1
  local got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: $description: expected exit $expected, got $got" >&2
    sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
    failures=$((failures + 1))
  else
    echo "ok: $description"
  fi
}

# -- Empty list items are usage errors, not silent drops --------------------
expect_status 2 "double comma in --estimators" -- \
  --estimators robust,,naive
expect_status 2 "trailing comma in --estimators" -- \
  --estimators robust,
expect_status 2 "leading comma in --servers" -- \
  --servers ,int
expect_status 2 "empty --polls value" -- \
  --polls ""
expect_status 2 "bare comma in --schedules" -- \
  --schedules ,

# -- Malformed estimator specs are usage errors ------------------------------
expect_status 2 "unbalanced open paren in spec" -- \
  --estimators "robust("
expect_status 2 "unbalanced close paren in spec" -- \
  --estimators "robust)"
expect_status 2 "unknown family" -- \
  --estimators "frobust"
expect_status 2 "unknown tunable key" -- \
  --estimators "robust(bogus_key=1)"
expect_status 2 "duplicated tunable key" -- \
  --estimators "robust(use_local_rate=0,use_local_rate=1)"
expect_status 2 "empty tunable value" -- \
  --estimators "robust(use_local_rate=)"
expect_status 2 "ill-typed tunable value" -- \
  --estimators "robust(use_local_rate=maybe)"
expect_status 2 "unknown choice value" -- \
  --estimators "offline(split=sideways)"
expect_status 2 "boundary value the PLL would reject at runtime" -- \
  --estimators "swntp(step_threshold=0)"
expect_status 2 "duplicate lanes by canonical label" -- \
  --estimators "robust,robust()"

# -- Other usage errors keep exiting 2 --------------------------------------
expect_status 2 "unknown estimator name" -- \
  --estimators robust,bogus
expect_status 2 "unknown option" -- \
  --frobnicate

# -- Replay lane end-to-end --------------------------------------------------
expect_status 0 "tiny replay-lane sweep (robust,offline)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.5 \
  --warmup-s 600 --threads 2 --estimators robust,offline
if ! grep -q "offline" /tmp/sweep_cli_out.$$; then
  echo "FAIL: replay-lane sweep report has no offline rows" >&2
  failures=$((failures + 1))
else
  echo "ok: replay-lane sweep report includes offline rows"
fi
if ! "$SWEEP" --list-estimators | grep -q "offline"; then
  echo "FAIL: --list-estimators does not list offline" >&2
  failures=$((failures + 1))
else
  echo "ok: --list-estimators lists offline"
fi

# -- Variant axis end-to-end --------------------------------------------------
# The spec list carries parens and an in-paren comma; the run must succeed
# and every canonical label must reach the report.
expect_status 0 "variant-axis sweep (robust ablation + split smoother)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.5 \
  --warmup-s 600 --threads 2 \
  --estimators "robust,robust(use_local_rate=0,enable_aging=0),offline(split=shifts)"
for label in "robust(use_local_rate=0,enable_aging=0)" "offline(split=shifts)"; do
  if ! grep -qF "$label" /tmp/sweep_cli_out.$$; then
    echo "FAIL: variant-axis report has no '$label' rows" >&2
    failures=$((failures + 1))
  else
    echo "ok: variant-axis report includes $label"
  fi
done

# -- --list-estimators surfaces tunable keys and defaults --------------------
"$SWEEP" --list-estimators >/tmp/sweep_cli_out.$$ 2>&1
for needle in "use_local_rate" "enable_level_shift" "split" "default" \
              "none|shifts" "0.128"; do
  if ! grep -qF "$needle" /tmp/sweep_cli_out.$$; then
    echo "FAIL: --list-estimators does not surface '$needle'" >&2
    failures=$((failures + 1))
  else
    echo "ok: --list-estimators surfaces $needle"
  fi
done

rm -f /tmp/sweep_cli_out.$$
exit $((failures > 0 ? 1 : 0))
