#!/usr/bin/env bash
# CLI contract tests for tools/sweep, run by ctest (see tests/CMakeLists.txt).
#
# Covers what the GoogleTest binaries cannot: the exit-status contract of the
# argument parser (exit 2 on usage errors — in particular the empty-list-item
# class: "robust,,naive", trailing commas, empty values, which used to be
# silently dropped) and a small end-to-end run of the replay lane
# (--estimators robust,offline) straight through main().
set -u

SWEEP="$1"
failures=0

# expect_status <expected-exit> <description> -- <args...>
expect_status() {
  local expected="$1" description="$2"
  shift 3  # expected, description, "--"
  "$SWEEP" "$@" >/tmp/sweep_cli_out.$$ 2>&1
  local got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: $description: expected exit $expected, got $got" >&2
    sed 's/^/    /' /tmp/sweep_cli_out.$$ >&2
    failures=$((failures + 1))
  else
    echo "ok: $description"
  fi
}

# -- Empty list items are usage errors, not silent drops --------------------
expect_status 2 "double comma in --estimators" -- \
  --estimators robust,,naive
expect_status 2 "trailing comma in --estimators" -- \
  --estimators robust,
expect_status 2 "leading comma in --servers" -- \
  --servers ,int
expect_status 2 "empty --polls value" -- \
  --polls ""
expect_status 2 "bare comma in --schedules" -- \
  --schedules ,

# -- Other usage errors keep exiting 2 --------------------------------------
expect_status 2 "unknown estimator name" -- \
  --estimators robust,bogus
expect_status 2 "unknown option" -- \
  --frobnicate

# -- Replay lane end-to-end --------------------------------------------------
expect_status 0 "tiny replay-lane sweep (robust,offline)" -- \
  --servers loc --envs machine --polls 16 --duration-hours 0.5 \
  --warmup-s 600 --threads 2 --estimators robust,offline
if ! grep -q "offline" /tmp/sweep_cli_out.$$; then
  echo "FAIL: replay-lane sweep report has no offline rows" >&2
  failures=$((failures + 1))
else
  echo "ok: replay-lane sweep report includes offline rows"
fi
if ! "$SWEEP" --list-estimators | grep -q "offline"; then
  echo "FAIL: --list-estimators does not list offline" >&2
  failures=$((failures + 1))
else
  echo "ok: --list-estimators lists offline"
fi

rm -f /tmp/sweep_cli_out.$$
exit $((failures > 0 ? 1 : 0))
