// Tests for the parameterized estimator axis (harness/estimator_spec.hpp):
// spec parsing and canonicalization, the registry's family/tunable metadata,
// typed value validation with precise errors, paren-aware list splitting,
// factory dispatch (online vs replay), and out-of-tree self-registration.
//
// The load-bearing guarantees:
//   * parse → label → parse is the identity, with whitespace tolerated and
//     defaults elided ("robust()" ≡ "robust(use_local_rate=1)" ≡ "robust");
//   * every malformed shape — unbalanced parens, unknown family, unknown or
//     duplicated keys, empty values, ill-typed values, empty list items —
//     throws EstimatorSpecError with a message precise enough for a CLI
//     usage line;
//   * factories apply only the *overridden* keys on top of the caller's
//     base Params, so a bare spec builds the adapter bit-identically to
//     constructing it directly;
//   * a new family is one registration away from being a sweep lane.
#include "harness/estimator_spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "harness/estimator.hpp"
#include "harness/replay.hpp"

namespace tscclock::harness {
namespace {

const EstimatorRegistry& registry() { return estimator_registry(); }

std::string error_of(const char* text) {
  try {
    (void)registry().parse(text);
  } catch (const EstimatorSpecError& e) {
    return e.what();
  }
  return "";
}

// -- Canonicalization ------------------------------------------------------

TEST(EstimatorSpecParse, RoundTripsThroughCanonicalLabels) {
  const char* inputs[] = {
      "robust",
      "robust(use_local_rate=0)",
      "robust(use_local_rate=0,enable_weighting=0)",
      "robust(poll_period=64)",
      "swntp(step_threshold=0.5)",
      "offline(split=shifts)",
  };
  for (const char* text : inputs) {
    const EstimatorSpec spec = registry().parse(text);
    EXPECT_EQ(spec.label(), text) << "inputs above are already canonical";
    EXPECT_EQ(registry().parse(spec.label()), spec) << text;
  }
}

TEST(EstimatorSpecParse, ElidesDefaultsAndEmptyParens) {
  // robust() and explicit default values are the bare family — one lane,
  // one label, wherever they appear.
  EXPECT_EQ(registry().parse("robust()").label(), "robust");
  EXPECT_EQ(registry().parse("robust(use_local_rate=1)").label(), "robust");
  EXPECT_EQ(registry().parse("robust(use_local_rate=true)").label(),
            "robust");
  EXPECT_EQ(registry().parse("robust(poll_period=0)").label(), "robust");
  EXPECT_EQ(registry().parse("robust(poll_period=-0)").label(), "robust")
      << "-0 normalizes to the +0 sentinel, not a distinct '-0' lane";
  EXPECT_EQ(registry().parse("offline(split=none)").label(), "offline");
  EXPECT_EQ(registry().parse("robust()"), registry().parse("robust"));
}

TEST(EstimatorSpecParse, ToleratesWhitespaceEverywhere) {
  EXPECT_EQ(registry().parse("  robust  ").label(), "robust");
  EXPECT_EQ(
      registry().parse(" robust ( use_local_rate = 0 , poll_period = 64 ) ")
          .label(),
      "robust(use_local_rate=0,poll_period=64)");
}

TEST(EstimatorSpecParse, CanonicalizesValuesAndKeyOrder) {
  // Boolean spellings collapse to 0/1; numbers to %g; keys re-order to the
  // family's declared order no matter how the user wrote them.
  EXPECT_EQ(registry().parse("robust(use_local_rate=false)").label(),
            "robust(use_local_rate=0)");
  EXPECT_EQ(registry().parse("swntp(step_threshold=0.50)").label(),
            "swntp(step_threshold=0.5)");
  EXPECT_EQ(
      registry().parse("robust(poll_period=64,use_local_rate=0)").label(),
      "robust(use_local_rate=0,poll_period=64)");
}

TEST(EstimatorSpecParse, ListSplitsOnTopLevelCommasOnly) {
  const auto specs = registry().parse_list(
      "robust, robust(use_local_rate=0,enable_aging=0) ,offline(split=shifts)");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].label(), "robust");
  EXPECT_EQ(specs[1].label(), "robust(use_local_rate=0,enable_aging=0)");
  EXPECT_EQ(specs[2].label(), "offline(split=shifts)");
}

// -- Precise parse errors --------------------------------------------------

TEST(EstimatorSpecParse, RejectsMalformedShapesWithPreciseMessages) {
  EXPECT_NE(error_of("robust(").find("missing ')'"), std::string::npos);
  EXPECT_NE(error_of("robust(use_local_rate=0").find("missing ')'"),
            std::string::npos);
  EXPECT_NE(error_of("robust)").find("unmatched ')'"), std::string::npos);
  EXPECT_NE(error_of("robust((use_local_rate=0))").find("parentheses"),
            std::string::npos);
  EXPECT_NE(error_of("frobust").find("unknown estimator family 'frobust'"),
            std::string::npos);
  EXPECT_NE(error_of("frobust").find("robust"), std::string::npos)
      << "the error must name the known families";
  EXPECT_NE(error_of("robust(bogus_key=1)").find("unknown key 'bogus_key'"),
            std::string::npos);
  EXPECT_NE(error_of("robust(bogus_key=1)").find("use_local_rate"),
            std::string::npos)
      << "the error must list the tunable keys";
  EXPECT_NE(error_of("robust(use_local_rate=0,use_local_rate=1)")
                .find("duplicate key 'use_local_rate'"),
            std::string::npos);
  EXPECT_NE(error_of("robust(use_local_rate=)")
                .find("empty value for key 'use_local_rate'"),
            std::string::npos);
  EXPECT_NE(error_of("robust(use_local_rate)").find("key=value"),
            std::string::npos);
  EXPECT_NE(error_of("robust(=1)").find("key=value"), std::string::npos);
  EXPECT_NE(error_of("robust(use_local_rate=maybe)").find("invalid boolean"),
            std::string::npos);
  EXPECT_NE(error_of("robust(poll_period=fast)").find("invalid number"),
            std::string::npos);
  EXPECT_NE(error_of("robust(poll_period=-16)").find("must be >= 0"),
            std::string::npos);
  // Boundary values that would only explode downstream must die at parse
  // time (exit 2 in the CLI), not as runtime FAILED cells.
  EXPECT_NE(error_of("swntp(step_threshold=0)").find("must be > 0"),
            std::string::npos);
  EXPECT_NE(error_of("swntp(stepout=0)").find("must be > 0"),
            std::string::npos);
  EXPECT_NE(error_of("offline(split=sideways)").find("invalid value"),
            std::string::npos);
  EXPECT_NE(error_of("offline(split=sideways)").find("shifts"),
            std::string::npos)
      << "the error must list the valid choices";
  EXPECT_NE(error_of(""), "");
  EXPECT_NE(error_of("   "), "");
  EXPECT_NE(error_of("ROBUST").find("family"), std::string::npos)
      << "family names are lower-case by contract";
}

TEST(EstimatorSpecParse, RejectsMalformedLists) {
  EXPECT_THROW(registry().parse_list("robust,,naive"), EstimatorSpecError);
  EXPECT_THROW(registry().parse_list("robust,"), EstimatorSpecError);
  EXPECT_THROW(registry().parse_list(",robust"), EstimatorSpecError);
  EXPECT_THROW(registry().parse_list(""), EstimatorSpecError);
  EXPECT_THROW(registry().parse_list("robust)x,naive"), EstimatorSpecError);
  EXPECT_THROW(registry().parse_list("robust(use_local_rate=0,naive"),
               EstimatorSpecError);
}

// -- Registry metadata -----------------------------------------------------

TEST(EstimatorRegistrySpec, ListsBuiltinFamiliesInReportingOrder) {
  std::vector<std::string> names;
  std::vector<std::string> expected = {"robust", "swntp", "naive", "offline"};
  for (const auto* family : registry().families()) {
    names.push_back(family->name);
  }
  // Out-of-tree registrations (e.g. the lagged family registered by the
  // test below, depending on execution order) may append; the built-ins and
  // their order are the contract.
  ASSERT_GE(names.size(), expected.size());
  for (const auto& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  std::vector<std::string> builtins;
  for (const auto& name : names) {
    if (std::find(expected.begin(), expected.end(), name) != expected.end())
      builtins.push_back(name);
  }
  EXPECT_EQ(builtins, expected);
}

TEST(EstimatorRegistrySpec, SurfacesTunableMetadata) {
  const auto& robust = registry().family("robust");
  EXPECT_FALSE(robust.replay);
  std::vector<std::string> keys;
  for (const auto& t : robust.tunables) keys.push_back(t.key);
  for (const char* key :
       {"use_local_rate", "enable_weighting", "enable_aging",
        "enable_offset_sanity", "enable_rate_sanity", "enable_level_shift",
        "poll_period"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end()) << key;
  }
  for (const auto& t : robust.tunables) {
    EXPECT_FALSE(t.default_value.empty()) << t.key;
    EXPECT_FALSE(t.description.empty()) << t.key;
  }
  EXPECT_TRUE(registry().family("offline").replay);
  EXPECT_THROW((void)registry().family("nope"), EstimatorSpecError);
  EXPECT_TRUE(registry().has_family("swntp"));
  EXPECT_FALSE(registry().has_family("nope"));
}

TEST(EstimatorRegistrySpec, RejectsBadRegistrations) {
  auto& mutable_registry = estimator_registry();
  EstimatorRegistry::Family dup;
  dup.name = "robust";  // already taken
  dup.make_online = [](const ResolvedSpec&, const core::Params&, double) {
    return std::unique_ptr<ClockEstimator>();
  };
  EXPECT_THROW(mutable_registry.register_family(dup), EstimatorSpecError);

  EstimatorRegistry::Family bad_name = dup;
  bad_name.name = "Bad Name!";
  EXPECT_THROW(mutable_registry.register_family(bad_name),
               EstimatorSpecError);

  EstimatorRegistry::Family no_factory;
  no_factory.name = "factoryless";
  EXPECT_THROW(mutable_registry.register_family(no_factory),
               EstimatorSpecError);

  EstimatorRegistry::Family bad_default = dup;
  bad_default.name = "bad-default";
  bad_default.tunables = {
      TunableSpec::boolean("flag", "yes", "non-canonical default")};
  EXPECT_THROW(mutable_registry.register_family(bad_default),
               EstimatorSpecError);
}

// -- Factories -------------------------------------------------------------

TEST(EstimatorSpecFactory, AppliesOnlyOverriddenKeys) {
  core::Params base = core::Params::for_poll_period(16.0);
  base.enable_aging = false;  // caller-ablated base configuration
  const double nominal = 1.8e-9;

  // Bare spec: the base params flow through untouched.
  const auto bare =
      registry().make_online(registry().parse("robust"), base, nominal);
  const auto& bare_clock =
      dynamic_cast<const TscNtpEstimator&>(*bare).clock();
  EXPECT_FALSE(bare_clock.params().enable_aging);
  EXPECT_TRUE(bare_clock.params().use_local_rate);
  EXPECT_EQ(bare_clock.params().poll_period, 16.0);

  // Overrides apply exactly the named keys.
  const auto ablated = registry().make_online(
      registry().parse("robust(use_local_rate=0,poll_period=64)"), base,
      nominal);
  const auto& ablated_clock =
      dynamic_cast<const TscNtpEstimator&>(*ablated).clock();
  EXPECT_FALSE(ablated_clock.params().use_local_rate);
  EXPECT_EQ(ablated_clock.params().poll_period, 64.0);
  EXPECT_FALSE(ablated_clock.params().enable_aging) << "base still inherited";
  EXPECT_TRUE(ablated_clock.params().enable_level_shift);

  // The swntp family maps its tunables onto the PLL config.
  const auto swntp = registry().make_online(
      registry().parse("swntp(step_threshold=0.5)"),
      core::Params::for_poll_period(16.0), nominal);
  EXPECT_EQ(swntp->name(), "swntp");
}

TEST(EstimatorSpecFactory, RoutesReplayFamiliesToTheReplayFactory) {
  const auto params = core::Params::for_poll_period(16.0);
  const auto offline =
      registry().make_replay(registry().parse("offline"), params, 2e-9);
  ASSERT_NE(offline, nullptr);
  EXPECT_EQ(offline->name(), "offline");
  EXPECT_THROW(
      registry().make_online(registry().parse("offline"), params, 2e-9),
      ContractViolation);
  EXPECT_THROW(
      registry().make_replay(registry().parse("robust"), params, 2e-9),
      ContractViolation);
}

// -- Self-registration -----------------------------------------------------

/// A deliberately trivial out-of-tree estimator: the naive adapter under a
/// new family name with one tunable, registered exactly the way a future
/// baseline would be.
void register_lagged_family() {
  static const EstimatorRegistrar registrar{[] {
    EstimatorRegistry::Family lagged;
    lagged.name = "lagged-naive";
    lagged.order = 90;
    lagged.description = "test-only: the naive estimator, re-registered";
    lagged.tunables = {
        TunableSpec::boolean("noop", "0", "test-only placeholder")};
    lagged.make_online = [](const ResolvedSpec&, const core::Params&,
                            double nominal_period) {
      return std::make_unique<NaiveEstimator>(nominal_period);
    };
    return lagged;
  }()};
  (void)registrar;
}

TEST(EstimatorRegistrySpec, OutOfTreeFamilyIsOneRegistrationAway) {
  register_lagged_family();
  ASSERT_TRUE(registry().has_family("lagged-naive"));
  const auto spec = registry().parse("lagged-naive(noop=1)");
  EXPECT_EQ(spec.label(), "lagged-naive(noop=1)");
  const auto estimator = registry().make_online(
      spec, core::Params::for_poll_period(16.0), 1.8e-9);
  ASSERT_NE(estimator, nullptr);
  EXPECT_EQ(estimator->name(), "naive");
}

}  // namespace
}  // namespace tscclock::harness
