// Tests for the replay lane (harness/replay.hpp): trace recording,
// ReplaySession scoring, the OfflineSmootherEstimator adapter and the
// replay side of the estimator registry.
//
// The load-bearing guarantees:
//   * golden equivalence — replaying the recorded trace through
//     OfflineSmootherEstimator scores bit-identically to the legacy
//     hand-rolled collection loop (bench/ablation_offline.cpp before the
//     migration: build the RawExchange list by hand, call
//     core::smooth_offsets directly, subtract the reference by hand);
//   * the recorded trace is the estimator-independent view of exactly what
//     the online session saw — same quadruples, ground truth and flags;
//   * replay records carry the same `evaluated` semantics as online lanes
//     (warm-up cut + reference availability), so a ReducerSink attached to
//     a ReplaySession reduces a directly comparable stream;
//   * degenerate traces (fewer than two arrived packets) yield zero
//     evaluated records instead of throwing.
#include "harness/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/contracts.hpp"
#include "core/offline.hpp"
#include "harness/estimator_spec.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

namespace tscclock::harness {
namespace {

sim::ScenarioConfig replay_scenario(std::uint64_t seed = 20040917) {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = 3 * duration::kHour;
  scenario.seed = seed;
  // An outage plus a server switch: gaps and identity changes must survive
  // the recording round trip.
  scenario.events.add_outage(4000.0, 4900.0);
  scenario.server_switches = {{7200.0, sim::ServerKind::kLoc}};
  return scenario;
}

SessionConfig replay_config(const sim::ScenarioConfig& scenario) {
  SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.poll_period);
  config.discard_warmup = 30 * duration::kMinute;
  config.warmup_policy = WarmupPolicy::kObservable;
  config.record_trace = true;
  return config;
}

// -- Golden equivalence: the legacy hand-rolled collection loop ------------

/// The pre-migration offline pass of bench/ablation_offline.cpp, verbatim:
/// collect the raw quadruples and ground truth by hand, run
/// core::smooth_offsets directly, and score against the smoother's own
/// timescale.
struct LegacyOffline {
  std::vector<double> errors;  ///< θ̂_k − (C(Tf_k) − Tg_k) per scored packet
  std::size_t poor_windows = 0;
  std::size_t packets = 0;
};

LegacyOffline legacy_handrolled_offline(const sim::ScenarioConfig& scenario,
                                        Seconds discard_warmup) {
  sim::Testbed testbed(scenario);
  std::vector<core::RawExchange> raws;
  std::vector<double> tg;
  std::vector<bool> warm;
  for (const auto& ex : testbed.generate_all()) {
    if (ex.lost || !ex.ref_available) continue;
    raws.push_back({ex.ta_counts, ex.tb_stamp, ex.te_stamp, ex.tf_counts});
    tg.push_back(ex.tg);
    warm.push_back(ex.tb_stamp < discard_warmup);
  }
  const auto params = core::Params::for_poll_period(scenario.poll_period);
  const auto offline =
      core::smooth_offsets(raws, params, testbed.nominal_period());
  LegacyOffline legacy;
  legacy.poor_windows = offline.poor_windows;
  legacy.packets = raws.size();
  for (std::size_t k = 0; k < raws.size(); ++k) {
    if (warm[k]) continue;  // the post-warm-up set the sweep reduces
    legacy.errors.push_back(
        offline.offsets[k] -
        (offline.timescale.read(raws[k].tf) - tg[k]));
  }
  return legacy;
}

TEST(ReplayGolden, OfflineLaneBitIdenticalToLegacyHandrolledLoop) {
  const auto scenario = replay_scenario();
  const auto config = replay_config(scenario);
  const auto legacy =
      legacy_handrolled_offline(scenario, config.discard_warmup);
  ASSERT_FALSE(legacy.errors.empty());

  sim::Testbed testbed(scenario);
  ClockSession online(config, testbed.nominal_period());
  online.run(testbed);

  auto smoother = std::make_unique<OfflineSmootherEstimator>(
      config.params, testbed.nominal_period());
  const OfflineSmootherEstimator& offline = *smoother;
  ReplaySession replay(config, std::move(smoother));
  CollectorSink records;
  replay.add_sink(records);
  replay.run(online.trace());

  // Note the legacy loop dropped reference-less packets before smoothing
  // while the recorder keeps them; on this testbed every arrived packet has
  // a reference, so the input sets coincide (asserted via the counts).
  ASSERT_EQ(online.trace().arrived(), legacy.packets);
  ASSERT_EQ(records.records().size(), legacy.errors.size());
  for (std::size_t i = 0; i < legacy.errors.size(); ++i) {
    // Bit-level double equality: the lane must score the smoother exactly
    // as the hand-rolled loop did — same packets, same reference, same
    // arithmetic.
    EXPECT_EQ(records.records()[i].offset_error, legacy.errors[i]) << i;
  }
  EXPECT_EQ(offline.result().poor_windows, legacy.poor_windows);
  EXPECT_EQ(replay.summary().evaluated, legacy.errors.size());
}

// -- Trace recording -------------------------------------------------------

TEST(TraceRecorder, RecordsExactlyWhatTheSessionSaw) {
  const auto scenario = replay_scenario(555);
  auto config = replay_config(scenario);
  config.emit_unevaluated = true;  // records for every poll, lost included

  sim::Testbed testbed(scenario);
  ClockSession session(config, testbed.nominal_period());
  CollectorSink records;
  session.add_sink(records);
  session.run(testbed);

  const ReplayTrace& trace = session.trace();
  EXPECT_EQ(trace.exchanges, session.summary().exchanges);
  EXPECT_EQ(trace.lost, session.summary().lost);
  EXPECT_EQ(trace.polls_enumerated, session.summary().polls_enumerated);
  ASSERT_EQ(trace.samples.size(), records.records().size());
  bool saw_lost = false;
  bool saw_server_change = false;
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    const auto& s = trace.samples[i];
    const auto& r = records.records()[i];
    EXPECT_EQ(s.index, r.index);
    EXPECT_EQ(s.lost, r.lost);
    EXPECT_EQ(s.in_warmup, r.in_warmup);
    EXPECT_EQ(s.truth_ta, r.truth_ta);
    EXPECT_EQ(s.truth_tb, r.truth_tb);
    saw_lost = saw_lost || s.lost;
    if (s.lost) continue;
    EXPECT_EQ(s.raw.ta, r.raw.ta);
    EXPECT_EQ(s.raw.tb, r.raw.tb);
    EXPECT_EQ(s.raw.te, r.raw.te);
    EXPECT_EQ(s.raw.tf, r.raw.tf);
    EXPECT_EQ(s.tf_counts_corrected, r.tf_counts_corrected);
    EXPECT_EQ(s.ref_available, r.ref_available);
    EXPECT_EQ(s.tg, r.tg);
    EXPECT_EQ(s.t_day, r.t_day);
    EXPECT_EQ(s.server_changed, r.server_changed);
    saw_server_change = saw_server_change || s.server_changed;
  }
  EXPECT_TRUE(saw_server_change) << "the switch must survive recording";
}

TEST(TraceRecorder, SessionWithoutRecordingRefusesTraceAccess) {
  sim::ScenarioConfig scenario;
  scenario.seed = 7;
  sim::Testbed testbed(scenario);
  SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.poll_period);
  ClockSession session(config, testbed.nominal_period());
  EXPECT_THROW(session.trace(), ContractViolation);
  MultiEstimatorSession multi;
  EXPECT_THROW(multi.trace(), ContractViolation);
}

TEST(TraceRecorder, MultiSessionRecordsOnceForAllLanes) {
  const auto scenario = replay_scenario(901);
  const auto config = replay_config(scenario);

  // Reference: a single recording session.
  sim::Testbed solo_testbed(scenario);
  ClockSession solo(config, solo_testbed.nominal_period());
  solo.run(solo_testbed);

  // The multi-session records at the fan-out level (estimator-independent,
  // so one canonical recording regardless of lane count).
  sim::Testbed testbed(scenario);
  MultiEstimatorSession session;
  session.enable_trace_recording(config);
  const auto& registry = estimator_registry();
  session.add_lane(config,
                   registry.make_online(EstimatorSpec{"robust", {}},
                                        config.params,
                                        testbed.nominal_period()));
  session.add_lane(config,
                   registry.make_online(EstimatorSpec{"naive", {}},
                                        config.params,
                                        testbed.nominal_period()));
  session.run(testbed);

  const ReplayTrace& a = solo.trace();
  const ReplayTrace& b = session.trace();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  EXPECT_EQ(a.polls_enumerated, b.polls_enumerated);
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].lost, b.samples[i].lost);
    EXPECT_EQ(a.samples[i].raw.tf, b.samples[i].raw.tf);
    EXPECT_EQ(a.samples[i].tg, b.samples[i].tg);
    EXPECT_EQ(a.samples[i].in_warmup, b.samples[i].in_warmup);
  }
}

// -- ReplaySession scoring semantics ---------------------------------------

TEST(ReplaySession, EvaluatedSetMatchesOnlineLanes) {
  const auto scenario = replay_scenario(333);
  const auto config = replay_config(scenario);
  sim::Testbed testbed(scenario);
  ClockSession online(config, testbed.nominal_period());
  CollectorSink online_records;
  online.add_sink(online_records);
  online.run(testbed);

  ReplaySession replay(config, std::make_unique<OfflineSmootherEstimator>(
                                   config.params, testbed.nominal_period()));
  CollectorSink replay_records;
  replay.add_sink(replay_records);
  replay.run(online.trace());

  // Same evaluated records, same order, same indices: the reduction of a
  // replay lane covers exactly the packets every online lane scored.
  ASSERT_EQ(replay_records.records().size(), online_records.records().size());
  ASSERT_GT(replay_records.records().size(), 0u);
  for (std::size_t i = 0; i < replay_records.records().size(); ++i) {
    const auto& r = replay_records.records()[i];
    const auto& o = online_records.records()[i];
    EXPECT_EQ(r.index, o.index);
    EXPECT_TRUE(r.evaluated);
    EXPECT_EQ(r.raw.tb, o.raw.tb);
    // Replay absolute clock error is the negated tracking error by
    // construction (Ca = C − θ̂ at the same packet).
    EXPECT_EQ(r.abs_clock_error, -r.offset_error);
    EXPECT_TRUE(std::isfinite(r.offset_error));
    EXPECT_GT(r.period, 0.0);
  }
  EXPECT_EQ(replay.summary().exchanges, online.summary().exchanges);
  EXPECT_EQ(replay.summary().lost, online.summary().lost);
  EXPECT_EQ(replay.summary().evaluated, online.summary().evaluated);
  EXPECT_EQ(replay.summary().polls_enumerated,
            online.summary().polls_enumerated);
  EXPECT_EQ(replay.summary().final_status.offset_fallbacks,
            dynamic_cast<const OfflineSmootherEstimator&>(replay.estimator())
                .result()
                .poor_windows);
}

TEST(ReplaySession, TinyTracesYieldNoEvaluatedRecordsInsteadOfThrowing) {
  for (const std::size_t arrived : {std::size_t{0}, std::size_t{1}}) {
    ReplayTrace trace;
    if (arrived == 1) {
      ReplaySample sample;
      sample.index = 0;
      sample.raw = core::RawExchange{1000, 0.5001, 0.5002, 2000};
      sample.ref_available = true;
      sample.tg = 0.5;
      trace.samples.push_back(sample);
    }
    trace.exchanges = trace.samples.size();
    trace.polls_enumerated = trace.samples.size();

    SessionConfig config;
    config.params = core::Params::for_poll_period(16.0);
    ReplaySession replay(config, std::make_unique<OfflineSmootherEstimator>(
                                     config.params, 2e-9));
    CollectorSink records;
    replay.add_sink(records);
    EXPECT_NO_THROW(replay.run(trace)) << arrived;
    EXPECT_EQ(replay.summary().evaluated, 0u) << arrived;
    EXPECT_TRUE(records.records().empty()) << arrived;
  }
}

// -- Split-at-shifts variant (offline(split=shifts)) -----------------------

TEST(OfflineSplit, NoDetectedShiftDelegatesToWholeTraceSmoothing) {
  // A steady trace has no level shift; the split variant must produce the
  // whole-trace result bit-for-bit (cuts empty → identical code path).
  sim::ScenarioConfig scenario;
  scenario.poll_period = 16.0;
  scenario.duration = 3 * duration::kHour;
  scenario.seed = 606;
  const auto config = replay_config(scenario);

  sim::Testbed testbed(scenario);
  ClockSession online(config, testbed.nominal_period());
  online.run(testbed);

  const auto score = [&](OfflineSmootherEstimator::Split split) {
    auto estimator = std::make_unique<OfflineSmootherEstimator>(
        config.params, testbed.nominal_period(), split);
    OfflineSmootherEstimator& smoother = *estimator;
    ReplaySession replay(config, std::move(estimator));
    CollectorSink records;
    replay.add_sink(records);
    replay.run(online.trace());
    std::vector<double> errors;
    for (const auto& r : records.records()) errors.push_back(r.offset_error);
    return std::pair<std::vector<double>, std::size_t>(errors,
                                                       smoother.segments());
  };
  const auto [plain, plain_segments] =
      score(OfflineSmootherEstimator::Split::kNone);
  const auto [split, split_segments] =
      score(OfflineSmootherEstimator::Split::kShifts);
  EXPECT_EQ(plain_segments, 1u);
  EXPECT_EQ(split_segments, 1u);
  ASSERT_EQ(plain.size(), split.size());
  ASSERT_FALSE(plain.empty());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(plain[i], split[i]) << i;
}

TEST(OfflineSplit, LevelShiftTraceIsCutAndRebasesTheMinimum) {
  // A permanent upward delay shift mid-trace: the split variant must detect
  // it and smooth the two halves with their own minima. The whole-trace
  // smoother keeps the pre-shift r-hat, so every post-shift window reads as
  // congested (poor-window fallback); re-basing the minimum per segment
  // eliminates that wholesale. (The Δ/2 path-asymmetry bias of the shift
  // itself is unknowable for either variant, so the comparison is on the
  // poor-window accounting, not on the DAG-aligned error.)
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.poll_period = 16.0;
  scenario.duration = 8 * duration::kHour;
  scenario.seed = 707;
  scenario.events.add_level_shift(
      {4 * duration::kHour, sim::kForever, 0.8e-3, 0.0});
  const auto config = replay_config(scenario);

  sim::Testbed testbed(scenario);
  ClockSession online(config, testbed.nominal_period());
  online.run(testbed);

  struct Scored {
    double worst = 0;
    std::size_t segments = 0;
    std::size_t poor_windows = 0;
    std::vector<double> offsets;
  };
  const auto score = [&](OfflineSmootherEstimator::Split split) {
    auto estimator = std::make_unique<OfflineSmootherEstimator>(
        config.params, testbed.nominal_period(), split);
    OfflineSmootherEstimator& smoother = *estimator;
    ReplaySession replay(config, std::move(estimator));
    CollectorSink records;
    replay.add_sink(records);
    replay.run(online.trace());
    Scored out;
    for (const auto& r : records.records()) {
      out.worst = std::max(out.worst, std::fabs(r.offset_error));
      out.offsets.push_back(r.report.offset_estimate);
      EXPECT_TRUE(std::isfinite(r.offset_error));
    }
    out.segments = smoother.segments();
    out.poor_windows = smoother.result().poor_windows;
    return out;
  };
  const Scored plain = score(OfflineSmootherEstimator::Split::kNone);
  const Scored split = score(OfflineSmootherEstimator::Split::kShifts);
  EXPECT_EQ(plain.segments, 1u);
  EXPECT_GE(split.segments, 2u) << "the 0.8 ms shift must be detected";
  // Whole-trace smoothing misreads the entire post-shift half as congestion;
  // per-segment minima remove (nearly) all of those poor windows.
  EXPECT_GT(plain.poor_windows, 100u);
  EXPECT_LT(split.poor_windows, plain.poor_windows / 10);
  // The variants genuinely differ on this trace.
  ASSERT_EQ(plain.offsets.size(), split.offsets.size());
  EXPECT_NE(plain.offsets, split.offsets);
  EXPECT_TRUE(std::isfinite(split.worst));
}

// -- Registry (replay side) ------------------------------------------------

TEST(ReplayRegistry, OfflineFamilyRoundTripsAndBuilds) {
  const auto& registry = estimator_registry();
  const auto spec = registry.parse("offline");
  EXPECT_EQ(spec.label(), "offline");
  EXPECT_TRUE(registry.is_replay(spec));
  for (const char* family : {"robust", "swntp", "naive"})
    EXPECT_FALSE(registry.is_replay(registry.parse(family)));

  const auto params = core::Params::for_poll_period(16.0);
  const auto estimator = registry.make_replay(spec, params, 2e-9);
  ASSERT_NE(estimator, nullptr);
  EXPECT_EQ(estimator->name(), "offline");
  // The split=shifts variant builds through the same factory.
  const auto variant = registry.parse("offline(split=shifts)");
  EXPECT_EQ(variant.label(), "offline(split=shifts)");
  EXPECT_NE(registry.make_replay(variant, params, 2e-9), nullptr);
  // The online factory must reject replay families, and vice versa.
  EXPECT_THROW(registry.make_online(spec, params, 2e-9), ContractViolation);
  EXPECT_THROW(
      registry.make_replay(EstimatorSpec{"robust", {}}, params, 2e-9),
      ContractViolation);
}

}  // namespace
}  // namespace tscclock::harness
