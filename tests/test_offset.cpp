// Tests for the robust offset estimator θ̂(t) (paper §5.3 / §6.1).
#include "core/offset.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/point_error.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.offset_window = 320.0;  // 20-packet window: tight and fast
  p.gap_threshold = 800.0;
  return p;
}

struct Harness {
  explicit Harness(const Params& params, const SyntheticLink& link)
      : params(params),
        filter(params),
        offset(params),
        clock(link.config().counter_base, 0.0, link.config().period) {}

  OffsetEvaluation feed(const RawExchange& ex, double gamma_local = 0.0,
                        bool gap = false, bool warmup = false) {
    filter.add(ex.rtt_counts());
    PacketRecord rec;
    rec.seq = seq++;
    rec.stamps = ex;
    rec.rtt = ex.rtt_counts();
    rec.error_counts = rec.rtt - filter.rhat();
    return offset.process(rec, clock, gamma_local, gap, warmup);
  }

  Params params;
  RttFilter filter;
  OffsetEstimator offset;
  CounterTimescale clock;  // perfectly aligned to true time
  std::uint64_t seq = 0;
};

TEST(Offset, FirstEstimateIsNaive) {
  SyntheticLink link;
  Harness h(test_params(), link);
  const auto eval = h.feed(link.next());
  // Aligned clock, clean link: θ̂_1 = −Δ/2.
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2, 1e-9);
  EXPECT_TRUE(h.offset.has_estimate());
}

TEST(Offset, CleanStreamStaysAtAsymmetryAmbiguity) {
  SyntheticLink link;
  Harness h(test_params(), link);
  Seconds last = 0;
  for (int i = 0; i < 100; ++i) last = h.feed(link.next()).estimate;
  EXPECT_NEAR(last, -link.asymmetry() / 2, 1e-7);
}

TEST(Offset, WeightingSuppressesCongestedPackets) {
  // Alternate clean and heavily congested packets: the weighted estimate
  // must stay close to the clean level, unlike the naive per-packet values.
  SyntheticLink link;
  Harness h(test_params(), link);
  Seconds last = 0;
  for (int i = 0; i < 200; ++i) {
    const bool congested = i % 2 == 1;
    last = h.feed(link.next(congested ? 5e-3 : 0.0, 0.0)).estimate;
  }
  // Naive congested estimates sit at −Δ/2 − 2.5 ms; θ̂ must stay within µs.
  EXPECT_NEAR(last, -link.asymmetry() / 2, 5e-6);
}

TEST(Offset, FallbackWhenWholeWindowPoor) {
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  const Seconds before = h.offset.estimate();
  // Every packet in the window far beyond E** = 6E = 360 µs: fall back.
  OffsetEvaluation eval;
  for (int i = 0; i < 30; ++i) eval = h.feed(link.next(4e-3, 4e-3));
  EXPECT_TRUE(eval.fallback);
  // Held at the last measured value (γ_l = 0 here); the last measurement
  // happened a few packets after `before` was read, so allow µs slack.
  EXPECT_NEAR(eval.estimate, before, 2e-6);
  EXPECT_GT(h.offset.fallback_count(), 0u);
}

TEST(Offset, FallbackUsesLocalRateSlope) {
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  const Seconds before = h.offset.estimate();
  const double gamma = ppm(0.05);
  OffsetEvaluation eval;
  for (int i = 0; i < 30; ++i) eval = h.feed(link.next(4e-3, 4e-3), gamma);
  EXPECT_TRUE(eval.fallback);
  // eq. (23): estimate drifts at −γ̂_l per second of age.
  EXPECT_LT(eval.estimate, before);
  EXPECT_NEAR(eval.estimate, before - gamma * 30 * 16.0, gamma * 16.0 * 35);
}

TEST(Offset, SanityCheckStopsServerFaultJump) {
  // A 150 ms server stamp error leaves the RTT (and so point errors)
  // untouched; only the sanity check can contain it (paper Fig. 11b).
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  const Seconds before = h.offset.estimate();
  OffsetEvaluation eval;
  for (int i = 0; i < 10; ++i) eval = h.feed(link.next(0, 0, 0.150));
  EXPECT_TRUE(eval.sanity_triggered);
  EXPECT_NEAR(eval.estimate, before, 2e-3);  // damage ≤ ~ms (paper: ≤ 1 ms)
  EXPECT_GT(h.offset.sanity_count(), 0u);
}

TEST(Offset, RecoversAfterServerFaultEnds) {
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  for (int i = 0; i < 10; ++i) h.feed(link.next(0, 0, 0.150));
  // Fault over: once faulty packets age out of the window the estimate
  // returns to the clean level without a step.
  Seconds last = 0;
  for (int i = 0; i < 40; ++i) last = h.feed(link.next()).estimate;
  EXPECT_NEAR(last, -link.asymmetry() / 2, 1e-5);
}

TEST(Offset, SanityDisabledFollowsTheFault) {
  auto params = test_params();
  params.enable_offset_sanity = false;
  SyntheticLink link;
  Harness h(params, link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  OffsetEvaluation eval;
  for (int i = 0; i < 40; ++i) eval = h.feed(link.next(0, 0, 0.150));
  // Without the sanity stage the estimate is dragged to the faulty level —
  // the ablation shows exactly why stage (iv) exists.
  EXPECT_LT(eval.estimate, -0.1);
  EXPECT_EQ(h.offset.sanity_count(), 0u);
}

TEST(Offset, GapRecoveryViaWeightedPathWhenFreshPacketGood) {
  // A *good* fresh packet after a gap needs no special handling: its own
  // weight dominates the aged window and the weighted path recovers alone.
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  link.advance(3 * duration::kDay);
  const auto eval = h.feed(link.next(), 0.0, /*gap=*/true);
  EXPECT_TRUE(eval.weighted);
  EXPECT_FALSE(eval.gap_blend);
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2, 1e-5);
}

TEST(Offset, GapBlendRecoversImmediately) {
  // A *mediocre* fresh packet (error > E** but offset roughly unbiased)
  // after a long gap: the whole window fails the quality cutoff, and the
  // §6.1 blend fires, siding with the fresh packet over the multi-day-old
  // estimate (whose age-inflated error is far larger).
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  link.advance(3 * duration::kDay);
  const auto eval = h.feed(link.next(250e-6, 250e-6), 0.0, /*gap=*/true);
  EXPECT_TRUE(eval.gap_blend);
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2, 1e-5);
  EXPECT_GT(h.offset.gap_blend_count(), 0u);
}

TEST(Offset, GapBlendPrefersOldValueWhenFreshPacketPoor) {
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  const Seconds before = h.offset.estimate();
  link.advance(30000.0);  // ~8 h: aging degrades the window beyond E**
  // Fresh packet is heavily congested (40 ms point error): the blend's
  // tie-break sides with the aged estimate, whose error is far smaller.
  const auto eval = h.feed(link.next(20e-3, 20e-3), 0.0, /*gap=*/true);
  EXPECT_TRUE(eval.gap_blend);
  EXPECT_NEAR(eval.estimate, before, 1e-4);
}

TEST(Offset, AgingPenalizesStalePackets) {
  // With aging enabled, an old perfect packet loses to a fresh mediocre
  // one; with aging disabled it dominates forever.
  auto params = test_params();
  params.offset_window = 320.0;
  SyntheticLink link;
  Harness h(params, link);
  const auto eval0 = h.feed(link.next());  // perfect first packet
  (void)eval0;
  OffsetEvaluation eval;
  for (int i = 0; i < 19; ++i) eval = h.feed(link.next(100e-6, 100e-6));
  // E^T of the first packet at age 304 s = 0 + 0.02PPM·304 ≈ 6 µs: still
  // excellent, so the estimate stays near the clean level.
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2, 40e-6);
  EXPECT_LT(eval.min_total_error, 10e-6);
}

TEST(Offset, ReassessErrorsAfterUpwardShift) {
  SyntheticLink link;
  Harness h(test_params(), link);
  for (int i = 0; i < 30; ++i) h.feed(link.next());
  // Upward RTT shift of 0.9 ms: errors look like congestion...
  for (int i = 0; i < 10; ++i) h.feed(link.next(0.45e-3, 0.45e-3));
  // ...until the detector raises r̂; re-assess marks them good again.
  const auto new_rhat = static_cast<TscDelta>(
      (link.min_rtt() + 0.9e-3) / link.config().period);
  h.offset.reassess_errors(new_rhat, 30);
  const auto eval = h.feed(link.next(0.45e-3, 0.45e-3));
  // Weighted path resumes (errors now near zero for post-shift packets).
  EXPECT_TRUE(eval.weighted);
  EXPECT_LT(eval.min_total_error, test_params().extreme_quality());
}

TEST(Offset, EstimateThrowsBeforeFirstPacket) {
  OffsetEstimator offset(test_params());
  EXPECT_THROW((void)offset.estimate(), ContractViolation);
  EXPECT_FALSE(offset.has_estimate());
}

TEST(Offset, WeightingDisabledUsesFallbackPath) {
  auto params = test_params();
  params.enable_weighting = false;
  SyntheticLink link;
  Harness h(params, link);
  h.feed(link.next());
  const auto eval = h.feed(link.next());
  EXPECT_FALSE(eval.weighted);
  EXPECT_TRUE(eval.fallback);
}

}  // namespace
}  // namespace tscclock::core
