// Dedicated tests for the lock-out escape mechanics of the rate and offset
// sanity checks (the engineering additions documented in DESIGN.md §5):
// they must block transient faults, release under *persistent stable*
// disagreement, and never freeze permanently.
#include <gtest/gtest.h>

#include <cmath>

#include "core/clock.hpp"
#include "core/offset.hpp"
#include "core/point_error.hpp"
#include "core/rate.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

Params test_params() {
  Params p;
  p.poll_period = 16.0;
  p.warmup_samples = 8;
  p.offset_window = 320.0;
  return p;
}

// ------------------------------------------------------------- rate escape
struct RateHarness {
  explicit RateHarness(const Params& params, double period)
      : filter(params), rate(params, period) {}

  GlobalRateEstimator::Result feed(const RawExchange& ex, double hint) {
    filter.add(ex.rtt_counts());
    PacketRecord rec;
    rec.seq = seq++;
    rec.stamps = ex;
    rec.rtt = ex.rtt_counts();
    rec.error_counts = rec.rtt - filter.rhat();
    return rate.process(rec, filter.point_error(rec.rtt, hint));
  }

  RttFilter filter;
  GlobalRateEstimator rate;
  std::uint64_t seq = 0;
};

TEST(RateSanityEscape, BlocksShortFaultEntirely) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  RateHarness h(params, truth);
  for (int i = 0; i < 500; ++i) h.feed(link.next(), truth);
  const double before = h.rate.period();
  // Fault shorter than the release count: fully rejected.
  for (std::size_t i = 0; i + 1 < params.rate_sanity_release_count; ++i) {
    const Seconds drift = 50e-3 + 1e-3 * static_cast<double>(i);
    h.feed(link.next(0, 0, drift), truth);
  }
  EXPECT_DOUBLE_EQ(h.rate.period(), before);
  EXPECT_GT(h.rate.sanity_count(), 0u);
  EXPECT_EQ(h.rate.release_count(), 0u);
  // Honest packet: accepted normally, estimate stays sane.
  h.feed(link.next(), truth);
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-7);
}

TEST(RateSanityEscape, ReleasesUnderPersistentDisagreement) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  RateHarness h(params, truth);
  for (int i = 0; i < 500; ++i) h.feed(link.next(), truth);
  // A *persistent* server timescale shift: every candidate moves by the
  // same large relative amount. After release_count consecutive blocks the
  // escape must fire rather than freeze forever.
  bool released = false;
  for (int i = 0; i < 40 && !released; ++i) {
    const Seconds drift = 1e-3 * (500.0 + i) * 16.0 * 1e-3;  // growing shift
    released = h.feed(link.next(0, 0, 0.5 + drift), truth).sanity_released;
  }
  EXPECT_TRUE(released);
  EXPECT_GE(h.rate.release_count(), 1u);
}

TEST(RateSanityEscape, CounterResetsOnAcceptedCandidate) {
  SyntheticLink link;
  const double truth = link.config().period;
  auto params = test_params();
  RateHarness h(params, truth);
  for (int i = 0; i < 500; ++i) h.feed(link.next(), truth);
  // Alternate faulty and clean packets: the consecutive-block counter can
  // never reach the release threshold.
  for (int i = 0; i < 60; ++i) {
    h.feed(link.next(0, 0, 0.4), truth);  // blocked
    h.feed(link.next(), truth);           // accepted, resets the counter
  }
  EXPECT_EQ(h.rate.release_count(), 0u);
  EXPECT_NEAR(h.rate.period() / truth, 1.0, 1e-7);
}

// ----------------------------------------------------------- offset escape
struct OffsetHarness {
  OffsetHarness(const Params& params, const SyntheticLink& link)
      : filter(params),
        offset(params),
        clock(link.config().counter_base, 0.0, link.config().period) {}

  OffsetEvaluation feed(const RawExchange& ex, bool gap = false) {
    filter.add(ex.rtt_counts());
    PacketRecord rec;
    rec.seq = seq++;
    rec.stamps = ex;
    rec.rtt = ex.rtt_counts();
    rec.error_counts = rec.rtt - filter.rhat();
    return offset.process(rec, clock, 0.0, gap, false);
  }

  RttFilter filter;
  OffsetEstimator offset;
  CounterTimescale clock;
  std::uint64_t seq = 0;
};

TEST(OffsetSanityEscape, FaultWashoutDoesNotRelease) {
  // While a fault washes out of the window, candidates move packet to
  // packet (each clean arrival shifts the weighted mixture), so the
  // stability requirement keeps the escape quiet and the estimate frozen
  // at the trusted level until candidates return.
  SyntheticLink link;
  auto params = test_params();
  OffsetHarness h(params, link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  const Seconds before = h.offset.estimate();
  for (int i = 0; i < 10; ++i) h.feed(link.next(0, 0, 0.150));
  Seconds worst = 0;
  for (int i = 0; i < 60; ++i) {
    const auto eval = h.feed(link.next());
    worst = std::max(worst, std::fabs(eval.estimate - before));
  }
  EXPECT_EQ(h.offset.release_count(), 0u);
  EXPECT_LT(worst, 3e-3);  // contained throughout the washout
  EXPECT_NEAR(h.offset.estimate(), before, 1e-4);  // and fully recovered
}

TEST(OffsetSanityEscape, PersistentStableLevelReleases) {
  // A persistent large *stable* disagreement (e.g. the server timescale
  // permanently stepped): the escape must eventually accept it instead of
  // freezing forever.
  SyntheticLink link;
  auto params = test_params();
  params.offset_sanity_release_count = 15;  // explicit, small for the test
  OffsetHarness h(params, link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  OffsetEvaluation eval;
  int packets_until_release = 0;
  for (int i = 0; i < 200; ++i) {
    eval = h.feed(link.next(0, 0, 0.050));  // permanent 50 ms server step
    ++packets_until_release;
    if (eval.sanity_released) break;
  }
  EXPECT_TRUE(eval.sanity_released);
  EXPECT_GE(h.offset.release_count(), 1u);
  // After release the estimate follows the new (stable) level.
  for (int i = 0; i < 40; ++i) eval = h.feed(link.next(0, 0, 0.050));
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2 - 0.050, 1e-3);
}

TEST(OffsetSanityEscape, GapPacketExemptFromSanity) {
  // Across a gap the clock drifted unobserved; the first packet after the
  // gap must not be frozen against the stale value even if the candidate
  // moved by more than Es.
  SyntheticLink link;
  auto params = test_params();
  OffsetHarness h(params, link);
  for (int i = 0; i < 50; ++i) h.feed(link.next());
  link.advance(3 * duration::kDay);
  // Emulate several ms of unobserved drift with a changed server stamp
  // level (the physical cause differs, the estimator sees the same thing).
  const auto eval = h.feed(link.next(0, 0, 5e-3), /*gap=*/true);
  EXPECT_FALSE(eval.sanity_triggered);
  EXPECT_NEAR(eval.estimate, -link.asymmetry() / 2 - 5e-3, 1e-4);
}

// ---------------------------------------------------- end-to-end no-freeze
TEST(LockoutFreedom, ClockNeverFreezesForever) {
  // The invariant that motivated the escapes: no matter what the server
  // does, the composed clock eventually tracks a *stable* world again.
  SyntheticLink link;
  auto params = test_params();
  core::TscNtpClock clock(params, link.config().period);
  for (int i = 0; i < 300; ++i) clock.process_exchange(link.next());
  // Hostile phase: a permanent 80 ms server step (beyond any sanity
  // threshold) plus heavy queueing noise.
  for (int i = 0; i < 600; ++i)
    clock.process_exchange(
        link.next((i % 3) * 2e-3, (i % 2) * 1.5e-3, 0.080));
  // The clock must have released and resumed tracking the (shifted) world:
  // θ̂ equals the clock's *actual* offset relative to the stepped server
  // timescale. (C itself drifted during the chaos — the rate estimator was
  // fed poisoned stamps — so compare against C's true offset, not 0.)
  Seconds final_estimate = 0;
  RawExchange last{};
  for (int i = 0; i < 100; ++i) {
    last = link.next(0, 0, 0.080);
    final_estimate = clock.process_exchange(last).offset_estimate;
  }
  const Seconds true_tf =
      static_cast<double>(counter_delta(last.tf,
                                        link.config().counter_base)) *
      link.config().period;
  const Seconds clock_offset = clock.uncorrected_time(last.tf) - true_tf;
  EXPECT_NEAR(final_estimate - clock_offset,
              -link.asymmetry() / 2 - 0.080, 2e-3);
  EXPECT_GE(clock.status().offset_sanity_releases, 1u);
}

}  // namespace
}  // namespace tscclock::core
