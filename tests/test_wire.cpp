// Tests for the NTP wire substrate: byte buffers, timestamp formats and the
// 48-byte packet codec.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "wire/buffer.hpp"
#include "wire/ntp_packet.hpp"
#include "wire/ntp_timestamp.hpp"

namespace tscclock::wire {
namespace {

// ---------------------------------------------------------------- buffers
TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  w.u32(0x03040506);
  w.u64(0x0708090a0b0c0d0eULL);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 14u);
  EXPECT_EQ(d[0], 0x01);
  EXPECT_EQ(d[1], 0x02);
  EXPECT_EQ(d[2], 0x03);
  EXPECT_EQ(d[5], 0x06);
  EXPECT_EQ(d[6], 0x07);
  EXPECT_EQ(d[13], 0x0e);
}

TEST(ByteReaderWriter, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0x01234567);
  w.u64(0x89abcdef01234567ULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89abcdef01234567ULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, ThrowsPastEnd) {
  std::vector<std::uint8_t> data{1, 2, 3};
  ByteReader r(data);
  r.u16();
  EXPECT_THROW(r.u16(), BufferError);
}

TEST(ByteWriter, BytesAppends) {
  ByteWriter w;
  const std::uint8_t raw[] = {9, 8, 7};
  w.bytes(raw);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data()[2], 7);
}

// ------------------------------------------------------------- timestamps
TEST(NtpTimestamp, PackedRoundTrip) {
  NtpTimestamp ts{0x12345678, 0x9abcdef0};
  EXPECT_EQ(NtpTimestamp::from_packed(ts.packed()), ts);
}

TEST(NtpTimestamp, SecondsRoundTripToResolution) {
  const Seconds values[] = {0.0, 1.5, 1234567.875, 4.2e9};
  for (Seconds v : values) {
    const Seconds rt = from_ntp_timestamp(to_ntp_timestamp(v));
    const double wrapped = std::fmod(v, 4294967296.0);
    EXPECT_NEAR(rt, wrapped, kNtpTimestampResolution);
  }
}

TEST(NtpTimestamp, FractionCarryPropagates) {
  // A value infinitesimally below a whole second must not produce
  // fraction overflow.
  const Seconds v = 2.0 - 1e-12;
  const auto ts = to_ntp_timestamp(v);
  EXPECT_EQ(ts.seconds, 2u);
  EXPECT_EQ(ts.fraction, 0u);
}

TEST(NtpTimestamp, ZeroDetection) {
  EXPECT_TRUE(NtpTimestamp{}.is_zero());
  EXPECT_FALSE((NtpTimestamp{1, 0}).is_zero());
  EXPECT_FALSE((NtpTimestamp{0, 1}).is_zero());
}

TEST(NtpTimestamp, EpochConversionsAreSubNanosecond) {
  // The whole point of the epoch-relative helpers: double-precision error
  // must not appear even at 2004-era values (~3.3e9 s).
  constexpr std::uint32_t epoch = 3'297'000'000u;
  const Seconds values[] = {0.0, 1e-6, 16.000000123, 7.9e6 + 0.123456789};
  for (Seconds v : values) {
    const auto ts = to_ntp_timestamp_at_epoch(v, epoch);
    const Seconds rt = from_ntp_timestamp_at_epoch(ts, epoch);
    EXPECT_NEAR(rt, v, 1e-9) << v;
  }
}

TEST(NtpTimestamp, EpochConversionRejectsEraOverflow) {
  constexpr std::uint32_t epoch = 4'294'967'000u;
  EXPECT_THROW(to_ntp_timestamp_at_epoch(1000.0, epoch),
               tscclock::ContractViolation);
}

TEST(NtpShort, RoundTrip) {
  const Seconds values[] = {0.0, 0.5, 1.25, 100.0078125};
  for (Seconds v : values)
    EXPECT_NEAR(from_ntp_short(to_ntp_short(v)), v, 1.0 / 65536.0);
}

TEST(NtpShort, RejectsOutOfRange) {
  EXPECT_THROW(to_ntp_short(-1.0), tscclock::ContractViolation);
  EXPECT_THROW(to_ntp_short(70000.0), tscclock::ContractViolation);
}

// ---------------------------------------------------------------- packets
NtpPacket sample_packet() {
  NtpPacket p;
  p.leap = LeapIndicator::kNoWarning;
  p.version = 4;
  p.mode = NtpMode::kServer;
  p.stratum = 1;
  p.poll = 6;
  p.precision = -20;
  p.root_delay = to_ntp_short(0.015);
  p.root_dispersion = to_ntp_short(0.001);
  p.reference_id = reference_id_from_string("GPS");
  p.reference_time = {100, 200};
  p.origin_time = {101, 201};
  p.receive_time = {102, 202};
  p.transmit_time = {103, 203};
  return p;
}

TEST(NtpPacket, EncodeIs48Bytes) {
  EXPECT_EQ(encode(sample_packet()).size(), kNtpPacketSize);
}

TEST(NtpPacket, EncodeDecodeRoundTrip) {
  const auto p = sample_packet();
  EXPECT_EQ(decode(encode(p)), p);
}

TEST(NtpPacket, FirstByteLayout) {
  auto p = sample_packet();
  p.leap = LeapIndicator::kUnsynchronized;  // 3 << 6
  p.version = 4;                            // 4 << 3
  p.mode = NtpMode::kClient;                // 3
  const auto bytes = encode(p);
  EXPECT_EQ(bytes[0], (3 << 6) | (4 << 3) | 3);
}

TEST(NtpPacket, DecodeRejectsShortInput) {
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_THROW(decode(tiny), PacketError);
}

TEST(NtpPacket, DecodeRejectsBadVersion) {
  auto bytes = encode(sample_packet());
  bytes[0] = (bytes[0] & ~0x38) | (7 << 3);  // version 7
  EXPECT_THROW(decode(bytes), PacketError);
}

TEST(NtpPacket, DecodeRejectsReservedMode) {
  auto bytes = encode(sample_packet());
  bytes[0] = bytes[0] & ~0x07;  // mode 0
  EXPECT_THROW(decode(bytes), PacketError);
}

TEST(NtpPacket, ReferenceIdPacksAscii) {
  EXPECT_EQ(reference_id_from_string("GPS"),
            (std::uint32_t('G') << 24) | (std::uint32_t('P') << 16) |
                (std::uint32_t('S') << 8));
  EXPECT_EQ(reference_id_from_string("ATOM"),
            (std::uint32_t('A') << 24) | (std::uint32_t('T') << 16) |
                (std::uint32_t('O') << 8) | std::uint32_t('M'));
}

TEST(NtpPacket, ClientRequestShape) {
  const auto req = make_client_request({55, 66}, 4);
  EXPECT_EQ(req.mode, NtpMode::kClient);
  EXPECT_EQ(req.transmit_time, (NtpTimestamp{55, 66}));
  EXPECT_EQ(req.poll, 4);
  EXPECT_EQ(req.stratum, 0);
}

TEST(NtpPacket, ServerReplyEchoesOrigin) {
  const auto req = make_client_request({55, 66}, 4);
  const auto rep = make_server_reply(req, {70, 0}, {70, 500}, 1,
                                     reference_id_from_string("GPS"));
  EXPECT_EQ(rep.mode, NtpMode::kServer);
  EXPECT_EQ(rep.origin_time, req.transmit_time);  // Ta echoed
  EXPECT_EQ(rep.receive_time, (NtpTimestamp{70, 0}));
  EXPECT_EQ(rep.transmit_time, (NtpTimestamp{70, 500}));
  EXPECT_EQ(rep.stratum, 1);
}

TEST(NtpPacket, ServerReplyRequiresClientMode) {
  auto req = make_client_request({1, 2}, 4);
  req.mode = NtpMode::kBroadcast;
  EXPECT_THROW(make_server_reply(req, {1, 0}, {1, 1}, 1, 0),
               tscclock::ContractViolation);
}

TEST(NtpPacket, WireRoundTripPreservesServerStampsExactly) {
  // The full exchange path used by the testbed: epoch conversion → packet →
  // bytes → packet → epoch conversion, exact to one wire LSB.
  constexpr std::uint32_t epoch = 3'297'000'000u;
  const Seconds tb = 123456.000001234;
  const Seconds te = 123456.000041234;
  const auto req = make_client_request(to_ntp_timestamp_at_epoch(0.0, epoch), 4);
  const auto rep = make_server_reply(
      decode(encode(req)), to_ntp_timestamp_at_epoch(tb, epoch),
      to_ntp_timestamp_at_epoch(te, epoch), 1, 0);
  const auto rx = decode(encode(rep));
  EXPECT_NEAR(from_ntp_timestamp_at_epoch(rx.receive_time, epoch), tb, 1e-9);
  EXPECT_NEAR(from_ntp_timestamp_at_epoch(rx.transmit_time, epoch), te, 1e-9);
}

}  // namespace
}  // namespace tscclock::wire
