// Tests for the naive estimators (paper §4): exact recovery on clean
// synthetic data, and the documented failure modes on noisy data.
#include "core/naive.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "synthetic_link.hpp"

namespace tscclock::core {
namespace {

using testing::SyntheticLink;

TEST(NaiveRate, ExactOnCleanLink) {
  SyntheticLink link;
  const auto a = link.next();
  SyntheticLink::Config config;  // defaults
  for (int i = 0; i < 100; ++i) link.next();
  SyntheticLink link2;  // unused; keep a long baseline on link
  (void)link2;
  const auto b = link.next();
  const auto r = naive_rate(a, b);
  EXPECT_NEAR(r.forward / config.period, 1.0, 1e-9);
  EXPECT_NEAR(r.backward / config.period, 1.0, 1e-9);
  EXPECT_NEAR(r.combined / config.period, 1.0, 1e-9);
}

TEST(NaiveRate, QueueingErrorDampedByBaseline) {
  // The same 1 ms queueing excursion hurts a short baseline far more than a
  // long one: error ~ q/Δ(t) (paper §4.1).
  SyntheticLink link;
  const auto j = link.next();
  const auto i_short = link.next(1e-3, 0.0);
  SyntheticLink link_long;
  const auto j2 = link_long.next();
  for (int k = 0; k < 5000; ++k) link_long.next();
  const auto i_long = link_long.next(1e-3, 0.0);

  const double p = SyntheticLink::Config{}.period;
  const double err_short = std::fabs(naive_rate(j, i_short).combined / p - 1.0);
  const double err_long = std::fabs(naive_rate(j2, i_long).combined / p - 1.0);
  EXPECT_GT(err_short, 1000 * err_long);
}

TEST(NaiveRate, ForwardAndBackwardSeeDifferentDirections) {
  SyntheticLink link;
  const auto j = link.next();
  for (int k = 0; k < 10; ++k) link.next();
  const auto i = link.next(2e-3, 0.0);  // forward queueing only
  const auto r = naive_rate(j, i);
  const double p = SyntheticLink::Config{}.period;
  // Forward estimate corrupted, backward unaffected.
  EXPECT_GT(std::fabs(r.forward / p - 1.0), 1e-6);
  EXPECT_LT(std::fabs(r.backward / p - 1.0), 1e-8);
}

TEST(NaiveRate, RejectsNonPositiveBaseline) {
  SyntheticLink link;
  const auto a = link.next();
  EXPECT_THROW(naive_rate(a, a), ContractViolation);
}

TEST(NaiveOffset, AsymmetryAmbiguityIsMinusHalfDelta) {
  // With a clock perfectly aligned to true time, the naive offset estimate
  // equals −Δ/2 when q = 0 (paper eq. 18/19 discussion).
  SyntheticLink link;
  const double p = link.config().period;
  // Clock C(T) = true time exactly: anchored at counter_base ↔ t=0.
  const CounterTimescale clock(link.config().counter_base, 0.0, p);
  const auto ex = link.next();
  const Seconds theta = naive_offset(ex, clock);
  EXPECT_NEAR(theta, -link.asymmetry() / 2, 1e-9);
}

TEST(NaiveOffset, QueueingBiasesEstimate) {
  SyntheticLink link;
  const double p = link.config().period;
  const CounterTimescale clock(link.config().counter_base, 0.0, p);
  // Forward queueing pushes the estimate negative: θ̂ error −(q→−q←)/2.
  const auto fwd = link.next(1e-3, 0.0);
  EXPECT_NEAR(naive_offset(fwd, clock), -link.asymmetry() / 2 - 0.5e-3, 1e-9);
  const auto bwd = link.next(0.0, 1e-3);
  EXPECT_NEAR(naive_offset(bwd, clock), -link.asymmetry() / 2 + 0.5e-3, 1e-9);
}

TEST(NaiveOffset, TracksClockOffset) {
  // If the clock runs 5 ms ahead of true time, the naive offset reports it.
  SyntheticLink link;
  const double p = link.config().period;
  const CounterTimescale clock(link.config().counter_base, 5e-3, p);
  const auto ex = link.next();
  EXPECT_NEAR(naive_offset(ex, clock), 5e-3 - link.asymmetry() / 2, 1e-9);
}

TEST(NaiveOffset, ServerFaultShiftsEstimate) {
  SyntheticLink link;
  const double p = link.config().period;
  const CounterTimescale clock(link.config().counter_base, 0.0, p);
  const auto ex = link.next(0.0, 0.0, 0.150);  // 150 ms server stamp fault
  EXPECT_NEAR(naive_offset(ex, clock), -link.asymmetry() / 2 - 0.150, 1e-9);
}

}  // namespace
}  // namespace tscclock::core
