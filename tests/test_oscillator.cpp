// Tests for the oscillator model: the simulated hardware must satisfy the
// paper's two characterization facts (§3.1) — SKM below τ* and a 0.1 PPM
// rate-error bound over all scales — since the algorithms assume them.
#include "sim/oscillator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/allan.hpp"
#include "common/contracts.hpp"
#include "common/time_types.hpp"

namespace tscclock::sim {
namespace {

TEST(Oscillator, MonotonicCounter) {
  Oscillator osc(OscillatorConfig::machine_room(1));
  TscCount prev = osc.read(0.0);
  for (int k = 1; k <= 1000; ++k) {
    const TscCount now = osc.read(k * 0.5);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Oscillator, RejectsTimeReversal) {
  Oscillator osc(OscillatorConfig::machine_room(1));
  osc.read(100.0);
  EXPECT_THROW(osc.read(99.0), ContractViolation);
}

TEST(Oscillator, FrequencyNearNominalPlusSkew) {
  auto config = OscillatorConfig::machine_room(2);
  Oscillator osc(config);
  const TscCount c0 = osc.read(0.0);
  const TscCount c1 = osc.read(1000.0);
  const double measured_freq = static_cast<double>(c1 - c0) / 1000.0;
  const double expected =
      config.nominal_frequency_hz * (1.0 + ppm(config.skew_ppm));
  // Within wander bounds (~0.1 PPM).
  EXPECT_NEAR(measured_freq / expected, 1.0, 2e-7);
}

TEST(Oscillator, MeanPeriodInvertsTrueFrequency) {
  auto config = OscillatorConfig::machine_room(3);
  Oscillator osc(config);
  EXPECT_NEAR(osc.mean_period() * config.nominal_frequency_hz *
                  (1.0 + ppm(config.skew_ppm)),
              1.0, 1e-12);
  EXPECT_NEAR(osc.nominal_period() * config.nominal_frequency_hz, 1.0, 1e-12);
}

TEST(Oscillator, DeterministicForSeed) {
  Oscillator a(OscillatorConfig::machine_room(7));
  Oscillator b(OscillatorConfig::machine_room(7));
  for (int k = 0; k < 50; ++k) {
    const Seconds t = k * 13.0;
    EXPECT_EQ(a.read(t), b.read(t));
  }
}

TEST(Oscillator, DifferentSeedsDiffer) {
  Oscillator a(OscillatorConfig::machine_room(7));
  Oscillator b(OscillatorConfig::machine_room(8));
  a.read(5000.0);
  b.read(5000.0);
  EXPECT_NE(a.read(10000.0), b.read(10000.0));
}

TEST(Oscillator, RateErrorBoundedOverDays) {
  // The 0.1 PPM bound of §3.1, measured as the deviation of the realized
  // rate over τ* windows from the long-run mean rate.
  Oscillator osc(OscillatorConfig::machine_room(11));
  const double p = osc.mean_period();
  std::vector<double> offsets;  // θ(t) with p̂ = mean period
  const Seconds step = 250.0;
  const int n = static_cast<int>(2 * duration::kDay / step);
  TscCount c0 = osc.read(0.0);
  for (int k = 1; k <= n; ++k) {
    const Seconds t = k * step;
    const TscCount c = osc.read(t);
    offsets.push_back(delta_to_seconds(counter_delta(c, c0), p) - t);
  }
  // Rate over each 1000 s window.
  const int w = 4;  // 4 × 250 s
  for (std::size_t k = w; k < offsets.size(); ++k) {
    const double rate = (offsets[k] - offsets[k - w]) / (w * step);
    EXPECT_LT(std::fabs(rate), ppm(0.15)) << "window " << k;
  }
}

TEST(Oscillator, SkmHoldsBelowTauStar) {
  // Over 1000 s the offset curve must be nearly linear (Fig. 2 left):
  // residuals from the endpoint-fitted line stay in the few-µs range.
  Oscillator osc(OscillatorConfig::machine_room(13));
  const double p = osc.mean_period();
  const Seconds span = 1000.0;
  const Seconds step = 20.0;
  std::vector<double> offsets;
  const TscCount c0 = osc.read(0.0);
  const int n = static_cast<int>(span / step);
  for (int k = 0; k <= n; ++k) {
    const TscCount c = osc.read(k * step);
    offsets.push_back(delta_to_seconds(counter_delta(c, c0), p) - k * step);
  }
  const double slope = (offsets.back() - offsets.front()) / span;
  for (int k = 0; k <= n; ++k) {
    const double line = offsets.front() + slope * k * step;
    EXPECT_LT(std::fabs(offsets[k] - line), 3e-6);
  }
}

TEST(Oscillator, LaboratoryWandersMoreThanMachineRoomAtDayScale) {
  const auto run = [](const OscillatorConfig& config) {
    Oscillator osc(config);
    const double p = osc.mean_period();
    std::vector<double> phase;
    const Seconds step = 500.0;
    const TscCount c0 = osc.read(0.0);
    for (int k = 0; k <= 3 * 86400 / 500; ++k) {
      const TscCount c = osc.read(k * step);
      phase.push_back(delta_to_seconds(counter_delta(c, c0), p) - k * step);
    }
    const std::size_t ms[] = {86400 / 500};  // τ = 1 day
    return allan_deviation(phase, step, ms).at(0).deviation;
  };
  const double lab = run(OscillatorConfig::laboratory(17));
  const double mr = run(OscillatorConfig::machine_room(17));
  EXPECT_GT(lab, mr);
}

TEST(Oscillator, MachineRoomHasOscillatoryComponent) {
  const auto config = OscillatorConfig::machine_room(19);
  EXPECT_GT(config.oscillatory_amplitude_ppm, 0.0);
  EXPECT_EQ(OscillatorConfig::laboratory(19).oscillatory_amplitude_ppm, 0.0);
}

TEST(Oscillator, LongGapIntegrationStaysBounded) {
  // A multi-day read gap (outage scenarios) must not corrupt the phase.
  Oscillator osc(OscillatorConfig::machine_room(23));
  const double p = osc.mean_period();
  const TscCount c0 = osc.read(0.0);
  const Seconds gap = 4 * duration::kDay;
  const TscCount c1 = osc.read(gap);
  const double implied = delta_to_seconds(counter_delta(c1, c0), p);
  EXPECT_NEAR(implied, gap, gap * ppm(0.15));
}

TEST(Oscillator, ConfigValidation) {
  auto config = OscillatorConfig::machine_room(1);
  config.nominal_frequency_hz = 0.0;
  EXPECT_THROW(Oscillator{config}, ContractViolation);
  config = OscillatorConfig::machine_room(1);
  config.max_substep_s = 0.0;
  EXPECT_THROW(Oscillator{config}, ContractViolation);
}

}  // namespace
}  // namespace tscclock::sim
