// The BENCH_throughput.json schema: to_json/parse round trip, validation
// errors for malformed or mistyped reports, and the staleness contract CI
// keys off (schema_version is parsed verbatim; policy is the caller's).
#include "common/bench_report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tscclock {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.tool = "bench_throughput";
  report.mode = "full";
  report.simulated_days = 30;
  report.baseline_commit = "cdbde7e";
  BenchSection base;
  base.name = "single_robust_exact";
  base.drive = "scalar";
  base.reduction = "exact";
  base.exchanges = 162000;
  base.seconds = 1.015;
  base.exchanges_per_sec = 159600;
  report.baseline.push_back(base);
  BenchSection result = base;
  result.name = "single_robust_exact_batched";
  result.drive = "batched";
  result.seconds = 0.4;
  result.exchanges_per_sec = 405000;
  result.pairs_with = "single_robust_exact";
  report.results.push_back(result);
  report.stage_breakdown.present = true;
  report.stage_breakdown.generate_seconds = 0.17;
  report.stage_breakdown.estimate_seconds = 0.19;
  report.stage_breakdown.reduce_seconds = 0.04;
  return report;
}

TEST(BenchReport, RoundTripsThroughJson) {
  const BenchReport original = sample_report();
  const BenchReport parsed = parse_bench_report(to_json(original));

  EXPECT_EQ(parsed.schema_version, kBenchReportSchemaVersion);
  EXPECT_EQ(parsed.tool, original.tool);
  EXPECT_EQ(parsed.mode, original.mode);
  EXPECT_EQ(parsed.simulated_days, original.simulated_days);
  EXPECT_EQ(parsed.baseline_commit, original.baseline_commit);
  ASSERT_EQ(parsed.baseline.size(), 1u);
  ASSERT_EQ(parsed.results.size(), 1u);
  EXPECT_EQ(parsed.baseline[0].name, "single_robust_exact");
  EXPECT_EQ(parsed.baseline[0].drive, "scalar");
  EXPECT_EQ(parsed.baseline[0].reduction, "exact");
  EXPECT_EQ(parsed.baseline[0].exchanges, 162000u);
  EXPECT_EQ(parsed.results[0].name, "single_robust_exact_batched");
  EXPECT_EQ(parsed.results[0].drive, "batched");
  // pairs_with rides along on results and is absent (empty) on the pinned
  // baseline block, which predates the key.
  EXPECT_EQ(parsed.results[0].pairs_with, "single_robust_exact");
  EXPECT_EQ(parsed.baseline[0].pairs_with, "");
  ASSERT_TRUE(parsed.stage_breakdown.present);
  EXPECT_EQ(parsed.stage_breakdown.generate_seconds, 0.17);
  EXPECT_EQ(parsed.stage_breakdown.estimate_seconds, 0.19);
  EXPECT_EQ(parsed.stage_breakdown.reduce_seconds, 0.04);
}

TEST(BenchReport, PreCampaignReportsWithoutNewKeysStillParse) {
  // A report written before pairs_with / stage_breakdown existed must parse
  // with the defaults: empty pairing, breakdown absent. This is the
  // additive-schema contract that lets the fields ship without a version
  // bump.
  BenchReport old = sample_report();
  old.results[0].pairs_with.clear();
  old.stage_breakdown = {};
  const std::string json = to_json(old);
  EXPECT_EQ(json.find("pairs_with"), std::string::npos);
  EXPECT_EQ(json.find("stage_breakdown"), std::string::npos);
  const BenchReport parsed = parse_bench_report(json);
  EXPECT_EQ(parsed.results[0].pairs_with, "");
  EXPECT_FALSE(parsed.stage_breakdown.present);
}

TEST(BenchReport, RejectsMistypedPairsWithAndPartialBreakdown) {
  {
    BenchReport report = sample_report();
    std::string json = to_json(report);
    const std::string needle = "\"pairs_with\": \"single_robust_exact\"";
    const auto pos = json.find(needle);
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, needle.size(), "\"pairs_with\": 17");
    EXPECT_THROW(parse_bench_report(json), std::runtime_error);
  }
  {
    BenchReport report = sample_report();
    std::string json = to_json(report);
    const auto pos = json.find("\"reduce_seconds\"");
    ASSERT_NE(pos, std::string::npos);
    // Drop one stage field: a partial breakdown must not parse as valid.
    json.replace(pos, std::string::npos, "\"x\": 0}\n}\n");
    EXPECT_THROW(parse_bench_report(json), std::runtime_error);
  }
}

TEST(BenchReport, ParsesFieldOrderFreeAndIgnoresUnknownKeys) {
  const char* json = R"({
    "results": [],
    "baseline": [],
    "future_field": {"nested": [1, 2, {"deep": true}]},
    "baseline_commit": "abc1234",
    "simulated_days": 2,
    "mode": "quick",
    "tool": "bench_throughput",
    "schema_version": 1
  })";
  const BenchReport report = parse_bench_report(json);
  EXPECT_EQ(report.schema_version, 1);
  EXPECT_EQ(report.mode, "quick");
  EXPECT_TRUE(report.results.empty());
}

TEST(BenchReport, SchemaVersionParsedVerbatim) {
  // Staleness (old version in the committed file) is detected by the caller,
  // not the parser — a bumped schema must still be able to READ the old file
  // far enough to report its version.
  BenchReport report = sample_report();
  report.schema_version = kBenchReportSchemaVersion + 7;
  EXPECT_EQ(parse_bench_report(to_json(report)).schema_version,
            kBenchReportSchemaVersion + 7);
}

TEST(BenchReport, RejectsMalformedInput) {
  EXPECT_THROW(parse_bench_report(""), std::runtime_error);
  EXPECT_THROW(parse_bench_report("not json"), std::runtime_error);
  EXPECT_THROW(parse_bench_report("[1, 2]"), std::runtime_error);
  EXPECT_THROW(parse_bench_report("{\"schema_version\": 1}"),
               std::runtime_error);  // missing required fields
  EXPECT_THROW(parse_bench_report("{\"schema_version\": \"one\"}"),
               std::runtime_error);  // mistyped
  // Truncated document (unterminated array).
  EXPECT_THROW(parse_bench_report("{\"schema_version\": 1, \"results\": ["),
               std::runtime_error);
}

TEST(BenchReport, RejectsMistypedSections) {
  const char* json = R"({
    "schema_version": 1, "tool": "t", "mode": "full",
    "simulated_days": 1, "baseline_commit": "x",
    "baseline": [],
    "results": [{"name": "a", "drive": "scalar", "reduction": "exact",
                 "exchanges": 10.5, "seconds": 1, "exchanges_per_sec": 10}]
  })";
  EXPECT_THROW(parse_bench_report(json), std::runtime_error);  // 10.5
}

}  // namespace
}  // namespace tscclock
