// Tests for the statistics substrate: running/windowed minima, percentiles,
// histograms, moments.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace tscclock {
namespace {

TEST(RunningMin, TracksMinimum) {
  RunningMin<int> m;
  EXPECT_FALSE(m.valid());
  m.update(5);
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.value(), 5);
  m.update(7);
  EXPECT_EQ(m.value(), 5);
  m.update(3);
  EXPECT_EQ(m.value(), 3);
}

TEST(RunningMin, ResetToOverrides) {
  RunningMin<int> m;
  m.update(3);
  m.reset_to(10);  // level-shift reaction can *raise* the minimum
  EXPECT_EQ(m.value(), 10);
  m.update(8);
  EXPECT_EQ(m.value(), 8);
}

TEST(WindowedMin, MatchesBruteForce) {
  const std::size_t window = 7;
  WindowedMin<int> wm(window);
  Rng rng(3);
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) {
    const int v = static_cast<int>(rng.uniform(0, 1000));
    values.push_back(v);
    wm.push(v);
    const std::size_t begin = values.size() > window ? values.size() - window : 0;
    int expected = values[begin];
    for (std::size_t k = begin; k < values.size(); ++k)
      expected = std::min(expected, values[k]);
    ASSERT_EQ(wm.min(), expected) << "at step " << i;
  }
}

TEST(WindowedMin, FullOnlyAfterCapacity) {
  WindowedMin<int> wm(3);
  wm.push(1);
  wm.push(2);
  EXPECT_FALSE(wm.full());
  wm.push(3);
  EXPECT_TRUE(wm.full());
}

TEST(WindowedMin, OldMinimumExpires) {
  WindowedMin<int> wm(3);
  wm.push(1);
  wm.push(10);
  wm.push(20);
  EXPECT_EQ(wm.min(), 1);
  wm.push(30);  // the 1 leaves the window
  EXPECT_EQ(wm.min(), 10);
}

TEST(WindowedMin, ClearRestarts) {
  WindowedMin<int> wm(3);
  wm.push(1);
  wm.clear();
  EXPECT_FALSE(wm.valid());
  wm.push(9);
  EXPECT_EQ(wm.min(), 9);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Percentile, RejectsEmptyAndBadQuantile) {
  std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), ContractViolation);
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, 1.5), ContractViolation);
}

TEST(Percentile, InputOrderIrrelevant) {
  std::vector<double> a{5, 1, 4, 2, 3};
  std::vector<double> b{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(a, 0.5), percentile(b, 0.5));
}

TEST(PercentileSummary, IqrIsP75MinusP25) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const auto s = percentile_summary(v);
  EXPECT_DOUBLE_EQ(s.p50, 51.0);
  EXPECT_DOUBLE_EQ(s.iqr(), s.p75 - s.p25);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
}

TEST(Summarize, BasicDescriptives) {
  std::vector<double> v{1, 2, 3, 4, 100};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.percentiles.p50, 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(50.0);   // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, NanHasNoBinAndIsCountedSeparately) {
  // Regression (UBSAN-exercised in the asan-ubsan CI leg): std::floor(NaN)
  // is NaN and casting NaN to an integer is undefined behaviour — a NaN
  // sample used to be credited to an arbitrary bin. It must instead be
  // rejected from the bins and surfaced via nan_count().
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u) << "NaN must not inflate the binned mass";
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.density(5), 1.0) << "densities are over binned samples";
}

TEST(Histogram, InfinitiesAndHugeValuesClampIntoTerminalBins) {
  // Casting a double beyond the integer target's range is UB just like the
  // NaN case; ±inf and huge finite values must clamp into the terminal
  // bins (mass conservation, as documented) without tripping UBSAN.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.update(v);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningMoments, DegenerateCases) {
  RunningMoments m;
  EXPECT_EQ(m.variance(), 0.0);
  m.update(3.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
}

// -- P² quantile sketch ----------------------------------------------------

TEST(P2Quantile, ExactForFiveOrFewerSamples) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_EQ(median.value(), 3.0);
  median.add(1.0);
  median.add(5.0);
  // Exact interpolated percentile of {1, 3, 5}.
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(2.0);
  median.add(4.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(P2Quantile, ApproximatesUniformStreamQuantiles) {
  Rng rng(4242);
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  P2Quantile p01(0.01);
  for (int k = 0; k < 100000; ++k) {
    const double x = rng.uniform();
    p50.add(x);
    p99.add(x);
    p01.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.50, 0.01);
  EXPECT_NEAR(p99.value(), 0.99, 0.005);
  EXPECT_NEAR(p01.value(), 0.01, 0.005);
}

TEST(P2Quantile, ApproximatesHeavyTailedStreamMedian) {
  // Pareto-style heavy tail: the regime the sweep's error series live in.
  Rng rng(777);
  P2Quantile p50(0.5);
  std::vector<double> all;
  for (int k = 0; k < 20000; ++k) {
    const double x = rng.pareto(2.5, 1e-3);
    p50.add(x);
    all.push_back(x);
  }
  const double exact = percentile(all, 0.5);
  EXPECT_NEAR(p50.value(), exact, 0.05 * exact + 1e-6);
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), ContractViolation);
}

TEST(StreamingSeriesSummary, ExactMomentsApproximatePercentiles) {
  Rng rng(90210);
  StreamingSeriesSummary streaming;
  std::vector<double> all;
  for (int k = 0; k < 50000; ++k) {
    const double x = rng.normal(2e-5) + 1e-5;
    streaming.add(x);
    all.push_back(x);
  }
  const auto exact = summarize(all);
  const auto approx = streaming.summary();
  // Same Welford recurrence in the same order → bit-identical moments.
  EXPECT_EQ(approx.count, exact.count);
  EXPECT_EQ(approx.mean, exact.mean);
  EXPECT_EQ(approx.stddev, exact.stddev);
  EXPECT_EQ(approx.min, exact.min);
  EXPECT_EQ(approx.max, exact.max);
  // P² percentiles within a small fraction of the standard deviation.
  EXPECT_NEAR(approx.percentiles.p50, exact.percentiles.p50,
              0.05 * exact.stddev);
  EXPECT_NEAR(approx.percentiles.p25, exact.percentiles.p25,
              0.05 * exact.stddev);
  EXPECT_NEAR(approx.percentiles.p75, exact.percentiles.p75,
              0.05 * exact.stddev);
  EXPECT_NEAR(approx.percentiles.p01, exact.percentiles.p01,
              0.15 * exact.stddev);
  EXPECT_NEAR(approx.percentiles.p99, exact.percentiles.p99,
              0.15 * exact.stddev);
}

TEST(StreamingSeriesSummary, EmptySummaryIsZeroInitialized) {
  const StreamingSeriesSummary streaming;
  const auto s = streaming.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.percentiles.p50, 0.0);
}

}  // namespace
}  // namespace tscclock
