// Tests for the SW-NTP baseline (clock filter, PLL discipline, SwNtpClock).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/clock_filter.hpp"
#include "baseline/pll.hpp"
#include "baseline/swntp.hpp"
#include "synthetic_link.hpp"

namespace tscclock::baseline {
namespace {

using testing::SyntheticLink;

// ------------------------------------------------------------ clock filter
TEST(ClockFilter, SelectsMinimumDelaySample) {
  ClockFilter f;
  f.add({1e-3, 10e-3, 1.0});
  const auto s = f.add({2e-3, 2e-3, 2.0});
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->offset, 2e-3);  // lower delay wins
}

TEST(ClockFilter, DoesNotReuseStaleSelection) {
  ClockFilter f;
  auto s = f.add({1e-3, 1e-3, 1.0});
  ASSERT_TRUE(s.has_value());
  // A worse sample arrives: best is still the old one → not reused.
  s = f.add({5e-3, 9e-3, 2.0});
  EXPECT_FALSE(s.has_value());
}

TEST(ClockFilter, RegisterHoldsEightStages) {
  ClockFilter f;
  for (int i = 0; i < 20; ++i)
    f.add({0.0, 1e-3 * (i + 1), static_cast<Seconds>(i)});
  EXPECT_EQ(f.size(), ClockFilter::kStages);
}

TEST(ClockFilter, SpreadMeasuresOffsetRange) {
  ClockFilter f;
  f.add({1e-3, 1e-3, 1.0});
  f.add({4e-3, 2e-3, 2.0});
  EXPECT_DOUBLE_EQ(f.offset_spread(), 3e-3);
}

// --------------------------------------------------------------------- pll
TEST(Pll, SlewsSmallOffsets) {
  Pll pll(PllConfig{});
  const auto u = pll.update(1e-3, 100.0, 64.0);
  EXPECT_EQ(u.action, Pll::Action::kSlewed);
  EXPECT_GT(u.frequency, 0.0);
  EXPECT_EQ(pll.steps(), 0u);
}

TEST(Pll, FrequencyIntegratesOffsets) {
  Pll pll(PllConfig{});
  double freq = 0;
  for (int i = 0; i < 50; ++i)
    freq = pll.update(1e-3, 100.0 + i * 64.0, 64.0).frequency;
  EXPECT_GT(freq, 0.0);
  EXPECT_LE(freq, PllConfig{}.max_freq);
}

TEST(Pll, FrequencyClamped) {
  Pll pll(PllConfig{});
  double freq = 0;
  for (int i = 0; i < 100000; ++i)
    freq = pll.update(0.127, 100.0 + i * 64.0, 64.0).frequency;
  EXPECT_LE(std::fabs(freq), PllConfig{}.max_freq + 1e-12);
}

TEST(Pll, LargeOffsetIgnoredThenStepped) {
  Pll pll(PllConfig{});
  // First big offset: tolerated as a possible spike.
  auto u = pll.update(0.150, 1000.0, 64.0);
  EXPECT_EQ(u.action, Pll::Action::kIgnored);
  // Still large within the stepout window: still ignored.
  u = pll.update(0.150, 1000.0 + 500.0, 64.0);
  EXPECT_EQ(u.action, Pll::Action::kIgnored);
  // Beyond stepout (900 s): step.
  u = pll.update(0.150, 1000.0 + 901.0, 64.0);
  EXPECT_EQ(u.action, Pll::Action::kStepped);
  EXPECT_DOUBLE_EQ(u.step, 0.150);
  EXPECT_EQ(pll.steps(), 1u);
}

TEST(Pll, SpikeStateClearsOnGoodSample) {
  Pll pll(PllConfig{});
  pll.update(0.150, 1000.0, 64.0);           // enter spike state
  const auto u = pll.update(1e-3, 1064.0, 64.0);  // normal sample
  EXPECT_EQ(u.action, Pll::Action::kSlewed);
  // A later large offset restarts the stepout timer.
  const auto v = pll.update(0.150, 1128.0, 64.0);
  EXPECT_EQ(v.action, Pll::Action::kIgnored);
}

// ------------------------------------------------------------------ swntp
TEST(SwNtpClock, InitialSetFromFirstExchange) {
  SyntheticLink link;
  SwNtpClock sw(PllConfig{}, link.config().period);
  const auto ex = link.next();
  sw.process_exchange(ex);
  // Clock lands near the server timescale (true time here).
  const Seconds reading = sw.time(ex.tf);
  EXPECT_NEAR(reading, ex.te + link.config().d_backward, 1e-3);
}

TEST(SwNtpClock, TracksOffsetWithinMilliseconds) {
  SyntheticLink link;
  // 50 PPM tick error, as a real kernel would have.
  SwNtpClock sw(PllConfig{}, link.config().period * 1.00005);
  core::RawExchange last;
  for (int i = 0; i < 2000; ++i) {
    last = link.next();
    sw.process_exchange(last);
  }
  const Seconds true_tf = link.now() - link.config().poll + link.min_rtt();
  EXPECT_NEAR(sw.time(last.tf), true_tf, 5e-3);
}

TEST(SwNtpClock, StepsOnPersistentServerFault) {
  // The contrast with TscNtpClock's sanity check: a >15-minute 150 ms
  // server fault eventually *steps* the SW clock (the reset the paper
  // criticizes).
  SyntheticLink link;
  SwNtpClock sw(PllConfig{}, link.config().period);
  for (int i = 0; i < 500; ++i) sw.process_exchange(link.next());
  EXPECT_EQ(sw.status().steps, 0u);
  for (int i = 0; i < 80; ++i)  // 80 × 16 s = 21 min > stepout
    sw.process_exchange(link.next(0, 0, 0.150));
  EXPECT_GE(sw.status().steps, 1u);
  // And the clock followed the faulty stamps.
  const auto ex = link.next(0, 0, 0.150);
  sw.process_exchange(ex);
  EXPECT_NEAR(sw.time(ex.tf) - (link.now() - link.config().poll), 0.150,
              20e-3);
}

TEST(SwNtpClock, EffectiveRateVariesUnderDiscipline) {
  // The paper's point about SW-NTP: rate is deliberately varied. Feed an
  // alternating offset pattern and observe the effective rate moving.
  SyntheticLink link;
  SwNtpClock sw(PllConfig{}, link.config().period * 1.00002);
  double min_rate = 10.0;
  double max_rate = 0.0;
  for (int i = 0; i < 1000; ++i) {
    sw.process_exchange(link.next(i % 20 < 10 ? 0.0 : 1e-3, 0.0));
    min_rate = std::min(min_rate, sw.effective_rate());
    max_rate = std::max(max_rate, sw.effective_rate());
  }
  EXPECT_GT(max_rate - min_rate, ppm(1.0));  // ≥ 1 PPM of rate wobble
}

TEST(SwNtpClock, StatusCountsSamples) {
  SyntheticLink link;
  SwNtpClock sw(PllConfig{}, link.config().period);
  for (int i = 0; i < 50; ++i) sw.process_exchange(link.next());
  const auto s = sw.status();
  EXPECT_EQ(s.samples, 50u);
  EXPECT_GT(s.filter_selections, 0u);
}

TEST(SwNtpClock, RejectsNonCausalExchange) {
  SyntheticLink link;
  SwNtpClock sw(PllConfig{}, link.config().period);
  core::RawExchange bad = link.next();
  bad.tf = bad.ta;
  EXPECT_THROW(sw.process_exchange(bad), ContractViolation);
}

}  // namespace
}  // namespace tscclock::baseline
