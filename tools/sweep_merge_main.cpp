// sweep-merge: reassemble per-shard sweep result dumps into the exact
// single-process report.
//
//   sweep-merge [--csv OUT --trace FILE ...] DUMP...
//
// Each DUMP is a file written by `sweep --shard I/N --dump-results DUMP`.
// The set is validated as one N-way split of one sweep invocation — same
// format version, same run fingerprint (grid, seed, warm-up, reduction),
// shard indices 1..N each exactly once, every scenario covered exactly once
// — and the reassembled results are printed through the identical reporting
// path, so stdout is byte-identical to the unsharded `sweep` run (pinned by
// golden tests and the CI shard-merge smoke step).
//
// With --csv, the shards' per-exchange trace dumps (--trace, one per dump,
// positionally paired in the same order) are re-interleaved into OUT in
// global grid order — byte-identical to the unsharded run's --csv file —
// and the trailing "per-exchange trace dump" stdout line is reproduced.
//
// Exit status: 0 on success, 1 when any merged cell FAILED (mirroring the
// sweep's own exit contract), 2 on usage errors and on invalid dump sets —
// missing or duplicate shards, version skew, fingerprint mismatches,
// truncated or malformed files.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/time_types.hpp"
#include "sweep/result_io.hpp"
#include "sweep/sweep.hpp"

using namespace tscclock;

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: sweep-merge [options] DUMP...\n"
      "  DUMP               per-shard result dumps written by\n"
      "                     `sweep --shard I/N --dump-results DUMP`;\n"
      "                     all N shards of one sweep, in any order\n"
      "  --csv OUT          re-interleave the shards' --csv trace dumps\n"
      "                     into OUT (byte-identical to the unsharded\n"
      "                     run's trace); requires one --trace per DUMP\n"
      "  --trace FILE       a shard's --csv trace file, paired with the\n"
      "                     DUMP at the same position (repeat per shard)\n"
      "  --help             this text\n"
      "exit status: 0 ok; 1 any FAILED cell; 2 usage or invalid dumps\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_out;
  std::vector<std::string> trace_paths;
  std::vector<std::string> dump_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--csv") {
      csv_out = value();
      if (csv_out.empty()) {
        std::fprintf(stderr, "--csv requires a non-empty path\n");
        return 2;
      }
    } else if (arg == "--trace") {
      trace_paths.push_back(value());
      if (trace_paths.back().empty()) {
        std::fprintf(stderr, "--trace requires a non-empty path\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(2);
    } else {
      dump_paths.push_back(arg);
    }
  }
  if (dump_paths.empty()) {
    std::fprintf(stderr, "no shard dumps given\n");
    usage(2);
  }
  if (!csv_out.empty() && trace_paths.size() != dump_paths.size()) {
    std::fprintf(stderr,
                 "--csv needs one --trace per dump (got %zu traces for %zu "
                 "dumps)\n",
                 trace_paths.size(), dump_paths.size());
    return 2;
  }
  if (csv_out.empty() && !trace_paths.empty()) {
    std::fprintf(stderr, "--trace is only meaningful together with --csv\n");
    return 2;
  }

  sweep::MergedSweep merged;
  try {
    std::vector<sweep::ShardDump> dumps;
    dumps.reserve(dump_paths.size());
    for (const auto& path : dump_paths) {
      dumps.push_back(sweep::read_shard_dump(path));
    }
    merged = sweep::merge_shard_dumps(dumps);
    if (!csv_out.empty()) {
      sweep::merge_trace_csv(merged, dumps, trace_paths, csv_out);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Reprint the unsharded sweep's stdout from the merged results: the same
  // banner arithmetic (hours from the stored duration), the same reporting
  // path, the same trailing trace-dump line.
  print_banner(std::cout,
               strfmt("Scenario sweep: %zu scenarios x %zu estimator(s), "
                      "%.1f simulated hours each, master seed %llu",
                      merged.header.scenario_total,
                      merged.header.estimator_labels.size(),
                      merged.header.duration / duration::kHour,
                      static_cast<unsigned long long>(
                          merged.header.master_seed)));
  print_sweep_report(std::cout, merged.results);
  if (!csv_out.empty()) {
    std::cout << "\nper-exchange trace dump: " << csv_out << "\n";
  }
  for (const auto& r : merged.results) {
    if (r.failed) return 1;
  }
  return 0;
}
