// ntp-collect: poll a live NTP/SNTP server and write the exchanges as a
// relative-only trace file for the sweep's --trace-in axis.
//
//   ntp-collect --server pool.ntp.org --count 64 --interval 4 --out x.trace
//   ntp-collect --mock --count 8 --out x.trace     (offline self-test)
//
// Ta/Tf are CLOCK_MONOTONIC nanosecond counts (nominal_period 1e-9) — the
// collector's raw counter, never the disciplined system clock. Timeouts
// become lost records; replies that fail wire::validate_server_reply are
// refused and the poll retries within its timeout; a kiss-o'-death reply
// aborts the run (RFC 5905). The output declares relative-only ground
// truth: no reference clock exists on a real path, so replaying it yields
// n/a absolute-error columns and populated tracking/ADEV columns.
//
// --mock serves the collection from an in-process loopback SNTP responder
// instead of the network — the CI smoke path: a full collect → validate →
// replay round trip with zero external dependencies.
//
// Exit status: 0 on a completed collection (lost polls included — gaps are
// data); 1 on an aborted one (resolve/socket failure, kiss-o'-death,
// unwritable output); 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "trace/collector.hpp"
#include "trace/sntp_mock.hpp"
#include "trace/trace_io.hpp"

using namespace tscclock;

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: ntp-collect --server HOST[:PORT] --out FILE [options]\n"
      "       ntp-collect --mock --out FILE [options]\n"
      "  --server H[:P]   NTP server to poll (default port 123)\n"
      "  --mock           poll an in-process loopback responder instead of\n"
      "                   the network (offline self-test / CI smoke)\n"
      "  --out FILE       trace file to write (relative-only ground truth)\n"
      "  --count N        polls to attempt              (default 16)\n"
      "  --interval S     seconds between polls         (default 1)\n"
      "  --timeout S      per-poll reply wait           (default 2)\n"
      "  --label STR      provenance note for the trace header\n"
      "  --quiet          suppress per-poll progress lines\n"
      "  --help           this text\n"
      "exit status: 0 collection completed (timeouts become lost records);\n"
      "1 aborted (resolve/socket failure, kiss-o'-death, unwritable\n"
      "output); 2 usage\n");
  std::exit(code);
}

double parse_positive(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(v > 0.0)) {
    std::fprintf(stderr, "invalid value '%s' for %s (want a positive number)\n",
                 text.c_str(), flag.c_str());
    std::exit(2);
  }
  return v;
}

std::uint64_t parse_count(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' ||
      text.find('-') != std::string::npos || v == 0) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (want a positive integer)\n",
                 text.c_str(), flag.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  trace::CollectorOptions options;
  std::string out_path;
  bool mock = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--server") {
      const std::string spec = value();
      const auto colon = spec.rfind(':');
      if (colon != std::string::npos) {
        options.host = spec.substr(0, colon);
        const std::uint64_t port =
            parse_count("--server port", spec.substr(colon + 1));
        if (port > 65535) {
          std::fprintf(stderr, "--server port %llu out of range\n",
                       static_cast<unsigned long long>(port));
          return 2;
        }
        options.port = static_cast<std::uint16_t>(port);
      } else {
        options.host = spec;
      }
      if (options.host.empty()) {
        std::fprintf(stderr, "--server requires a non-empty host\n");
        return 2;
      }
    } else if (arg == "--mock") {
      mock = true;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--count") {
      options.count = static_cast<std::size_t>(parse_count("--count", value()));
    } else if (arg == "--interval") {
      options.interval = parse_positive("--interval", value());
    } else if (arg == "--timeout") {
      options.timeout = parse_positive("--timeout", value());
    } else if (arg == "--label") {
      options.label = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(2);
    }
  }

  if (mock == !options.host.empty()) {
    std::fprintf(stderr, "exactly one of --server or --mock is required\n");
    return 2;
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }

  // The mock lives for the whole collection; the collector talks to it
  // through the same socket path as a real server.
  std::unique_ptr<trace::MockSntpServer> mock_server;
  if (mock) {
    mock_server = std::make_unique<trace::MockSntpServer>();
    if (!mock_server->ok()) {
      std::fprintf(stderr,
                   "mock server unavailable (loopback UDP socket refused)\n");
      return 1;
    }
    options.host = "127.0.0.1";
    options.port = mock_server->port();
    if (options.label.empty()) options.label = "in-process mock responder";
    // A live collection paces real seconds between polls; against the
    // loopback mock that would only slow CI down.
    options.interval = 0.001;
    options.timeout = 1.0;
  }

  try {
    trace::TraceWriter writer(out_path, trace::collector_meta(options));
    const auto report = trace::collect(
        options, writer,
        quiet ? std::function<void(const std::string&)>{}
              : [](const std::string& line) {
                  std::fprintf(stderr, "%s\n", line.c_str());
                });
    writer.close(report.attempted);
    std::printf("%s: %zu polls, %zu replies, %zu lost, %zu refused -> %s\n",
                options.host.c_str(), report.attempted, report.received,
                report.lost, report.refused, out_path.c_str());
  } catch (const trace::CollectorError& e) {
    std::fprintf(stderr, "collection aborted: %s\n", e.what());
    return 1;
  } catch (const trace::TraceIoError& e) {
    std::fprintf(stderr, "trace write failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
