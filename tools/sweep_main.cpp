// sweep: run a grid of synchronization scenarios in parallel and print
// aggregate error/ADEV tables.
//
//   sweep [--servers loc,int,ext] [--envs lab,machine] [--polls 16,64]
//         [--schedules steady,outage,switch,stress] [--duration-hours 24]
//         [--estimators robust,swntp,naive] [--fleet "fleet,fleet(n=16)"]
//         [--seed 42] [--threads 0]
//         [--warmup-s 3600] [--no-wire] [--exact-reduction]
//         [--shard I/N] [--checkpoint FILE] [--dump-results FILE]
//         [--trace-in FILE]... [--trace-out FILE]
//
// Cells reduce with the O(1)-memory streaming sink by default (P2 percentile
// sketch; counts, means, stddevs and ADEV are bit-identical to the exact
// reduction). --exact-reduction restores the buffered sink with exact
// percentiles for runs short enough to afford it.
//
// The default grid is the ISSUE's 3 servers × 2 environments × 2 poll
// periods = 12 scenarios over one simulated day. Named schedule variants
// layer the paper's §6 robustness events on every grid cell:
//   steady  — no events;
//   outage  — a 30-minute connectivity gap at 40% of the trace;
//   switch  — the §6.1 campaign: Server → Loc at 1/3, → Ext at 2/3;
//   stress  — outage + mid-trace switch + a 150 ms server fault window.
//
// --estimators fans every scenario's one exchange stream into the named
// estimator specs (see --list-estimators), grading them head-to-head on
// identical seeds and packets. A spec is a registered family name with
// optional key=value tunables — "robust", "robust(use_local_rate=0)",
// "offline(split=shifts)" — so parameter-ablated variants of one algorithm
// are first-class lanes of the axis; commas inside parentheses do not split
// the list. The `offline` family is the §5.3 two-sided smoother on the
// REPLAY lane: it is scored post-hoc over the recorded trace, so each of
// its estimates uses packets from the future. Its rows measure what
// post-processing can achieve on the identical packets — not what a
// deployable online clock achieves — and it reports steps = 0 and sw = 0
// by construction (nothing to step, no online server-change reaction).
//
// --fleet adds a fleet axis to the grid: each value simulates N clients
// polling the shared server pool through correlated path conditions —
// optionally with shared congestion windows hitting every client and a
// gPTP-style bridge hierarchy (client 0 serves clients 1..N-1 after its
// warm-up). `fleet` (all defaults) is the classic single-client cell and
// keeps its pre-fleet name and seed; see --list-topologies for the
// tunables. Fleet cells pool every client's evaluated samples into the
// summary columns and add population metrics (dispersion, worst-client
// p99, pairwise spread) to the report and the result dumps.
//
// Fleet-scale runs split the grid across processes: --shard I/N runs the
// 1-based I-th round-robin slice of the scenarios (replay lanes stay with
// their owning scenario's recording), --dump-results writes a versioned
// machine-readable result dump, and tools/sweep-merge reassembles N dumps
// into the exact single-process report. --checkpoint makes an interrupted
// shard resumable: committed scenarios are skipped on rerun and the final
// output is bit-identical to an uninterrupted run. See README
// "Fleet-scale sweeps".
//
// --trace-in appends imported trace files (tools/trace-import,
// tools/ntp-collect or a previous --trace-out) as extra grid cells named
// trace:<path>. Imported cells replay through the identical
// ReplaySession/reducer pipeline as the simulated cells and land in the
// same comparison tables, so internet data is graded side by side with the
// synthetic grid; they require replay estimator specs (e.g. offline) and
// are skipped by the by-server/by-environment aggregates. --trace-out
// exports a single-scenario run's recorded exchange stream as a
// reference-bearing trace file replayable via --trace-in. See README
// "Real-trace ingestion".
//
// Exit status: 0 on success, 1 when any grid cell FAILED (or the --csv
// dump, --dump-results dump or --checkpoint stream aborted mid-run), 2 on
// usage errors — including a malformed --shard, a checkpoint that does
// not belong to this invocation, and a --trace-in file that fails
// validation (diagnosed up front, before any scenario runs).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/estimator_spec.hpp"
#include "sweep/sweep.hpp"
#include "trace/trace_io.hpp"

using namespace tscclock;

namespace {

double parse_double(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  // Non-finite values would sail through the downstream range checks
  // (NaN fails every comparison; inf makes the trace unbounded).
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
    std::fprintf(stderr, "invalid number '%s' for %s\n", text.c_str(),
                 flag.c_str());
    std::exit(2);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  // strtoull silently wraps negative input to a huge value.
  if (end == text.c_str() || *end != '\0' ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "invalid integer '%s' for %s\n", text.c_str(),
                 flag.c_str());
    std::exit(2);
  }
  return v;
}

std::vector<std::string> split_csv(const std::string& flag,
                                   const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) out.push_back(item);
  // getline never yields the final empty field of "a," (the stream ends at
  // the delimiter), so a trailing comma — like an empty input — must be
  // materialized by hand to be caught below.
  if (text.empty() || text.back() == ',') out.push_back("");
  for (const auto& entry : out) {
    // An empty item is always a typo ("robust,,naive", a trailing comma):
    // silently dropping it would run a different grid than the user asked
    // for. Usage error, like every other malformed value.
    if (entry.empty()) {
      std::fprintf(stderr, "empty item in %s list '%s'\n", flag.c_str(),
                   text.c_str());
      std::exit(2);
    }
  }
  return out;
}

sim::ServerKind parse_server(const std::string& name) {
  if (name == "loc") return sim::ServerKind::kLoc;
  if (name == "int") return sim::ServerKind::kInt;
  if (name == "ext") return sim::ServerKind::kExt;
  std::fprintf(stderr, "unknown server '%s' (expected loc|int|ext)\n",
               name.c_str());
  std::exit(2);
}

sim::Environment parse_environment(const std::string& name) {
  if (name == "lab") return sim::Environment::kLaboratory;
  if (name == "machine") return sim::Environment::kMachineRoom;
  std::fprintf(stderr, "unknown environment '%s' (expected lab|machine)\n",
               name.c_str());
  std::exit(2);
}

/// Parse the --estimators value into validated specs. Any malformed spec —
/// unbalanced parens, unknown family, unknown/duplicated keys, empty values
/// or list items — is a usage error (exit 2) with the registry's precise
/// message, never a silent drop.
std::vector<harness::EstimatorSpec> parse_estimator_specs_or_die(
    const std::string& text) {
  try {
    return harness::estimator_registry().parse_list(text);
  } catch (const harness::EstimatorSpecError& e) {
    std::fprintf(stderr, "%s (see --list-estimators)\n", e.what());
    std::exit(2);
  }
}

[[noreturn]] void list_estimators() {
  const auto& registry = harness::estimator_registry();
  TablePrinter table({"estimator", "lane", "description"});
  for (const auto* family : registry.families()) {
    table.add_row({family->name, family->replay ? "replay" : "online",
                   family->description});
  }
  table.print(std::cout);

  print_banner(std::cout,
               "Tunable keys (spec syntax: family(key=value,...))");
  TablePrinter tunables({"estimator", "key", "type", "default",
                         "description"});
  for (const auto* family : registry.families()) {
    for (const auto& t : family->tunables) {
      std::string type;
      switch (t.type) {
        case harness::TunableType::kBool:
          type = "bool";
          break;
        case harness::TunableType::kDouble:
          type = "double";
          break;
        case harness::TunableType::kChoice: {
          for (const auto& choice : t.choices) {
            if (!type.empty()) type += "|";
            type += choice;
          }
          break;
        }
      }
      tunables.add_row(
          {family->name, t.key, type, t.default_value, t.description});
    }
  }
  tunables.print(std::cout);
  std::cout << "\nexample: --estimators "
               "\"robust,robust(use_local_rate=0),offline(split=shifts)\"\n";
  std::exit(0);
}

/// Parse the --fleet value into validated fleet specs. Malformed shapes —
/// unbalanced parens, unknown/duplicate keys, out-of-range n, empty items,
/// duplicate specs — are usage errors (exit 2) with the parser's precise
/// message.
std::vector<sweep::FleetSpec> parse_fleet_specs_or_die(
    const std::string& text) {
  try {
    return sweep::parse_fleet_specs(text);
  } catch (const sweep::SweepUsageError& e) {
    std::fprintf(stderr, "%s (see --list-topologies)\n", e.what());
    std::exit(2);
  }
}

[[noreturn]] void list_topologies() {
  const sim::FleetConfig defaults;
  TablePrinter table({"key", "type", "default", "description"});
  table.add_row({"n", "int [1,1024]", strfmt("%zu", defaults.n_clients),
                 "clients per cell; client k's scenario seed is derived "
                 "from the cell seed and k (client 0 keeps the cell seed "
                 "verbatim)"});
  table.add_row({"shared_congestion", "0|1",
                 defaults.shared_congestion ? "1" : "0",
                 "overlay three fleet-wide congestion windows (every "
                 "client's delays rise together) plus a per-client private "
                 "asymmetric delay shift"});
  table.add_row({"hierarchy", "0|1", defaults.hierarchy ? "1" : "0",
                 "client 0 is a bridge: clients 1..n-1 sync to its served "
                 "clock (master->bridge->slave) and lose every poll before "
                 "bridge_warmup"});
  table.add_row({"bridge_warmup", "seconds >= 0",
                 strfmt("%g", defaults.bridge_warmup),
                 "when the bridge starts serving time (hierarchy=1 only)"});
  table.print(std::cout);
  std::cout <<
      "\nspec syntax: fleet[(key=value,...)] - comma-separate multiple specs"
      "\n  fleet                 the classic single-client cell (default "
      "axis);\n                        keeps its pre-fleet name and seed\n"
      "  fleet(n=16)           16 independent clients, same path "
      "conditions\n"
      "  fleet(n=8,shared_congestion=1,hierarchy=1,bridge_warmup=600)\n"
      "non-single values suffix the scenario name with /fleet(...) - the "
      "seed\nderives from that identity, so adding fleet values never "
      "reseeds\nexisting cells. Replay estimators (offline) cannot score "
      "multi-client\ncells: a fleet trace mixes clients.\n"
      "example: --fleet \"fleet,fleet(n=16),fleet(n=8,hierarchy=1)\"\n";
  std::exit(0);
}

/// Build one of the named schedule variants, with event times placed
/// relative to the trace duration.
sweep::ScheduleVariant make_schedule(const std::string& name,
                                     Seconds duration) {
  sweep::ScheduleVariant variant;
  variant.name = name;
  if (name == "steady") return variant;
  if (name == "outage") {
    variant.events.add_outage(0.4 * duration,
                              0.4 * duration + 30 * duration::kMinute);
    return variant;
  }
  if (name == "switch") {
    variant.server_switches = {
        {duration / 3, sim::ServerKind::kLoc},
        {2 * duration / 3, sim::ServerKind::kExt},
    };
    return variant;
  }
  if (name == "stress") {
    variant.events.add_outage(0.25 * duration,
                              0.25 * duration + 20 * duration::kMinute);
    variant.events.add_server_fault(0.55 * duration,
                                    0.55 * duration + 10 * duration::kMinute,
                                    150 * duration::kMillisecond);
    variant.server_switches = {{duration / 2, sim::ServerKind::kLoc}};
    return variant;
  }
  std::fprintf(stderr,
               "unknown schedule '%s' (expected steady|outage|switch|stress)\n",
               name.c_str());
  std::exit(2);
}

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: sweep [options]\n"
      "  --servers LIST     comma list of loc,int,ext      (default all)\n"
      "  --envs LIST        comma list of lab,machine      (default both)\n"
      "  --polls LIST       poll periods in seconds        (default 16,64)\n"
      "  --schedules LIST   steady,outage,switch,stress    (default steady)\n"
      "  --estimators LIST  estimator specs to grade head-to-head on each\n"
      "                     scenario's one exchange stream (default robust).\n"
      "                     A spec is family[(key=value,...)] - tunables\n"
      "                     with defaults per family, see --list-estimators.\n"
      "                     e.g. robust,robust(use_local_rate=0),offline\n"
      "                     Ablated variants share each scenario's seed and\n"
      "                     packets with every other lane by construction.\n"
      "                     'offline' is the s5.3 smoother replayed\n"
      "                     NON-CAUSALLY over the recorded trace: it sees\n"
      "                     future packets, so its rows bound\n"
      "                     post-processing, not online performance;\n"
      "                     offline(split=shifts) cuts the trace at detected\n"
      "                     level shifts before smoothing each segment\n"
      "  --fleet LIST       fleet-axis specs fleet[(key=value,...)] with\n"
      "                     keys n, shared_congestion, hierarchy,\n"
      "                     bridge_warmup - see --list-topologies. Each\n"
      "                     non-single value simulates its n clients per\n"
      "                     grid cell (correlated paths, optional bridge\n"
      "                     hierarchy), pools their samples into the\n"
      "                     summary columns and adds fleet dispersion /\n"
      "                     worst-client p99 / pairwise spread metrics.\n"
      "                     'fleet' alone is the classic single-client\n"
      "                     cell (default). Replay estimators cannot score\n"
      "                     multi-client cells.\n"
      "  --duration-hours H simulated hours per scenario   (default 24)\n"
      "  --seed N           master seed                    (default 42)\n"
      "  --threads N        worker threads, 0 = all cores  (default 0)\n"
      "  --warmup-s S       discard first S seconds        (default 3600)\n"
      "  --no-wire          skip the NTP wire-format round trip\n"
      "  --check-wire       assert, for every produced stamp, that the\n"
      "                     algebraic wire quantization equals a real packet\n"
      "                     encode/decode round trip (slow; results are\n"
      "                     bit-identical with or without the flag, so it\n"
      "                     composes with --checkpoint/--shard artifacts)\n"
      "  --exact-reduction  buffer each cell's evaluated series for exact\n"
      "                     percentiles (default: O(1)-memory streaming\n"
      "                     reduction with a P2 percentile sketch;\n"
      "                     counts/means/stddevs/ADEV identical either way)\n"
      "  --streaming-reduction  the (now default) streaming reduction;\n"
      "                     kept for script compatibility\n"
      "  --csv PATH         dump every cell's per-exchange trace to a CSV\n"
      "                     file (grid order; lost/warm-up rows flagged)\n"
      "  --shard I/N        run only the I-th of N round-robin scenario\n"
      "                     slices (1-based, 1 <= I <= N); pair with\n"
      "                     --dump-results and merge the N dumps with\n"
      "                     sweep-merge to recover the exact single-process\n"
      "                     report\n"
      "  --dump-results F   write this run's results to F as a versioned\n"
      "                     machine-readable shard dump for sweep-merge\n"
      "  --checkpoint F     append each completed scenario to F; rerunning\n"
      "                     the identical command resumes, skipping the\n"
      "                     committed prefix, with bit-identical output\n"
      "  --trace-in PATH    append an imported trace file (trace-import,\n"
      "                     ntp-collect or a previous --trace-out) as an\n"
      "                     extra grid cell named trace:PATH, replayed\n"
      "                     through the identical pipeline into the same\n"
      "                     comparison tables; repeatable. Requires replay\n"
      "                     estimator specs (e.g. --estimators offline);\n"
      "                     malformed files are refused up front (exit 2)\n"
      "                     with the validator's message. Relative-only\n"
      "                     traces (no ground truth) report n/a absolute\n"
      "                     error columns and populated tracking/ADEV\n"
      "                     columns, suffixed (rel)\n"
      "  --trace-out PATH   export the run's recorded exchange stream as a\n"
      "                     reference-bearing trace file replayable via\n"
      "                     --trace-in (single-scenario single-client runs\n"
      "                     only - a trace holds one client's stream)\n"
      "  --list-estimators  list the available estimators and exit\n"
      "  --list-topologies  list the fleet-axis tunables and exit\n"
      "  --help             this text\n"
      "exit status: 0 ok; 1 any FAILED cell or aborted --csv/--dump-results/\n"
      "--checkpoint artifact; 2 usage (incl. malformed --trace-in files)\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::GridSpec grid;
  sweep::SweepOptions options;
  // The CLI defaults to the streaming reduction (month-scale sweeps must not
  // buffer every exchange); the library default stays exact so programmatic
  // consumers keep exact percentiles unless they opt out.
  options.streaming_reduction = true;
  std::vector<std::string> schedule_names = {"steady"};
  std::vector<harness::EstimatorSpec> estimator_specs = {
      harness::EstimatorSpec{"robust", {}}};
  double duration_hours = 24.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--list-estimators") list_estimators();
    else if (arg == "--list-topologies") list_topologies();
    else if (arg == "--servers") {
      grid.servers.clear();
      for (const auto& s : split_csv(arg, value()))
        grid.servers.push_back(parse_server(s));
    } else if (arg == "--envs") {
      grid.environments.clear();
      for (const auto& e : split_csv(arg, value()))
        grid.environments.push_back(parse_environment(e));
    } else if (arg == "--polls") {
      grid.poll_periods.clear();
      for (const auto& p : split_csv(arg, value()))
        grid.poll_periods.push_back(parse_double("--polls", p));
    } else if (arg == "--schedules") {
      schedule_names = split_csv(arg, value());
    } else if (arg == "--estimators") {
      estimator_specs = parse_estimator_specs_or_die(value());
    } else if (arg == "--fleet") {
      grid.fleets = parse_fleet_specs_or_die(value());
    } else if (arg == "--streaming-reduction") {
      options.streaming_reduction = true;  // the default; kept for scripts
    } else if (arg == "--exact-reduction") {
      options.streaming_reduction = false;
    } else if (arg == "--duration-hours") {
      duration_hours = parse_double("--duration-hours", value());
    } else if (arg == "--seed") {
      grid.master_seed = parse_u64("--seed", value());
    } else if (arg == "--threads") {
      const std::uint64_t threads = parse_u64("--threads", value());
      if (threads > 4096) {
        std::fprintf(stderr, "--threads must be in [0, 4096] (0 = all cores)\n");
        return 2;
      }
      options.threads = static_cast<std::size_t>(threads);
    } else if (arg == "--warmup-s") {
      options.discard_warmup = parse_double("--warmup-s", value());
    } else if (arg == "--no-wire") {
      grid.use_wire_format = false;
    } else if (arg == "--check-wire") {
      grid.check_wire = true;
    } else if (arg == "--csv") {
      options.csv_path = value();
      if (options.csv_path.empty()) {
        std::fprintf(stderr, "--csv requires a non-empty path\n");
        return 2;
      }
    } else if (arg == "--shard") {
      try {
        options.shard = sweep::parse_shard(value());
      } catch (const sweep::SweepUsageError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = value();
      if (options.checkpoint_path.empty()) {
        std::fprintf(stderr, "--checkpoint requires a non-empty path\n");
        return 2;
      }
    } else if (arg == "--dump-results") {
      options.dump_path = value();
      if (options.dump_path.empty()) {
        std::fprintf(stderr, "--dump-results requires a non-empty path\n");
        return 2;
      }
    } else if (arg == "--trace-in") {
      const std::string path = value();
      if (path.empty()) {
        std::fprintf(stderr, "--trace-in requires a non-empty path\n");
        return 2;
      }
      // A duplicate path would collapse two cells onto one scenario name
      // (and expand_grid asserts on the collision); refuse it here with a
      // usage error instead.
      if (std::find(grid.trace_inputs.begin(), grid.trace_inputs.end(),
                    path) != grid.trace_inputs.end()) {
        std::fprintf(stderr, "duplicate --trace-in path '%s'\n", path.c_str());
        return 2;
      }
      grid.trace_inputs.push_back(path);
    } else if (arg == "--trace-out") {
      options.trace_out = value();
      if (options.trace_out.empty()) {
        std::fprintf(stderr, "--trace-out requires a non-empty path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(2);
    }
  }

  if (grid.servers.empty() || grid.environments.empty() ||
      grid.poll_periods.empty() || schedule_names.empty() ||
      estimator_specs.empty()) {
    std::fprintf(stderr,
                 "--servers/--envs/--polls/--schedules/--estimators must not "
                 "be empty\n");
    return 2;
  }
  // Duplicate axis values would collapse two grid cells onto one scenario
  // name and therefore one RNG seed; reject them up front.
  const auto has_duplicates = [](auto values) {
    std::sort(values.begin(), values.end());
    return std::adjacent_find(values.begin(), values.end()) != values.end();
  };
  // Poll periods collide on their *formatted* form (the scenario-name
  // identity uses %g), so near-equal values must be rejected too; estimator
  // specs collide on their *canonical* label, so "robust" and "robust()"
  // (or any default-valued override) are the same lane.
  std::vector<std::string> poll_names;
  for (const auto poll : grid.poll_periods)
    poll_names.push_back(strfmt("%g", poll));
  std::vector<std::string> estimator_labels;
  for (const auto& spec : estimator_specs)
    estimator_labels.push_back(spec.label());
  if (has_duplicates(grid.servers) || has_duplicates(grid.environments) ||
      has_duplicates(poll_names) || has_duplicates(schedule_names) ||
      has_duplicates(estimator_labels)) {
    std::fprintf(stderr,
                 "--servers/--envs/--polls/--schedules/--estimators entries "
                 "must be unique\n");
    return 2;
  }
  // Replay estimators score a recorded single-client trace; a multi-client
  // fleet cell has no such trace (it would mix clients, which ReplaySession
  // refuses). Catch the combination before any work runs instead of failing
  // every fleet cell.
  const bool any_multi_fleet =
      std::any_of(grid.fleets.begin(), grid.fleets.end(),
                  [](const sweep::FleetSpec& f) { return !f.single(); });
  if (any_multi_fleet) {
    for (const auto& spec : estimator_specs) {
      if (harness::estimator_registry().is_replay(spec)) {
        std::fprintf(stderr,
                     "estimator '%s' replays a recorded single-client trace "
                     "and cannot score multi-client fleet cells - drop the "
                     "fleet(...) value or the replay spec\n",
                     spec.label().c_str());
        return 2;
      }
    }
  }
  // Online estimators run inside the drive loop and cannot score an
  // imported trace cell — --trace-in files carry a finished exchange stream
  // that only the replay lane (e.g. offline) can grade. Catch the
  // combination before any work runs instead of failing every trace cell.
  if (!grid.trace_inputs.empty()) {
    for (const auto& spec : estimator_specs) {
      if (!harness::estimator_registry().is_replay(spec)) {
        std::fprintf(stderr,
                     "estimator '%s' runs online and cannot score imported "
                     "--trace-in cells - score traces with replay specs "
                     "(e.g. --estimators offline)\n",
                     spec.label().c_str());
        return 2;
      }
    }
    // Validate every trace file up front: a malformed file is a usage
    // error diagnosed with the reader's precise message, not a FAILED cell
    // discovered after the simulated grid already ran.
    for (const auto& path : grid.trace_inputs) {
      try {
        trace::read_trace(path);
      } catch (const trace::TraceIoError& e) {
        std::fprintf(stderr, "--trace-in %s: %s\n", path.c_str(), e.what());
        return 2;
      }
    }
  }
  if (duration_hours <= 0.0) {
    std::fprintf(stderr, "--duration-hours must be positive\n");
    return 2;
  }
  grid.duration = duration_hours * duration::kHour;
  if (options.discard_warmup < 0.0) {
    std::fprintf(stderr, "--warmup-s must be non-negative\n");
    return 2;
  }
  if (options.discard_warmup >= grid.duration) {
    std::fprintf(stderr,
                 "--warmup-s (%g) must be below the scenario duration (%g s)\n",
                 options.discard_warmup, grid.duration);
    return 2;
  }
  for (const auto poll : grid.poll_periods) {
    if (poll < sweep::kMinPollPeriod) {
      std::fprintf(stderr,
                   "--polls entries must be >= %g s (the simulated paths "
                   "have ms-scale heavy-tailed delays)\n",
                   sweep::kMinPollPeriod);
      return 2;
    }
  }
  grid.schedules.clear();
  for (const auto& name : schedule_names)
    grid.schedules.push_back(make_schedule(name, grid.duration));
  grid.estimators = estimator_specs;

  sweep::ScenarioSweep engine(grid);
  // The hours figure is recomputed from the stored duration (not the parsed
  // flag) so sweep-merge — which only sees the dump header's duration —
  // reprints a byte-identical banner for the unsharded shape.
  if (options.shard.whole()) {
    print_banner(std::cout,
                 strfmt("Scenario sweep: %zu scenarios x %zu estimator(s), "
                        "%.1f simulated hours each, master seed %llu",
                        engine.scenarios().size(), grid.estimators.size(),
                        grid.duration / duration::kHour,
                        static_cast<unsigned long long>(grid.master_seed)));
  } else {
    const std::size_t owned =
        sweep::shard_scenarios(engine.scenarios().size(), options.shard)
            .size();
    print_banner(
        std::cout,
        strfmt("Scenario sweep shard %s: %zu of %zu scenarios x %zu "
               "estimator(s), %.1f simulated hours each, master seed %llu",
               options.shard.label().c_str(), owned,
               engine.scenarios().size(), grid.estimators.size(),
               grid.duration / duration::kHour,
               static_cast<unsigned long long>(grid.master_seed)));
  }

  std::vector<sweep::ScenarioResult> results;
  try {
    results = engine.run(options);
  } catch (const sweep::SweepUsageError& e) {
    // Incompatible checkpoint (wrong grid/options/shard, or a trace CSV
    // that no longer matches the committed watermark): refused before any
    // scenario ran.
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    // Per-scenario failures are contained in their grid cell and mid-run
    // artifact failures are reported via the engine's error accessors; only
    // setup errors (e.g. an unwritable --csv path, caught before any work
    // runs) reach here.
    std::fprintf(stderr, "sweep failed: %s\n", e.what());
    return 2;
  }
  print_sweep_report(std::cout, results);
  bool artifact_failed = false;
  if (!options.csv_path.empty()) {
    if (engine.csv_error().empty()) {
      std::cout << "\nper-exchange trace dump: " << options.csv_path << "\n";
    } else {
      std::fprintf(stderr, "trace dump to %s failed (file incomplete): %s\n",
                   options.csv_path.c_str(), engine.csv_error().c_str());
      artifact_failed = true;
    }
  }
  if (!options.checkpoint_path.empty() && !engine.checkpoint_error().empty()) {
    std::fprintf(stderr,
                 "checkpoint %s stopped mid-run (committed prefix intact): "
                 "%s\n",
                 options.checkpoint_path.c_str(),
                 engine.checkpoint_error().c_str());
    artifact_failed = true;
  }
  if (!options.dump_path.empty() && !engine.dump_error().empty()) {
    std::fprintf(stderr,
                 "result dump to %s failed (file unusable for sweep-merge): "
                 "%s\n",
                 options.dump_path.c_str(), engine.dump_error().c_str());
    artifact_failed = true;
  }
  if (artifact_failed) return 1;
  // A FAILED cell must fail the invocation (CI and scripts key off the exit
  // status, not the table text) — including one loaded from a checkpoint's
  // committed prefix on a resume.
  for (const auto& r : results) {
    if (r.failed) return 1;
  }
  return 0;
}
