// trace-import: validate and canonicalize trace files for the replay
// pipeline.
//
//   trace-import --validate FILE          validate only, report findings
//   trace-import --in FILE --out FILE     validate + rewrite canonically
//
// Validation runs the same reader (trace/trace_io.hpp) the sweep's
// --trace-in axis uses, so a file that passes here replays there — the
// single source of truth for what a well-formed trace is. Canonicalizing
// re-emits the parsed records through the writer: field escaping and
// hexfloat rendering are normalized while every numeric value stays
// bit-identical, so a canonicalized trace replays byte-identically to its
// source.
//
// Exit status: 0 on a clean file; 1 when the file is well-formed but drew
// warnings (one line per warning, naming the offending record); 2 on a
// malformed file (one-line diagnostic naming the offending record or
// header line) or a usage error.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/trace_io.hpp"

using namespace tscclock;

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: trace-import --validate FILE\n"
      "       trace-import --in FILE --out FILE\n"
      "  --validate FILE  parse FILE with the sweep's --trace-in reader and\n"
      "                   report: silent on a clean file, one line per\n"
      "                   warning, a one-line diagnostic on malformed input\n"
      "  --in FILE        source trace to canonicalize\n"
      "  --out FILE       rewrite the validated trace canonically (escaping\n"
      "                   and hexfloat rendering normalized, every value\n"
      "                   bit-identical; replays byte-identically)\n"
      "  --help           this text\n"
      "exit status: 0 clean; 1 warnings; 2 malformed file or usage\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string validate_path;
  std::string in_path;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--validate") validate_path = value();
    else if (arg == "--in") in_path = value();
    else if (arg == "--out") out_path = value();
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(2);
    }
  }

  const bool validate_mode = !validate_path.empty();
  const bool convert_mode = !in_path.empty() || !out_path.empty();
  if (validate_mode == convert_mode) {
    std::fprintf(stderr,
                 "exactly one mode required: --validate FILE, or "
                 "--in FILE --out FILE\n");
    usage(2);
  }
  if (convert_mode && (in_path.empty() || out_path.empty())) {
    std::fprintf(stderr, "--in and --out must be given together\n");
    usage(2);
  }

  const std::string& source = validate_mode ? validate_path : in_path;
  trace::ReadTrace loaded;
  try {
    loaded = trace::read_trace(source);
  } catch (const trace::TraceIoError& e) {
    std::fprintf(stderr, "%s: %s\n", source.c_str(), e.what());
    return 2;
  }
  for (const auto& warning : loaded.warnings)
    std::fprintf(stderr, "%s: warning: %s\n", source.c_str(), warning.c_str());

  if (convert_mode) {
    try {
      trace::write_trace(out_path, loaded.meta, loaded.trace);
    } catch (const trace::TraceIoError& e) {
      std::fprintf(stderr, "%s: %s\n", out_path.c_str(), e.what());
      return 2;
    }
    std::printf("%s: %zu exchanges (%zu lost) -> %s\n", source.c_str(),
                loaded.trace.exchanges, loaded.trace.lost, out_path.c_str());
  } else {
    std::printf(
        "%s: ok - %zu exchanges (%zu lost), %s ground truth%s\n",
        source.c_str(), loaded.trace.exchanges, loaded.trace.lost,
        loaded.meta.mode == harness::GroundTruthMode::kReference
            ? "reference"
            : "relative-only",
        loaded.warnings.empty() ? "" : ", with warnings");
  }
  return loaded.warnings.empty() ? 0 : 1;
}
