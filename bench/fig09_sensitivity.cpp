// Figure 9: sensitivity of the offset error percentiles (1/25/50/75/99) to
// the three key parameters, on the same multi-day MR-Int trace family:
//   (a) SKM window size τ'/τ* in [1/16, 4], with and without local rate
//       (E = 4δ, τ̄ = 20τ*);
//   (b) quality scale E/δ in [1, 20] (τ' = τ*/2);
//   (c) polling period 16..512 s (τ' = τ*, E = 4δ).
// The paper's finding: very low sensitivity everywhere; the optimum sits
// near τ' ≈ τ*, small multiples of δ, and survives a 32× reduction in
// polling information with a median change of only a few µs.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

PercentileSummary run_once(double days, Seconds poll, double tau_prime_frac,
                           double e_over_delta, bool local_rate,
                           double tau_bar_mult) {
  sim::ScenarioConfig scenario;
  scenario.duration = days * duration::kDay;
  scenario.poll_period = poll;
  scenario.seed = 909;  // same trace family across the sweep
  sim::Testbed testbed(scenario);

  core::Params params;
  params.poll_period = poll;
  params.offset_window = tau_prime_frac * params.skm_scale;
  params.offset_quality = e_over_delta * params.delta;
  params.use_local_rate = local_rate;
  params.local_rate_window = tau_bar_mult * params.skm_scale;
  params.shift_window = params.local_rate_window / 2;
  params.gap_threshold = params.local_rate_window / 2;
  // Keep the cross-field invariant for very large τ̄.
  if (params.top_window < params.local_rate_window)
    params.top_window = 2 * params.local_rate_window;

  auto run = bench::run_clock(testbed, params,
                              /*discard_warmup_s=*/3 * duration::kHour);
  return percentile_summary(bench::offset_errors(run));
}

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 5.0;

  // ---- (a) window size τ'/τ* ------------------------------------------
  print_banner(std::cout,
               "Figure 9(a): sensitivity to window size tau'/tau*");
  {
    TablePrinter table(percentile_headers("tau'/tau* (local rate)"));
    const double fracs[] = {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4};
    for (bool local : {false, true}) {
      for (double f : fracs) {
        const auto s = run_once(days, 16.0, f, 4.0, local, 20.0);
        table.add_row(percentile_row_us(
            strfmt("%-6.4g (%s)", f, local ? "with" : "none"), s));
      }
    }
    table.print(std::cout);
    print_comparison(std::cout, "sensitivity across 64x window range",
                     "median varies by only ~10 us; optimum near tau'=tau*",
                     "see median column above");
  }

  // ---- (b) quality scale E/δ -------------------------------------------
  print_banner(std::cout, "Figure 9(b): sensitivity to quality scale E/delta");
  {
    TablePrinter table(percentile_headers("E/delta (local rate)"));
    const double es[] = {1, 2, 3, 4, 7, 10, 20};
    for (bool local : {false, true}) {
      for (double e : es) {
        const auto s = run_once(days, 16.0, 0.5, e, local, 20.0);
        table.add_row(percentile_row_us(
            strfmt("%-4.3g (%s)", e, local ? "with" : "none"), s));
      }
    }
    table.print(std::cout);
    print_comparison(std::cout, "optimum",
                     "small multiples of delta, very flat", "see above");
  }

  // ---- (c) polling period ----------------------------------------------
  print_banner(std::cout, "Figure 9(c): sensitivity to polling period");
  {
    TablePrinter table(percentile_headers("poll [s]"));
    double median_16 = 0;
    double median_512 = 0;
    for (double poll : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
      const auto s = run_once(days, poll, 1.0, 4.0, false, 5.0);
      table.add_row(percentile_row_us(strfmt("%.0f", poll), s));
      if (poll == 16.0) median_16 = s.p50;
      if (poll == 512.0) median_512 = s.p50;
    }
    table.print(std::cout);
    print_comparison(
        std::cout, "median change across 32x less information",
        "a few microseconds",
        strfmt("%.1f us", std::abs(median_16 - median_512) * 1e6));
  }
  return 0;
}
