// Extension experiment (the paper's stated future work, §2.3): using the
// server identity carried in NTP replies for route/level-shift handling.
// The campaign trace switches ServerInt → ServerExt mid-run (+13 ms minimum
// RTT). Without identity tracking this looks like a huge upward level
// shift: every packet is mis-rated as congested until the Ts-deep detector
// fires. With identity tracking the clock restarts its RTT filter at the
// switch and quality assessment is correct immediately.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct Outcome {
  PercentileSummary post_switch_err;
  double weighted_fraction = 0;  ///< post-switch packets on the weighted path
  std::uint64_t upshifts = 0;
  std::uint64_t server_changes = 0;
};

Outcome run(bool use_identity) {
  sim::ScenarioConfig scenario;
  scenario.duration = 8 * duration::kHour;
  scenario.seed = 5656;
  scenario.server_switches.push_back(
      {4 * duration::kHour, sim::ServerKind::kExt});
  sim::Testbed testbed(scenario);

  core::Params params;
  params.poll_period = scenario.poll_period;
  // The identity → notify_server_change() wiring is the harness's: the
  // ablation simply turns it off to expose the unassisted level-shift path.
  auto config = bench::session_config(params);
  config.track_server_changes = use_identity;
  harness::ClockSession session(config, testbed.nominal_period());

  Outcome out;
  std::vector<double> errs;
  std::size_t weighted = 0;
  std::size_t total = 0;
  harness::CallbackSink post_switch([&](const harness::SampleRecord& rec) {
    if (rec.truth_tb > 4 * duration::kHour + 300) {
      ++total;
      if (rec.report.offset_weighted) ++weighted;
      errs.push_back(rec.offset_error);
    }
  });
  session.add_sink(post_switch);
  const auto& summary = session.run(testbed);

  out.post_switch_err = percentile_summary(errs);
  out.weighted_fraction =
      static_cast<double>(weighted) / static_cast<double>(total);
  out.upshifts = summary.final_status.upshifts;
  out.server_changes = summary.final_status.server_changes;
  return out;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Extension: server-identity tracking across a server switch "
               "(ServerInt -> ServerExt, +13 ms RTT)");
  const auto with = run(true);
  const auto without = run(false);

  TablePrinter table({"variant", "median err [us]", "IQR [us]",
                      "weighted-path %", "upshift detections",
                      "server changes"});
  table.add_row({"with identity tracking",
                 strfmt("%+.1f", with.post_switch_err.p50 * 1e6),
                 strfmt("%.1f", with.post_switch_err.iqr() * 1e6),
                 strfmt("%.1f%%", 100 * with.weighted_fraction),
                 format_count(with.upshifts),
                 format_count(with.server_changes)});
  table.add_row(
      {"without (RTT level shift only)",
       strfmt("%+.1f", without.post_switch_err.p50 * 1e6),
       strfmt("%.1f", without.post_switch_err.iqr() * 1e6),
       strfmt("%.1f%%", 100 * without.weighted_fraction),
       format_count(without.upshifts), format_count(without.server_changes)});
  table.print(std::cout);

  print_comparison(std::cout, "post-switch median",
                   "~ -Delta_Ext/2 = -250 us either way (asymmetry is "
                   "physical)",
                   strfmt("%+.1f / %+.1f us",
                          with.post_switch_err.p50 * 1e6,
                          without.post_switch_err.p50 * 1e6));
  std::cout << "Identity tracking restores correct quality assessment\n"
               "immediately; without it the +13 ms jump must wait for the\n"
               "Ts-deep upward-shift detector while packets are mis-rated.\n";
  return 0;
}
