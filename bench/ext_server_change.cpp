// Extension experiment (the paper's stated future work, §2.3): using the
// server identity carried in NTP replies for route/level-shift handling.
// The campaign trace switches ServerInt → ServerExt mid-run (+13 ms minimum
// RTT). Without identity tracking this looks like a huge upward level
// shift: every packet is mis-rated as congested until the Ts-deep detector
// fires. With identity tracking the clock restarts its RTT filter at the
// switch and quality assessment is correct immediately.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/server_change.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct Outcome {
  PercentileSummary post_switch_err;
  double weighted_fraction = 0;  ///< post-switch packets on the weighted path
  std::uint64_t upshifts = 0;
  std::uint64_t server_changes = 0;
};

Outcome run(bool use_identity) {
  sim::ScenarioConfig scenario;
  scenario.duration = 8 * duration::kHour;
  scenario.seed = 5656;
  scenario.server_switches.push_back(
      {4 * duration::kHour, sim::ServerKind::kExt});
  sim::Testbed testbed(scenario);

  core::Params params;
  params.poll_period = scenario.poll_period;
  core::TscNtpClock clock(params, testbed.nominal_period());
  core::ServerChangeDetector detector;

  Outcome out;
  std::vector<double> errs;
  std::size_t weighted = 0;
  std::size_t total = 0;
  std::uint64_t idx = 0;
  while (auto ex = testbed.next()) {
    if (ex->lost) continue;
    if (use_identity &&
        detector.observe({ex->server_id, ex->server_stratum}, idx++))
      clock.notify_server_change();
    const auto report = clock.process_exchange(
        {ex->ta_counts, ex->tb_stamp, ex->te_stamp, ex->tf_counts});
    if (!ex->ref_available) continue;
    if (ex->truth.tb > 4 * duration::kHour + 300) {
      ++total;
      if (report.offset_weighted) ++weighted;
      const double theta_g =
          clock.uncorrected_time(ex->tf_counts) - ex->tg;
      errs.push_back(report.offset_estimate - theta_g);
    }
  }
  out.post_switch_err = percentile_summary(errs);
  out.weighted_fraction =
      static_cast<double>(weighted) / static_cast<double>(total);
  out.upshifts = clock.status().upshifts;
  out.server_changes = clock.status().server_changes;
  return out;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Extension: server-identity tracking across a server switch "
               "(ServerInt -> ServerExt, +13 ms RTT)");
  const auto with = run(true);
  const auto without = run(false);

  TablePrinter table({"variant", "median err [us]", "IQR [us]",
                      "weighted-path %", "upshift detections",
                      "server changes"});
  table.add_row({"with identity tracking",
                 strfmt("%+.1f", with.post_switch_err.p50 * 1e6),
                 strfmt("%.1f", with.post_switch_err.iqr() * 1e6),
                 strfmt("%.1f%%", 100 * with.weighted_fraction),
                 strfmt("%llu", static_cast<unsigned long long>(with.upshifts)),
                 strfmt("%llu",
                        static_cast<unsigned long long>(with.server_changes))});
  table.add_row(
      {"without (RTT level shift only)",
       strfmt("%+.1f", without.post_switch_err.p50 * 1e6),
       strfmt("%.1f", without.post_switch_err.iqr() * 1e6),
       strfmt("%.1f%%", 100 * without.weighted_fraction),
       strfmt("%llu", static_cast<unsigned long long>(without.upshifts)),
       strfmt("%llu",
              static_cast<unsigned long long>(without.server_changes))});
  table.print(std::cout);

  print_comparison(std::cout, "post-switch median",
                   "~ -Delta_Ext/2 = -250 us either way (asymmetry is "
                   "physical)",
                   strfmt("%+.1f / %+.1f us",
                          with.post_switch_err.p50 * 1e6,
                          without.post_switch_err.p50 * 1e6));
  std::cout << "Identity tracking restores correct quality assessment\n"
               "immediately; without it the +13 ms jump must wait for the\n"
               "Ts-deep upward-shift detector while packets are mis-rated.\n";
  return 0;
}
