// google-benchmark micro-benchmarks for the hot paths: per-exchange
// processing cost of the full clock (the on-line budget is one call per
// poll — the paper stresses low host burden), the estimator internals, and
// the wire codec.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/allan.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/clock.hpp"
#include "core/naive.hpp"
#include "wire/ntp_packet.hpp"

namespace {

using namespace tscclock;

// Cheap synthetic exchange stream (no testbed overhead in the loop).
class ExchangeStream {
 public:
  explicit ExchangeStream(double period) : period_(period) {}
  core::RawExchange next() {
    core::RawExchange ex;
    const double ta = now_;
    const double tb = ta + 450e-6;
    const double te = tb + 40e-6;
    const double tf = te + 400e-6;
    ex.ta = static_cast<TscCount>(ta / period_);
    ex.tb = tb;
    ex.te = te;
    ex.tf = static_cast<TscCount>(tf / period_);
    now_ += 16.0;
    return ex;
  }

 private:
  double period_;
  double now_ = 1.0;
};

void BM_ProcessExchange(benchmark::State& state) {
  const double period = 2e-9;
  core::Params params;
  core::TscNtpClock clock(params, period);
  ExchangeStream stream(period);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.process_exchange(stream.next()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProcessExchange);

void BM_AbsoluteTimeRead(benchmark::State& state) {
  const double period = 2e-9;
  core::Params params;
  core::TscNtpClock clock(params, period);
  ExchangeStream stream(period);
  core::RawExchange last{};
  for (int i = 0; i < 200; ++i) {
    last = stream.next();
    clock.process_exchange(last);
  }
  TscCount t = last.tf;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(clock.absolute_time(t));
  }
}
BENCHMARK(BM_AbsoluteTimeRead);

void BM_NaiveOffset(benchmark::State& state) {
  const double period = 2e-9;
  ExchangeStream stream(period);
  const auto ex = stream.next();
  const CounterTimescale clock(0, 0.0, period);
  for (auto _ : state) benchmark::DoNotOptimize(core::naive_offset(ex, clock));
}
BENCHMARK(BM_NaiveOffset);

void BM_WindowedMinPush(benchmark::State& state) {
  WindowedMin<std::int64_t> wm(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 4096; ++i)
    values.push_back(static_cast<std::int64_t>(rng.uniform(0, 1e6)));
  std::size_t k = 0;
  for (auto _ : state) {
    wm.push(values[k++ & 4095]);
    benchmark::DoNotOptimize(wm.valid());
  }
}
BENCHMARK(BM_WindowedMinPush)->Arg(64)->Arg(1024);

void BM_AllanDeviation(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> phase;
  for (int i = 0; i < state.range(0); ++i) phase.push_back(rng.normal(1e-6));
  const auto factors = log_spaced_factors(phase.size(), 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(allan_deviation(phase, 16.0, factors));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllanDeviation)->Arg(4096)->Arg(32768);

void BM_PercentileSummary(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < state.range(0); ++i) values.push_back(rng.uniform());
  for (auto _ : state)
    benchmark::DoNotOptimize(percentile_summary(values));
}
BENCHMARK(BM_PercentileSummary)->Arg(1024)->Arg(65536);

void BM_NtpPacketEncode(benchmark::State& state) {
  const auto packet = wire::make_client_request({100, 200}, 4);
  for (auto _ : state) benchmark::DoNotOptimize(wire::encode(packet));
}
BENCHMARK(BM_NtpPacketEncode);

void BM_NtpPacketDecode(benchmark::State& state) {
  const auto bytes = wire::encode(wire::make_client_request({100, 200}, 4));
  for (auto _ : state) benchmark::DoNotOptimize(wire::decode(bytes));
}
BENCHMARK(BM_NtpPacketDecode);

}  // namespace

BENCHMARK_MAIN();
