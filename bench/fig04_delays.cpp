// Figure 4: time series of backward network delay d← (left) and server
// delay d↑ (right) for ServerLoc in the machine room — roughly stationary,
// a deterministic minimum plus a positive random component; network delays
// in the 100 µs-ms range, server delays in the tens of µs.
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout,
               "Figure 4: backward network delay and server delay series");

  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kLoc;
  scenario.duration = 1000 * scenario.poll_period + 100;
  scenario.seed = 7447;
  sim::Testbed testbed(scenario);

  std::vector<double> backward;  // d← = Tg − Te (paper's calculation)
  std::vector<double> server;    // d↑ = Te − Tb
  std::vector<double> te;
  harness::ClockSession session(
      bench::session_config(bench::params_for(scenario)),
      testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    backward.push_back(rec.tg - rec.raw.te);
    server.push_back(rec.raw.te - rec.raw.tb);
    te.push_back(rec.raw.tb);
  });
  session.add_sink(collect);
  session.run(testbed);

  // Sampled series (every 50th packet) as the "plot".
  TablePrinter series({"Te [s]", "backward d<- [ms]", "server d^ [ms]"});
  for (std::size_t i = 0; i < backward.size(); i += 50)
    series.add_row({strfmt("%.0f", te[i] - te.front()),
                    strfmt("%.3f", backward[i] * 1e3),
                    strfmt("%.3f", server[i] * 1e3)});
  series.print(std::cout);

  const auto sb = summarize(backward);
  const auto ss = summarize(server);
  TablePrinter stats({"series", "min [ms]", "median [ms]", "mean [ms]",
                      "p99 [ms]", "max [ms]"});
  stats.add_row({"backward network", strfmt("%.4f", sb.min * 1e3),
                 strfmt("%.4f", sb.percentiles.p50 * 1e3),
                 strfmt("%.4f", sb.mean * 1e3),
                 strfmt("%.4f", sb.percentiles.p99 * 1e3),
                 strfmt("%.4f", sb.max * 1e3)});
  stats.add_row({"server", strfmt("%.4f", ss.min * 1e3),
                 strfmt("%.4f", ss.percentiles.p50 * 1e3),
                 strfmt("%.4f", ss.mean * 1e3),
                 strfmt("%.4f", ss.percentiles.p99 * 1e3),
                 strfmt("%.4f", ss.max * 1e3)});
  stats.print(std::cout);

  print_comparison(std::cout, "series structure",
                   "deterministic minimum + positive random component",
                   strfmt("backward min %.3f ms, server min %.1f us",
                          sb.min * 1e3, ss.min * 1e6));
  print_comparison(std::cout, "server delays much smaller than network",
                   "minimum tens of µs vs ~0.15 ms (local segment)",
                   strfmt("median ratio %.1fx, min ratio %.1fx",
                          sb.percentiles.p50 / ss.percentiles.p50,
                          sb.min / ss.min));
  return 0;
}
