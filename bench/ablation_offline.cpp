// Online vs offline (two-sided) offset estimation — quantifying §5.3's
// remark that post-processing with future packets makes performance
// "immediately following long periods of congestion or sequential packet
// loss much easier to achieve". Same trace, three regimes compared:
// steady state, during a heavy congestion episode, and right after a gap.
//
// Both passes run through the drive layer: the online session records the
// estimator-independent trace (SessionConfig::record_trace) while it scores
// the robust clock, and the offline smoother is replayed over that recording
// via harness::ReplaySession — the same scoring pipeline the sweep's
// `--estimators offline` lane uses (tests/test_replay.cpp pins this
// migration bit-identical to the legacy hand-rolled collection loop).
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/replay.hpp"
#include "support.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout,
               "Online vs offline smoothing (post-processing ablation)");

  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 4242;
  // A brutal one-hour congestion episode plus a 2-hour outage.
  auto path = sim::ScenarioConfig::path_preset(scenario.server);
  path.forward.congestion_mean_interval = 100 * duration::kDay;  // manual
  scenario.path_override = path;
  scenario.events.add_level_shift(
      {10 * duration::kHour, 11 * duration::kHour, 0.0, 0.0});  // marker only
  scenario.events.add_outage(15 * duration::kHour, 17 * duration::kHour);

  // Heavy congestion 10:00-11:00: injected below as genuine backward
  // queueing spikes (both the host stamp and the DAG reference stamp move,
  // so the reference stays honest while the RTT degrades).

  sim::Testbed testbed(scenario);

  // Perturbed exchange list: drain the testbed, then layer the storm spikes
  // on top so both the host stamp and the DAG reference stamp move.
  std::vector<sim::Exchange> exchanges;
  Rng storm(99);
  for (auto& ex : testbed.generate_all()) {
    if (ex.lost || !ex.ref_available) continue;
    const bool in_storm = ex.truth.tb > 10 * duration::kHour &&
                          ex.truth.tb < 11 * duration::kHour;
    if (in_storm && storm.bernoulli(0.8)) {
      // Heavy backward queueing spike: the packet genuinely arrives later.
      const double spike = storm.exponential(4e-3);
      ex.tf_counts += static_cast<TscCount>(spike / testbed.true_period());
      ex.tg += spike;
    }
    exchanges.push_back(ex);
  }

  core::Params params;
  params.poll_period = scenario.poll_period;

  // Online pass: replay the perturbed exchanges through the canonical
  // harness sequence (the session scores each packet exactly as the figure
  // benches do), recording the estimator-independent trace for the replay
  // lane. Every replayed exchange has a reference and no warm-up cut
  // applies, so online records, replay records and the recorded trace all
  // align 1:1.
  auto config = bench::session_config(params);
  config.record_trace = true;
  harness::ClockSession online(config, testbed.nominal_period());
  harness::CollectorSink online_records;
  online.add_sink(online_records);
  for (const auto& ex : exchanges) online.process(ex);
  std::vector<double> online_err;
  online_err.reserve(online_records.records().size());
  for (const auto& rec : online_records.records())
    online_err.push_back(rec.offset_error);

  // Offline pass: the §5.3 smoother as a first-class replay estimator,
  // scored over the identical recorded trace and ground truth.
  auto smoother = std::make_unique<harness::OfflineSmootherEstimator>(
      params, testbed.nominal_period());
  const harness::OfflineSmootherEstimator& offline = *smoother;
  harness::ReplaySession replay(config, std::move(smoother));
  harness::CollectorSink replay_records;
  replay.add_sink(replay_records);
  replay.run(online.trace());
  std::vector<double> offline_err;
  offline_err.reserve(replay_records.records().size());
  for (const auto& rec : replay_records.records())
    offline_err.push_back(rec.offset_error);

  const std::size_t n = exchanges.size();
  const auto regime = [&](double lo_h, double hi_h,
                          const std::vector<double>& err) {
    std::vector<double> slice;
    for (std::size_t k = 0; k < n; ++k) {
      const double h = exchanges[k].tb_stamp / 3600.0;
      if (h >= lo_h && h < hi_h) slice.push_back(std::fabs(err[k]));
    }
    return percentile_summary(slice);
  };

  TablePrinter table({"regime", "online median [us]", "online p99 [us]",
                      "offline median [us]", "offline p99 [us]"});
  struct Regime {
    const char* name;
    double lo, hi;
  };
  const Regime regimes[] = {
      {"steady state (2h-10h)", 2, 10},
      {"congestion storm (10h-11h)", 10, 11},
      {"first hour after 2h gap", 17, 18},
  };
  for (const auto& r : regimes) {
    const auto on = regime(r.lo, r.hi, online_err);
    const auto off = regime(r.lo, r.hi, offline_err);
    table.add_row({r.name, strfmt("%.1f", on.p50 * 1e6),
                   strfmt("%.1f", on.p99 * 1e6),
                   strfmt("%.1f", off.p50 * 1e6),
                   strfmt("%.1f", off.p99 * 1e6)});
  }
  table.print(std::cout);
  print_comparison(std::cout, "offline advantage location",
                   "after congestion/gaps (uses future packets)",
                   "see storm/post-gap rows");
  std::cout << strfmt("offline poor-window fallbacks: %zu of %zu packets\n",
                      offline.result().poor_windows, online.trace().arrived());
  return 0;
}
