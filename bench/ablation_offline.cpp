// Online vs offline (two-sided) offset estimation — quantifying §5.3's
// remark that post-processing with future packets makes performance
// "immediately following long periods of congestion or sequential packet
// loss much easier to achieve". Same trace, three regimes compared:
// steady state, during a heavy congestion episode, and right after a gap.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/offline.hpp"
#include "support.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout,
               "Online vs offline smoothing (post-processing ablation)");

  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 4242;
  // A brutal one-hour congestion episode plus a 2-hour outage.
  auto path = sim::ScenarioConfig::path_preset(scenario.server);
  path.forward.congestion_mean_interval = 100 * duration::kDay;  // manual
  scenario.path_override = path;
  scenario.events.add_level_shift(
      {10 * duration::kHour, 11 * duration::kHour, 0.0, 0.0});  // marker only
  scenario.events.add_outage(15 * duration::kHour, 17 * duration::kHour);

  // Heavy congestion 10:00-11:00: injected below as genuine backward
  // queueing spikes (both the host stamp and the DAG reference stamp move,
  // so the reference stays honest while the RTT degrades).

  sim::Testbed testbed(scenario);

  // Perturbed exchange list: drain the testbed, then layer the storm spikes
  // on top so both the host stamp and the DAG reference stamp move.
  std::vector<sim::Exchange> exchanges;
  std::vector<core::RawExchange> raws;
  std::vector<double> tg;
  std::vector<double> tb;
  Rng storm(99);
  for (auto& ex : testbed.generate_all()) {
    if (ex.lost || !ex.ref_available) continue;
    const bool in_storm = ex.truth.tb > 10 * duration::kHour &&
                          ex.truth.tb < 11 * duration::kHour;
    if (in_storm && storm.bernoulli(0.8)) {
      // Heavy backward queueing spike: the packet genuinely arrives later.
      const double spike = storm.exponential(4e-3);
      ex.tf_counts += static_cast<TscCount>(spike / testbed.true_period());
      ex.tg += spike;
    }
    exchanges.push_back(ex);
    raws.push_back({ex.ta_counts, ex.tb_stamp, ex.te_stamp, ex.tf_counts});
    tg.push_back(ex.tg);
    tb.push_back(ex.tb_stamp);
  }

  core::Params params;
  params.poll_period = scenario.poll_period;

  // Online pass: replay the perturbed exchanges through the canonical
  // harness sequence (the session scores each packet exactly as the figure
  // benches do). Every replayed exchange has a reference and no warm-up cut
  // applies, so the collected records align 1:1 with `raws`.
  harness::ClockSession online(bench::session_config(params),
                               testbed.nominal_period());
  harness::CollectorSink online_records;
  online.add_sink(online_records);
  for (const auto& ex : exchanges) online.process(ex);
  std::vector<double> online_err;
  online_err.reserve(online_records.records().size());
  for (const auto& rec : online_records.records())
    online_err.push_back(rec.offset_error);

  // Offline pass.
  const auto offline =
      core::smooth_offsets(raws, params, testbed.nominal_period());
  std::vector<double> offline_err(raws.size());
  for (std::size_t k = 0; k < raws.size(); ++k)
    offline_err[k] = offline.offsets[k] -
                     (offline.timescale.read(raws[k].tf) - tg[k]);

  const auto regime = [&](double lo_h, double hi_h,
                          const std::vector<double>& err) {
    std::vector<double> slice;
    for (std::size_t k = 0; k < raws.size(); ++k) {
      const double h = tb[k] / 3600.0;
      if (h >= lo_h && h < hi_h) slice.push_back(std::fabs(err[k]));
    }
    return percentile_summary(slice);
  };

  TablePrinter table({"regime", "online median [us]", "online p99 [us]",
                      "offline median [us]", "offline p99 [us]"});
  struct Regime {
    const char* name;
    double lo, hi;
  };
  const Regime regimes[] = {
      {"steady state (2h-10h)", 2, 10},
      {"congestion storm (10h-11h)", 10, 11},
      {"first hour after 2h gap", 17, 18},
  };
  for (const auto& r : regimes) {
    const auto on = regime(r.lo, r.hi, online_err);
    const auto off = regime(r.lo, r.hi, offline_err);
    table.add_row({r.name, strfmt("%.1f", on.p50 * 1e6),
                   strfmt("%.1f", on.p99 * 1e6),
                   strfmt("%.1f", off.p50 * 1e6),
                   strfmt("%.1f", off.p99 * 1e6)});
  }
  table.print(std::cout);
  print_comparison(std::cout, "offline advantage location",
                   "after congestion/gaps (uses future packets)",
                   "see storm/post-gap rows");
  std::cout << strfmt("offline poor-window fallbacks: %zu of %zu packets\n",
                      offline.poor_windows, raws.size());
  return 0;
}
