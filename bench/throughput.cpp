// End-to-end hot-path throughput: exchanges/sec/core through the full
// Testbed → ClockSession/MultiEstimatorSession → estimator → sink pipeline,
// timed with a plain std::chrono loop (no Google Benchmark dependency — this
// target must always build). Representative configurations:
//
//   generate_only             — Testbed SoA stream generation alone
//                               (generate_batch; the floor every pipeline
//                               number sits on);
//   single_robust_exact       — one robust lane into the exact ReducerSink,
//                               scalar and batched drives (the batched/scalar
//                               ratio is the headline of the batch lane);
//   single_robust_estimate    — one robust lane, batched, NO sink attached:
//                               isolates estimator cost for the stage
//                               breakdown (generate / estimate / reduce);
//   single_robust_streaming   — one robust lane into the O(1)-memory
//                               StreamingReducerSink, batched (the sweep's
//                               default cell configuration);
//   multi3_streaming          — robust + swntp + naive lanes head-to-head on
//                               one stream, batched (the comparison sweep);
//   fleet_16_streaming        — a 16-client FleetTestbed's merged stream
//                               demultiplexed into 16 batched robust lanes
//                               with streaming reduction (the fleet sweep's
//                               default cell; exchanges counts all clients).
//
// Each result section carries a `pairs_with` key naming the baseline section
// it compares against (baselines predate the scalar/batched split, so the
// pairing cannot be positional). The report also carries a `stage_breakdown`
// object decomposing the single-lane batched exact pipeline's wall time into
// generate / estimate / reduce.
//
// The emitted JSON (schema: src/common/bench_report.hpp) is committed at the
// repo root as BENCH_throughput.json so the throughput trajectory is visible
// across PRs; its `baseline` block pins the pre-campaign scalar-pipeline
// numbers so the before/after comparison travels with the file. Regenerate
// with `bench_throughput --out BENCH_throughput.json` from the build
// directory whenever the schema version bumps.
//
//   bench_throughput [--quick] [--out PATH] [--check PATH]
//
//   --quick      2 simulated days instead of 30 (CI smoke; numbers are
//                noisier but the schema and counts are identical in kind)
//   --out PATH   write the JSON report to PATH (default: stdout)
//   --check PATH validate an existing report instead of measuring: parse,
//                require the current schema version (stale committed reports
//                fail here), require non-empty results with positive counts,
//                require the stage_breakdown object with finite non-negative
//                stages, and diff the section plan (names, drives,
//                reductions, pairs_with keys and the pinned baseline block)
//                against what this binary would emit — a committed report
//                that predates a section change fails as stale even when the
//                schema version did not bump. Exit 0 valid / 1 invalid.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/bench_report.hpp"
#include "harness/estimator.hpp"
#include "harness/fleet_session.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/fleet.hpp"
#include "sim/scenario.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

/// The measured scenario: the sweep's default cell (ServerInt, machine
/// room, 16 s polls, observable warm-up cut) over a month-scale trace.
sim::ScenarioConfig scenario_for(double days) {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.environment = sim::Environment::kMachineRoom;
  scenario.poll_period = 16.0;
  scenario.seed = 42;
  scenario.duration = days * duration::kDay;
  return scenario;
}

harness::SessionConfig session_config_for(const sim::ScenarioConfig& s) {
  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(s.poll_period);
  config.discard_warmup = duration::kHour;
  config.warmup_policy = harness::WarmupPolicy::kObservable;
  return config;
}

/// Time one drain; the Testbed construction (attachment/RNG setup) stays
/// outside the timed region, the exchange loop is what's measured.
template <typename Drain>
BenchSection timed(const std::string& name, const std::string& drive,
                   const std::string& reduction, double days, Drain&& drain) {
  sim::Testbed testbed(scenario_for(days));
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t exchanges = drain(testbed);
  const auto stop = std::chrono::steady_clock::now();
  BenchSection s;
  s.name = name;
  s.drive = drive;
  s.reduction = reduction;
  s.exchanges = exchanges;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.exchanges_per_sec =
      s.seconds > 0 ? static_cast<double>(exchanges) / s.seconds : 0;
  std::fprintf(stderr, "%-32s %9llu exchanges  %8.3f s  %10.0f /s\n",
               name.c_str(), static_cast<unsigned long long>(exchanges),
               s.seconds, s.exchanges_per_sec);
  return s;
}

std::uint64_t drain_generate(sim::Testbed& testbed) {
  // The SoA stream the batched sessions consume — no per-exchange Exchange
  // struct is ever materialized, so this is the true generation floor.
  constexpr std::size_t kChunk = 1024;
  sim::ExchangeBatch batch;
  std::uint64_t produced = 0;
  while (true) {
    const std::size_t n = testbed.generate_batch(batch, kChunk);
    produced += n;
    if (n < kChunk) return produced;
  }
}

/// The fleet drive: a 16-client FleetTestbed's merged stream demultiplexed
/// into 16 batched robust lanes with streaming reduction. Construction
/// (17 attachment walks, RNG forks) stays outside the timed region like in
/// timed(); `exchanges` counts every client's, so exchanges/sec is directly
/// comparable with the single-client sections (same per-exchange work, plus
/// the merge/demux overhead this section exists to measure).
BenchSection timed_fleet(double days) {
  const sim::ScenarioConfig base = scenario_for(days);
  sim::FleetConfig topology;
  topology.n_clients = 16;
  sim::FleetTestbed fleet(base, topology);
  const harness::SessionConfig config = session_config_for(base);
  harness::FleetSession session;
  std::vector<harness::StreamingReducerSink> reducers;
  reducers.reserve(topology.n_clients);
  for (std::size_t k = 0; k < fleet.client_count(); ++k) {
    session.add_client(config, std::make_unique<harness::TscNtpEstimator>(
                                   config.params,
                                   fleet.client(k).nominal_period()));
    reducers.emplace_back(base.poll_period);
    session.add_sink(k, reducers.back());
  }
  const auto start = std::chrono::steady_clock::now();
  session.run_batched(fleet);
  const auto stop = std::chrono::steady_clock::now();
  BenchSection s;
  s.name = "fleet_16_streaming";
  s.drive = "batched";
  s.reduction = "streaming";
  s.exchanges = session.combined_summary().exchanges;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.exchanges_per_sec =
      s.seconds > 0 ? static_cast<double>(s.exchanges) / s.seconds : 0;
  std::fprintf(stderr, "%-32s %9llu exchanges  %8.3f s  %10.0f /s\n",
               s.name.c_str(), static_cast<unsigned long long>(s.exchanges),
               s.seconds, s.exchanges_per_sec);
  return s;
}

/// Pre-campaign scalar-pipeline numbers, measured on the seed of this
/// campaign (same scenario, 30 simulated days, same machine class as the CI
/// runners). Pinned so the committed report carries the before/after
/// comparison; these are historical records, not remeasured. The
/// fleet_16_streaming pin is its section's own first measurement (the fleet
/// drive was born batched — there is no scalar predecessor), so future PRs
/// diff against the landing number.
std::vector<BenchSection> baseline_sections() {
  const auto pin = [](const char* name, const char* drive,
                      const char* reduction, double per_sec,
                      std::uint64_t exchanges = 162000) {
    BenchSection s;
    s.name = name;
    s.drive = drive;
    s.reduction = reduction;
    s.exchanges = exchanges;  // 30 days / 16 s polls, steady schedule
    s.exchanges_per_sec = per_sec;
    s.seconds = static_cast<double>(s.exchanges) / per_sec;
    return s;
  };
  return {
      pin("generate_only", "generate", "none", 458155),
      pin("single_robust_exact", "scalar", "exact", 159600),
      pin("single_robust_streaming", "scalar", "streaming", 174129),
      pin("multi3_exact", "scalar", "exact", 168095),
      // 16 clients × 162000 exchanges each.
      pin("fleet_16_streaming", "batched", "streaming", 338928, 2592000),
  };
}

/// The section plan this binary emits: result section identity (name, drive,
/// reduction) plus the baseline section each one compares against. --check
/// diffs a committed report against this table, so editing the sections in
/// measure() without updating it fails CI until the report is regenerated.
struct PlanEntry {
  const char* name;
  const char* drive;
  const char* reduction;
  const char* pairs_with;  ///< "" = no pre-campaign baseline exists
};

constexpr PlanEntry kResultPlan[] = {
    {"generate_only", "generate", "none", "generate_only"},
    {"single_robust_exact_scalar", "scalar", "exact", "single_robust_exact"},
    {"single_robust_exact_batched", "batched", "exact", "single_robust_exact"},
    {"single_robust_estimate_only", "batched", "none", ""},
    {"single_robust_streaming_batched", "batched", "streaming",
     "single_robust_streaming"},
    {"multi3_streaming_batched", "batched", "streaming", "multi3_exact"},
    {"fleet_16_streaming", "batched", "streaming", "fleet_16_streaming"},
};

BenchReport measure(double days, const std::string& mode) {
  BenchReport report;
  report.tool = "bench_throughput";
  report.mode = mode;
  report.simulated_days = days;
  report.baseline_commit = "cdbde7e";
  report.baseline = baseline_sections();

  report.results.push_back(
      timed("generate_only", "generate", "none", days, drain_generate));

  report.results.push_back(timed(
      "single_robust_exact_scalar", "scalar", "exact", days,
      [](sim::Testbed& testbed) {
        harness::ClockSession session(
            session_config_for(testbed.config()), testbed.nominal_period());
        harness::ReducerSink reducer(testbed.config().poll_period);
        session.add_sink(reducer);
        return session.run(testbed).exchanges;
      }));

  report.results.push_back(timed(
      "single_robust_exact_batched", "batched", "exact", days,
      [](sim::Testbed& testbed) {
        harness::ClockSession session(
            session_config_for(testbed.config()), testbed.nominal_period());
        harness::ReducerSink reducer(testbed.config().poll_period);
        session.add_sink(reducer);
        return session.run_batched(testbed).exchanges;
      }));

  report.results.push_back(timed(
      "single_robust_estimate_only", "batched", "none", days,
      [](sim::Testbed& testbed) {
        harness::ClockSession session(
            session_config_for(testbed.config()), testbed.nominal_period());
        return session.run_batched(testbed).exchanges;
      }));

  report.results.push_back(timed(
      "single_robust_streaming_batched", "batched", "streaming", days,
      [](sim::Testbed& testbed) {
        harness::ClockSession session(
            session_config_for(testbed.config()), testbed.nominal_period());
        harness::StreamingReducerSink reducer(testbed.config().poll_period);
        session.add_sink(reducer);
        return session.run_batched(testbed).exchanges;
      }));

  report.results.push_back(timed(
      "multi3_streaming_batched", "batched", "streaming", days,
      [](sim::Testbed& testbed) {
        const harness::SessionConfig config =
            session_config_for(testbed.config());
        harness::MultiEstimatorSession session;
        const std::size_t robust = session.add_lane(
            config, std::make_unique<harness::TscNtpEstimator>(
                        config.params, testbed.nominal_period()));
        const std::size_t swntp = session.add_lane(
            config, std::make_unique<harness::SwNtpEstimator>(
                        baseline::PllConfig{}, testbed.nominal_period()));
        const std::size_t naive = session.add_lane(
            config, std::make_unique<harness::NaiveEstimator>(
                        testbed.nominal_period()));
        std::vector<harness::StreamingReducerSink> reducers;
        reducers.reserve(3);
        for (std::size_t k = 0; k < 3; ++k)
          reducers.emplace_back(testbed.config().poll_period);
        session.add_sink(robust, reducers[0]);
        session.add_sink(swntp, reducers[1]);
        session.add_sink(naive, reducers[2]);
        session.run_batched(testbed);
        return session.lane(robust).summary().exchanges;
      }));

  report.results.push_back(timed_fleet(days));

  for (std::size_t i = 0; i < report.results.size(); ++i)
    report.results[i].pairs_with = kResultPlan[i].pairs_with;

  // Where the time goes in the single-lane batched exact pipeline: the three
  // sections nest (generate ⊂ generate+estimate ⊂ generate+estimate+reduce),
  // so stage costs are successive differences, clamped against timing noise.
  const auto seconds_of = [&](const char* name) {
    for (const auto& s : report.results)
      if (s.name == std::string_view(name)) return s.seconds;
    return 0.0;
  };
  const double generate = seconds_of("generate_only");
  const double estimate_total = seconds_of("single_robust_estimate_only");
  const double full = seconds_of("single_robust_exact_batched");
  report.stage_breakdown.present = true;
  report.stage_breakdown.generate_seconds = generate;
  report.stage_breakdown.estimate_seconds =
      std::max(0.0, estimate_total - generate);
  report.stage_breakdown.reduce_seconds = std::max(0.0, full - estimate_total);
  return report;
}

int check_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  BenchReport report;
  try {
    report = parse_bench_report(text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  if (report.schema_version != kBenchReportSchemaVersion) {
    std::fprintf(stderr,
                 "%s: schema_version %d is stale (current %d) — regenerate "
                 "with bench_throughput --out\n",
                 path.c_str(), report.schema_version,
                 kBenchReportSchemaVersion);
    return 1;
  }
  if (report.results.empty()) {
    std::fprintf(stderr, "%s: empty results\n", path.c_str());
    return 1;
  }
  for (const auto& s : report.results) {
    // Counts must be positive; absolute rates are machine-dependent and are
    // deliberately NOT asserted on.
    if (s.name.empty() || s.exchanges == 0 || s.seconds <= 0 ||
        s.exchanges_per_sec <= 0) {
      std::fprintf(stderr, "%s: section '%s' has empty/non-positive fields\n",
                   path.c_str(), s.name.c_str());
      return 1;
    }
  }

  // Section-plan staleness: the report must describe exactly the sections
  // this binary measures, paired to exactly the baselines it pins. A report
  // committed before a section was added/renamed/repaired fails here even
  // though schema_version did not change.
  const std::size_t plan_size = std::size(kResultPlan);
  if (report.results.size() != plan_size) {
    std::fprintf(stderr,
                 "%s: stale section plan (%zu result sections, current "
                 "binary emits %zu) — regenerate with bench_throughput "
                 "--out\n",
                 path.c_str(), report.results.size(), plan_size);
    return 1;
  }
  for (std::size_t i = 0; i < plan_size; ++i) {
    const BenchSection& s = report.results[i];
    const PlanEntry& p = kResultPlan[i];
    if (s.name != p.name || s.drive != p.drive || s.reduction != p.reduction ||
        s.pairs_with != p.pairs_with) {
      std::fprintf(stderr,
                   "%s: stale result section %zu: have "
                   "(%s, %s, %s, pairs_with=%s), current binary emits "
                   "(%s, %s, %s, pairs_with=%s) — regenerate\n",
                   path.c_str(), i, s.name.c_str(), s.drive.c_str(),
                   s.reduction.c_str(), s.pairs_with.c_str(), p.name, p.drive,
                   p.reduction, p.pairs_with);
      return 1;
    }
  }
  const std::vector<BenchSection> pinned = baseline_sections();
  if (report.baseline.size() != pinned.size()) {
    std::fprintf(stderr, "%s: stale baseline block (%zu sections, pinned "
                 "%zu) — regenerate\n",
                 path.c_str(), report.baseline.size(), pinned.size());
    return 1;
  }
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    const BenchSection& have = report.baseline[i];
    const BenchSection& want = pinned[i];
    if (have.name != want.name || have.drive != want.drive ||
        have.reduction != want.reduction ||
        have.exchanges != want.exchanges ||
        have.exchanges_per_sec != want.exchanges_per_sec) {
      std::fprintf(stderr,
                   "%s: stale baseline section '%s' (pinned values differ) — "
                   "regenerate\n",
                   path.c_str(), have.name.c_str());
      return 1;
    }
  }
  // Every pairs_with key must resolve to a pinned baseline section.
  for (const auto& s : report.results) {
    if (s.pairs_with.empty()) continue;
    const bool found =
        std::any_of(pinned.begin(), pinned.end(),
                    [&](const BenchSection& b) { return b.name == s.pairs_with; });
    if (!found) {
      std::fprintf(stderr,
                   "%s: section '%s' pairs_with unknown baseline '%s'\n",
                   path.c_str(), s.name.c_str(), s.pairs_with.c_str());
      return 1;
    }
  }

  // The stage breakdown is part of the current report shape: required, with
  // finite non-negative stages summing (by construction) to the full
  // single-lane batched pipeline.
  if (!report.stage_breakdown.present) {
    std::fprintf(stderr, "%s: missing stage_breakdown — regenerate\n",
                 path.c_str());
    return 1;
  }
  const double stages[] = {report.stage_breakdown.generate_seconds,
                           report.stage_breakdown.estimate_seconds,
                           report.stage_breakdown.reduce_seconds};
  for (const double v : stages) {
    if (!std::isfinite(v) || v < 0) {
      std::fprintf(stderr, "%s: stage_breakdown has a non-finite or negative "
                   "stage\n",
                   path.c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "%s: valid (schema %d, %zu sections)\n", path.c_str(),
               report.schema_version, report.results.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--check") {
      check_path = value();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_throughput [--quick] [--out PATH] [--check PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (!check_path.empty()) return check_report(check_path);

  const double days = quick ? 2.0 : 30.0;
  const BenchReport report = measure(days, quick ? "quick" : "full");
  const std::string json = to_json(report);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << json;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "writing %s failed\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
