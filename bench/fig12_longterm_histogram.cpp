// Figure 12: offset error histograms over a ~3-month continuous run with
// ServerInt (including data gaps and a server fault, as in the paper's
// campaign), at polling periods 64 s and 256 s. Paper: median −31 µs /
// IQR 15 µs (64 s), median −33 µs / IQR 24.3 µs (256 s); the histogram
// shows "exactly 99% of all values".
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

void run_poll(Seconds poll, double days, double paper_median_us,
              double paper_iqr_us) {
  sim::ScenarioConfig scenario;
  scenario.poll_period = poll;
  scenario.duration = days * duration::kDay;
  scenario.seed = 1212;
  // The paper's campaign anomalies: a 1.5 h gap, a 3.8-day gap and a
  // several-minute server fault.
  scenario.events.add_outage(20 * duration::kDay,
                             20 * duration::kDay + 1.5 * duration::kHour);
  scenario.events.add_outage(45 * duration::kDay, 48.8 * duration::kDay);
  scenario.events.add_server_fault(61.6 * duration::kDay,
                                   61.6 * duration::kDay + 4 * duration::kMinute,
                                   0.150);

  sim::Testbed testbed(scenario);
  core::Params params;
  params.poll_period = poll;
  auto run = bench::run_clock(testbed, params,
                              /*discard_warmup_s=*/duration::kDay / 2);
  auto errors = bench::offset_errors(run);
  const auto s = percentile_summary(errors);

  print_banner(std::cout, strfmt("Figure 12: polling period %.0f s", poll));

  // Central-99% histogram, 30 bins, ASCII bars.
  Histogram hist(s.p01, s.p99 + 1e-9, 30);
  std::size_t inside = 0;
  for (double e : errors) {
    if (e < s.p01 || e > s.p99) continue;
    hist.add(e);
    ++inside;
  }
  double max_density = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b)
    max_density = std::max(max_density, hist.density(b));
  TablePrinter table({"error [us]", "fraction", "histogram"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const int width =
        static_cast<int>(50.0 * hist.density(b) / max_density + 0.5);
    table.add_row({strfmt("%+8.1f", hist.bin_center(b) * 1e6),
                   strfmt("%.4f", hist.density(b)),
                   std::string(static_cast<std::size_t>(width), '#')});
  }
  table.print(std::cout);

  print_comparison(std::cout, "median offset error",
                   strfmt("%.0f us", paper_median_us),
                   strfmt("%+.1f us", s.p50 * 1e6));
  print_comparison(std::cout, "inter-quartile range",
                   strfmt("%.1f us", paper_iqr_us),
                   strfmt("%.1f us", s.iqr() * 1e6));
  print_comparison(std::cout, "coverage",
                   "99% of all values shown",
                   strfmt("%.1f%% of %zu packets",
                          100.0 * static_cast<double>(inside) /
                              static_cast<double>(errors.size()),
                          errors.size()));
  std::cout << strfmt(
      "events: %s sanity trigger(s), %s gap blend(s), %s upshift(s), "
      "%s lost packets\n",
      format_count(run.final_status.offset_sanity_triggers).c_str(),
      format_count(run.final_status.gap_blends).c_str(),
      format_count(run.final_status.upshifts).c_str(),
      format_count(run.lost).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Default 91 days ≈ the paper's 3-month campaign; pass a smaller number
  // of days for a quick look.
  const double days = argc > 1 ? std::atof(argv[1]) : 91.0;
  run_poll(64.0, days, -31.0, 15.0);
  run_poll(256.0, days, -33.0, 24.3);
  std::cout << "\nThe per-packet error is bounded below by the path\n"
               "asymmetry ambiguity Delta/2 = 25 us; the medians land on\n"
               "the same side and scale as the paper's.\n";
  return 0;
}
