// Figure 8: time series of the robust offset estimates θ̂(t) tracking the
// reference, with the naive per-packet cloud in the background — the
// algorithm filters ms-scale naive noise down to ~30 µs tracking error.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;
  print_banner(std::cout, "Figure 8: robust offset tracking vs reference");

  sim::ScenarioConfig scenario;
  scenario.duration = days * duration::kDay;
  scenario.seed = 808;
  sim::Testbed testbed(scenario);
  const auto params = bench::params_for(scenario);
  auto run = bench::run_clock(testbed, params, /*discard_warmup_s=*/
                              duration::kHour);

  // Zoomed window (the paper shows ~1.5 days of the trace).
  const double zoom_lo = days / 2;
  const double zoom_hi = days / 2 + 1.5;
  TablePrinter series({"Tb [day]", "naive err [ms]", "algorithm err [us]"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < run.points.size() && shown < 24; ++i) {
    const auto& p = run.points[i];
    if (p.t_day < zoom_lo || p.t_day > zoom_hi) continue;
    if (i % 200 != 0) continue;
    series.add_row({strfmt("%.3f", p.t_day),
                    strfmt("%+.3f", p.naive_error * 1e3),
                    strfmt("%+.1f", p.offset_error * 1e6)});
    ++shown;
  }
  series.print(std::cout);

  const auto algo = percentile_summary(bench::offset_errors(run));
  const auto naive = percentile_summary(bench::naive_errors(run));
  print_comparison(std::cout, "algorithm median error magnitude", "~30 us",
                   strfmt("%+.1f us (IQR %.1f us)", algo.p50 * 1e6,
                          algo.iqr() * 1e6));
  print_comparison(std::cout, "naive cloud spread (p1..p99)", "several ms",
                   strfmt("%.2f ms", (naive.p99 - naive.p01) * 1e3));
  print_comparison(std::cout, "noise suppression factor",
                   "~2 orders of magnitude",
                   strfmt("%.0fx", (naive.p99 - naive.p01) /
                                       (algo.p99 - algo.p01)));
  return 0;
}
