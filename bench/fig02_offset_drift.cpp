// Figure 2: offset variations θ(t) of the uncorrected TSC clock C(t) in two
// temperature environments, with a detrending p̂ (first and last offsets
// forced equal). Left panel: 1000 s; right panel: one week. Both must fall
// inside the ±0.1 PPM cone.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct Trace {
  std::vector<double> t;      // reference time from trace start [s]
  std::vector<double> theta;  // detrended offset [s]
};

Trace collect(sim::Environment env, Seconds duration, std::uint64_t seed) {
  sim::ScenarioConfig scenario;
  scenario.environment = env;
  scenario.duration = duration;
  scenario.poll_period = 16.0;
  scenario.seed = seed;
  sim::Testbed testbed(scenario);

  // This figure characterizes the raw oscillator, so only the reference
  // stamps and counter readings are used — but the stream is still driven
  // through the shared harness like every other consumer.
  std::vector<double> tg;
  std::vector<TscCount> tf;
  harness::ClockSession session(
      bench::session_config(bench::params_for(scenario)),
      testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    tg.push_back(rec.tg);
    tf.push_back(rec.raw.tf);
  });
  session.add_sink(collect);
  session.run(testbed);
  // Detrending p̂: forces θ(first) = θ(last) = 0 (paper §3.1).
  const double phat = (tg.back() - tg.front()) /
                      static_cast<double>(counter_delta(tf.back(), tf.front()));
  Trace out;
  for (std::size_t i = 0; i < tg.size(); ++i) {
    const double elapsed =
        static_cast<double>(counter_delta(tf[i], tf.front())) * phat;
    out.t.push_back(tg[i] - tg.front());
    out.theta.push_back(elapsed - (tg[i] - tg.front()));
  }
  return out;
}

void report(const char* title, const Trace& lab, const Trace& mr,
            double sample_every, const char* unit, double scale) {
  print_banner(std::cout, title);
  TablePrinter table({"time", strfmt("lab offset [%s]", unit),
                      strfmt("m-room offset [%s]", unit),
                      "0.1PPM cone [same]"});
  double next_sample = 0;
  for (std::size_t i = 0; i < lab.t.size() && i < mr.t.size(); ++i) {
    if (lab.t[i] < next_sample) continue;
    next_sample = lab.t[i] + sample_every;
    table.add_row({format_duration(lab.t[i]),
                   strfmt("%+.4f", lab.theta[i] * scale),
                   strfmt("%+.4f", mr.theta[i] * scale),
                   strfmt("±%.4f", lab.t[i] * ppm(0.1) * scale)});
  }
  table.print(std::cout);

  // Cone compliance: |θ(t)| ≤ 0.1 PPM · t, evaluated beyond the scale where
  // µs timestamping noise stops dominating the ratio (t ≥ 30 min).
  auto worst_ratio = [](const Trace& tr) {
    double worst = 0;
    for (std::size_t i = 1; i < tr.t.size(); ++i)
      if (tr.t[i] >= 1800.0)
        worst = std::max(worst, std::fabs(tr.theta[i]) / tr.t[i]);
    return worst;
  };
  if (lab.t.back() < 1800.0) return;  // short panel: cone check meaningless
  print_comparison(std::cout, "cone bound", "0.1 PPM",
                   strfmt("lab %.3f PPM, m-room %.3f PPM (worst |θ|/t)",
                          to_ppm(worst_ratio(lab)), to_ppm(worst_ratio(mr))));
}

}  // namespace

int main() {
  const auto lab_short = collect(sim::Environment::kLaboratory, 1000.0, 42);
  const auto mr_short = collect(sim::Environment::kMachineRoom, 1000.0, 42);
  report("Figure 2 (left): offset over 1000 s", lab_short, mr_short, 100.0,
         "us", 1e6);

  const auto lab_week = collect(sim::Environment::kLaboratory,
                                duration::kWeek, 42);
  const auto mr_week = collect(sim::Environment::kMachineRoom,
                               duration::kWeek, 42);
  report("Figure 2 (right): offset over 1 week", lab_week, mr_week,
         0.5 * duration::kDay, "ms", 1e3);

  std::cout << "Paper: residual drift approximately linear below τ*≈1000 s;\n"
               "ms-scale wander over days, laboratory > machine room at\n"
               "large scales; everything inside the ±0.1 PPM cone.\n";
  return 0;
}
