// Design-choice ablations: switch off each robustness stage of §5.3/§6 on a
// stress trace (congestion episodes + a server fault + an upward route
// shift + loss) and measure what it costs. This quantifies the DESIGN.md
// inventory of mechanisms:
//   weighting (stage ii-iii)   — vs last-good-packet estimation
//   aging (ε in E^T)           — stale packets allowed to dominate
//   offset sanity (stage iv)   — server faults dragged in
//   rate sanity                — p̄ poisoned by faulty server stamps
//   level-shift detection      — upward shifts read as congestion forever
//   local rate (eq. 21/23)     — no slope correction in fallbacks
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct AblationResult {
  PercentileSummary abs_err;  // |θ̂ − θg|
  double worst = 0;
  double rate_err_ppm = 0;
};

AblationResult run_variant(const core::Params& params) {
  sim::ScenarioConfig scenario;
  scenario.duration = 2 * duration::kDay;
  scenario.poll_period = 16.0;
  scenario.seed = 3434;
  // Stress: fault + permanent upward shift + heavy loss.
  scenario.events.add_server_fault(0.75 * duration::kDay,
                                   0.75 * duration::kDay + 10 * duration::kMinute,
                                   0.150);
  scenario.events.add_level_shift(
      {1.25 * duration::kDay, sim::kForever, 0.8e-3, 0.0});
  auto path = sim::ScenarioConfig::path_preset(scenario.server);
  path.loss_prob = 0.01;
  path.forward.spike_prob = 0.12;
  scenario.path_override = path;

  sim::Testbed testbed(scenario);
  auto run = bench::run_clock(testbed, params,
                              /*discard_warmup_s=*/4 * duration::kHour);
  AblationResult out;
  std::vector<double> abs_errors;
  for (const auto& p : run.points) {
    abs_errors.push_back(std::fabs(p.offset_error));
    out.worst = std::max(out.worst, abs_errors.back());
  }
  out.abs_err = percentile_summary(abs_errors);
  out.rate_err_ppm =
      std::fabs(run.final_status.period / testbed.true_period() - 1.0) * 1e6;
  return out;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Design ablations on a stress trace (fault + shift + loss)");

  struct Variant {
    const char* name;
    core::Params params;
  };
  core::Params full;
  full.poll_period = 16.0;

  std::vector<Variant> variants;
  variants.push_back({"full algorithm", full});
  {
    auto p = full;
    p.enable_weighting = false;
    variants.push_back({"no weighted window", p});
  }
  {
    auto p = full;
    p.enable_aging = false;
    variants.push_back({"no error aging", p});
  }
  {
    auto p = full;
    p.enable_offset_sanity = false;
    variants.push_back({"no offset sanity", p});
  }
  {
    auto p = full;
    p.enable_rate_sanity = false;
    variants.push_back({"no rate sanity", p});
  }
  {
    auto p = full;
    p.enable_level_shift = false;
    variants.push_back({"no level-shift detection", p});
  }
  {
    auto p = full;
    p.use_local_rate = false;
    variants.push_back({"no local rate", p});
  }

  TablePrinter table({"variant", "median |err| [us]", "p99 |err| [us]",
                      "worst [us]", "final rate err [PPM]"});
  double full_p99 = 0;
  for (const auto& v : variants) {
    const auto r = run_variant(v.params);
    if (v.params.enable_weighting && v.params.enable_aging &&
        v.params.enable_offset_sanity && v.params.enable_rate_sanity &&
        v.params.enable_level_shift && v.params.use_local_rate)
      full_p99 = r.abs_err.p99;
    table.add_row({v.name, strfmt("%.1f", r.abs_err.p50 * 1e6),
                   strfmt("%.1f", r.abs_err.p99 * 1e6),
                   strfmt("%.1f", r.worst * 1e6),
                   strfmt("%.4f", r.rate_err_ppm)});
  }
  table.print(std::cout);
  print_comparison(std::cout, "full algorithm p99",
                   "every stage contributes under stress",
                   strfmt("%.1f us", full_p99 * 1e6));
  std::cout << "Reading: 'no offset sanity' shows the server fault damage\n"
               "(worst error ~150 ms); 'no rate sanity' shows the poisoned\n"
               "p-bar; disabling weighting/aging degrades congestion\n"
               "rejection; disabling shift detection leaves post-shift\n"
               "packets mis-rated as congested.\n";
  return 0;
}
