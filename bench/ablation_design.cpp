// Design-choice ablations: switch off each robustness stage of §5.3/§6 on a
// stress trace (congestion episodes + a server fault + an upward route
// shift + loss) and measure what it costs. This quantifies the DESIGN.md
// inventory of mechanisms:
//   weighting (stage ii-iii)   — vs last-good-packet estimation
//   aging (ε in E^T)           — stale packets allowed to dominate
//   offset sanity (stage iv)   — server faults dragged in
//   rate sanity                — p̄ poisoned by faulty server stamps
//   level-shift detection      — upward shifts read as congestion forever
//   local rate (eq. 21/23)     — no slope correction in fallbacks
//
// Every variant is an EstimatorSpec of the `robust` family — the same
// registry entries the sweep's --estimators axis accepts — built into one
// MultiEstimatorSession lane each, so all ablations score the identical
// stress stream through the shared drive layer instead of a hand-rolled
// per-variant rerun loop.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/estimator_spec.hpp"
#include "harness/sinks.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

/// The spec axis: the full algorithm first, then each stage switched off.
const char* kVariantSpecs[] = {
    "robust",
    "robust(enable_weighting=0)",
    "robust(enable_aging=0)",
    "robust(enable_offset_sanity=0)",
    "robust(enable_rate_sanity=0)",
    "robust(enable_level_shift=0)",
    "robust(use_local_rate=0)",
};

sim::ScenarioConfig stress_scenario() {
  sim::ScenarioConfig scenario;
  scenario.duration = 2 * duration::kDay;
  scenario.poll_period = 16.0;
  scenario.seed = 3434;
  // Stress: fault + permanent upward shift + heavy loss.
  scenario.events.add_server_fault(
      0.75 * duration::kDay, 0.75 * duration::kDay + 10 * duration::kMinute,
      0.150);
  scenario.events.add_level_shift(
      {1.25 * duration::kDay, sim::kForever, 0.8e-3, 0.0});
  auto path = sim::ScenarioConfig::path_preset(scenario.server);
  path.loss_prob = 0.01;
  path.forward.spike_prob = 0.12;
  scenario.path_override = path;
  return scenario;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Design ablations on a stress trace (fault + shift + loss)");

  const auto scenario = stress_scenario();
  const auto params = bench::params_for(scenario);
  const auto config =
      bench::session_config(params, /*discard_warmup_s=*/4 * duration::kHour);
  const auto& registry = harness::estimator_registry();

  // One Testbed drain, one lane per ablation spec: identical packets for
  // every variant by construction (the per-variant reruns this replaces
  // relied on the stream being estimator-independent; the fan-out makes
  // that structural).
  sim::Testbed testbed(scenario);
  harness::MultiEstimatorSession session;
  std::vector<std::unique_ptr<harness::CollectorSink>> sinks;
  std::vector<std::size_t> lanes;
  std::vector<std::string> labels;
  for (const char* text : kVariantSpecs) {
    const auto spec = registry.parse(text);
    labels.push_back(spec.label());
    lanes.push_back(session.add_lane(
        config, registry.make_online(spec, params, testbed.nominal_period())));
    sinks.push_back(std::make_unique<harness::CollectorSink>());
    session.add_sink(lanes.back(), *sinks.back());
  }
  session.run(testbed);

  TablePrinter table({"variant", "median |err| [us]", "p99 |err| [us]",
                      "worst [us]", "final rate err [PPM]"});
  double full_p99 = 0;
  for (std::size_t v = 0; v < lanes.size(); ++v) {
    std::vector<double> abs_errors;
    double worst = 0;
    for (const auto& record : sinks[v]->records()) {
      abs_errors.push_back(std::fabs(record.offset_error));
      worst = std::max(worst, abs_errors.back());
    }
    const auto abs_err = percentile_summary(abs_errors);
    const auto status = session.lane(lanes[v]).estimator().status();
    const double rate_err_ppm =
        std::fabs(status.period / testbed.true_period() - 1.0) * 1e6;
    if (labels[v] == "robust") full_p99 = abs_err.p99;
    table.add_row({labels[v], strfmt("%.1f", abs_err.p50 * 1e6),
                   strfmt("%.1f", abs_err.p99 * 1e6),
                   strfmt("%.1f", worst * 1e6),
                   strfmt("%.4f", rate_err_ppm)});
  }
  table.print(std::cout);
  print_comparison(std::cout, "full algorithm p99",
                   "every stage contributes under stress",
                   strfmt("%.1f us", full_p99 * 1e6));
  std::cout << "Reading: 'robust(enable_offset_sanity=0)' shows the server\n"
               "fault damage (worst error ~150 ms);\n"
               "'robust(enable_rate_sanity=0)' shows the poisoned p-bar;\n"
               "disabling weighting/aging degrades congestion rejection;\n"
               "disabling shift detection leaves post-shift packets\n"
               "mis-rated as congested. Every variant label is a sweep spec:\n"
               "tools/sweep --estimators accepts it verbatim.\n";
  return 0;
}
