// Table 1: absolute errors accumulated over key time intervals at the two
// key error rates (0.02 PPM: target accuracy of local rate estimates;
// 0.1 PPM: hardware stability bound). Δ(offset) = Δ(t) × rate-error.
#include <iostream>

#include "common/table.hpp"
#include "common/time_types.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout, "Table 1: absolute errors at key error rates and intervals");

  struct Row {
    const char* name;
    Seconds interval;
    const char* paper_002;  // paper's value at 0.02 PPM
    const char* paper_01;   // paper's value at 0.1 PPM
  };
  const Row rows[] = {
      {"Target RTT to NTP server", 1e-3, "0.02ns", "0.1ns"},
      {"Typical Internet RTT", 100e-3, "2ns", "10ns"},
      {"Standard unit", 1.0, "20ns", "0.1us"},
      {"Local SKM validity tau*=1000s", 1000.0, "20us", "0.1ms"},
      {"1 Daily cycle", 86400.0, "1.7ms", "8.6ms"},
      {"1 Weekly cycle", 604800.0, "12.1ms", "60.5ms"},
  };

  TablePrinter table({"Significant interval", "Duration", "err @0.02PPM",
                      "err @0.1PPM", "paper @0.02", "paper @0.1"});
  for (const auto& row : rows) {
    const Seconds e002 = row.interval * ppm(0.02);
    const Seconds e01 = row.interval * ppm(0.1);
    table.add_row({row.name, format_duration(row.interval),
                   format_duration(e002), format_duration(e01),
                   row.paper_002, row.paper_01});
  }
  table.print(std::cout);

  print_comparison(std::cout, "1 daily cycle @0.02PPM", "1.7ms",
                   format_duration(86400.0 * ppm(0.02)));
  print_comparison(std::cout, "1 weekly cycle @0.1PPM", "60.5ms",
                   format_duration(604800.0 * ppm(0.1)));
  std::cout << "Table 1 regenerated: errors are exactly interval x rate "
               "(pure arithmetic, matches the paper by construction).\n";
  return 0;
}
