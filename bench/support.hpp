// Shared helpers for the per-figure bench executables, built on the
// canonical drive layer in src/harness/ (harness::ClockSession): run_clock
// is a thin adapter that drives a Testbed stream through a TscNtpClock with
// the benches' historical conventions (ground-truth warm-up cut, DAG
// reference alignment) and collects the per-packet fields the figures plot.
//
// Reference convention (paper §2.4, §5.3): the reference offset of packet i
// is θg_i = C(Tf_i) − Tg_i, where C is the algorithm's own uncorrected
// clock; the reported error is θ̂(t_i) − θg_i. Because both use the same C,
// the arbitrary clock origin cancels and the error measures pure tracking
// quality (up to the Δ/2 asymmetry ambiguity). The alignment itself lives in
// harness::ClockSession — identically for benches, examples and the sweep.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "core/clock.hpp"
#include "core/params.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

namespace tscclock::bench {

/// One evaluated packet (non-lost, reference available).
struct RunPoint {
  double t_day = 0;            ///< server receive time [days]
  Seconds offset_error = 0;    ///< θ̂(t) − θg
  Seconds naive_error = 0;     ///< θ̂_i (naive) − θg
  Seconds point_error = 0;     ///< E_i
  Seconds offset_estimate = 0; ///< θ̂(t)
  Seconds reference_offset = 0;///< θg
  Seconds abs_clock_error = 0; ///< Ca(Tf_i) − Tg_i
  bool sanity_triggered = false;
  bool upshift = false;
  bool downshift = false;
};

struct RunResult {
  std::vector<RunPoint> points;
  core::ClockStatus final_status;
  std::size_t exchanges = 0;  ///< total generated (incl. lost)
  std::size_t lost = 0;
};

/// Feed every exchange of the testbed through a fresh TscNtpClock via
/// harness::ClockSession. `discard_warmup_s` drops the first seconds from
/// `points`, cut on ground-truth server time (WarmupPolicy::kGroundTruth —
/// the benches' historical convention; the paper's long traces are all
/// analysed post-warm-up). Server changes are forwarded to the clock, so
/// switching schedules are handled identically to the sweep.
RunResult run_clock(sim::Testbed& testbed, const core::Params& params,
                    Seconds discard_warmup_s = 0.0);

/// The benches' historical session configuration (ground-truth warm-up cut,
/// server-change forwarding), for benches that attach their own sinks.
harness::SessionConfig session_config(const core::Params& params,
                                      Seconds discard_warmup_s = 0.0);

/// Convert one evaluated harness record to a figure point.
RunPoint to_run_point(const harness::SampleRecord& record);

/// Extract one field from the run as a vector (for percentile summaries).
std::vector<double> offset_errors(const RunResult& run);
std::vector<double> naive_errors(const RunResult& run);

// Percentile table rendering (percentile_row_us / percentile_headers) moved
// to common/table.hpp so the benches and the sweep's estimator comparison
// render from one implementation.

/// Default parameters matched to a scenario's polling period.
core::Params params_for(const sim::ScenarioConfig& scenario);

}  // namespace tscclock::bench
