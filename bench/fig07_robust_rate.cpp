// Figure 7: relative error of the robust p̄ estimates for two acceptance
// thresholds E* = 20δ (0.3 ms) and E* = 5δ (75 µs), with the expected error
// bound 2E*/Δ(t). Errors fall below 0.1 PPM and never return above,
// insensitive to the choice of E* — unlike the naive estimates of Fig. 5.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct Run {
  std::vector<double> t_day;
  std::vector<double> rel_err;
  std::vector<double> bound;
  double accepted_fraction = 0;
};

Run run_with_threshold(double e_star) {
  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 707;
  sim::Testbed testbed(scenario);

  core::Params params = bench::params_for(scenario);
  params.rate_accept_error = e_star;
  const double truth = testbed.true_period();

  Run out;
  std::size_t accepted = 0;
  std::size_t total = 0;
  TscCount tf_first = 0;
  bool have_first = false;
  // The rate series includes reference-less packets (rate acceptance is a
  // host-side decision), so the session emits every non-lost record.
  auto config = bench::session_config(params);
  config.emit_unevaluated = true;
  harness::ClockSession session(config, testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    if (rec.lost) return;
    if (!have_first) {
      tf_first = rec.raw.tf;
      have_first = true;
    }
    ++total;
    if (rec.report.rate_accepted) ++accepted;
    if (!rec.warmed_up) return;
    out.t_day.push_back(rec.t_day);
    out.rel_err.push_back(std::fabs(rec.period / truth - 1.0));
    const double span =
        delta_to_seconds(counter_delta(rec.raw.tf, tf_first), truth);
    out.bound.push_back(2 * e_star / span);
  });
  session.add_sink(collect);
  session.run(testbed);
  out.accepted_fraction =
      static_cast<double>(accepted) / static_cast<double>(total);
  return out;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Figure 7: robust rate error for E* = 20*delta and 5*delta");
  const core::Params defaults;
  const Run wide = run_with_threshold(20 * defaults.delta);
  const Run narrow = run_with_threshold(5 * defaults.delta);

  TablePrinter table({"Te [day]", "err E*=20d [PPM]", "bound [PPM]",
                      "err E*=5d [PPM]", "bound [PPM]"});
  for (std::size_t i = 0; i < wide.t_day.size();
       i += wide.t_day.size() / 20 + 1) {
    const std::size_t j = std::min(i, narrow.t_day.size() - 1);
    table.add_row({strfmt("%.3f", wide.t_day[i]),
                   strfmt("%.5f", to_ppm(wide.rel_err[i])),
                   strfmt("%.5f", to_ppm(wide.bound[i])),
                   strfmt("%.5f", to_ppm(narrow.rel_err[j])),
                   strfmt("%.5f", to_ppm(narrow.bound[j]))});
  }
  table.print(std::cout);

  double worst_tail_wide = 0;
  double worst_tail_narrow = 0;
  for (std::size_t i = 0; i < wide.t_day.size(); ++i)
    if (wide.t_day[i] > 0.25)
      worst_tail_wide = std::max(worst_tail_wide, wide.rel_err[i]);
  for (std::size_t i = 0; i < narrow.t_day.size(); ++i)
    if (narrow.t_day[i] > 0.25)
      worst_tail_narrow = std::max(worst_tail_narrow, narrow.rel_err[i]);

  print_comparison(std::cout, "errors fall below 0.1 PPM and stay",
                   "both thresholds",
                   strfmt("worst after day 0.25: %.4f PPM (20d), %.4f PPM (5d)",
                          to_ppm(worst_tail_wide), to_ppm(worst_tail_narrow)));
  print_comparison(std::cout, "fraction of packets accepted",
                   "72%% (20d) / 3.9%% (5d) on the paper's path",
                   strfmt("%.1f%% / %.1f%% on the simulated path",
                          100 * wide.accepted_fraction,
                          100 * narrow.accepted_fraction));
  std::cout << "Insensitivity to E* is the point: both accept-rates give\n"
               "errors bounded by 2E*/Delta(t), damped by the baseline.\n";
  return 0;
}
