// Figure 10: offset error percentiles across the four host-server
// environments (Lab-Int, MR-Int, MR-Loc, MR-Ext) at a 64 s poll:
//   * moving laboratory → machine room reduces variability;
//   * moving ServerInt → ServerLoc improves further;
//   * ServerExt jumps in median (path asymmetry Δ/2 ≈ 250 µs) and spread
//     (quality packets much rarer over ~10 hops).
#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

PercentileSummary run_env(sim::Environment env, sim::ServerKind kind,
                          double days) {
  sim::ScenarioConfig scenario;
  scenario.environment = env;
  scenario.server = kind;
  scenario.poll_period = 64.0;
  scenario.duration = days * duration::kDay;
  scenario.seed = 1010;
  sim::Testbed testbed(scenario);
  core::Params params;
  params.poll_period = scenario.poll_period;
  auto run = bench::run_clock(testbed, params,
                              /*discard_warmup_s=*/6 * duration::kHour);
  return percentile_summary(bench::offset_errors(run));
}

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 5.0;
  print_banner(std::cout,
               "Figure 10: performance over four operating environments");

  TablePrinter table(percentile_headers("environment"));
  const auto lab_int =
      run_env(sim::Environment::kLaboratory, sim::ServerKind::kInt, days);
  const auto mr_int =
      run_env(sim::Environment::kMachineRoom, sim::ServerKind::kInt, days);
  const auto mr_loc =
      run_env(sim::Environment::kMachineRoom, sim::ServerKind::kLoc, days);
  const auto mr_ext =
      run_env(sim::Environment::kMachineRoom, sim::ServerKind::kExt, days);
  table.add_row(percentile_row_us("Lab-Int", lab_int));
  table.add_row(percentile_row_us("MR-Int", mr_int));
  table.add_row(percentile_row_us("MR-Loc", mr_loc));
  table.add_row(percentile_row_us("MR-Ext", mr_ext));
  table.print(std::cout);

  print_comparison(std::cout, "lab -> machine room",
                   "reduced variability",
                   strfmt("spread %.1f us -> %.1f us",
                          (lab_int.p99 - lab_int.p01) * 1e6,
                          (mr_int.p99 - mr_int.p01) * 1e6));
  print_comparison(std::cout, "ServerInt -> ServerLoc",
                   "further improvement",
                   strfmt("IQR %.1f us -> %.1f us", mr_int.iqr() * 1e6,
                          mr_loc.iqr() * 1e6));
  print_comparison(std::cout, "ServerExt median jump",
                   "~Delta/2 = 250 us (vs 25 us nearby)",
                   strfmt("%+.1f us median (vs %+.1f us for MR-Int)",
                          mr_ext.p50 * 1e6, mr_int.p50 * 1e6));
  print_comparison(std::cout, "ServerExt spread",
                   "larger: quality packets rarer over ~10 hops",
                   strfmt("IQR %.1f us (vs %.1f us MR-Int)",
                          mr_ext.iqr() * 1e6, mr_int.iqr() * 1e6));
  std::cout << "Note: even against a server 1000 km away the error is\n"
               "bounded by ~Delta/2, far below the 14.2 ms RTT.\n";
  return 0;
}
