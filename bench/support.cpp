#include "support.hpp"

#include "common/table.hpp"

namespace tscclock::bench {

harness::SessionConfig session_config(const core::Params& params,
                                      Seconds discard_warmup_s) {
  harness::SessionConfig config;
  config.params = params;
  config.discard_warmup = discard_warmup_s;
  config.warmup_policy = harness::WarmupPolicy::kGroundTruth;
  return config;
}

RunPoint to_run_point(const harness::SampleRecord& record) {
  RunPoint pt;
  pt.t_day = record.t_day;
  pt.reference_offset = record.reference_offset;
  pt.offset_estimate = record.report.offset_estimate;
  pt.offset_error = record.offset_error;
  pt.naive_error = record.naive_error;
  pt.point_error = record.report.point_error;
  pt.abs_clock_error = record.abs_clock_error;
  pt.sanity_triggered = record.report.sanity_triggered;
  pt.upshift = record.report.shift && record.report.shift->upward;
  pt.downshift = record.report.shift && !record.report.shift->upward;
  return pt;
}

RunResult run_clock(sim::Testbed& testbed, const core::Params& params,
                    Seconds discard_warmup_s) {
  RunResult result;
  harness::ClockSession session(session_config(params, discard_warmup_s),
                                testbed.nominal_period());
  harness::CallbackSink points([&](const harness::SampleRecord& record) {
    result.points.push_back(to_run_point(record));
  });
  session.add_sink(points);
  const auto& summary = session.run(testbed);
  result.exchanges = summary.exchanges;
  result.lost = summary.lost;
  result.final_status = summary.final_status;
  return result;
}

std::vector<double> offset_errors(const RunResult& run) {
  std::vector<double> out;
  out.reserve(run.points.size());
  for (const auto& p : run.points) out.push_back(p.offset_error);
  return out;
}

std::vector<double> naive_errors(const RunResult& run) {
  std::vector<double> out;
  out.reserve(run.points.size());
  for (const auto& p : run.points) out.push_back(p.naive_error);
  return out;
}

core::Params params_for(const sim::ScenarioConfig& scenario) {
  return core::Params::for_poll_period(scenario.poll_period);
}

}  // namespace tscclock::bench
