#include "support.hpp"

#include "common/table.hpp"

namespace tscclock::bench {

// The sweep engine's run_scenario (src/sweep/sweep.cpp) mirrors this drive
// loop; changes to the exchange-processing sequence here should be applied
// there too.
RunResult run_clock(sim::Testbed& testbed, const core::Params& params,
                    Seconds discard_warmup_s) {
  RunResult result;
  core::TscNtpClock clock(params, testbed.nominal_period());

  while (auto ex = testbed.next()) {
    ++result.exchanges;
    if (ex->lost) {
      ++result.lost;
      continue;
    }
    core::RawExchange raw{ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                          ex->tf_counts};
    const auto report = clock.process_exchange(raw);
    if (!ex->ref_available) continue;
    if (ex->truth.tb < discard_warmup_s) continue;

    RunPoint pt;
    pt.t_day = ex->tb_stamp / duration::kDay;
    pt.reference_offset = clock.uncorrected_time(ex->tf_counts) - ex->tg;
    pt.offset_estimate = report.offset_estimate;
    pt.offset_error = report.offset_estimate - pt.reference_offset;
    pt.naive_error = report.naive_offset - pt.reference_offset;
    pt.point_error = report.point_error;
    pt.abs_clock_error = clock.absolute_time(ex->tf_counts) - ex->tg;
    pt.sanity_triggered = report.sanity_triggered;
    pt.upshift = report.shift && report.shift->upward;
    pt.downshift = report.shift && !report.shift->upward;
    result.points.push_back(pt);
  }
  result.final_status = clock.status();
  return result;
}

std::vector<double> offset_errors(const RunResult& run) {
  std::vector<double> out;
  out.reserve(run.points.size());
  for (const auto& p : run.points) out.push_back(p.offset_error);
  return out;
}

std::vector<double> naive_errors(const RunResult& run) {
  std::vector<double> out;
  out.reserve(run.points.size());
  for (const auto& p : run.points) out.push_back(p.naive_error);
  return out;
}

std::vector<std::string> percentile_row_us(const std::string& label,
                                           const PercentileSummary& s) {
  return {label,
          strfmt("%8.1f", s.p01 * 1e6),
          strfmt("%8.1f", s.p25 * 1e6),
          strfmt("%8.1f", s.p50 * 1e6),
          strfmt("%8.1f", s.p75 * 1e6),
          strfmt("%8.1f", s.p99 * 1e6),
          strfmt("%7.1f", s.iqr() * 1e6)};
}

std::vector<std::string> percentile_headers(const std::string& first) {
  return {first,       "p1 [us]",  "p25 [us]", "median [us]",
          "p75 [us]",  "p99 [us]", "IQR [us]"};
}

core::Params params_for(const sim::ScenarioConfig& scenario) {
  return core::Params::for_poll_period(scenario.poll_period);
}

}  // namespace tscclock::bench
