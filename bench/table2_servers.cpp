// Table 2: characteristics of the three stratum-1 NTP servers — minimum
// RTT and path asymmetry Δ, measured from week-long simulated traces the
// same way the paper measures them (min over the trace; Δ̂ via the DAG
// estimator of §4.2 at the minimum-RTT packet).
#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct Row {
  sim::ServerKind kind;
  const char* reference;
  const char* distance;
  const char* hops;
  double paper_rtt_ms;
  double paper_delta_us;
};

}  // namespace

int main() {
  print_banner(std::cout, "Table 2: characteristics of the stratum-1 NTP servers");
  const Row rows[] = {
      {sim::ServerKind::kLoc, "GPS", "3 m", "2", 0.38, 50},
      {sim::ServerKind::kInt, "GPS", "300 m", "5", 0.89, 50},
      {sim::ServerKind::kExt, "Atomic", "1000 km", "~10", 14.2, 500},
  };

  TablePrinter table({"Server", "Reference", "Distance", "Hops",
                      "RTT [ms] paper", "RTT [ms] measured",
                      "Delta [us] paper", "Delta [us] measured"});

  for (const auto& row : rows) {
    sim::ScenarioConfig scenario;
    scenario.server = row.kind;
    scenario.duration = duration::kWeek;
    scenario.poll_period = 16.0;
    scenario.seed = 20040704;
    sim::Testbed testbed(scenario);
    const double period = testbed.true_period();

    // Minimum host-measured RTT over the week, and the paper's Δ estimator
    // Δ̂_i = (Tf−Ta)·p̂ − 2·Tg + Tb + Te evaluated at the min-RTT packet.
    double min_rtt = 1e9;
    double delta_at_min = 0;
    harness::ClockSession session(
        bench::session_config(bench::params_for(scenario)),
        testbed.nominal_period());
    harness::CallbackSink track_min([&](const harness::SampleRecord& rec) {
      const double rtt =
          delta_to_seconds(counter_delta(rec.raw.tf, rec.raw.ta), period);
      if (rtt < min_rtt) {
        min_rtt = rtt;
        delta_at_min = rtt - 2 * rec.tg + rec.raw.tb + rec.raw.te;
      }
    });
    session.add_sink(track_min);
    session.run(testbed);

    table.add_row({to_string(row.kind), row.reference, row.distance, row.hops,
                   strfmt("%.2f", row.paper_rtt_ms),
                   strfmt("%.2f", min_rtt * 1e3),
                   strfmt("%.0f", row.paper_delta_us),
                   strfmt("%.0f", delta_at_min * 1e6)});
  }
  table.print(std::cout);
  std::cout << "Note: measured RTT includes host timestamping latencies on\n"
               "top of the configured network minimum, exactly as a real\n"
               "host would observe; Delta is recovered by the paper's own\n"
               "single-reference-clock estimator (sensitive to µs-level\n"
               "timestamping noise, as §4.2 discusses).\n";
  return 0;
}
