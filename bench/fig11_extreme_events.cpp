// Figure 11: behaviour under extreme conditions, one panel per scenario:
//   (a) a 3.8-day data gap — fast recovery, no warm-up repeat;
//   (b) a 150 ms server timestamp error for a few minutes — the sanity
//       check contains the damage to ~1 ms;
//   (c) artificial +0.9 ms upward level shifts (host→server only): one
//       shorter than Ts (never detected, harmless), one permanent
//       (detected a time Ts later; ~0.45 ms estimate jump from the Δ
//       change);
//   (d) a symmetric downward shift (Δ unchanged) — absorbed instantly
//       with no impact.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

bench::RunResult run_events(const sim::EventSchedule& events, double days,
                            sim::ServerKind kind = sim::ServerKind::kInt) {
  sim::ScenarioConfig scenario;
  scenario.server = kind;
  scenario.duration = days * duration::kDay;
  scenario.poll_period = 16.0;
  scenario.seed = 1111;
  scenario.events = events;
  sim::Testbed testbed(scenario);
  core::Params params;
  params.poll_period = scenario.poll_period;
  return bench::run_clock(testbed, params, /*discard_warmup_s=*/0);
}

PercentileSummary errors_between(const bench::RunResult& run, double lo_day,
                                 double hi_day) {
  std::vector<double> errs;
  for (const auto& p : run.points)
    if (p.t_day >= lo_day && p.t_day < hi_day) errs.push_back(p.offset_error);
  return percentile_summary(errs);
}

}  // namespace

int main() {
  // ---- (a) 3.8-day gap ---------------------------------------------------
  print_banner(std::cout, "Figure 11(a): recovery after a 3.8-day data gap");
  {
    sim::EventSchedule events;
    events.add_outage(1.0 * duration::kDay, 4.8 * duration::kDay);
    const auto run = run_events(events, 6.0);

    // First packets after the gap.
    TablePrinter table({"packets after gap", "offset error [us]"});
    std::size_t after = 0;
    double recovered_at = -1;
    for (const auto& p : run.points) {
      if (p.t_day < 4.8) continue;
      ++after;
      if (after <= 8 || after == 50 || after == 500)
        table.add_row({strfmt("%zu", after),
                       strfmt("%+.1f", p.offset_error * 1e6)});
      if (recovered_at < 0 && std::fabs(p.offset_error) < 100e-6)
        recovered_at = static_cast<double>(after);
    }
    table.print(std::cout);
    const auto tail = errors_between(run, 5.0, 6.0);
    print_comparison(std::cout, "recovery", "fast, no warm-up repeat",
                     strfmt("error < 100 us within %.0f packet(s)",
                            recovered_at));
    print_comparison(std::cout, "post-gap median",
                     "back to normal (~30 us)",
                     strfmt("%+.1f us (IQR %.1f us)", tail.p50 * 1e6,
                            tail.iqr() * 1e6));
  }

  // ---- (b) 150 ms server error -------------------------------------------
  print_banner(std::cout, "Figure 11(b): 150 ms server timestamp error");
  {
    sim::EventSchedule events;
    events.add_server_fault(0.5 * duration::kDay,
                            0.5 * duration::kDay + 5 * duration::kMinute,
                            0.150);
    const auto run = run_events(events, 1.0);
    double worst = 0;
    for (const auto& p : run.points)
      if (p.t_day > 0.25)
        worst = std::max(worst, std::fabs(p.offset_error));
    print_comparison(std::cout, "fault size vs damage",
                     "150 ms fault -> damage limited to ~1 ms",
                     strfmt("worst error %.2f ms (%.0fx contained)",
                            worst * 1e3, 0.150 / worst));
    print_comparison(
        std::cout, "sanity check triggered", "yes",
        strfmt("%s trigger(s)",
               format_count(run.final_status.offset_sanity_triggers).c_str()));
    const auto tail = errors_between(run, 0.7, 1.0);
    print_comparison(std::cout, "after the fault clears",
                     "returns to ~30 us with no reset",
                     strfmt("median %+.1f us", tail.p50 * 1e6));
  }

  // ---- (c) artificial upward shifts ---------------------------------------
  print_banner(std::cout,
               "Figure 11(c): +0.9 ms upward shifts (host->server only)");
  {
    sim::EventSchedule events;
    // Temporary shift shorter than Ts = 2500 s: should never be detected.
    events.add_level_shift({0.3 * duration::kDay,
                            0.3 * duration::kDay + 1500.0, 0.9e-3, 0.0});
    // Permanent shift at day 0.6.
    events.add_level_shift({0.6 * duration::kDay, sim::kForever, 0.9e-3, 0.0});
    const auto run = run_events(events, 1.2);

    double detect_day = -1;
    for (const auto& p : run.points)
      if (p.upshift) {
        detect_day = p.t_day;
        break;
      }
    const auto before = errors_between(run, 0.45, 0.6);
    const auto after = errors_between(run, 0.8, 1.2);
    print_comparison(std::cout, "temporary shift (< Ts)",
                     "never detected, little impact",
                     strfmt("upshifts detected before day 0.5: %s",
                            detect_day > 0 && detect_day < 0.5 ? "1" : "0"));
    print_comparison(
        std::cout, "permanent shift detection delay", "Ts = 2500 s later",
        detect_day > 0
            ? strfmt("%.0f s after the shift",
                     (detect_day - 0.6) * duration::kDay)
            : "NOT DETECTED");
    print_comparison(std::cout, "estimate jump across the shift",
                     "~0.45 ms (= Delta change / 2)",
                     strfmt("%+.2f ms median shift",
                            (after.p50 - before.p50) * 1e3));
    print_comparison(std::cout, "stability after absorption",
                     "estimates stable again",
                     strfmt("IQR %.1f us", after.iqr() * 1e6));
  }

  // ---- (d) symmetric downward shift ---------------------------------------
  print_banner(std::cout,
               "Figure 11(d): symmetric 0.36 ms downward shift (ServerExt)");
  {
    sim::EventSchedule events;
    events.add_level_shift(
        {0.5 * duration::kDay, sim::kForever, -0.18e-3, -0.18e-3});
    const auto run = run_events(events, 1.0, sim::ServerKind::kExt);
    const auto before = errors_between(run, 0.25, 0.5);
    const auto after = errors_between(run, 0.5, 1.0);
    print_comparison(std::cout, "downward shift reaction",
                     "immediate and seamless (Delta unchanged)",
                     strfmt("median %+.1f us -> %+.1f us", before.p50 * 1e6,
                            after.p50 * 1e6));
    print_comparison(std::cout, "downshift events observed", ">= 1",
                     format_count(run.final_status.downshifts));
  }
  return 0;
}
