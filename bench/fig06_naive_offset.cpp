// Figure 6: naive per-packet offset estimates θ̂_i against reference values:
// ms-scale noise, biased negative because the forward path carries more
// queueing than the backward one (the (q← − q→)/2 histogram of §4.2).
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout,
               "Figure 6: naive per-packet offset estimates vs reference");

  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 505;  // same trace family as Figure 5
  sim::Testbed testbed(scenario);

  harness::ClockSession session(
      bench::session_config(bench::params_for(scenario)),
      testbed.nominal_period());

  std::vector<double> naive_err;
  std::vector<double> t_day;
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    naive_err.push_back(rec.naive_error);
    t_day.push_back(rec.t_day);
  });
  session.add_sink(collect);
  session.run(testbed);

  TablePrinter table({"Te [day]", "naive offset error [ms]"});
  for (std::size_t i = 0; i < naive_err.size();
       i += naive_err.size() / 24 + 1)
    table.add_row({strfmt("%.3f", t_day[i]),
                   strfmt("%+.4f", naive_err[i] * 1e3)});
  table.print(std::cout);

  const auto s = summarize(naive_err);
  TablePrinter stats({"stat", "value [us]"});
  stats.add_row({"median", strfmt("%+.1f", s.percentiles.p50 * 1e6)});
  stats.add_row({"mean", strfmt("%+.1f", s.mean * 1e6)});
  stats.add_row({"p1", strfmt("%+.1f", s.percentiles.p01 * 1e6)});
  stats.add_row({"p99", strfmt("%+.1f", s.percentiles.p99 * 1e6)});
  stats.add_row({"worst", strfmt("%+.1f", s.min * 1e6)});
  stats.print(std::cout);

  print_comparison(std::cout, "noise scale vs naive rate estimates",
                   "ms-scale, not damped by any baseline",
                   strfmt("p1..p99 spread %.2f ms",
                          (s.percentiles.p99 - s.percentiles.p01) * 1e3));
  print_comparison(std::cout, "bias direction",
                   "negative (forward path more utilised)",
                   strfmt("mean %+.1f us, median %+.1f us", s.mean * 1e6,
                          s.percentiles.p50 * 1e6));
  return 0;
}
