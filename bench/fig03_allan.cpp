// Figure 3: Allan deviation of the host oscillator under four host-server
// environments (Lab-Int, MR-Int, MR-Loc, MR-Ext). The paper's reading:
//   * 1/τ decrease at small scales (white timestamping noise + SKM);
//   * meaningful rate precision down to ~0.01 PPM near τ* = 1000 s;
//   * divergence and rise at large scales, but bounded by 0.1 PPM.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/allan.hpp"
#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct TraceAllan {
  std::string name;
  std::vector<AllanPoint> points;
};

TraceAllan analyze(sim::Environment env, sim::ServerKind kind,
                   Seconds duration, std::uint64_t seed) {
  sim::ScenarioConfig scenario;
  scenario.environment = env;
  scenario.server = kind;
  scenario.duration = duration;
  scenario.poll_period = 16.0;
  scenario.seed = seed;
  sim::Testbed testbed(scenario);

  // Reference offsets θg at packet times (corrected Tf as in the paper:
  // the DAG stamp is the time reference, the counter the phase source).
  std::vector<double> times;
  std::vector<double> theta;
  TscCount tf0 = 0;
  double tg0 = 0;
  bool first = true;
  const double period = testbed.true_period();
  // "Corrected Tf,i timestamps were used here, as otherwise the
  // timestamping noise adds considerable spurious variation at small
  // scales" (§3.1).
  harness::ClockSession session(
      bench::session_config(bench::params_for(scenario)),
      testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    if (first) {
      tf0 = rec.tf_counts_corrected;
      tg0 = rec.tg;
      first = false;
    }
    const double elapsed =
        delta_to_seconds(counter_delta(rec.tf_counts_corrected, tf0), period);
    times.push_back(rec.tg - tg0);
    theta.push_back(elapsed - (rec.tg - tg0));
  });
  session.add_sink(collect);
  session.run(testbed);

  const auto regular = resample_linear(times, theta, scenario.poll_period);
  const auto factors = log_spaced_factors(regular.size(), 4);
  TraceAllan out;
  out.name = to_string(env).substr(0, 3) + "-" +
             to_string(kind).substr(6);  // e.g. "mac-Int"
  out.points = allan_deviation(regular, scenario.poll_period, factors);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;
  print_banner(std::cout, "Figure 3: Allan deviation plots (4 environments)");

  const TraceAllan traces[] = {
      analyze(sim::Environment::kLaboratory, sim::ServerKind::kInt,
              days * duration::kDay, 1),
      analyze(sim::Environment::kMachineRoom, sim::ServerKind::kInt,
              days * duration::kDay, 2),
      analyze(sim::Environment::kMachineRoom, sim::ServerKind::kLoc,
              days * duration::kDay, 3),
      analyze(sim::Environment::kMachineRoom, sim::ServerKind::kExt,
              days * duration::kDay, 4),
  };

  TablePrinter table({"tau [s]", "Lab-Int [PPM]", "MR-Int [PPM]",
                      "MR-Loc [PPM]", "MR-Ext [PPM]"});
  for (std::size_t k = 0; k < traces[0].points.size(); ++k) {
    std::vector<std::string> row{strfmt("%.0f", traces[0].points[k].tau)};
    for (const auto& tr : traces)
      row.push_back(k < tr.points.size()
                        ? strfmt("%.4f", to_ppm(tr.points[k].deviation))
                        : "-");
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Shape checks against the paper's reading of the figure.
  const auto& mr_int = traces[1].points;
  double adev_small = 0;
  double tau_small = 0;
  double min_adev = 1.0;
  double max_adev = 0;
  for (const auto& p : mr_int) {
    if (tau_small == 0) {
      tau_small = p.tau;
      adev_small = p.deviation;
    }
    // The precision floor lives near τ*; periodic wander produces spurious
    // Allan nulls at much larger τ, so restrict the floor search.
    if (p.tau <= 3000) min_adev = std::min(min_adev, p.deviation);
    if (p.tau > 2000) max_adev = std::max(max_adev, p.deviation);
  }
  // 1/τ slope: ADEV(16 s)/ADEV(~256 s) should be ≈ τ ratio.
  double adev_256 = 0;
  double tau_256 = 0;
  for (const auto& p : mr_int) {
    if (std::fabs(p.tau - 256.0) < std::fabs(tau_256 - 256.0)) {
      tau_256 = p.tau;
      adev_256 = p.deviation;
    }
  }
  if (adev_256 > 0) {
    print_comparison(std::cout,
                     strfmt("small-scale slope ADEV(16s)/ADEV(%.0fs)",
                            tau_256),
                     strfmt("~%.0f (1/tau)", tau_256 / tau_small),
                     strfmt("%.1f", adev_small / adev_256));
  }
  print_comparison(std::cout, "minimum ADEV (rate precision floor)",
                   "~0.01 PPM near tau*=1000 s",
                   strfmt("%.4f PPM", to_ppm(min_adev)));
  print_comparison(std::cout, "large-scale bound", "< 0.1 PPM",
                   strfmt("%.4f PPM (max beyond 2000 s)", to_ppm(max_adev)));
  return 0;
}
