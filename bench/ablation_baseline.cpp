// Ablation vs the SW-NTP baseline (the comparison the paper's introduction
// motivates): TSC-NTP and an ntpd-style disciplined clock run head-to-head
// on identical exchange streams:
//   (i)   a clean day — both are fine, TSC-NTP is ~100× tighter;
//   (ii)  a congested day — SW-NTP errors grow well beyond RTT noise;
//   (iii) a 25-minute 150 ms server fault — SW-NTP eventually *steps*
//         (the reset the paper criticizes), TSC-NTP's sanity check holds;
//   (iv)  rate stability — SW-NTP deliberately varies its rate to chase
//         offset; the TSC difference clock stays within the hardware bound.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "baseline/swntp.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/estimator.hpp"
#include "support.hpp"

using namespace tscclock;

namespace {

struct HeadToHead {
  PercentileSummary tsc;       // |error| percentiles
  PercentileSummary sw;
  double tsc_worst = 0;
  double sw_worst = 0;
  std::uint64_t sw_steps = 0;
  std::uint64_t tsc_sanity = 0;
  double sw_rate_wobble_ppm = 0;   // max-min effective rate
  double tsc_rate_wobble_ppm = 0;  // max-min difference-clock rate
};

HeadToHead duel(const sim::EventSchedule& events, bool congested,
                std::uint64_t seed) {
  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.poll_period = 16.0;
  scenario.seed = seed;
  scenario.events = events;
  if (congested) {
    auto path = sim::ScenarioConfig::path_preset(scenario.server);
    path.forward.spike_prob = 0.35;
    path.backward.spike_prob = 0.25;
    path.forward.congestion_mean_interval = duration::kHour;
    path.forward.congestion_mean_duration = 20 * duration::kMinute;
    scenario.path_override = path;
  }
  sim::Testbed testbed(scenario);

  core::Params params;
  params.poll_period = scenario.poll_period;
  // Both clocks run as estimator lanes of one MultiEstimatorSession, fed the
  // identical exchange sequence (warm-up included — every lane processes
  // every non-lost exchange regardless of emission flags). Both start from
  // the same nominal tick (same ~52 PPM initial error).
  const auto config = bench::session_config(params, 2 * duration::kHour);
  harness::MultiEstimatorSession session;
  const std::size_t tsc_lane = session.add_lane(
      config, std::make_unique<harness::TscNtpEstimator>(
                  params, testbed.nominal_period()));
  auto sw_estimator = std::make_unique<harness::SwNtpEstimator>(
      baseline::PllConfig{}, testbed.nominal_period());
  const baseline::SwNtpClock& sw = sw_estimator->sw_clock();
  const std::size_t sw_lane = session.add_lane(config, std::move(sw_estimator));

  HeadToHead result;
  std::vector<double> tsc_err;
  std::vector<double> sw_err;
  double sw_rate_min = 10;
  double sw_rate_max = 0;
  double tsc_rate_min = 10;
  double tsc_rate_max = 0;
  const double truth = testbed.true_period();

  harness::CallbackSink tsc_sink([&](const harness::SampleRecord& rec) {
    tsc_err.push_back(std::fabs(rec.abs_clock_error));
    result.tsc_worst = std::max(result.tsc_worst, tsc_err.back());
    const double tsc_rate = rec.period / truth;
    tsc_rate_min = std::min(tsc_rate_min, tsc_rate);
    tsc_rate_max = std::max(tsc_rate_max, tsc_rate);
  });
  harness::CallbackSink sw_sink([&](const harness::SampleRecord& rec) {
    sw_err.push_back(std::fabs(rec.abs_clock_error));
    result.sw_worst = std::max(result.sw_worst, sw_err.back());
    sw_rate_min = std::min(sw_rate_min, sw.effective_rate());
    sw_rate_max = std::max(sw_rate_max, sw.effective_rate());
  });
  session.add_sink(tsc_lane, tsc_sink);
  session.add_sink(sw_lane, sw_sink);
  session.run(testbed);

  result.tsc = percentile_summary(tsc_err);
  result.sw = percentile_summary(sw_err);
  result.sw_steps = sw.status().steps;
  result.tsc_sanity = session.lane(tsc_lane)
                          .summary()
                          .final_status.offset_sanity_triggers;
  result.sw_rate_wobble_ppm = (sw_rate_max - sw_rate_min) * 1e6;
  result.tsc_rate_wobble_ppm = (tsc_rate_max - tsc_rate_min) * 1e6;
  return result;
}

void report(const char* name, const HeadToHead& r) {
  TablePrinter table({"clock", "median |err| [us]", "p99 |err| [us]",
                      "worst [us]", "steps", "rate wobble [PPM]"});
  table.add_row({"TSC-NTP", strfmt("%.1f", r.tsc.p50 * 1e6),
                 strfmt("%.1f", r.tsc.p99 * 1e6),
                 strfmt("%.1f", r.tsc_worst * 1e6), "0 (by design)",
                 strfmt("%.4f", r.tsc_rate_wobble_ppm)});
  table.add_row({"SW-NTP", strfmt("%.1f", r.sw.p50 * 1e6),
                 strfmt("%.1f", r.sw.p99 * 1e6),
                 strfmt("%.1f", r.sw_worst * 1e6), format_count(r.sw_steps),
                 strfmt("%.4f", r.sw_rate_wobble_ppm)});
  print_banner(std::cout, name);
  table.print(std::cout);
}

}  // namespace

int main() {
  report("Baseline duel (i): clean day, ServerInt",
         duel(sim::EventSchedule{}, false, 21));

  report("Baseline duel (ii): heavily congested day",
         duel(sim::EventSchedule{}, true, 22));

  sim::EventSchedule fault;
  fault.add_server_fault(0.5 * duration::kDay,
                         0.5 * duration::kDay + 25 * duration::kMinute,
                         0.150);
  const auto faulted = duel(fault, false, 23);
  report("Baseline duel (iii): 25-minute 150 ms server fault", faulted);
  print_comparison(std::cout, "SW-NTP reset behaviour",
                   "steps (resets) to follow the faulty server",
                   strfmt("%s step(s); worst error %.1f ms",
                          format_count(faulted.sw_steps).c_str(),
                          faulted.sw_worst * 1e3));
  print_comparison(std::cout, "TSC-NTP sanity behaviour",
                   "no reset, damage ~1 ms",
                   strfmt("%s sanity trigger(s); worst error %.2f ms",
                          format_count(faulted.tsc_sanity).c_str(),
                          faulted.tsc_worst * 1e3));
  std::cout << "\nRate: the SW-NTP clock deliberately varies its rate by\n"
               "many PPM to chase offset; the TSC difference clock's rate\n"
               "stays within the 0.1 PPM hardware bound (paper §1).\n";
  return 0;
}
