// Figure 5: naive per-packet rate estimates (backward direction, j = 1)
// with steadily growing Δ(t), against DAG reference rates. The bulk falls
// within ±0.1 PPM quickly (errors damped as 1/Δ), but congested packets
// still produce large outliers — the motivation for the robust scheme.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "support.hpp"

using namespace tscclock;

int main() {
  print_banner(std::cout,
               "Figure 5: naive per-packet rate estimates vs reference");

  sim::ScenarioConfig scenario;
  scenario.duration = duration::kDay;
  scenario.seed = 505;
  sim::Testbed testbed(scenario);

  struct Sample {
    double t_day;
    double naive_ppm;  // (p̂←_{i,1} − p̄)/p̄
    double ref_ppm;    // reference from DAG stamps
  };
  std::vector<Sample> samples;

  bool have_first = false;
  core::RawExchange first;
  double tg_first = 0;
  const double pbar = testbed.true_period();  // detrending p̄ (§3.1 analog)

  std::size_t within_01ppm_late = 0;
  std::size_t late_total = 0;
  double worst_late = 0;

  harness::ClockSession session(
      bench::session_config(bench::params_for(scenario)),
      testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    if (!have_first) {
      first = rec.raw;
      tg_first = rec.tg;
      have_first = true;
      return;
    }
    const double backward =
        (rec.raw.te - first.te) /
        static_cast<double>(counter_delta(rec.raw.tf, first.tf));
    const double reference =
        (rec.tg - tg_first) /
        static_cast<double>(counter_delta(rec.raw.tf, first.tf));
    Sample s;
    s.t_day = rec.t_day;
    s.naive_ppm = (backward - pbar) / pbar * 1e6;
    s.ref_ppm = (reference - pbar) / pbar * 1e6;
    samples.push_back(s);

    if (s.t_day > 0.1) {  // after the first ~2.4 hours of damping
      ++late_total;
      const double err = std::fabs(s.naive_ppm - s.ref_ppm);
      if (err < 0.1) ++within_01ppm_late;
      worst_late = std::max(worst_late, err);
    }
  });
  session.add_sink(collect);
  session.run(testbed);

  TablePrinter table({"Te [day]", "naive (p-pbar)/pbar [PPM]",
                      "reference [PPM]"});
  for (std::size_t i = 0; i < samples.size(); i += samples.size() / 24 + 1)
    table.add_row({strfmt("%.3f", samples[i].t_day),
                   strfmt("%+.4f", samples[i].naive_ppm),
                   strfmt("%+.4f", samples[i].ref_ppm)});
  table.print(std::cout);

  print_comparison(
      std::cout, "bulk of estimates within 0.1 PPM after damping",
      "most, but outliers persist",
      strfmt("%.1f%% within, worst outlier %.3f PPM",
             100.0 * static_cast<double>(within_01ppm_late) /
                 static_cast<double>(late_total),
             worst_late));
  std::cout << "A single congested packet (queueing > 8.6 ms) breaks the\n"
               "0.1 PPM bound even at a one-day baseline (Table 1): naive\n"
               "estimates cannot bound their own error.\n";
  return 0;
}
