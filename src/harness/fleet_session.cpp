#include "harness/fleet_session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace tscclock::harness {

namespace {
/// Same chunk size as ClockSession::run_batched — part of the 1-client
/// bit-identity contract (identical generate_batch/process_batch call
/// sequence, hence identical draws and emission order).
constexpr std::size_t kFleetChunk = 1024;
}  // namespace

std::size_t FleetSession::add_client(
    const SessionConfig& config, std::unique_ptr<ClockEstimator> estimator) {
  const std::size_t k = clients_.size();
  SessionConfig lane = config;
  lane.client_id = static_cast<std::uint32_t>(k);
  clients_.push_back(
      std::make_unique<ClockSession>(lane, std::move(estimator)));
  probes_.push_back(std::make_unique<FleetClientProbe>());
  clients_.back()->add_sink(*probes_.back());
  return k;
}

void FleetSession::add_sink(std::size_t k, SampleSink& sink) {
  TSC_EXPECTS(k < clients_.size());
  clients_[k]->add_sink(sink);
}

void FleetSession::add_shared_sink(SampleSink& sink) {
  for (auto& client : clients_) client->add_sink(sink);
}

void FleetSession::run_batched(sim::FleetTestbed& fleet) {
  TSC_EXPECTS(clients_.size() == fleet.client_count());
  demux_.resize(clients_.size());
  while (true) {
    const std::size_t n = fleet.generate_batch(batch_, kFleetChunk);
    if (n > 0) {
      // Scatter the merged chunk back into per-client SoA batches. Within a
      // chunk each client's rows stay in merge (= generation) order, so the
      // per-client streams each lane sees are exactly the standalone ones.
      for (auto& lane_batch : demux_) lane_batch.clear();
      for (std::size_t i = 0; i < n; ++i)
        demux_[batch_.client_id[i]].push_row(batch_.exchanges, i);
      for (std::size_t k = 0; k < clients_.size(); ++k) {
        if (!demux_[k].empty()) clients_[k]->process_batch(demux_[k]);
      }
    }
    if (n < kFleetChunk) break;  // fleet ran dry
  }
  for (std::size_t k = 0; k < clients_.size(); ++k)
    clients_[k]->set_polls_enumerated(fleet.client(k).polls_enumerated());
}

FleetReduction FleetSession::fleet_reduction() const {
  FleetReduction out;
  out.clients = probes_.size();
  std::vector<double> medians;
  medians.reserve(probes_.size());
  for (const auto& probe : probes_) {
    if (probe->clock_error().count() == 0) continue;
    const SeriesSummary summary = probe->clock_error().summary();
    medians.push_back(summary.percentiles.p50);
    out.worst_p99 =
        std::max(out.worst_p99, std::max(std::abs(summary.percentiles.p01),
                                         std::abs(summary.percentiles.p99)));
  }
  out.clients_with_data = medians.size();
  if (medians.empty()) return out;
  const auto [lo, hi] = std::minmax_element(medians.begin(), medians.end());
  out.pairwise_spread = *hi - *lo;
  double mean = 0;
  for (const double median : medians) mean += median;
  mean /= static_cast<double>(medians.size());
  double variance = 0;
  for (const double median : medians)
    variance += (median - mean) * (median - mean);
  variance /= static_cast<double>(medians.size());
  out.dispersion = std::sqrt(variance);
  return out;
}

SessionSummary FleetSession::combined_summary() const {
  SessionSummary out;
  for (std::size_t k = 0; k < clients_.size(); ++k) {
    const SessionSummary& lane = clients_[k]->summary();
    out.exchanges += lane.exchanges;
    out.lost += lane.lost;
    out.evaluated += lane.evaluated;
    out.polls_enumerated += lane.polls_enumerated;
    if (k == 0) out.final_status = lane.final_status;
  }
  return out;
}

}  // namespace tscclock::harness
