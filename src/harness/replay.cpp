#include "harness/replay.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::harness {

// -- TraceRecorder ---------------------------------------------------------

TraceRecorder::TraceRecorder(const SessionConfig& config) : config_(config) {}

void TraceRecorder::observe(const sim::Exchange& ex) {
  ++trace_.exchanges;
  ReplaySample sample;
  sample.index = ex.index;
  sample.truth_ta = ex.truth.ta;
  sample.truth_tb = ex.truth.tb;
  sample.in_warmup = exchange_in_warmup(config_, ex);
  if (ex.lost) {
    ++trace_.lost;
    sample.lost = true;
    trace_.samples.push_back(sample);
    return;
  }
  sample.raw = core::RawExchange{ex.ta_counts, ex.tb_stamp, ex.te_stamp,
                                 ex.tf_counts};
  sample.tf_counts_corrected = ex.tf_counts_corrected;
  sample.t_day = ex.tb_stamp / duration::kDay;
  sample.ref_available = ex.ref_available;
  sample.tg = ex.tg;
  if (config_.track_server_changes &&
      server_changes_.observe(
          core::ServerIdentity{ex.server_id, ex.server_stratum}, ex.index)) {
    sample.server_changed = true;
  }
  trace_.samples.push_back(sample);
}

// -- OfflineSmootherEstimator ----------------------------------------------

OfflineSmootherEstimator::OfflineSmootherEstimator(const core::Params& params,
                                                   double nominal_period)
    : params_(params), nominal_period_(nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

ReplayOutput OfflineSmootherEstimator::process_trace(
    std::span<const ReplaySample> samples) {
  std::vector<core::RawExchange> raws;
  raws.reserve(samples.size());
  for (const auto& sample : samples) {
    if (!sample.lost) raws.push_back(sample.raw);
  }
  TSC_EXPECTS(raws.size() >= 2);
  result_ = core::smooth_offsets(raws, params_, nominal_period_);

  ReplayOutput output;
  output.offsets = result_.offsets;
  output.timescale = result_.timescale;
  output.period = result_.period;
  output.point_errors.reserve(raws.size());
  for (const auto& raw : raws) {
    output.point_errors.push_back(delta_to_seconds(
        raw.rtt_counts() - result_.rhat_counts, result_.period));
  }
  output.status.packets_processed = raws.size();
  output.status.warmed_up = true;  // no warm-up: the rate is whole-trace
  output.status.period = result_.period;
  output.status.offset = result_.offsets.back();
  output.status.min_rtt =
      delta_to_seconds(result_.rhat_counts, result_.period);
  // The §5.3 poor-window fallback is the offline analogue of the online
  // estimator's best-packet fallback — report it on the same counter.
  output.status.offset_fallbacks = result_.poor_windows;
  return output;
}

// -- ReplaySession ---------------------------------------------------------

ReplaySession::ReplaySession(const SessionConfig& config,
                             std::unique_ptr<ReplayEstimator> estimator)
    : config_(config), estimator_(std::move(estimator)) {
  TSC_EXPECTS(estimator_ != nullptr);
}

void ReplaySession::add_sink(SampleSink& sink) { sinks_.push_back(&sink); }

void ReplaySession::emit(const SampleRecord& record) {
  for (auto* sink : sinks_) sink->on_sample(record);
}

const SessionSummary& ReplaySession::run(const ReplayTrace& trace) {
  summary_ = SessionSummary{};
  summary_.exchanges = trace.exchanges;
  summary_.lost = trace.lost;
  summary_.polls_enumerated = trace.polls_enumerated;

  // Too few packets for any whole-trace estimate: emit at most the lost/
  // unevaluated skeleton so the cell reads "n/a", never FAILED.
  const bool scorable = trace.arrived() >= 2;
  ReplayOutput output;
  if (scorable) {
    output = estimator_->process_trace(trace.samples);
    TSC_EXPECTS(output.offsets.size() == trace.arrived());
    TSC_EXPECTS(output.point_errors.empty() ||
                output.point_errors.size() == trace.arrived());
    summary_.final_status = output.status;
  }

  std::size_t k = 0;  // running index over non-lost samples
  for (const auto& sample : trace.samples) {
    SampleRecord record;
    record.index = sample.index;
    record.truth_ta = sample.truth_ta;
    record.truth_tb = sample.truth_tb;
    record.in_warmup = sample.in_warmup;
    if (sample.lost) {
      record.lost = true;
      if (config_.emit_unevaluated) emit(record);
      continue;
    }
    record.raw = sample.raw;
    record.tf_counts_corrected = sample.tf_counts_corrected;
    record.t_day = sample.t_day;
    record.ref_available = sample.ref_available;
    record.tg = sample.tg;
    record.server_changed = sample.server_changed;
    if (scorable) {
      record.report.offset_estimate = output.offsets[k];
      record.report.naive_offset =
          core::naive_offset(sample.raw, output.timescale);
      if (!output.point_errors.empty())
        record.report.point_error = output.point_errors[k];
      record.warmed_up = true;
      record.period = output.period;
      if (sample.ref_available) {
        // Identical alignment arithmetic to ClockSession::process: θg from
        // the estimator's own C, errors as estimate − θg. The replay's
        // absolute clock is Ca(T) = C(T) − θ̂(t_k) (the smoothed correction
        // at packet k), so its clock error is the negated tracking error by
        // construction.
        record.reference_offset =
            output.timescale.read(sample.raw.tf) - sample.tg;
        record.offset_error =
            record.report.offset_estimate - record.reference_offset;
        record.naive_error =
            record.report.naive_offset - record.reference_offset;
        // Ca(Tf) − Tg = (C(Tf) − θ̂(t_k)) − Tg: with the correction applied
        // at the very packet being scored, the clock error IS the negated
        // tracking error — computed as such so the identity is bit-exact.
        record.abs_clock_error = -record.offset_error;
      }
      record.evaluated = sample.ref_available && !sample.in_warmup;
    }
    ++k;
    if (record.evaluated) ++summary_.evaluated;
    if (record.evaluated || config_.emit_unevaluated) emit(record);
  }
  return summary_;
}

// -- Registry --------------------------------------------------------------

std::unique_ptr<ReplayEstimator> make_replay_estimator(
    EstimatorKind kind, const core::Params& params, double nominal_period) {
  TSC_EXPECTS(is_replay_estimator(kind));
  switch (kind) {
    case EstimatorKind::kOffline:
      return std::make_unique<OfflineSmootherEstimator>(params,
                                                        nominal_period);
    default:
      break;
  }
  TSC_EXPECTS(false);
  return nullptr;
}

}  // namespace tscclock::harness
