#include "harness/replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "core/naive.hpp"
#include "harness/estimator_spec.hpp"

namespace tscclock::harness {

// -- TraceRecorder ---------------------------------------------------------

TraceRecorder::TraceRecorder(const SessionConfig& config) : config_(config) {}

void TraceRecorder::observe(const sim::Exchange& ex) {
  ++trace_.exchanges;
  ReplaySample sample;
  sample.index = ex.index;
  sample.client_id = config_.client_id;
  sample.truth_ta = ex.truth.ta;
  sample.truth_tb = ex.truth.tb;
  sample.in_warmup = exchange_in_warmup(config_, ex);
  if (ex.lost) {
    ++trace_.lost;
    sample.lost = true;
    trace_.samples.push_back(sample);
    return;
  }
  sample.raw = core::RawExchange{ex.ta_counts, ex.tb_stamp, ex.te_stamp,
                                 ex.tf_counts};
  sample.tf_counts_corrected = ex.tf_counts_corrected;
  sample.t_day = ex.tb_stamp / duration::kDay;
  sample.ref_available = ex.ref_available;
  sample.tg = ex.tg;
  if (config_.track_server_changes &&
      server_changes_.observe(
          core::ServerIdentity{ex.server_id, ex.server_stratum}, ex.index)) {
    sample.server_changed = true;
  }
  trace_.samples.push_back(sample);
}

// -- OfflineSmootherEstimator ----------------------------------------------

OfflineSmootherEstimator::OfflineSmootherEstimator(const core::Params& params,
                                                   double nominal_period,
                                                   Split split)
    : params_(params), nominal_period_(nominal_period), split_(split) {
  TSC_EXPECTS(nominal_period > 0.0);
}

namespace {

/// Offline level-shift cut points for `split=shifts`: indices where the
/// windowed minimum RTT changes by more than the §6.2 detection threshold
/// (shift_detect_factor × E, converted to counts via the nominal period —
/// the sub-PPM period error is negligible against a 4E ≈ 240 µs threshold).
/// Two-sided by construction: a cut at k compares min RTT over the window
/// before k against the window after it, so detection has no warm-up and no
/// congestion/shift ambiguity horizon. Cuts closer than one window to each
/// other or to either trace edge are suppressed (smooth_offsets needs real
/// segments, and a short segment would carry a meaningless whole-segment
/// rate).
std::vector<std::size_t> shift_cut_points(
    const std::vector<core::RawExchange>& raws, const core::Params& params,
    double nominal_period) {
  const std::size_t window =
      std::max<std::size_t>(params.packets(params.shift_window), 2);
  if (raws.size() < 2 * window) return {};
  const double threshold_counts =
      params.shift_detect_factor * params.offset_quality / nominal_period;

  std::vector<TscDelta> rtts(raws.size());
  for (std::size_t i = 0; i < raws.size(); ++i) rtts[i] = raws[i].rtt_counts();
  const auto window_min = [&](std::size_t begin, std::size_t end) {
    return *std::min_element(rtts.begin() + static_cast<std::ptrdiff_t>(begin),
                             rtts.begin() + static_cast<std::ptrdiff_t>(end));
  };

  std::vector<std::size_t> cuts;
  std::size_t i = window;
  while (i + window <= raws.size()) {
    const TscDelta left = window_min(i - window, i);
    const TscDelta right = window_min(i, i + window);
    const double separation = static_cast<double>(right - left);
    if (std::abs(separation) <= threshold_counts) {
      ++i;
      continue;
    }
    // Place the cut on the first clear post-shift packet. Upward shifts
    // (delays rise) trigger only once the right window holds no pre-shift
    // packet, i.e. right at the boundary; downward shifts trigger as soon as
    // one post-shift packet enters the right window, so scan forward for it.
    std::size_t cut = i;
    if (separation < 0) {
      for (std::size_t j = i; j < i + window; ++j) {
        if (static_cast<double>(rtts[j] - left) < -threshold_counts) {
          cut = j;
          break;
        }
      }
    }
    if (cut >= window && cut + window <= raws.size() &&
        (cuts.empty() || cut - cuts.back() >= window)) {
      cuts.push_back(cut);
    }
    i = cut + window;
  }
  return cuts;
}

}  // namespace

ReplayOutput OfflineSmootherEstimator::process_trace(
    std::span<const ReplaySample> samples) {
  std::vector<core::RawExchange> raws;
  raws.reserve(samples.size());
  for (const auto& sample : samples) {
    if (!sample.lost) raws.push_back(sample.raw);
  }
  TSC_EXPECTS(raws.size() >= 2);

  const std::vector<std::size_t> cuts =
      split_ == Split::kShifts
          ? shift_cut_points(raws, params_, nominal_period_)
          : std::vector<std::size_t>{};
  segments_ = cuts.size() + 1;

  std::vector<Seconds> point_errors;
  point_errors.reserve(raws.size());
  if (cuts.empty()) {
    result_ = core::smooth_offsets(raws, params_, nominal_period_);
    for (const auto& raw : raws) {
      point_errors.push_back(delta_to_seconds(
          raw.rtt_counts() - result_.rhat_counts, result_.period));
    }
  } else {
    // Smooth each segment independently (own whole-segment rate and minimum
    // RTT), then translate every segment's offsets onto the first segment's
    // timescale: θ̂ is C(t) − Ca(t), so the translation is the pointwise
    // difference of the two uncorrected clocks at the packet's Tf —
    // tracking-error semantics are preserved exactly. Point errors use the
    // segment's own r̂/p̄ (re-basing the minimum is the point of the split).
    core::OfflineResult merged;
    std::size_t begin = 0;
    for (std::size_t s = 0; s <= cuts.size(); ++s) {
      const std::size_t end = s < cuts.size() ? cuts[s] : raws.size();
      const auto segment = core::smooth_offsets(
          std::span<const core::RawExchange>(raws).subspan(begin, end - begin),
          params_, nominal_period_);
      if (s == 0) {
        merged.timescale = segment.timescale;
        merged.period = segment.period;
        merged.rhat_counts = segment.rhat_counts;
      }
      for (std::size_t k = 0; k < segment.offsets.size(); ++k) {
        const TscCount tf = raws[begin + k].tf;
        merged.offsets.push_back(segment.offsets[k] +
                                 (merged.timescale.read(tf) -
                                  segment.timescale.read(tf)));
        point_errors.push_back(delta_to_seconds(
            raws[begin + k].rtt_counts() - segment.rhat_counts,
            segment.period));
      }
      merged.poor_windows += segment.poor_windows;
      begin = end;
    }
    result_ = std::move(merged);
  }

  ReplayOutput output;
  output.offsets = result_.offsets;
  output.timescale = result_.timescale;
  output.period = result_.period;
  output.point_errors = std::move(point_errors);
  output.status.packets_processed = raws.size();
  output.status.warmed_up = true;  // no warm-up: the rate is whole-trace
  output.status.period = result_.period;
  output.status.offset = result_.offsets.back();
  output.status.min_rtt =
      delta_to_seconds(result_.rhat_counts, result_.period);
  // The §5.3 poor-window fallback is the offline analogue of the online
  // estimator's best-packet fallback — report it on the same counter; the
  // split cuts ride the shift counter so the status surfaces show how often
  // the variant actually split.
  output.status.offset_fallbacks = result_.poor_windows;
  output.status.upshifts = cuts.size();
  return output;
}

// -- ReplaySession ---------------------------------------------------------

ReplaySession::ReplaySession(const SessionConfig& config,
                             std::unique_ptr<ReplayEstimator> estimator)
    : config_(config), estimator_(std::move(estimator)) {
  TSC_EXPECTS(estimator_ != nullptr);
}

void ReplaySession::add_sink(SampleSink& sink) { sinks_.push_back(&sink); }

void ReplaySession::emit(const SampleRecord& record) {
  for (auto* sink : sinks_) sink->on_sample(record);
}

const SessionSummary& ReplaySession::run(const ReplayTrace& trace) {
  summary_ = SessionSummary{};
  summary_.exchanges = trace.exchanges;
  summary_.lost = trace.lost;
  summary_.polls_enumerated = trace.polls_enumerated;

  // A ReplaySession replays exactly one client's clock: a trace that
  // interleaves several fleet clients would hand the estimator a stream
  // mixing unrelated oscillators. Demand a homogeneous trace up front.
  for (const auto& sample : trace.samples) {
    if (sample.client_id != trace.samples.front().client_id)
      throw std::invalid_argument(
          "ReplaySession: trace mixes client_id " +
          std::to_string(trace.samples.front().client_id) + " and " +
          std::to_string(sample.client_id) +
          " — replay one client's trace at a time (demultiplex the fleet "
          "trace by client before replaying)");
  }

  // Too few packets for any whole-trace estimate: emit at most the lost/
  // unevaluated skeleton so the cell reads "n/a", never FAILED.
  const bool scorable = trace.arrived() >= 2;
  const bool relative = trace.ground_truth == GroundTruthMode::kRelativeOnly;
  ReplayOutput output;
  if (scorable) {
    output = estimator_->process_trace(trace.samples);
    TSC_EXPECTS(output.offsets.size() == trace.arrived());
    TSC_EXPECTS(output.point_errors.empty() ||
                output.point_errors.size() == trace.arrived());
    summary_.final_status = output.status;
  }

  std::size_t k = 0;  // running index over non-lost samples
  for (const auto& sample : trace.samples) {
    SampleRecord record;
    record.index = sample.index;
    record.client_id = sample.client_id;
    record.truth_ta = sample.truth_ta;
    record.truth_tb = sample.truth_tb;
    record.in_warmup = sample.in_warmup;
    if (sample.lost) {
      record.lost = true;
      if (config_.emit_unevaluated) emit(record);
      continue;
    }
    record.raw = sample.raw;
    record.tf_counts_corrected = sample.tf_counts_corrected;
    record.t_day = sample.t_day;
    record.ref_available = sample.ref_available;
    record.tg = sample.tg;
    record.server_changed = sample.server_changed;
    if (scorable) {
      record.report.offset_estimate = output.offsets[k];
      record.report.naive_offset =
          core::naive_offset(sample.raw, output.timescale);
      if (!output.point_errors.empty())
        record.report.point_error = output.point_errors[k];
      record.warmed_up = true;
      record.period = output.period;
      if (relative) {
        // No reference exists, so the absolute columns stay 0 and must not
        // be read (the mode-aware ReducerSink never collects them). The
        // tracking residual grades the estimate against the only clock a
        // real-internet trace can see: the server's, through the path.
        record.offset_error =
            record.report.offset_estimate - record.report.naive_offset;
        record.evaluated = !sample.in_warmup;
      } else if (sample.ref_available) {
        // Identical alignment arithmetic to ClockSession::process: θg from
        // the estimator's own C, errors as estimate − θg. The replay's
        // absolute clock is Ca(T) = C(T) − θ̂(t_k) (the smoothed correction
        // at packet k), so its clock error is the negated tracking error by
        // construction.
        record.reference_offset =
            output.timescale.read(sample.raw.tf) - sample.tg;
        record.offset_error =
            record.report.offset_estimate - record.reference_offset;
        record.naive_error =
            record.report.naive_offset - record.reference_offset;
        // Ca(Tf) − Tg = (C(Tf) − θ̂(t_k)) − Tg: with the correction applied
        // at the very packet being scored, the clock error IS the negated
        // tracking error — computed as such so the identity is bit-exact.
        record.abs_clock_error = -record.offset_error;
      }
      if (!relative)
        record.evaluated = sample.ref_available && !sample.in_warmup;
    }
    ++k;
    if (record.evaluated) ++summary_.evaluated;
    if (record.evaluated || config_.emit_unevaluated) emit(record);
  }
  return summary_;
}

// -- Registry entries (replay families) ------------------------------------

void detail::register_builtin_replay_estimators(EstimatorRegistry& registry) {
  EstimatorRegistry::Family offline;
  offline.name = "offline";
  offline.order = 40;
  offline.replay = true;
  offline.description =
      "offline two-sided smoother (§5.3, NON-CAUSAL replay: scored post-hoc "
      "over the recorded trace using future packets)";
  offline.tunables = {
      TunableSpec::choice(
          "split", "none",
          "cut the trace at detected level shifts and smooth each segment "
          "with its own whole-segment rate/minimum",
          {"none", "shifts"}),
  };
  offline.make_replay = [](const ResolvedSpec& spec,
                           const core::Params& params,
                           double nominal_period) {
    const auto split = spec.get_choice("split") == "shifts"
                           ? OfflineSmootherEstimator::Split::kShifts
                           : OfflineSmootherEstimator::Split::kNone;
    return std::make_unique<OfflineSmootherEstimator>(params, nominal_period,
                                                      split);
  };
  registry.register_family(std::move(offline));
}

}  // namespace tscclock::harness
