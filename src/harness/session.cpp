#include "harness/session.hpp"

#include "common/contracts.hpp"
#include "harness/replay.hpp"

namespace tscclock::harness {

bool exchange_in_warmup(const SessionConfig& config, const sim::Exchange& ex) {
  const Seconds cut_time =
      !ex.lost && config.warmup_policy == WarmupPolicy::kObservable
          ? ex.tb_stamp
          : ex.truth.tb;
  return cut_time < config.discard_warmup;
}

ClockSession::ClockSession(const SessionConfig& config, double nominal_period)
    : ClockSession(config, std::make_unique<TscNtpEstimator>(config.params,
                                                             nominal_period)) {}

ClockSession::ClockSession(const SessionConfig& config,
                           std::unique_ptr<ClockEstimator> estimator)
    : config_(config), estimator_(std::move(estimator)) {
  TSC_EXPECTS(estimator_ != nullptr);
  robust_ = dynamic_cast<TscNtpEstimator*>(estimator_.get());
  if (config_.record_trace) recorder_ = std::make_unique<TraceRecorder>(config_);
}

ClockSession::~ClockSession() = default;

void ClockSession::add_sink(SampleSink& sink) { sinks_.push_back(&sink); }

const ReplayTrace& ClockSession::trace() const {
  TSC_EXPECTS(recorder_ != nullptr);
  return recorder_->trace();
}

core::TscNtpClock& ClockSession::clock() {
  TSC_EXPECTS(robust_ != nullptr);
  return robust_->clock();
}

const core::TscNtpClock& ClockSession::clock() const {
  TSC_EXPECTS(robust_ != nullptr);
  return robust_->clock();
}

void ClockSession::emit(const SampleRecord& record) {
  for (auto* sink : sinks_) sink->on_sample(record);
}

void ClockSession::process(const sim::Exchange& ex) {
  if (recorder_) recorder_->observe(ex);
  ++summary_.exchanges;
  if (ex.lost) {
    ++summary_.lost;
    if (config_.emit_unevaluated) {
      SampleRecord record;
      record.index = ex.index;
      record.lost = true;
      record.truth_ta = ex.truth.ta;
      record.truth_tb = ex.truth.tb;
      record.in_warmup = exchange_in_warmup(config_, ex);
      emit(record);
    }
    return;
  }

  SampleRecord record;
  record.index = ex.index;
  record.ref_available = ex.ref_available;
  record.raw = core::RawExchange{ex.ta_counts, ex.tb_stamp, ex.te_stamp,
                                 ex.tf_counts};
  record.tf_counts_corrected = ex.tf_counts_corrected;
  record.tg = ex.tg;
  record.truth_ta = ex.truth.ta;
  record.truth_tb = ex.truth.tb;
  record.t_day = ex.tb_stamp / duration::kDay;

  if (config_.track_server_changes &&
      server_changes_.observe(
          core::ServerIdentity{ex.server_id, ex.server_stratum}, ex.index)) {
    estimator_->notify_server_change();
    record.server_changed = true;
  }

  record.report = estimator_->process_exchange(record.raw);
  record.warmed_up = estimator_->warmed_up();
  record.period = estimator_->period();

  record.in_warmup = exchange_in_warmup(config_, ex);

  if (ex.ref_available) {
    record.reference_offset =
        estimator_->uncorrected_time(ex.tf_counts) - ex.tg;
    record.offset_error = record.report.offset_estimate -
                          record.reference_offset;
    record.naive_error = record.report.naive_offset - record.reference_offset;
    record.abs_clock_error = estimator_->absolute_time(ex.tf_counts) - ex.tg;
  }

  record.evaluated = ex.ref_available && !record.in_warmup;
  if (record.evaluated) ++summary_.evaluated;
  if (record.evaluated || config_.emit_unevaluated) emit(record);
}

bool ClockSession::step(sim::Testbed& testbed) {
  auto exchange = testbed.next();
  if (!exchange) return false;
  process(*exchange);
  return true;
}

const SessionSummary& ClockSession::run(sim::Testbed& testbed) {
  while (step(testbed)) {
  }
  set_polls_enumerated(testbed.polls_enumerated());
  return summary();
}

void ClockSession::set_polls_enumerated(std::uint64_t polls) {
  summary_.polls_enumerated = polls;
  if (recorder_) recorder_->set_polls_enumerated(polls);
}

const SessionSummary& ClockSession::summary() {
  summary_.final_status = estimator_->status();
  return summary_;
}

// -- MultiEstimatorSession -------------------------------------------------

MultiEstimatorSession::MultiEstimatorSession() = default;
MultiEstimatorSession::~MultiEstimatorSession() = default;

void MultiEstimatorSession::enable_trace_recording(
    const SessionConfig& config) {
  TSC_EXPECTS(recorder_ == nullptr);
  recorder_ = std::make_unique<TraceRecorder>(config);
}

const ReplayTrace& MultiEstimatorSession::trace() const {
  TSC_EXPECTS(recorder_ != nullptr);
  return recorder_->trace();
}

std::size_t MultiEstimatorSession::add_lane(
    const SessionConfig& config, std::unique_ptr<ClockEstimator> estimator) {
  lanes_.push_back(
      std::make_unique<ClockSession>(config, std::move(estimator)));
  return lanes_.size() - 1;
}

void MultiEstimatorSession::add_sink(std::size_t lane, SampleSink& sink) {
  TSC_EXPECTS(lane < lanes_.size());
  lanes_[lane]->add_sink(sink);
}

ClockSession& MultiEstimatorSession::lane(std::size_t index) {
  TSC_EXPECTS(index < lanes_.size());
  return *lanes_[index];
}

const ClockSession& MultiEstimatorSession::lane(std::size_t index) const {
  TSC_EXPECTS(index < lanes_.size());
  return *lanes_[index];
}

void MultiEstimatorSession::process(const sim::Exchange& exchange) {
  if (recorder_) recorder_->observe(exchange);
  for (auto& lane : lanes_) lane->process(exchange);
}

bool MultiEstimatorSession::step(sim::Testbed& testbed) {
  auto exchange = testbed.next();
  if (!exchange) return false;
  process(*exchange);
  return true;
}

void MultiEstimatorSession::run(sim::Testbed& testbed) {
  while (step(testbed)) {
  }
  for (auto& lane : lanes_)
    lane->set_polls_enumerated(testbed.polls_enumerated());
  if (recorder_) recorder_->set_polls_enumerated(testbed.polls_enumerated());
}

}  // namespace tscclock::harness
