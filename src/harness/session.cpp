#include "harness/session.hpp"

#include "common/contracts.hpp"
#include "harness/replay.hpp"

namespace tscclock::harness {

namespace {

/// Exchanges pulled from the testbed per process_batch round in the batched
/// drives: large enough to amortize the per-batch sink flush, small enough
/// to keep the working set (~200 bytes/exchange) inside L2.
constexpr std::size_t kBatchChunk = 1024;

}  // namespace

bool exchange_in_warmup(const SessionConfig& config, bool lost,
                        Seconds tb_stamp, Seconds truth_tb) {
  const Seconds cut_time =
      !lost && config.warmup_policy == WarmupPolicy::kObservable ? tb_stamp
                                                                 : truth_tb;
  return cut_time < config.discard_warmup;
}

bool exchange_in_warmup(const SessionConfig& config, const sim::Exchange& ex) {
  return exchange_in_warmup(config, ex.lost, ex.tb_stamp, ex.truth.tb);
}

ClockSession::ClockSession(const SessionConfig& config, double nominal_period)
    : ClockSession(config, std::make_unique<TscNtpEstimator>(config.params,
                                                             nominal_period)) {}

ClockSession::ClockSession(const SessionConfig& config,
                           std::unique_ptr<ClockEstimator> estimator)
    : config_(config), estimator_(std::move(estimator)) {
  TSC_EXPECTS(estimator_ != nullptr);
  robust_ = dynamic_cast<TscNtpEstimator*>(estimator_.get());
  if (config_.record_trace) recorder_ = std::make_unique<TraceRecorder>(config_);
}

ClockSession::~ClockSession() = default;

void ClockSession::add_sink(SampleSink& sink) { sinks_.push_back(&sink); }

const ReplayTrace& ClockSession::trace() const {
  TSC_EXPECTS(recorder_ != nullptr);
  return recorder_->trace();
}

core::TscNtpClock& ClockSession::clock() {
  TSC_EXPECTS(robust_ != nullptr);
  return robust_->clock();
}

const core::TscNtpClock& ClockSession::clock() const {
  TSC_EXPECTS(robust_ != nullptr);
  return robust_->clock();
}

void ClockSession::emit(const SampleRecord& record) {
  for (auto* sink : sinks_) sink->on_sample(record);
}

void ClockSession::process(const sim::Exchange& ex) {
  if (recorder_) recorder_->observe(ex);
  ++summary_.exchanges;
  if (ex.lost) {
    ++summary_.lost;
    if (config_.emit_unevaluated) {
      SampleRecord record;
      record.index = ex.index;
      record.client_id = config_.client_id;
      record.lost = true;
      record.truth_ta = ex.truth.ta;
      record.truth_tb = ex.truth.tb;
      record.in_warmup = exchange_in_warmup(config_, ex);
      emit(record);
    }
    return;
  }

  SampleRecord record;
  record.index = ex.index;
  record.client_id = config_.client_id;
  record.ref_available = ex.ref_available;
  record.raw = core::RawExchange{ex.ta_counts, ex.tb_stamp, ex.te_stamp,
                                 ex.tf_counts};
  record.tf_counts_corrected = ex.tf_counts_corrected;
  record.tg = ex.tg;
  record.truth_ta = ex.truth.ta;
  record.truth_tb = ex.truth.tb;
  record.t_day = ex.tb_stamp / duration::kDay;

  if (config_.track_server_changes &&
      server_changes_.observe(
          core::ServerIdentity{ex.server_id, ex.server_stratum}, ex.index)) {
    estimator_->notify_server_change();
    record.server_changed = true;
  }

  record.report = estimator_->process_exchange(record.raw);
  record.warmed_up = estimator_->warmed_up();
  record.period = estimator_->period();

  record.in_warmup = exchange_in_warmup(config_, ex);

  if (ex.ref_available) {
    record.reference_offset =
        estimator_->uncorrected_time(ex.tf_counts) - ex.tg;
    record.offset_error = record.report.offset_estimate -
                          record.reference_offset;
    record.naive_error = record.report.naive_offset - record.reference_offset;
    record.abs_clock_error = estimator_->absolute_time(ex.tf_counts) - ex.tg;
  }

  record.evaluated = ex.ref_available && !record.in_warmup;
  if (record.evaluated) ++summary_.evaluated;
  if (record.evaluated || config_.emit_unevaluated) emit(record);
}

void ClockSession::process_batch(std::span<const sim::Exchange> exchanges) {
  for (auto* sink : sinks_) {
    if (!sink->wants_batch()) {
      // A record-shaped sink is attached: run the scalar sequence so every
      // sink (including batch-aware ones, via their on_sample) observes the
      // stream exactly as process() emits it.
      for (const auto& ex : exchanges) process(ex);
      return;
    }
  }

  // Fast lane: every sink is batch-aware (or none is attached). Same
  // estimator/detector/recorder sequence as process(), but no SampleRecord
  // is built and no per-record virtual dispatch happens; the evaluated
  // series accumulate into batch_ and flush once. Every accumulated value
  // is computed by the very expressions process() uses, so the lane is
  // bit-identical to the scalar one.
  batch_.clear();
  batch_.reserve(exchanges.size());
  for (const auto& ex : exchanges) {
    if (recorder_) recorder_->observe(ex);
    ++summary_.exchanges;
    if (ex.lost) {
      ++summary_.lost;
      continue;  // batch sinks never consume unevaluated records
    }
    if (config_.track_server_changes &&
        server_changes_.observe(
            core::ServerIdentity{ex.server_id, ex.server_stratum}, ex.index))
      estimator_->notify_server_change();
    const core::RawExchange raw{ex.ta_counts, ex.tb_stamp, ex.te_stamp,
                                ex.tf_counts};
    const auto report = estimator_->process_exchange(raw);
    if (!ex.ref_available || exchange_in_warmup(config_, ex)) continue;
    const Seconds reference_offset =
        estimator_->uncorrected_time(ex.tf_counts) - ex.tg;
    const Seconds offset_error = report.offset_estimate - reference_offset;
    const Seconds abs_clock_error =
        estimator_->absolute_time(ex.tf_counts) - ex.tg;
    ++summary_.evaluated;
    batch_.push(ex.tb_stamp, abs_clock_error, offset_error);
  }
  for (auto* sink : sinks_) sink->on_batch(batch_);
}

void ClockSession::process_batch(const sim::ExchangeBatch& batch) {
  for (auto* sink : sinks_) {
    if (!sink->wants_batch()) {
      // A record-shaped sink is attached: materialize each row and run the
      // scalar sequence, so every sink observes the stream exactly as
      // process() emits it.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch.materialize(i, scratch_);
        process(scratch_);
      }
      return;
    }
  }

  // Fast lane: columns in, columns out. Same estimator/detector/recorder
  // sequence as process(), reading the SoA stream directly; every
  // accumulated value is computed by the very expressions process() uses,
  // so the lane is bit-identical to the scalar one.
  batch_.clear();
  batch_.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (recorder_) {
      batch.materialize(i, scratch_);
      recorder_->observe(scratch_);
    }
    ++summary_.exchanges;
    if (batch.lost[i] != 0) {
      ++summary_.lost;
      continue;  // batch sinks never consume unevaluated records
    }
    if (config_.track_server_changes &&
        server_changes_.observe(
            core::ServerIdentity{batch.server_id[i], batch.server_stratum[i]},
            batch.index[i]))
      estimator_->notify_server_change();
    const core::RawExchange raw{batch.ta_counts[i], batch.tb_stamp[i],
                                batch.te_stamp[i], batch.tf_counts[i]};
    const auto report = estimator_->process_exchange(raw);
    if (batch.ref_available[i] == 0 ||
        exchange_in_warmup(config_, false, batch.tb_stamp[i],
                           batch.truth_tb[i]))
      continue;
    const Seconds reference_offset =
        estimator_->uncorrected_time(batch.tf_counts[i]) - batch.tg[i];
    const Seconds offset_error = report.offset_estimate - reference_offset;
    const Seconds abs_clock_error =
        estimator_->absolute_time(batch.tf_counts[i]) - batch.tg[i];
    ++summary_.evaluated;
    batch_.push(batch.tb_stamp[i], abs_clock_error, offset_error);
  }
  for (auto* sink : sinks_) sink->on_batch(batch_);
}

bool ClockSession::step(sim::Testbed& testbed) {
  auto exchange = testbed.next();
  if (!exchange) return false;
  process(*exchange);
  return true;
}

const SessionSummary& ClockSession::run(sim::Testbed& testbed) {
  while (step(testbed)) {
  }
  set_polls_enumerated(testbed.polls_enumerated());
  return summary();
}

const SessionSummary& ClockSession::run_batched(sim::Testbed& testbed) {
  sim::ExchangeBatch batch;
  while (true) {
    const std::size_t n = testbed.generate_batch(batch, kBatchChunk);
    if (n > 0) process_batch(batch);
    if (n < kBatchChunk) break;  // duration exhausted
  }
  set_polls_enumerated(testbed.polls_enumerated());
  return summary();
}

void ClockSession::set_polls_enumerated(std::uint64_t polls) {
  summary_.polls_enumerated = polls;
  if (recorder_) recorder_->set_polls_enumerated(polls);
}

const SessionSummary& ClockSession::summary() {
  summary_.final_status = estimator_->status();
  return summary_;
}

// -- MultiEstimatorSession -------------------------------------------------

MultiEstimatorSession::MultiEstimatorSession() = default;
MultiEstimatorSession::~MultiEstimatorSession() = default;

void MultiEstimatorSession::enable_trace_recording(
    const SessionConfig& config) {
  TSC_EXPECTS(recorder_ == nullptr);
  recorder_ = std::make_unique<TraceRecorder>(config);
}

const ReplayTrace& MultiEstimatorSession::trace() const {
  TSC_EXPECTS(recorder_ != nullptr);
  return recorder_->trace();
}

std::size_t MultiEstimatorSession::add_lane(
    const SessionConfig& config, std::unique_ptr<ClockEstimator> estimator) {
  lanes_.push_back(
      std::make_unique<ClockSession>(config, std::move(estimator)));
  return lanes_.size() - 1;
}

void MultiEstimatorSession::add_sink(std::size_t lane, SampleSink& sink) {
  TSC_EXPECTS(lane < lanes_.size());
  lanes_[lane]->add_sink(sink);
}

ClockSession& MultiEstimatorSession::lane(std::size_t index) {
  TSC_EXPECTS(index < lanes_.size());
  return *lanes_[index];
}

const ClockSession& MultiEstimatorSession::lane(std::size_t index) const {
  TSC_EXPECTS(index < lanes_.size());
  return *lanes_[index];
}

void MultiEstimatorSession::process(const sim::Exchange& exchange) {
  if (recorder_) recorder_->observe(exchange);
  for (auto& lane : lanes_) lane->process(exchange);
}

void MultiEstimatorSession::process_batch(
    std::span<const sim::Exchange> exchanges) {
  if (recorder_)
    for (const auto& ex : exchanges) recorder_->observe(ex);
  for (auto& lane : lanes_) lane->process_batch(exchanges);
}

void MultiEstimatorSession::process_batch(const sim::ExchangeBatch& batch) {
  if (recorder_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch.materialize(i, scratch_);
      recorder_->observe(scratch_);
    }
  }
  for (auto& lane : lanes_) lane->process_batch(batch);
}

bool MultiEstimatorSession::step(sim::Testbed& testbed) {
  auto exchange = testbed.next();
  if (!exchange) return false;
  process(*exchange);
  return true;
}

void MultiEstimatorSession::run(sim::Testbed& testbed) {
  while (step(testbed)) {
  }
  for (auto& lane : lanes_)
    lane->set_polls_enumerated(testbed.polls_enumerated());
  if (recorder_) recorder_->set_polls_enumerated(testbed.polls_enumerated());
}

void MultiEstimatorSession::run_batched(sim::Testbed& testbed) {
  sim::ExchangeBatch batch;
  while (true) {
    const std::size_t n = testbed.generate_batch(batch, kBatchChunk);
    if (n > 0) process_batch(batch);
    if (n < kBatchChunk) break;  // duration exhausted
  }
  for (auto& lane : lanes_)
    lane->set_polls_enumerated(testbed.polls_enumerated());
  if (recorder_) recorder_->set_polls_enumerated(testbed.polls_enumerated());
}

}  // namespace tscclock::harness
