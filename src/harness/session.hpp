// ClockSession: the single canonical Testbed → TscNtpClock drive loop.
//
// Every evaluation surface in this repo — the per-figure benches, the
// examples, and the parallel scenario sweep — measures the same thing: a
// Testbed exchange stream processed by a TscNtpClock and scored against the
// DAG reference monitor. ClockSession owns that exchange-processing
// sequence exactly once:
//
//   1. drain the Testbed (loss accounting for exchanges that never arrive);
//   2. feed each reply's transport identity to a ServerChangeDetector and
//      forward changes via TscNtpClock::notify_server_change() (identity
//      lives on the transport endpoint, not the NTP reference-id field —
//      two distinct servers can both report "GPS");
//   3. process_exchange() on the {Ta, Tb, Te, Tf} quadruple;
//   4. align with the reference: θg_i = C(Tf_i) − Tg_i, where C is the
//      algorithm's own uncorrected clock (paper §2.4, §5.3). Because both
//      the estimate and θg use the same C, the arbitrary clock origin
//      cancels and the error measures pure tracking quality (up to the Δ/2
//      path-asymmetry ambiguity);
//   5. apply the configured warm-up policy and emit a SampleRecord to every
//      attached SampleSink.
//
// Consumers differ only in which sink they attach (vector collector for
// figures, percentile/ADEV reducer for the sweep, CSV writer for offline
// inspection, ad-hoc callback for everything else) — never in how the
// stream is driven.
//
// Warm-up policies (see WarmupPolicy): the figure benches historically cut
// warm-up on ground-truth time (truth.tb, simulation-only), while the sweep
// cuts on the observable server stamp (tb_stamp, what a deployed client
// could actually do). Both conventions are preserved and must be chosen
// explicitly per session.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.hpp"
#include "core/clock.hpp"
#include "core/params.hpp"
#include "core/server_change.hpp"
#include "sim/scenario.hpp"

namespace tscclock::harness {

/// Which timebase the warm-up discard cut uses.
enum class WarmupPolicy {
  /// Cut on the observable server receive stamp Tb (what a real client can
  /// measure). The sweep's historical convention.
  kObservable,
  /// Cut on ground-truth server arrival time (simulation-only). The figure
  /// benches' historical convention; keeps their fixed-seed outputs stable.
  kGroundTruth,
};

struct SessionConfig {
  core::Params params;
  /// Records earlier than this (by the policy's timebase) are flagged as
  /// warm-up and excluded from `evaluated` (the paper analyses all long
  /// traces post-warm-up).
  Seconds discard_warmup = 0.0;
  WarmupPolicy warmup_policy = WarmupPolicy::kObservable;
  /// Route reply identities through a ServerChangeDetector and forward
  /// changes to the clock. On single-server traces the detector never fires,
  /// so this is a no-op there; disable only to study the unassisted
  /// level-shift path (see bench/ext_server_change.cpp).
  bool track_server_changes = true;
  /// Also emit records for lost, reference-less and warm-up exchanges
  /// (flagged via SampleRecord::lost / ref_available / in_warmup). Off by
  /// default: most consumers only score evaluated packets.
  bool emit_unevaluated = false;
};

/// One exchange as scored by the session — a superset of the fields the
/// figure benches (bench::RunPoint) and the sweep reduction historically
/// collected, so every consumer can be fed from the same record stream.
struct SampleRecord {
  std::uint64_t index = 0;  ///< poll sequence number (sim::Exchange::index)
  bool lost = false;        ///< no reply reached the host
  bool ref_available = false;
  bool in_warmup = false;       ///< before the configured discard cut
  bool evaluated = false;       ///< !lost && ref_available && !in_warmup
  bool server_changed = false;  ///< this reply triggered notify_server_change

  // -- Observables (valid when !lost) --------------------------------------
  core::RawExchange raw;             ///< the {Ta, Tb, Te, Tf} quadruple
  TscCount tf_counts_corrected = 0;  ///< side-mode-corrected Tf (§2.4)
  Seconds tg = 0;        ///< DAG stamp (valid when ref_available)
  Seconds truth_ta = 0;  ///< ground-truth wire departure (simulation-only;
                         ///< also filled for lost records)
  Seconds truth_tb = 0;  ///< ground-truth server arrival (simulation-only)
  double t_day = 0;      ///< raw.tb in days (figure x-axes)

  // -- Clock state after this exchange (valid when !lost) ------------------
  core::ProcessReport report;
  bool warmed_up = false;  ///< clock's own warm-up flag (§6.1)
  double period = 0;       ///< p̂ after this packet [s/count]

  // -- Reference-aligned errors (valid when !lost && ref_available) --------
  Seconds reference_offset = 0;  ///< θg = C(Tf) − Tg
  Seconds offset_error = 0;      ///< θ̂(t) − θg
  Seconds naive_error = 0;       ///< θ̂_i (naive) − θg
  Seconds abs_clock_error = 0;   ///< Ca(Tf) − Tg
};

/// Aggregate outcome of a session (counts match the legacy drive loops:
/// `exchanges` includes lost ones, `evaluated` survives warm-up discard).
struct SessionSummary {
  std::size_t exchanges = 0;
  std::size_t lost = 0;
  std::size_t evaluated = 0;
  /// Poll slots enumerated by the Testbed including outage-skipped ones;
  /// filled by run() after the drain (the Testbed owns the slot arithmetic).
  std::uint64_t polls_enumerated = 0;
  core::ClockStatus final_status;
};

/// Receives every record the session emits. Implementations must not assume
/// they are the only sink attached.
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void on_sample(const SampleRecord& record) = 0;
};

class ClockSession {
 public:
  /// `nominal_period` is the spec-sheet counter period used as the clock's
  /// initial guess (normally sim::Testbed::nominal_period()).
  ClockSession(const SessionConfig& config, double nominal_period);

  /// Attach a sink (non-owning; must outlive the session's processing).
  /// Sinks are invoked in attachment order, synchronously per record.
  void add_sink(SampleSink& sink);

  /// Process one exchange through the canonical sequence. Exposed so
  /// consumers that interleave other work between polls (e.g. the one-way
  /// delay example) or replay perturbed exchange vectors still share it.
  void process(const sim::Exchange& exchange);

  /// Pull one exchange from the testbed and process it. Returns false when
  /// the testbed's configured duration is exhausted.
  bool step(sim::Testbed& testbed);

  /// Drain the whole testbed and return the final summary.
  const SessionSummary& run(sim::Testbed& testbed);

  /// The summary so far (final_status is refreshed on access).
  const SessionSummary& summary();

  [[nodiscard]] core::TscNtpClock& clock() { return clock_; }
  [[nodiscard]] const core::TscNtpClock& clock() const { return clock_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  void emit(const SampleRecord& record);

  SessionConfig config_;
  core::TscNtpClock clock_;
  core::ServerChangeDetector server_changes_;
  std::vector<SampleSink*> sinks_;
  SessionSummary summary_;
};

}  // namespace tscclock::harness
