// ClockSession: the single canonical Testbed → estimator drive loop.
//
// Every evaluation surface in this repo — the per-figure benches, the
// examples, and the parallel scenario sweep — measures the same thing: a
// Testbed exchange stream processed by a clock algorithm and scored against
// the DAG reference monitor. ClockSession owns that exchange-processing
// sequence exactly once:
//
//   1. drain the Testbed (loss accounting for exchanges that never arrive);
//   2. feed each reply's transport identity to a ServerChangeDetector and
//      forward changes via ClockEstimator::notify_server_change() (identity
//      lives on the transport endpoint, not the NTP reference-id field —
//      two distinct servers can both report "GPS");
//   3. process_exchange() on the {Ta, Tb, Te, Tf} quadruple;
//   4. align with the reference: θg_i = C(Tf_i) − Tg_i, where C is the
//      algorithm's own uncorrected clock (paper §2.4, §5.3). Because both
//      the estimate and θg use the same C, the arbitrary clock origin
//      cancels and the error measures pure tracking quality (up to the Δ/2
//      path-asymmetry ambiguity);
//   5. apply the configured warm-up policy and emit a SampleRecord to every
//      attached SampleSink.
//
// Which algorithm processes the stream is a ClockEstimator (see
// harness/estimator.hpp); the default is the robust TscNtpClock via
// TscNtpEstimator. Consumers differ only in their estimator and in which
// sink they attach (vector collector for figures, percentile/ADEV reducer
// for the sweep, CSV writer for offline inspection, ad-hoc callback for
// everything else) — never in how the stream is driven.
//
// MultiEstimatorSession fans one exchange stream into N estimators, each
// scored by its own ClockSession lane with its own sink chain — the paper's
// comparative evaluations (robust vs SW-NTP vs naive) on identical packets.
//
// Warm-up policies (see WarmupPolicy): the figure benches historically cut
// warm-up on ground-truth time (truth.tb, simulation-only), while the sweep
// cuts on the observable server stamp (tb_stamp, what a deployed client
// could actually do). Both conventions are preserved and must be chosen
// explicitly per session.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/time_types.hpp"
#include "core/clock.hpp"
#include "core/params.hpp"
#include "core/server_change.hpp"
#include "harness/estimator.hpp"
#include "sim/scenario.hpp"

namespace tscclock::harness {

class TraceRecorder;  // harness/replay.hpp
struct ReplayTrace;   // harness/replay.hpp

/// Which timebase the warm-up discard cut uses.
enum class WarmupPolicy {
  /// Cut on the observable server receive stamp Tb (what a real client can
  /// measure). The sweep's historical convention.
  kObservable,
  /// Cut on ground-truth server arrival time (simulation-only). The figure
  /// benches' historical convention; keeps their fixed-seed outputs stable.
  kGroundTruth,
};

/// Warm-up flag of one exchange under `config`'s policy — THE definition of
/// the warm-up cut, shared by ClockSession and TraceRecorder so the replay
/// lane's `evaluated` set can never drift from the online lanes'. A lost
/// poll has no server stamp, so it is cut on ground truth under either
/// policy.
struct SessionConfig;
bool exchange_in_warmup(const SessionConfig& config, const sim::Exchange& ex);

/// The same warm-up cut from SoA fields (the ExchangeBatch fast lane); the
/// Exchange overload forwards here so there is still one definition.
bool exchange_in_warmup(const SessionConfig& config, bool lost,
                        Seconds tb_stamp, Seconds truth_tb);

struct SessionConfig {
  core::Params params;
  /// Records earlier than this (by the policy's timebase) are flagged as
  /// warm-up and excluded from `evaluated` (the paper analyses all long
  /// traces post-warm-up).
  Seconds discard_warmup = 0.0;
  WarmupPolicy warmup_policy = WarmupPolicy::kObservable;
  /// Route reply identities through a ServerChangeDetector and forward
  /// changes to the clock. On single-server traces the detector never fires,
  /// so this is a no-op there; disable only to study the unassisted
  /// level-shift path (see bench/ext_server_change.cpp).
  bool track_server_changes = true;
  /// Also emit records for lost, reference-less and warm-up exchanges
  /// (flagged via SampleRecord::lost / ref_available / in_warmup). Off by
  /// default: most consumers only score evaluated packets.
  bool emit_unevaluated = false;
  /// Retain the estimator-independent exchange stream (RawExchange quadruple
  /// + DAG ground truth + loss/warm-up/server-change flags) for post-hoc
  /// replay estimators — see harness/replay.hpp. Off by default: recording
  /// buffers the whole trace.
  bool record_trace = false;
  /// Fleet position of the client this session drives; stamped onto every
  /// emitted SampleRecord (and recorded trace sample) so fleet traces and
  /// replays stay per-client. 0 for the single-client drives.
  std::uint32_t client_id = 0;
};

/// One exchange as scored by the session — a superset of the fields the
/// figure benches (bench::RunPoint) and the sweep reduction historically
/// collected, so every consumer can be fed from the same record stream.
struct SampleRecord {
  std::uint64_t index = 0;  ///< poll sequence number (sim::Exchange::index)
  bool lost = false;        ///< no reply reached the host
  bool ref_available = false;
  bool in_warmup = false;       ///< before the configured discard cut
  bool evaluated = false;       ///< !lost && ref_available && !in_warmup
  bool server_changed = false;  ///< this reply triggered notify_server_change
  std::uint32_t client_id = 0;  ///< fleet position of the emitting client

  // -- Observables (valid when !lost) --------------------------------------
  core::RawExchange raw;             ///< the {Ta, Tb, Te, Tf} quadruple
  TscCount tf_counts_corrected = 0;  ///< side-mode-corrected Tf (§2.4)
  Seconds tg = 0;        ///< DAG stamp (valid when ref_available)
  Seconds truth_ta = 0;  ///< ground-truth wire departure (simulation-only;
                         ///< also filled for lost records)
  Seconds truth_tb = 0;  ///< ground-truth server arrival (simulation-only)
  double t_day = 0;      ///< raw.tb in days (figure x-axes)

  // -- Clock state after this exchange (valid when !lost) ------------------
  core::ProcessReport report;
  bool warmed_up = false;  ///< clock's own warm-up flag (§6.1)
  double period = 0;       ///< p̂ after this packet [s/count]

  // -- Reference-aligned errors (valid when !lost && ref_available) --------
  Seconds reference_offset = 0;  ///< θg = C(Tf) − Tg
  Seconds offset_error = 0;      ///< θ̂(t) − θg
  Seconds naive_error = 0;       ///< θ̂_i (naive) − θg
  Seconds abs_clock_error = 0;   ///< Ca(Tf) − Tg
};

/// Aggregate outcome of a session (counts match the legacy drive loops:
/// `exchanges` includes lost ones, `evaluated` survives warm-up discard).
struct SessionSummary {
  std::size_t exchanges = 0;
  std::size_t lost = 0;
  std::size_t evaluated = 0;
  /// Poll slots enumerated by the Testbed including outage-skipped ones;
  /// filled by run() after the drain (the Testbed owns the slot arithmetic).
  std::uint64_t polls_enumerated = 0;
  core::ClockStatus final_status;
};

/// Struct-of-arrays view of the *evaluated* records of one processed batch:
/// exactly the three series the sweep reductions consume (server receive
/// stamp raw.tb, absolute clock error Ca(Tf)−Tg, offset tracking error
/// θ̂−θg), in emission order. Batch-aware sinks receive these through one
/// on_batch() call per batch instead of one on_sample() virtual call per
/// record, and ClockSession::process_batch skips building the ~200-byte
/// SampleRecord entirely when only batch-aware sinks are attached.
struct SampleBatch {
  std::vector<double> tb;               ///< server receive stamps [s]
  std::vector<double> abs_clock_error;  ///< Ca(Tf) − Tg
  std::vector<double> offset_error;     ///< θ̂ − θg

  [[nodiscard]] std::size_t size() const { return tb.size(); }
  [[nodiscard]] bool empty() const { return tb.empty(); }
  void clear() {
    tb.clear();
    abs_clock_error.clear();
    offset_error.clear();
  }
  void reserve(std::size_t n) {
    tb.reserve(n);
    abs_clock_error.reserve(n);
    offset_error.reserve(n);
  }
  void push(double tb_stamp, double clock_error, double tracking_error) {
    tb.push_back(tb_stamp);
    abs_clock_error.push_back(clock_error);
    offset_error.push_back(tracking_error);
  }
};

/// Receives every record the session emits. Implementations must not assume
/// they are the only sink attached.
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void on_sample(const SampleRecord& record) = 0;

  /// Opt in to batched delivery: when every sink attached to a session
  /// reports true, ClockSession::process_batch delivers the evaluated stream
  /// as SampleBatch struct-of-arrays via on_batch() and never materializes
  /// SampleRecords. Only sinks that consume nothing beyond
  /// {raw.tb, abs_clock_error, offset_error} of *evaluated* records (the
  /// reducers) should opt in; record-shaped consumers keep the default.
  /// Batch-aware sinks must still implement on_sample identically — the
  /// scalar lane and mixed-sink sessions feed them per record.
  [[nodiscard]] virtual bool wants_batch() const { return false; }

  /// Batched delivery; invoked only from process_batch, and only when every
  /// attached sink wants_batch(). Default: ignore.
  virtual void on_batch(const SampleBatch& batch) { (void)batch; }
};

class ClockSession {
 public:
  /// Default-estimator session: the robust TscNtpClock via TscNtpEstimator.
  /// `nominal_period` is the spec-sheet counter period used as the clock's
  /// initial guess (normally sim::Testbed::nominal_period()).
  ClockSession(const SessionConfig& config, double nominal_period);

  /// Drive an arbitrary estimator through the identical pipeline.
  ClockSession(const SessionConfig& config,
               std::unique_ptr<ClockEstimator> estimator);

  ~ClockSession();  // out-of-line: TraceRecorder is incomplete here

  /// Attach a sink (non-owning; must outlive the session's processing).
  /// Sinks are invoked in attachment order, synchronously per record.
  void add_sink(SampleSink& sink);

  /// Process one exchange through the canonical sequence. Exposed so
  /// consumers that interleave other work between polls (e.g. the one-way
  /// delay example) or replay perturbed exchange vectors still share it.
  void process(const sim::Exchange& exchange);

  /// Process a batch of exchanges through the identical canonical sequence.
  /// When every attached sink wants_batch() (the sweep/bench reducer case),
  /// the loop skips SampleRecord construction and per-record virtual sink
  /// dispatch, accumulating the evaluated {tb, abs_clock_error, offset_error}
  /// series into one SampleBatch flushed to the sinks via on_batch() — the
  /// emitted values are bit-identical to the scalar lane's. With any
  /// record-shaped sink attached it degrades to per-record process() calls,
  /// so CallbackSink's read-the-clock-after-each-exchange semantics hold.
  void process_batch(std::span<const sim::Exchange> exchanges);

  /// Process a generator-written SoA batch (sim::Testbed::generate_batch)
  /// through the identical canonical sequence, reading columns directly —
  /// no Exchange row is built on the fast lane. With a record-shaped sink
  /// attached (or a trace recorder), rows are materialized one scratch
  /// Exchange at a time, so every record-shaped consumer observes exactly
  /// the scalar stream. run_batched drives this overload.
  void process_batch(const sim::ExchangeBatch& batch);

  /// Pull one exchange from the testbed and process it. Returns false when
  /// the testbed's configured duration is exhausted.
  bool step(sim::Testbed& testbed);

  /// Drain the whole testbed and return the final summary.
  const SessionSummary& run(sim::Testbed& testbed);

  /// Drain the whole testbed through the batched lane (the SoA stream:
  /// Testbed::generate_batch → process_batch(ExchangeBatch) in fixed-size
  /// chunks). Same summary, same sink-visible values as run(); this is the
  /// hot-path drive the sweep uses.
  const SessionSummary& run_batched(sim::Testbed& testbed);

  /// The summary so far (final_status is refreshed on access).
  const SessionSummary& summary();

  /// Record the testbed's poll-slot count after an external drain (run()
  /// does this itself; MultiEstimatorSession drives process() directly and
  /// back-fills each lane through this). Forwarded to the trace recorder
  /// when one is attached.
  void set_polls_enumerated(std::uint64_t polls);

  /// The robust clock behind the default estimator. Precondition: the
  /// session drives a TscNtpEstimator (the default); sessions constructed
  /// around another estimator must use estimator() instead.
  [[nodiscard]] core::TscNtpClock& clock();
  [[nodiscard]] const core::TscNtpClock& clock() const;

  [[nodiscard]] ClockEstimator& estimator() { return *estimator_; }
  [[nodiscard]] const ClockEstimator& estimator() const { return *estimator_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  /// The recorded estimator-independent stream. Precondition: the session
  /// was configured with record_trace = true.
  [[nodiscard]] const ReplayTrace& trace() const;

 private:
  void emit(const SampleRecord& record);

  SessionConfig config_;
  std::unique_ptr<ClockEstimator> estimator_;
  TscNtpEstimator* robust_ = nullptr;  ///< set when estimator_ is the default
  core::ServerChangeDetector server_changes_;
  std::vector<SampleSink*> sinks_;
  std::unique_ptr<TraceRecorder> recorder_;  ///< set when record_trace
  SessionSummary summary_;
  SampleBatch batch_;  ///< process_batch scratch (reused across batches)
  sim::Exchange scratch_;  ///< SoA-row materialization scratch
};

/// Fan one exchange stream into N estimators: every lane is a full
/// ClockSession (own estimator, own ServerChangeDetector, own warm-up
/// bookkeeping, own sink chain) fed the identical sim::Exchange sequence.
/// This is the drive layer for every head-to-head comparison — the legacy
/// pattern of co-driving a baseline clock from a CallbackSink is replaced by
/// one lane per algorithm, all scored by the same pipeline.
class MultiEstimatorSession {
 public:
  MultiEstimatorSession();
  ~MultiEstimatorSession();  // out-of-line: TraceRecorder is incomplete here

  /// Add a lane; returns its index. Lanes process each exchange in the
  /// order they were added (they are independent, so order only affects
  /// sink callback interleaving within one exchange).
  std::size_t add_lane(const SessionConfig& config,
                       std::unique_ptr<ClockEstimator> estimator);

  /// Record the estimator-independent stream alongside the lanes (one
  /// canonical recording shared by every replay lane — see
  /// harness/replay.hpp). `config` supplies the warm-up cut and the
  /// server-change tracking switch; call before processing starts.
  void enable_trace_recording(const SessionConfig& config);

  /// The recorded stream. Precondition: enable_trace_recording was called.
  [[nodiscard]] const ReplayTrace& trace() const;

  /// Attach a sink to one lane (non-owning).
  void add_sink(std::size_t lane, SampleSink& sink);

  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] ClockSession& lane(std::size_t index);
  [[nodiscard]] const ClockSession& lane(std::size_t index) const;

  /// Process one exchange through every lane.
  void process(const sim::Exchange& exchange);

  /// Process a batch of exchanges: the shared recorder observes each
  /// exchange once, then every lane consumes the whole batch through
  /// ClockSession::process_batch. Lane state and every sink-visible value
  /// are identical to per-exchange process(); only the interleaving of sink
  /// callbacks *across lanes* within a batch differs (lanes are
  /// independent, so this is unobservable through any one lane).
  void process_batch(std::span<const sim::Exchange> exchanges);

  /// SoA batch into every lane: the shared recorder observes each row once
  /// (materialized through one scratch Exchange), then every lane consumes
  /// the columns through ClockSession::process_batch(ExchangeBatch).
  void process_batch(const sim::ExchangeBatch& batch);

  /// Pull one exchange from the testbed into every lane. Returns false when
  /// the testbed's configured duration is exhausted.
  bool step(sim::Testbed& testbed);

  /// Drain the whole testbed through every lane and back-fill each lane's
  /// poll-slot count.
  void run(sim::Testbed& testbed);

  /// Batched run(): Testbed::generate_batch → process_batch(ExchangeBatch)
  /// in fixed-size chunks. Same final state as run(); the sweep's default
  /// drive.
  void run_batched(sim::Testbed& testbed);

 private:
  std::vector<std::unique_ptr<ClockSession>> lanes_;
  std::unique_ptr<TraceRecorder> recorder_;
  sim::Exchange scratch_;  ///< SoA-row materialization scratch
};

}  // namespace tscclock::harness
