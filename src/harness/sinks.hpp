// Pluggable SampleSink implementations for ClockSession:
//
//   CollectorSink        — buffers every record (figure benches, golden
//                          tests);
//   CallbackSink         — ad-hoc per-record lambda (streaming minima,
//                          progress printing);
//   ReducerSink          — the sweep's exact reduction: error summaries +
//                          two-scale Allan deviation over the evaluated
//                          stream (buffers the reduced series);
//   StreamingReducerSink — the same reduction in O(1) memory (P² quantile
//                          sketch + streaming ADEV accumulator), for traces
//                          too long to buffer;
//   CsvTraceSink         — per-exchange CSV rows for offline inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/allan.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "harness/replay.hpp"
#include "harness/session.hpp"

namespace tscclock::harness {

/// Buffers every record it receives, in emission order.
class CollectorSink final : public SampleSink {
 public:
  void on_sample(const SampleRecord& record) override {
    records_.push_back(record);
  }
  [[nodiscard]] const std::vector<SampleRecord>& records() const {
    return records_;
  }

 private:
  std::vector<SampleRecord> records_;
};

/// Invokes a callable for every record. The callable may read the session's
/// clock (sinks run synchronously, right after the record's exchange was
/// processed) and drive secondary consumers such as a baseline clock fed
/// from the same exchange stream.
class CallbackSink final : public SampleSink {
 public:
  using Callback = std::function<void(const SampleRecord&)>;
  explicit CallbackSink(Callback callback) : callback_(std::move(callback)) {}
  void on_sample(const SampleRecord& record) override { callback_(record); }

 private:
  Callback callback_;
};

/// Reduces the evaluated stream into the sweep's per-scenario statistics:
/// SeriesSummary of the absolute clock error Ca(Tf)−Tg and of the offset
/// tracking error θ̂−θg, plus the Allan deviation of the clock error at two
/// scales (adev factors × the polling period).
///
/// The sink retains the three series it reduces (times, clock errors,
/// offset errors) because exact percentiles need the sorted sample set —
/// the golden sweep tests pin every reduced value bit-for-bit against
/// summarize(). For traces too long to buffer, StreamingReducerSink below
/// computes the same Reduction in O(1) memory with P²-approximated
/// percentiles (everything else bit-identical).
class ReducerSink final : public SampleSink {
 public:
  struct Reduction {
    std::size_t evaluated = 0;
    /// Zero-initialized when evaluated == 0 (callers must not read a
    /// summary of an empty stream as a perfect run).
    SeriesSummary clock_error;
    SeriesSummary offset_error;
    /// 0 is the not-computable sentinel (trace too short for the scale).
    double adev_short_tau = 0;
    double adev_short = 0;
    double adev_long_tau = 0;
    double adev_long = 0;
  };

  /// `tau0` is the polling period: the ADEV resampling grid and the scale
  /// unit for the averaging factors. `mode` declares what ground truth the
  /// stream carries (GroundTruthMode doc in harness/replay.hpp): under
  /// kRelativeOnly the clock-error series is never collected (its summary
  /// stays zero-initialized with count 0, the structural-n/a sentinel) and
  /// the ADEV scales are computed over the tracking residual instead — the
  /// only stability series a reference-free trace defines.
  explicit ReducerSink(double tau0, std::size_t adev_short_factor = 16,
                       std::size_t adev_long_factor = 256,
                       GroundTruthMode mode = GroundTruthMode::kReference);

  void on_sample(const SampleRecord& record) override;

  /// Batch-aware: consumes exactly the three SampleBatch series, so the
  /// session's fast lane can skip record materialization entirely. The
  /// appended values are the ones on_sample would have pushed, in the same
  /// order — reduce() is bit-identical either way.
  [[nodiscard]] bool wants_batch() const override { return true; }
  void on_batch(const SampleBatch& batch) override;

  /// Reduce what has been consumed so far.
  [[nodiscard]] Reduction reduce() const;

 private:
  double tau0_;
  std::size_t short_factor_;
  std::size_t long_factor_;
  GroundTruthMode mode_;
  std::vector<double> times_;          ///< server receive stamps [s]
  std::vector<double> clock_errors_;   ///< Ca(Tf) − Tg (empty in relative)
  std::vector<double> offset_errors_;  ///< θ̂ − θg (θ̂ − θ̂_naive in relative)
};

/// O(1)-memory drop-in for ReducerSink: identical Reduction shape, identical
/// count/min/max/mean/stddev and ADEV values (the streaming ADEV replicates
/// the buffered stretch/resample/accumulate arithmetic exactly), with the
/// five percentiles approximated by a P² sketch. Use for month-scale sweeps
/// where buffering every evaluated exchange is no longer acceptable;
/// tolerance tests against the exact sink live in tests/test_harness.cpp.
class StreamingReducerSink final : public SampleSink {
 public:
  using Reduction = ReducerSink::Reduction;

  /// Same parameters (and mode semantics) as ReducerSink.
  explicit StreamingReducerSink(double tau0,
                                std::size_t adev_short_factor = 16,
                                std::size_t adev_long_factor = 256,
                                GroundTruthMode mode =
                                    GroundTruthMode::kReference);

  void on_sample(const SampleRecord& record) override;

  /// Batch-aware like ReducerSink; the accumulators are fed element by
  /// element in emission order, so the streaming state is bit-identical to
  /// the per-record path's.
  [[nodiscard]] bool wants_batch() const override { return true; }
  void on_batch(const SampleBatch& batch) override;

  /// Reduce what has been consumed so far.
  [[nodiscard]] Reduction reduce() const;

 private:
  double tau0_;
  std::size_t short_factor_;
  std::size_t long_factor_;
  GroundTruthMode mode_;
  StreamingSeriesSummary clock_error_;
  StreamingSeriesSummary offset_error_;
  /// Over (tb, Ca(Tf) − Tg) like the exact sink; (tb, θ̂ − θ̂_naive) in
  /// relative mode.
  StreamingGapAdev adev_;
};

/// Writes one CSV row per record (lost and warm-up records included when the
/// session emits them, flagged by the lost/evaluated columns). Pair with
/// SessionConfig::emit_unevaluated = true for gap-visible traces.
class CsvTraceSink final : public SampleSink {
 public:
  /// Tag selecting the resume mode of the appending constructor.
  struct Append {};

  /// Opens `path` (overwriting) and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit CsvTraceSink(const std::string& path);

  /// Opens an existing `path` at its end and appends rows without a new
  /// header (the sweep's checkpoint resume keeps the committed trace
  /// prefix byte-for-byte and regenerates only the tail).
  CsvTraceSink(const std::string& path, Append);

  /// Label written into the `scenario` column of subsequent rows, so one
  /// file can hold the traces of a whole sweep grid.
  void set_scenario(std::string name) { scenario_ = std::move(name); }

  /// Label written into the `estimator` column of subsequent rows, so one
  /// file can hold every estimator's trace of a multi-estimator sweep.
  void set_estimator(std::string name) { estimator_ = std::move(name); }

  void on_sample(const SampleRecord& record) override;

  /// Flush and close with error checking (see CsvWriter::close).
  void close() { writer_.close(); }

  [[nodiscard]] std::size_t rows_written() const {
    return writer_.rows_written();
  }

  /// Absolute byte offset after everything written so far (the sweep's
  /// per-scenario checkpoint watermark; see CsvWriter::byte_offset).
  [[nodiscard]] std::uint64_t byte_offset() { return writer_.byte_offset(); }

 private:
  CsvWriter writer_;
  std::string scenario_;
  std::string estimator_ = "robust";
  std::vector<std::string> row_;  ///< reused across rows (no per-row vector)
};

}  // namespace tscclock::harness
