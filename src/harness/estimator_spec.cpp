#include "harness/estimator_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/table.hpp"
#include "harness/estimator.hpp"
#include "harness/replay.hpp"

namespace tscclock::harness {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0)
    text.remove_prefix(1);
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0)
    text.remove_suffix(1);
  return text;
}

bool valid_family_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (std::islower(static_cast<unsigned char>(c)) != 0) ||
           (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_' ||
           c == '-';
  });
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

/// Canonicalize one value against its tunable, or throw with a message that
/// names the spec/key it came from.
std::string canonical_value(const TunableSpec& tunable, std::string_view raw,
                            const std::string& context) {
  const std::string value(trim(raw));
  if (value.empty()) {
    throw EstimatorSpecError(context + ": empty value for key '" +
                             tunable.key + "'");
  }
  switch (tunable.type) {
    case TunableType::kBool: {
      if (value == "0" || value == "false") return "0";
      if (value == "1" || value == "true") return "1";
      throw EstimatorSpecError(context + ": invalid boolean '" + value +
                               "' for key '" + tunable.key +
                               "' (expected 0, 1, true or false)");
    }
    case TunableType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
        throw EstimatorSpecError(context + ": invalid number '" + value +
                                 "' for key '" + tunable.key + "'");
      }
      // Normalize -0 to +0 so "-0" canonicalizes (and default-elides) like
      // "0" instead of escaping as the distinct label value "-0".
      if (v == 0.0 && std::signbit(v)) v = std::abs(v);
      if (v < tunable.min_value ||
          (tunable.min_exclusive && v == tunable.min_value)) {
        throw EstimatorSpecError(
            context + ": value " + value + " for key '" + tunable.key +
            "' must be " + (tunable.min_exclusive ? "> " : ">= ") +
            strfmt("%g", tunable.min_value));
      }
      return strfmt("%g", v);
    }
    case TunableType::kChoice: {
      if (std::find(tunable.choices.begin(), tunable.choices.end(), value) !=
          tunable.choices.end())
        return value;
      throw EstimatorSpecError(context + ": invalid value '" + value +
                               "' for key '" + tunable.key + "' (expected " +
                               join(tunable.choices) + ")");
    }
  }
  throw EstimatorSpecError(context + ": unhandled tunable type");
}

}  // namespace

// -- EstimatorSpec ---------------------------------------------------------

std::string EstimatorSpec::label() const {
  if (overrides.empty()) return family;
  std::string out = family + "(";
  for (std::size_t i = 0; i < overrides.size(); ++i) {
    if (i) out += ",";
    out += overrides[i].first + "=" + overrides[i].second;
  }
  return out + ")";
}

// -- ResolvedSpec ----------------------------------------------------------

bool ResolvedSpec::get_bool(std::string_view key) const {
  const auto it = values_.find(key);
  TSC_EXPECTS(it != values_.end());
  TSC_EXPECTS(it->second.type == TunableType::kBool);
  return it->second.value == "1";
}

double ResolvedSpec::get_double(std::string_view key) const {
  const auto it = values_.find(key);
  TSC_EXPECTS(it != values_.end());
  TSC_EXPECTS(it->second.type == TunableType::kDouble);
  return std::strtod(it->second.value.c_str(), nullptr);
}

const std::string& ResolvedSpec::get_choice(std::string_view key) const {
  const auto it = values_.find(key);
  TSC_EXPECTS(it != values_.end());
  TSC_EXPECTS(it->second.type == TunableType::kChoice);
  return it->second.value;
}

bool ResolvedSpec::is_overridden(std::string_view key) const {
  const auto it = values_.find(key);
  TSC_EXPECTS(it != values_.end());
  return it->second.overridden;
}

// -- EstimatorRegistry -----------------------------------------------------

EstimatorRegistry& EstimatorRegistry::instance() {
  static EstimatorRegistry registry;
  // Anchor the built-in registrations here: they live in the translation
  // units that implement the estimators (harness/estimator.cpp,
  // harness/replay.cpp), whose objects a static-library link could
  // otherwise drop. Runs once, before the first lookup can miss.
  static const bool builtins_registered = [] {
    detail::register_builtin_online_estimators(registry);
    detail::register_builtin_replay_estimators(registry);
    return true;
  }();
  (void)builtins_registered;
  return registry;
}

EstimatorRegistry& estimator_registry() {
  return EstimatorRegistry::instance();
}

void EstimatorRegistry::register_family(Family family) {
  if (!valid_family_name(family.name)) {
    throw EstimatorSpecError("estimator family '" + family.name +
                             "': name must be non-empty [a-z0-9_-]");
  }
  if (families_.count(family.name) != 0) {
    throw EstimatorSpecError("estimator family '" + family.name +
                             "' registered twice");
  }
  if (family.replay ? !family.make_replay : !family.make_online) {
    throw EstimatorSpecError("estimator family '" + family.name +
                             "': missing " +
                             (family.replay ? "replay" : "online") +
                             " factory");
  }
  for (const auto& tunable : family.tunables) {
    const std::string context =
        "estimator family '" + family.name + "' tunable '" + tunable.key +
        "'";
    if (!valid_family_name(tunable.key)) {
      throw EstimatorSpecError(context + ": key must be non-empty [a-z0-9_-]");
    }
    const auto same_key = [&](const TunableSpec& other) {
      return &other != &tunable && other.key == tunable.key;
    };
    if (std::any_of(family.tunables.begin(), family.tunables.end(), same_key))
      throw EstimatorSpecError(context + ": declared twice");
    if (tunable.type == TunableType::kChoice && tunable.choices.empty())
      throw EstimatorSpecError(context + ": choice tunable with no choices");
    // The default must canonicalize to itself, or default-elision breaks.
    if (canonical_value(tunable, tunable.default_value, context) !=
        tunable.default_value)
      throw EstimatorSpecError(context + ": default '" +
                               tunable.default_value + "' is not canonical");
  }
  families_.emplace(family.name, std::move(family));
}

bool EstimatorRegistry::has_family(std::string_view name) const {
  return families_.find(name) != families_.end();
}

const EstimatorRegistry::Family& EstimatorRegistry::family(
    std::string_view name) const {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    std::vector<std::string> known;
    for (const auto* entry : families()) known.push_back(entry->name);
    throw EstimatorSpecError("unknown estimator family '" +
                             std::string(name) + "' (known: " + join(known) +
                             ")");
  }
  return it->second;
}

std::vector<const EstimatorRegistry::Family*> EstimatorRegistry::families()
    const {
  std::vector<const Family*> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) out.push_back(&family);
  std::sort(out.begin(), out.end(), [](const Family* a, const Family* b) {
    return a->order != b->order ? a->order < b->order : a->name < b->name;
  });
  return out;
}

EstimatorSpec EstimatorRegistry::parse(std::string_view text) const {
  const std::string_view spec_text = trim(text);
  const std::string context = "estimator spec '" + std::string(spec_text) + "'";
  if (spec_text.empty()) throw EstimatorSpecError(context + ": empty spec");

  const std::size_t open = spec_text.find('(');
  std::string_view family_text = spec_text;
  std::string_view body;
  bool has_params = false;
  if (open != std::string_view::npos) {
    if (spec_text.back() != ')') {
      throw EstimatorSpecError(context + ": missing ')'");
    }
    family_text = trim(spec_text.substr(0, open));
    body = spec_text.substr(open + 1, spec_text.size() - open - 2);
    if (body.find('(') != std::string_view::npos ||
        body.find(')') != std::string_view::npos) {
      throw EstimatorSpecError(context + ": nested or unbalanced parentheses");
    }
    has_params = true;
  } else if (spec_text.find(')') != std::string_view::npos) {
    throw EstimatorSpecError(context + ": unmatched ')'");
  }
  if (!valid_family_name(family_text)) {
    throw EstimatorSpecError(context + ": malformed family name '" +
                             std::string(family_text) + "'");
  }

  const Family& entry = family(family_text);

  // key → canonical value, parse order irrelevant (canonical order is the
  // family's declared order, applied below).
  std::map<std::string, std::string> parsed;
  if (has_params && !trim(body).empty()) {
    std::string_view rest = body;
    while (true) {
      const std::size_t comma = rest.find(',');
      const std::string_view item = trim(rest.substr(0, comma));
      const std::size_t eq = item.find('=');
      if (item.empty() || eq == std::string_view::npos || eq == 0) {
        throw EstimatorSpecError(context + ": expected key=value, got '" +
                                 std::string(item) + "'");
      }
      const std::string key(trim(item.substr(0, eq)));
      const auto tunable = std::find_if(
          entry.tunables.begin(), entry.tunables.end(),
          [&](const TunableSpec& t) { return t.key == key; });
      if (tunable == entry.tunables.end()) {
        std::vector<std::string> keys;
        for (const auto& t : entry.tunables) keys.push_back(t.key);
        throw EstimatorSpecError(
            context + ": unknown key '" + key + "' for estimator '" +
            entry.name + "'" +
            (keys.empty() ? std::string(" (no tunable keys)")
                          : " (tunable keys: " + join(keys) + ")"));
      }
      if (parsed.count(key) != 0) {
        throw EstimatorSpecError(context + ": duplicate key '" + key + "'");
      }
      parsed.emplace(key,
                     canonical_value(*tunable, item.substr(eq + 1), context));
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
  }

  EstimatorSpec spec;
  spec.family = entry.name;
  for (const auto& tunable : entry.tunables) {
    const auto it = parsed.find(tunable.key);
    if (it == parsed.end()) continue;
    // Default-elision: an explicit value equal to the default is dropped, so
    // robust(use_local_rate=1) ≡ robust() ≡ robust and labels are canonical.
    if (it->second == tunable.default_value) continue;
    spec.overrides.emplace_back(tunable.key, it->second);
  }
  return spec;
}

std::vector<EstimatorSpec> EstimatorRegistry::parse_list(
    std::string_view text) const {
  const std::string context = "estimator list '" + std::string(text) + "'";
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')' && --depth < 0) {
      throw EstimatorSpecError(context + ": unmatched ')'");
    }
    if (c == ',' && depth == 0) {
      items.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  items.push_back(current);

  std::vector<EstimatorSpec> specs;
  specs.reserve(items.size());
  for (const auto& item : items) {
    // An empty item is always a typo ("robust,,naive", a trailing comma):
    // silently dropping it would run a different axis than asked for.
    if (trim(item).empty()) {
      throw EstimatorSpecError(context + ": empty item");
    }
    specs.push_back(parse(item));
  }
  return specs;
}

bool EstimatorRegistry::is_replay(const EstimatorSpec& spec) const {
  return family(spec.family).replay;
}

ResolvedSpec EstimatorRegistry::resolve(const EstimatorSpec& spec) const {
  const Family& entry = family(spec.family);
  ResolvedSpec resolved;
  for (const auto& tunable : entry.tunables) {
    resolved.values_[tunable.key] =
        ResolvedSpec::Value{tunable.default_value, tunable.type, false};
  }
  for (const auto& [key, value] : spec.overrides) {
    const auto it = resolved.values_.find(key);
    if (it == resolved.values_.end()) {
      throw EstimatorSpecError("estimator spec '" + spec.label() +
                               "': unknown key '" + key + "' for estimator '" +
                               entry.name + "'");
    }
    it->second.value = value;
    it->second.overridden = true;
  }
  return resolved;
}

std::unique_ptr<ClockEstimator> EstimatorRegistry::make_online(
    const EstimatorSpec& spec, const core::Params& params,
    double nominal_period) const {
  const Family& entry = family(spec.family);
  // Replay families cannot run online; the caller routes them through
  // make_replay over the recorded trace (see harness/replay.hpp).
  TSC_EXPECTS(!entry.replay);
  return entry.make_online(resolve(spec), params, nominal_period);
}

std::unique_ptr<ReplayEstimator> EstimatorRegistry::make_replay(
    const EstimatorSpec& spec, const core::Params& params,
    double nominal_period) const {
  const Family& entry = family(spec.family);
  TSC_EXPECTS(entry.replay);
  return entry.make_replay(resolve(spec), params, nominal_period);
}

}  // namespace tscclock::harness
