#include "harness/estimator.hpp"

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::harness {

// -- SwNtpEstimator --------------------------------------------------------

SwNtpEstimator::SwNtpEstimator(const baseline::PllConfig& config,
                               double nominal_period)
    : sw_(config, nominal_period),
      nominal_period_(nominal_period),
      uncorrected_(0, 0.0, nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

core::ProcessReport SwNtpEstimator::process_exchange(
    const core::RawExchange& exchange) {
  if (!initialized_) {
    // Same origin convention as TscNtpClock: C starts on the server midpoint
    // of the first exchange, so θg traces of different estimators on one
    // stream are directly comparable.
    const Seconds host_half_rtt =
        0.5 * delta_to_seconds(exchange.rtt_counts(), nominal_period_);
    const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
    uncorrected_ = CounterTimescale(exchange.tf, server_mid + host_half_rtt,
                                    nominal_period_);
    initialized_ = true;
  }
  sw_.process_exchange(exchange);

  core::ProcessReport report;
  // θ̂(t) = C(t) − Ca(t): the total correction the discipline currently
  // applies, in the same host−server convention as the robust clock.
  report.offset_estimate =
      uncorrected_.read(exchange.tf) - sw_.time(exchange.tf);
  // Per-packet view: the PLL's raw offset sample (server − client) mapped
  // into the same convention.
  report.naive_offset =
      report.offset_estimate - sw_.status().last_offset_sample;
  return report;
}

Seconds SwNtpEstimator::uncorrected_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  return uncorrected_.read(count);
}

Seconds SwNtpEstimator::absolute_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  return sw_.time(count);
}

double SwNtpEstimator::period() const {
  // The deliberately-varied disciplined rate (base frequency term + any
  // active slew), expressed as a period so rate-wobble analyses treat every
  // estimator uniformly.
  return nominal_period_ * sw_.effective_rate();
}

core::ClockStatus SwNtpEstimator::status() const {
  const auto sw_status = sw_.status();
  core::ClockStatus s;
  s.packets_processed = sw_status.samples;
  s.warmed_up = initialized_;
  s.period = period();
  s.offset = sw_status.last_offset_sample;
  return s;
}

// -- NaiveEstimator --------------------------------------------------------

NaiveEstimator::NaiveEstimator(double nominal_period)
    : timescale_(0, 0.0, nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

core::ProcessReport NaiveEstimator::process_exchange(
    const core::RawExchange& exchange) {
  core::ProcessReport report;
  if (!first_) {
    const Seconds host_half_rtt =
        0.5 * delta_to_seconds(exchange.rtt_counts(), timescale_.period());
    const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
    timescale_ = CounterTimescale(exchange.tf, server_mid + host_half_rtt,
                                  timescale_.period());
    first_ = exchange;
  } else {
    // Widening-baseline naive rate (eq. 17): first exchange to current one.
    // The period update preserves the reading at Tf, so C stays continuous
    // and usable as the θg alignment timebase.
    const double period =
        core::naive_rate(*first_, exchange).combined;
    timescale_.set_period_preserving_reading(exchange.tf, period);
    report.rate_accepted = true;
    report.rate_updated = true;
  }
  current_offset_ = core::naive_offset(exchange, timescale_);
  report.naive_offset = current_offset_;
  report.offset_estimate = current_offset_;
  ++packets_;
  return report;
}

Seconds NaiveEstimator::uncorrected_time(TscCount count) const {
  TSC_EXPECTS(packets_ > 0);
  return timescale_.read(count);
}

Seconds NaiveEstimator::absolute_time(TscCount count) const {
  TSC_EXPECTS(packets_ > 0);
  return timescale_.read(count) - current_offset_;
}

core::ClockStatus NaiveEstimator::status() const {
  core::ClockStatus s;
  s.packets_processed = packets_;
  s.warmed_up = warmed_up();
  s.period = timescale_.period();
  s.offset = current_offset_;
  return s;
}

// -- Registry --------------------------------------------------------------

bool is_replay_estimator(EstimatorKind kind) {
  return kind == EstimatorKind::kOffline;
}

std::string to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kRobust:
      return "robust";
    case EstimatorKind::kSwNtp:
      return "swntp";
    case EstimatorKind::kNaive:
      return "naive";
    case EstimatorKind::kOffline:
      return "offline";
  }
  return "unknown";
}

std::string estimator_description(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kRobust:
      return "robust TSC-NTP clock (paper §6: RTT filter, decoupled "
             "rate/offset, level shifts, sanity checks)";
    case EstimatorKind::kSwNtp:
      return "ntpd-style SW clock (clock filter + PLL discipline, steps and "
             "slews — the §1 baseline)";
    case EstimatorKind::kNaive:
      return "naive per-packet estimates (§4: unfiltered offset over the "
             "widening-baseline naive rate)";
    case EstimatorKind::kOffline:
      return "offline two-sided smoother (§5.3, NON-CAUSAL replay: scored "
             "post-hoc over the recorded trace using future packets)";
  }
  return "unknown";
}

std::optional<EstimatorKind> parse_estimator(std::string_view name) {
  if (name == "robust") return EstimatorKind::kRobust;
  if (name == "swntp") return EstimatorKind::kSwNtp;
  if (name == "naive") return EstimatorKind::kNaive;
  if (name == "offline") return EstimatorKind::kOffline;
  return std::nullopt;
}

const std::vector<EstimatorKind>& all_estimator_kinds() {
  static const std::vector<EstimatorKind> kinds = {
      EstimatorKind::kRobust, EstimatorKind::kSwNtp, EstimatorKind::kNaive,
      EstimatorKind::kOffline};
  return kinds;
}

std::unique_ptr<ClockEstimator> make_estimator(EstimatorKind kind,
                                               const core::Params& params,
                                               double nominal_period) {
  TSC_EXPECTS(!is_replay_estimator(kind));
  switch (kind) {
    case EstimatorKind::kRobust:
      return std::make_unique<TscNtpEstimator>(params, nominal_period);
    case EstimatorKind::kSwNtp:
      return std::make_unique<SwNtpEstimator>(baseline::PllConfig{},
                                              nominal_period);
    case EstimatorKind::kNaive:
      return std::make_unique<NaiveEstimator>(nominal_period);
    case EstimatorKind::kOffline:
      break;  // unreachable: rejected by the replay-kind contract above
  }
  TSC_EXPECTS(false);
  return nullptr;
}

}  // namespace tscclock::harness
