#include "harness/estimator.hpp"

#include "common/contracts.hpp"
#include "core/naive.hpp"
#include "harness/estimator_spec.hpp"

namespace tscclock::harness {

// -- SwNtpEstimator --------------------------------------------------------

SwNtpEstimator::SwNtpEstimator(const baseline::PllConfig& config,
                               double nominal_period)
    : sw_(config, nominal_period),
      nominal_period_(nominal_period),
      uncorrected_(0, 0.0, nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

core::ProcessReport SwNtpEstimator::process_exchange(
    const core::RawExchange& exchange) {
  if (!initialized_) {
    // Same origin convention as TscNtpClock: C starts on the server midpoint
    // of the first exchange, so θg traces of different estimators on one
    // stream are directly comparable.
    const Seconds host_half_rtt =
        0.5 * delta_to_seconds(exchange.rtt_counts(), nominal_period_);
    const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
    uncorrected_ = CounterTimescale(exchange.tf, server_mid + host_half_rtt,
                                    nominal_period_);
    initialized_ = true;
  }
  sw_.process_exchange(exchange);

  core::ProcessReport report;
  // θ̂(t) = C(t) − Ca(t): the total correction the discipline currently
  // applies, in the same host−server convention as the robust clock.
  report.offset_estimate =
      uncorrected_.read(exchange.tf) - sw_.time(exchange.tf);
  // Per-packet view: the PLL's raw offset sample (server − client) mapped
  // into the same convention.
  report.naive_offset =
      report.offset_estimate - sw_.status().last_offset_sample;
  return report;
}

Seconds SwNtpEstimator::uncorrected_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  return uncorrected_.read(count);
}

Seconds SwNtpEstimator::absolute_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  return sw_.time(count);
}

double SwNtpEstimator::period() const {
  // The deliberately-varied disciplined rate (base frequency term + any
  // active slew), expressed as a period so rate-wobble analyses treat every
  // estimator uniformly.
  return nominal_period_ * sw_.effective_rate();
}

core::ClockStatus SwNtpEstimator::status() const {
  const auto sw_status = sw_.status();
  core::ClockStatus s;
  s.packets_processed = sw_status.samples;
  s.warmed_up = initialized_;
  s.period = period();
  s.offset = sw_status.last_offset_sample;
  return s;
}

// -- NaiveEstimator --------------------------------------------------------

NaiveEstimator::NaiveEstimator(double nominal_period)
    : timescale_(0, 0.0, nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

core::ProcessReport NaiveEstimator::process_exchange(
    const core::RawExchange& exchange) {
  core::ProcessReport report;
  if (!first_) {
    const Seconds host_half_rtt =
        0.5 * delta_to_seconds(exchange.rtt_counts(), timescale_.period());
    const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
    timescale_ = CounterTimescale(exchange.tf, server_mid + host_half_rtt,
                                  timescale_.period());
    first_ = exchange;
  } else {
    // Widening-baseline naive rate (eq. 17): first exchange to current one.
    // The period update preserves the reading at Tf, so C stays continuous
    // and usable as the θg alignment timebase.
    const double period =
        core::naive_rate(*first_, exchange).combined;
    timescale_.set_period_preserving_reading(exchange.tf, period);
    report.rate_accepted = true;
    report.rate_updated = true;
  }
  current_offset_ = core::naive_offset(exchange, timescale_);
  report.naive_offset = current_offset_;
  report.offset_estimate = current_offset_;
  ++packets_;
  return report;
}

Seconds NaiveEstimator::uncorrected_time(TscCount count) const {
  TSC_EXPECTS(packets_ > 0);
  return timescale_.read(count);
}

Seconds NaiveEstimator::absolute_time(TscCount count) const {
  TSC_EXPECTS(packets_ > 0);
  return timescale_.read(count) - current_offset_;
}

core::ClockStatus NaiveEstimator::status() const {
  core::ClockStatus s;
  s.packets_processed = packets_;
  s.warmed_up = warmed_up();
  s.period = timescale_.period();
  s.offset = current_offset_;
  return s;
}

// -- Registry entries (online families) ------------------------------------

void detail::register_builtin_online_estimators(EstimatorRegistry& registry) {
  {
    EstimatorRegistry::Family robust;
    robust.name = "robust";
    robust.order = 10;
    robust.description =
        "robust TSC-NTP clock (paper §6: RTT filter, decoupled rate/offset, "
        "level shifts, sanity checks)";
    robust.tunables = {
        TunableSpec::boolean(
            "use_local_rate", "1",
            "eq. (21)/(23) linear prediction from the quasi-local rate"),
        TunableSpec::boolean(
            "enable_weighting", "1",
            "stage (ii)-(iii) weighted offset window (0: last-good-packet)"),
        TunableSpec::boolean("enable_aging", "1",
                             "point-error aging (the epsilon term of E^T)"),
        TunableSpec::boolean("enable_offset_sanity", "1",
                             "stage (iv) offset sanity check of §5.3"),
        TunableSpec::boolean("enable_rate_sanity", "1",
                             "local-rate sanity check"),
        TunableSpec::boolean("enable_level_shift", "1",
                             "§6.2 upward level-shift detection"),
        TunableSpec::number(
            "poll_period", "0",
            "poll period [s] the windows are sized for (0: the scenario's "
            "own poll period) - the Fig. 9(c) mis-sizing ablation",
            0.0),
    };
    // Only overridden keys are applied on top of the session's base Params:
    // a bare `robust` spec is bit-identical to constructing TscNtpEstimator
    // directly, and elided defaults mean "inherit".
    robust.make_online = [](const ResolvedSpec& spec,
                            const core::Params& base, double nominal_period) {
      core::Params params = base;
      if (spec.is_overridden("poll_period"))
        params.poll_period = spec.get_double("poll_period");
      if (spec.is_overridden("use_local_rate"))
        params.use_local_rate = spec.get_bool("use_local_rate");
      if (spec.is_overridden("enable_weighting"))
        params.enable_weighting = spec.get_bool("enable_weighting");
      if (spec.is_overridden("enable_aging"))
        params.enable_aging = spec.get_bool("enable_aging");
      if (spec.is_overridden("enable_offset_sanity"))
        params.enable_offset_sanity = spec.get_bool("enable_offset_sanity");
      if (spec.is_overridden("enable_rate_sanity"))
        params.enable_rate_sanity = spec.get_bool("enable_rate_sanity");
      if (spec.is_overridden("enable_level_shift"))
        params.enable_level_shift = spec.get_bool("enable_level_shift");
      params.validate();
      return std::make_unique<TscNtpEstimator>(params, nominal_period);
    };
    registry.register_family(std::move(robust));
  }
  {
    EstimatorRegistry::Family swntp;
    swntp.name = "swntp";
    swntp.order = 20;
    swntp.description =
        "ntpd-style SW clock (clock filter + PLL discipline, steps and slews "
        "— the §1 baseline)";
    swntp.tunables = {
        TunableSpec::number(
            "step_threshold", "0.128",
            "STEPT [s]: step instead of slewing beyond this offset", 0.0,
            /*min_exclusive=*/true),
        TunableSpec::number(
            "stepout", "900",
            "WATCH [s]: spike tolerance before a step is allowed", 0.0,
            /*min_exclusive=*/true),
    };
    swntp.make_online = [](const ResolvedSpec& spec, const core::Params&,
                           double nominal_period) {
      baseline::PllConfig config;
      if (spec.is_overridden("step_threshold"))
        config.step_threshold = spec.get_double("step_threshold");
      if (spec.is_overridden("stepout"))
        config.stepout = spec.get_double("stepout");
      return std::make_unique<SwNtpEstimator>(config, nominal_period);
    };
    registry.register_family(std::move(swntp));
  }
  {
    EstimatorRegistry::Family naive;
    naive.name = "naive";
    naive.order = 30;
    naive.description =
        "naive per-packet estimates (§4: unfiltered offset over the "
        "widening-baseline naive rate)";
    naive.make_online = [](const ResolvedSpec&, const core::Params&,
                           double nominal_period) {
      return std::make_unique<NaiveEstimator>(nominal_period);
    };
    registry.register_family(std::move(naive));
  }
}

}  // namespace tscclock::harness
