// Fleet drive: one FleetTestbed's merged exchange stream fanned into one
// ClockSession per client, plus fleet-level reducers over the population.
//
// The session demultiplexes the merged FleetBatch chunk by chunk into
// per-client SoA batches and feeds each client's ClockSession through the
// existing batched lanes — a 1-client FleetSession therefore performs
// exactly the calls ClockSession::run_batched(Testbed&) performs, with the
// identical chunking, which is what pins the single-client fleet drive
// bit-identical to the classic one (tests/test_fleet.cpp).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "harness/session.hpp"
#include "sim/fleet.hpp"

namespace tscclock::harness {

/// Population-level reduction over a fleet's per-client clock errors. All
/// three metrics are computed from per-client streaming P² sketches, so the
/// fleet drive stays O(1) memory per client.
struct FleetReduction {
  std::size_t clients = 0;            ///< fleet size
  std::size_t clients_with_data = 0;  ///< clients with ≥1 evaluated sample
  /// Population offset dispersion: stddev across clients of the per-client
  /// median absolute clock error. Zero until ≥2 clients have data.
  double dispersion = 0;
  /// Worst-client p99: max over clients of max(|p01|, |p99|) of the
  /// client's clock error — the fleet's tail client.
  double worst_p99 = 0;
  /// Pairwise spread: max − min across clients of the per-client median
  /// clock error (the widest disagreement between any two clients).
  double pairwise_spread = 0;
};

/// Per-client accumulator behind the fleet metrics: a streaming summary of
/// the client's evaluated clock errors. Batch-aware so it never forces a
/// lane off the record-free fast path.
class FleetClientProbe final : public SampleSink {
 public:
  void on_sample(const SampleRecord& record) override {
    if (record.evaluated) clock_error_.add(record.abs_clock_error);
  }
  [[nodiscard]] bool wants_batch() const override { return true; }
  void on_batch(const SampleBatch& batch) override {
    for (const double error : batch.abs_clock_error) clock_error_.add(error);
  }
  [[nodiscard]] const StreamingSeriesSummary& clock_error() const {
    return clock_error_;
  }

 private:
  StreamingSeriesSummary clock_error_;
};

/// Drives N ClockSessions (one per fleet client) from one FleetTestbed.
/// Lane k scores client k; each lane carries its own estimator instance and
/// sinks, exactly like a MultiEstimatorSession lane — plus one built-in
/// FleetClientProbe per lane feeding fleet_reduction().
class FleetSession {
 public:
  /// Add the lane for the next client (lanes must be added in client order;
  /// the lane's config.client_id is overwritten with its position). Returns
  /// the client index.
  std::size_t add_client(const SessionConfig& config,
                         std::unique_ptr<ClockEstimator> estimator);

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] ClockSession& client(std::size_t k) { return *clients_[k]; }
  [[nodiscard]] const ClockSession& client(std::size_t k) const {
    return *clients_[k];
  }

  /// Attach a sink to client k's lane (after its built-in probe).
  void add_sink(std::size_t k, SampleSink& sink);
  /// Attach one sink to every lane (fleet-wide reducers, trace dumps).
  void add_shared_sink(SampleSink& sink);

  /// Drain the fleet: pull merged chunks, demultiplex by client, feed each
  /// client's batched lane, then publish per-client poll-slot counts.
  void run_batched(sim::FleetTestbed& fleet);

  [[nodiscard]] FleetReduction fleet_reduction() const;

  /// Fleet-wide counters: exchanges/lost/evaluated/polls summed over the
  /// lanes; final_status is client 0's (the reference client).
  [[nodiscard]] SessionSummary combined_summary() const;

 private:
  std::vector<std::unique_ptr<ClockSession>> clients_;
  std::vector<std::unique_ptr<FleetClientProbe>> probes_;
  sim::FleetBatch batch_;
  std::vector<sim::ExchangeBatch> demux_;
};

}  // namespace tscclock::harness
