// EstimatorSpec / EstimatorRegistry: the parameterized, string-keyed
// estimator axis.
//
// The paper's §6/Fig. 9 sensitivity results and the Params feature toggles
// (use_local_rate, enable_level_shift, …) are ablation *variants* of one
// algorithm. A closed enum cannot carry them: every variant would need a new
// enumerator plus edits to to_string/parse/make in lockstep. Instead the
// axis is a registry of *families*, each with typed key=value tunables, and
// a spec names a family plus the tunables it overrides:
//
//   robust                         — the §6 algorithm, paper defaults
//   robust(use_local_rate=0)       — same, eq. (21)/(23) prediction off
//   robust(poll_period=64)         — windows sized for a 64 s poll period
//   offline(split=shifts)          — §5.3 smoother, trace split at shifts
//
// A registry Family declares its name, whether it runs online (a
// ClockEstimator driven by ClockSession) or on the replay lane (a
// ReplayEstimator scored post-hoc over the recorded trace), its tunables
// with defaults, and a factory closure building the estimator from the
// resolved parameters. `tools/sweep --list-estimators` renders all of it;
// adding a future baseline or ablation is a single registration.
//
// Canonicalization contract: parse("robust( use_local_rate = 0 )").label()
// is "robust(use_local_rate=0)" — values canonicalized, keys in the
// family's declared order, defaults elided (so "robust()" ≡ "robust" and
// parse ∘ label is idempotent). The canonical label is the identity used by
// reports, comparison tables, aggregates and --csv dumps. The estimator
// axis is never part of a scenario's RNG identity, so every spec of a
// scenario scores the same seed and packets by construction.
//
// Built-in families self-register from the translation units that implement
// them (harness/estimator.cpp, harness/replay.cpp); the registry core never
// names a family. Out-of-tree estimators register the same way — define a
// file-scope `EstimatorRegistrar` in a TU your binary links (beware: a
// static-library object nothing references is dropped by the linker; the
// built-ins are anchored from EstimatorRegistry::instance() so they can
// never vanish).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/params.hpp"

namespace tscclock::harness {

class ClockEstimator;   // harness/estimator.hpp
class ReplayEstimator;  // harness/replay.hpp

/// Malformed spec text or an invalid registration. The message is precise
/// enough to print verbatim as a CLI usage error (exit 2 in tools/sweep).
class EstimatorSpecError : public std::runtime_error {
 public:
  explicit EstimatorSpecError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Value type of one tunable key.
enum class TunableType {
  kBool,    ///< accepted: 0/1/true/false — canonical 0/1
  kDouble,  ///< finite decimal — canonical %g
  kChoice,  ///< one of `choices`, verbatim
};

/// One tunable key of a family: type, canonical default, and the metadata
/// --list-estimators surfaces.
struct TunableSpec {
  std::string key;
  TunableType type = TunableType::kBool;
  /// Canonical spelling of the default. A parsed value equal to it is elided
  /// from the canonical label (and from the overrides), so the default also
  /// means "inherit whatever the session's base configuration says".
  std::string default_value;
  std::string description;
  std::vector<std::string> choices;  ///< kChoice only
  /// kDouble only: overridden values below (or, with min_exclusive, at) this
  /// bound are parse errors — so boundary specs die as exit-2 usage errors,
  /// never as runtime FAILED cells.
  double min_value = -1e308;
  bool min_exclusive = false;

  static TunableSpec boolean(std::string key, std::string default_value,
                             std::string description) {
    return {std::move(key), TunableType::kBool, std::move(default_value),
            std::move(description), {}, -1e308, false};
  }
  static TunableSpec number(std::string key, std::string default_value,
                            std::string description,
                            double min_value = -1e308,
                            bool min_exclusive = false) {
    return {std::move(key), TunableType::kDouble, std::move(default_value),
            std::move(description), {}, min_value, min_exclusive};
  }
  static TunableSpec choice(std::string key, std::string default_value,
                            std::string description,
                            std::vector<std::string> choices) {
    return {std::move(key), TunableType::kChoice, std::move(default_value),
            std::move(description), std::move(choices), -1e308, false};
  }
};

/// A parsed, validated, canonical estimator spec: a registered family name
/// plus the non-default tunable overrides in declared-key order.
struct EstimatorSpec {
  std::string family;
  /// (key, canonical value) pairs, family-declared key order, defaults
  /// elided. Populated by EstimatorRegistry::parse — hand-built specs should
  /// carry an empty list (bare family) or go through parse().
  std::vector<std::pair<std::string, std::string>> overrides;

  /// Canonical label, e.g. "robust" or "robust(use_local_rate=0)". Flows
  /// through ScenarioResult, comparison tables, aggregates and --csv dumps;
  /// parse(label()) == *this for registry-produced specs.
  [[nodiscard]] std::string label() const;

  bool operator==(const EstimatorSpec&) const = default;
};

/// A spec resolved against its family: every tunable key present, override
/// or default, with typed accessors for the factories.
class ResolvedSpec {
 public:
  [[nodiscard]] bool get_bool(std::string_view key) const;
  [[nodiscard]] double get_double(std::string_view key) const;
  [[nodiscard]] const std::string& get_choice(std::string_view key) const;
  /// True when the spec set this key explicitly (factories that treat the
  /// default as "inherit from the base Params" branch on this).
  [[nodiscard]] bool is_overridden(std::string_view key) const;

 private:
  friend class EstimatorRegistry;
  struct Value {
    std::string value;
    TunableType type = TunableType::kBool;
    bool overridden = false;
  };
  std::map<std::string, Value, std::less<>> values_;
};

class EstimatorRegistry {
 public:
  using OnlineFactory = std::function<std::unique_ptr<ClockEstimator>(
      const ResolvedSpec& spec, const core::Params& params,
      double nominal_period)>;
  using ReplayFactory = std::function<std::unique_ptr<ReplayEstimator>(
      const ResolvedSpec& spec, const core::Params& params,
      double nominal_period)>;

  /// One registered estimator family.
  struct Family {
    std::string name;         ///< spec family key, e.g. "robust"
    std::string description;  ///< one line for --list-estimators
    /// Replay families are scored post-hoc over the recorded trace
    /// (non-causal; see harness/replay.hpp) instead of online.
    bool replay = false;
    /// Listing/reporting order (lower first, ties by name) — registration
    /// order across translation units is link-order dependent, the listing
    /// must not be.
    int order = 100;
    std::vector<TunableSpec> tunables;
    OnlineFactory make_online;  ///< required when !replay
    ReplayFactory make_replay;  ///< required when replay
  };

  /// The process-wide registry, built-ins guaranteed present.
  static EstimatorRegistry& instance();

  /// Register a family. Throws EstimatorSpecError on a duplicate name, a
  /// malformed name (must be [a-z0-9_-]+), a missing factory, or a tunable
  /// whose default does not parse as its own type.
  void register_family(Family family);

  [[nodiscard]] bool has_family(std::string_view name) const;
  /// Throws EstimatorSpecError (naming the known families) when unknown.
  [[nodiscard]] const Family& family(std::string_view name) const;
  /// Every registered family in listing order.
  [[nodiscard]] std::vector<const Family*> families() const;

  /// Parse one spec: `family` or `family(key=value,…)`, whitespace tolerated
  /// around every token. Throws EstimatorSpecError with a precise message on
  /// unbalanced parens, unknown family, unknown/duplicate keys, empty or
  /// ill-typed values. The result is canonical (see EstimatorSpec::label).
  [[nodiscard]] EstimatorSpec parse(std::string_view text) const;

  /// Parse a comma-separated spec list; commas inside parens do not split
  /// ("robust,robust(use_local_rate=0,enable_aging=0)" is two specs). Empty
  /// items ("a,,b", trailing comma) are errors, like every malformed value.
  [[nodiscard]] std::vector<EstimatorSpec> parse_list(
      std::string_view text) const;

  /// True when the spec's family runs on the replay lane.
  [[nodiscard]] bool is_replay(const EstimatorSpec& spec) const;

  /// Resolve every tunable of the spec's family (override or default).
  [[nodiscard]] ResolvedSpec resolve(const EstimatorSpec& spec) const;

  /// Build a fresh online estimator from the resolved spec. `params` is the
  /// session's base configuration (per-scenario poll period etc.); factories
  /// apply only the *overridden* keys on top of it, so a bare spec is
  /// bit-identical to constructing the adapter directly. Precondition:
  /// !is_replay(spec).
  [[nodiscard]] std::unique_ptr<ClockEstimator> make_online(
      const EstimatorSpec& spec, const core::Params& params,
      double nominal_period) const;

  /// Replay-lane counterpart of make_online. Precondition: is_replay(spec).
  [[nodiscard]] std::unique_ptr<ReplayEstimator> make_replay(
      const EstimatorSpec& spec, const core::Params& params,
      double nominal_period) const;

 private:
  std::map<std::string, Family, std::less<>> families_;
};

/// Shorthand for EstimatorRegistry::instance().
EstimatorRegistry& estimator_registry();

/// Static self-registration hook:
///   static const EstimatorRegistrar kMyEstimator{{.name = "mine", …}};
class EstimatorRegistrar {
 public:
  explicit EstimatorRegistrar(EstimatorRegistry::Family family) {
    EstimatorRegistry::instance().register_family(std::move(family));
  }
};

namespace detail {
// Built-in registrations, defined next to the estimator implementations and
// anchored from EstimatorRegistry::instance() so the registry is never
// missing its built-ins regardless of link order.
void register_builtin_online_estimators(EstimatorRegistry& registry);
void register_builtin_replay_estimators(EstimatorRegistry& registry);
}  // namespace detail

}  // namespace tscclock::harness
