// ClockEstimator: the algorithm-facing seam of the drive layer.
//
// The paper's central claims are comparative — the robust TSC clock vs an
// ntpd-style SW clock (§3, Figs 5-7) and vs the naive per-packet estimates
// (§4). ClockSession owns *how* an exchange stream is driven and scored;
// ClockEstimator abstracts *what* processes it, so every algorithm is graded
// by the identical measurement pipeline instead of a co-driven side loop:
//
//   * process one {Ta, Tb, Te, Tf} exchange and report the generic
//     per-packet outputs (offset estimate, per-packet naive offset, point
//     error, event flags — fields that do not apply to an algorithm stay at
//     their zero defaults);
//   * expose the algorithm's own uncorrected clock C(T) — the timebase the
//     θg alignment divides out (θg = C(Tf) − Tg; both the estimate and θg
//     use the same C, so the arbitrary clock origin cancels);
//   * expose the absolute clock Ca(T) (the algorithm's estimate of true
//     time) and a status snapshot for the session summary.
//
// Three adapters cover the paper's comparison set:
//   TscNtpEstimator — wraps core::TscNtpClock (the robust algorithm);
//   SwNtpEstimator  — wraps baseline::SwNtpClock; its stepped/slewed reading
//                     IS the estimator's absolute clock, scored exactly like
//                     the legacy hand-rolled duel loops did (sw.time(Tf)−Tg);
//   NaiveEstimator  — core::naive_rate / core::naive_offset per §4: the
//                     per-packet estimates with no filtering at all.
//
// The sweep's estimator axis names these adapters (and their parameterized
// ablation variants) through the EstimatorSpec/EstimatorRegistry layer in
// harness/estimator_spec.hpp; the built-in families self-register at the
// bottom of estimator.cpp (online) and replay.cpp (replay).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/swntp.hpp"
#include "common/time_types.hpp"
#include "core/clock.hpp"
#include "core/params.hpp"

namespace tscclock::harness {

class ClockEstimator {
 public:
  virtual ~ClockEstimator() = default;

  /// Stable identifier, e.g. "robust" (doubles as the report/CSV label).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Process one completed exchange. Timestamps are causally ordered
  /// (tf > ta) and later than any previously processed exchange. Fields of
  /// the report that have no analogue for the algorithm stay zero/false.
  virtual core::ProcessReport process_exchange(
      const core::RawExchange& exchange) = 0;

  /// React to a packet-layer server change. Default: ignore (the ntpd-style
  /// and naive baselines have no server-change machinery — that is part of
  /// what the comparison measures).
  virtual void notify_server_change() {}

  /// The algorithm's own uncorrected clock C(T): monotone, never stepped by
  /// offset corrections. Used for the θg reference alignment. Only called
  /// after at least one exchange has been processed.
  [[nodiscard]] virtual Seconds uncorrected_time(TscCount count) const = 0;

  /// The algorithm's absolute clock Ca(T) — its estimate of true time.
  /// Only called after at least one exchange has been processed.
  [[nodiscard]] virtual Seconds absolute_time(TscCount count) const = 0;

  /// Current period estimate p̂ [s/count] of the clock actually serving
  /// reads (for the SW clock: the deliberately-varied disciplined rate).
  [[nodiscard]] virtual double period() const = 0;

  /// The estimator's own warm-up flag (§6.1); algorithms without an explicit
  /// warm-up report true once initialized.
  [[nodiscard]] virtual bool warmed_up() const = 0;

  /// Clock resets ("steps") performed so far — the failure mode the paper's
  /// introduction criticizes. Step-free algorithms report 0.
  [[nodiscard]] virtual std::uint64_t steps() const { return 0; }

  /// Generic status counters for the session summary. Counters that do not
  /// apply stay zero.
  [[nodiscard]] virtual core::ClockStatus status() const = 0;
};

/// The robust TSC-NTP algorithm (paper §6) behind the estimator seam.
class TscNtpEstimator final : public ClockEstimator {
 public:
  TscNtpEstimator(const core::Params& params, double nominal_period)
      : clock_(params, nominal_period) {}

  [[nodiscard]] std::string_view name() const override { return "robust"; }
  core::ProcessReport process_exchange(
      const core::RawExchange& exchange) override {
    return clock_.process_exchange(exchange);
  }
  void notify_server_change() override { clock_.notify_server_change(); }
  [[nodiscard]] Seconds uncorrected_time(TscCount count) const override {
    return clock_.uncorrected_time(count);
  }
  [[nodiscard]] Seconds absolute_time(TscCount count) const override {
    return clock_.absolute_time(count);
  }
  [[nodiscard]] double period() const override { return clock_.period(); }
  [[nodiscard]] bool warmed_up() const override {
    return clock_.warmed_up();
  }
  [[nodiscard]] core::ClockStatus status() const override {
    return clock_.status();
  }

  /// The full robust-clock API, for consumers that need more than the
  /// estimator surface (difference-clock reads, parameter inspection).
  [[nodiscard]] core::TscNtpClock& clock() { return clock_; }
  [[nodiscard]] const core::TscNtpClock& clock() const { return clock_; }

 private:
  core::TscNtpClock clock_;
};

/// The ntpd-style disciplined software clock (clock filter + PLL + steps)
/// behind the estimator seam. Its stepped/slewed reading is the absolute
/// clock; the uncorrected clock is a free-running nominal-rate timescale
/// aligned at the first exchange exactly like TscNtpClock's origin, so θg
/// traces of different estimators stay directly comparable.
class SwNtpEstimator final : public ClockEstimator {
 public:
  SwNtpEstimator(const baseline::PllConfig& config, double nominal_period);

  [[nodiscard]] std::string_view name() const override { return "swntp"; }
  core::ProcessReport process_exchange(
      const core::RawExchange& exchange) override;
  [[nodiscard]] Seconds uncorrected_time(TscCount count) const override;
  [[nodiscard]] Seconds absolute_time(TscCount count) const override;
  [[nodiscard]] double period() const override;
  [[nodiscard]] bool warmed_up() const override { return initialized_; }
  [[nodiscard]] std::uint64_t steps() const override {
    return sw_.status().steps;
  }
  [[nodiscard]] core::ClockStatus status() const override;

  [[nodiscard]] baseline::SwNtpClock& sw_clock() { return sw_; }
  [[nodiscard]] const baseline::SwNtpClock& sw_clock() const { return sw_; }

 private:
  baseline::SwNtpClock sw_;
  double nominal_period_;
  CounterTimescale uncorrected_;  ///< free-running C(T) for θg alignment
  bool initialized_ = false;
};

/// The §4 naive estimates behind the estimator seam: the per-packet offset
/// θ̂_i = ½(C(Ta)+C(Tf)) − ½(Tb+Te) with no filtering, over a clock rated by
/// the widening-baseline naive rate p̂ = ½(p̂→ + p̂←) from the first exchange
/// to the current one (eq. 17). This is the baseline figures 5 and 6
/// contrast against.
class NaiveEstimator final : public ClockEstimator {
 public:
  explicit NaiveEstimator(double nominal_period);

  [[nodiscard]] std::string_view name() const override { return "naive"; }
  core::ProcessReport process_exchange(
      const core::RawExchange& exchange) override;
  [[nodiscard]] Seconds uncorrected_time(TscCount count) const override;
  [[nodiscard]] Seconds absolute_time(TscCount count) const override;
  [[nodiscard]] double period() const override {
    return timescale_.period();
  }
  [[nodiscard]] bool warmed_up() const override { return packets_ >= 2; }
  [[nodiscard]] core::ClockStatus status() const override;

 private:
  CounterTimescale timescale_;
  std::optional<core::RawExchange> first_;
  Seconds current_offset_ = 0;
  std::uint64_t packets_ = 0;
};

// The closed `EstimatorKind` enum and its to_string/parse_estimator/
// make_estimator trio were replaced by the parameterized EstimatorSpec
// registry — see harness/estimator_spec.hpp. Construct estimators either
// directly (the adapter classes above) or via
// estimator_registry().make_online(spec, params, nominal_period).

}  // namespace tscclock::harness
