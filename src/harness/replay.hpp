// Replay lane: non-causal estimators in the same head-to-head tables as the
// online ones.
//
// §5.3 observes that post-processing with future packets "makes good
// performance immediately following long periods of congestion or sequential
// packet loss much easier to achieve". To grade that claim alongside the
// online algorithms, the drive layer records the estimator-independent
// exchange stream once (TraceRecorder, wired into ClockSession /
// MultiEstimatorSession) and replays it through ReplayEstimators after the
// drain:
//
//   * TraceRecorder retains, per poll, everything a post-hoc estimator and
//     its scoring need — the RawExchange quadruple, the DAG ground truth,
//     the warm-up flag under the recording config's policy, and loss/server
//     -change markers — and nothing any online lane computed;
//   * ReplayEstimator consumes the complete trace at once (non-causal by
//     construction) and returns per-packet offsets over a fixed whole-trace
//     timescale; OfflineSmootherEstimator adapts core::smooth_offsets;
//   * ReplaySession walks the recorded trace emitting one SampleRecord per
//     sample to ordinary SampleSinks, with the reference alignment
//     (θg = C(Tf) − Tg), warm-up flags and `evaluated` semantics matching
//     ClockSession exactly — so percentiles/ADEV of replay lanes come from
//     the identical ReducerSink code path as every online lane.
//
// A replayed estimate at packet k uses packets after k: replay rows measure
// what post-processing can achieve on the identical packets, not what a
// deployable online clock achieves. The sweep's --estimators axis carries
// them anyway (the `offline` registry family, harness/estimator_spec.hpp)
// precisely so that comparison is made on one drive layer, one seed and one
// reduction.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/offline.hpp"
#include "core/params.hpp"
#include "core/server_change.hpp"
#include "harness/session.hpp"

namespace tscclock::harness {

/// Estimator-independent view of one Testbed poll, as retained by trace
/// recording. Lost polls are kept (flagged) so replay lanes can emit
/// gap-visible traces exactly like online lanes with emit_unevaluated.
struct ReplaySample {
  std::uint64_t index = 0;      ///< poll sequence number
  bool lost = false;            ///< no reply reached the host
  std::uint32_t client_id = 0;  ///< fleet position of the recorded client

  // -- Observables (valid when !lost) --------------------------------------
  core::RawExchange raw;             ///< the {Ta, Tb, Te, Tf} quadruple
  TscCount tf_counts_corrected = 0;  ///< side-mode-corrected Tf (§2.4)
  double t_day = 0;                  ///< raw.tb in days

  // -- Ground truth ---------------------------------------------------------
  bool ref_available = false;
  Seconds tg = 0;        ///< DAG stamp (valid when ref_available)
  Seconds truth_ta = 0;  ///< also filled for lost polls
  Seconds truth_tb = 0;

  // -- Drive-level flags (per the recording config) -------------------------
  bool in_warmup = false;
  bool server_changed = false;  ///< this reply's transport identity changed
};

/// What kind of ground truth a trace carries — designed into the replay
/// lane, not bolted onto the file format, because it changes what
/// `evaluated` and the error columns MEAN:
///
///   * kReference: a reference clock observed every exchange (the DAG
///     monitor in simulation, a GPS-disciplined capture in the field).
///     ref_available/tg are meaningful, and the reduction fills both the
///     absolute clock error Ca(Tf)−Tg and the tracking error θ̂−θg.
///   * kRelativeOnly: no reference exists (the real-internet case: a
///     collector only sees {Ta,Tb,Te,Tf}). Absolute-error columns are
///     structurally unavailable (n/a downstream, never zeros), and the
///     tracking/stability columns grade the estimate against the server's
///     own clock through the path: θ̂ − θ̂_naive, the per-packet residual of
///     the estimate against the instantaneous symmetric-path measurement.
///     Its spread and ADEV measure how stably the estimator tracks the one
///     clock it can actually see.
enum class GroundTruthMode { kReference, kRelativeOnly };

/// A recorded exchange stream plus the drive-level counters a summary needs.
struct ReplayTrace {
  std::vector<ReplaySample> samples;  ///< every poll, lost ones flagged
  std::size_t exchanges = 0;          ///< samples.size(), incl. lost
  std::size_t lost = 0;
  std::uint64_t polls_enumerated = 0;  ///< incl. outage-skipped slots
  /// Simulation recordings carry the DAG reference; imported real traces
  /// declare what their file header says (trace/trace_io.hpp).
  GroundTruthMode ground_truth = GroundTruthMode::kReference;

  /// Non-lost samples (what a replay estimator actually processes).
  [[nodiscard]] std::size_t arrived() const { return exchanges - lost; }
};

/// Records the estimator-independent stream. One recording per drive is
/// canonical and shared by every replay lane: the trace does not depend on
/// which (or how many) online estimators scored it.
class TraceRecorder {
 public:
  /// `config` supplies the warm-up cut (discard_warmup + warmup_policy) and
  /// the server-change tracking switch; the estimator and sink fields are
  /// ignored.
  explicit TraceRecorder(const SessionConfig& config);

  /// Record one exchange (lost ones included).
  void observe(const sim::Exchange& exchange);

  void set_polls_enumerated(std::uint64_t polls) {
    trace_.polls_enumerated = polls;
  }

  [[nodiscard]] const ReplayTrace& trace() const { return trace_; }

 private:
  SessionConfig config_;
  core::ServerChangeDetector server_changes_;
  ReplayTrace trace_;
};

/// What a replay estimator computes from a complete trace.
struct ReplayOutput {
  /// θ̂(t_k) for every non-lost sample, in trace order.
  std::vector<Seconds> offsets;
  /// Per-packet point error E_k aligned with `offsets`; may be left empty
  /// when the algorithm has no such notion (records then carry 0).
  std::vector<Seconds> point_errors;
  /// The fixed uncorrected clock C(T) the offsets refer to — the timebase
  /// the θg alignment divides out, whole-trace by construction.
  CounterTimescale timescale;
  double period = 0;  ///< p̂ [s/count]
  /// Status counters for the session summary (fields with no analogue stay
  /// zero; replay estimators never step, so steps stay 0 implicitly).
  core::ClockStatus status;
};

/// The algorithm-facing seam of the replay lane: ClockEstimator's non-causal
/// sibling. Implementations see the whole trace at once.
class ReplayEstimator {
 public:
  virtual ~ReplayEstimator() = default;

  /// Stable identifier (doubles as the report/CSV label), e.g. "offline".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Process a complete recorded trace. Must return exactly one offset per
  /// non-lost sample. Precondition: at least two non-lost samples
  /// (ReplaySession guards this and emits nothing for smaller traces).
  virtual ReplayOutput process_trace(
      std::span<const ReplaySample> samples) = 0;
};

/// The §5.3 two-sided smoother (core::smooth_offsets) behind the replay
/// seam: whole-trace robust rate, symmetric RTT-weighted offset window.
///
/// Split::kShifts is the `offline(split=shifts)` registry variant: before
/// smoothing, the trace is cut at detected level shifts (sustained changes
/// of the windowed minimum RTT — an offline two-sided analogue of the §6.2
/// detector) and each segment is smoothed with its own whole-segment rate
/// and minimum, so a route change cannot poison r̂ and p̄ across its
/// boundary. Per-segment offsets are translated onto the first segment's
/// timescale, keeping one fixed C(T) for the θg alignment; on a trace with
/// no detected shift the output is identical to Split::kNone by
/// construction.
class OfflineSmootherEstimator final : public ReplayEstimator {
 public:
  enum class Split { kNone, kShifts };

  OfflineSmootherEstimator(const core::Params& params, double nominal_period,
                           Split split = Split::kNone);

  [[nodiscard]] std::string_view name() const override { return "offline"; }
  ReplayOutput process_trace(std::span<const ReplaySample> samples) override;

  /// The last replay's full §5.3 result (poor-window accounting, r̂, p̄);
  /// under Split::kShifts the concatenated per-segment result on the first
  /// segment's timescale.
  [[nodiscard]] const core::OfflineResult& result() const { return result_; }

  /// Segments the last replay was smoothed in (1 + detected shift cuts).
  [[nodiscard]] std::size_t segments() const { return segments_; }

 private:
  core::Params params_;
  double nominal_period_;
  Split split_;
  core::OfflineResult result_;
  std::size_t segments_ = 0;
};

/// Scores one ReplayEstimator over a recorded trace through the identical
/// reduction code path as the online lanes: one SampleRecord per sample to
/// the attached SampleSinks, in trace order. The record fields mirror
/// ClockSession::process — same reference alignment, same warm-up flags,
/// same `evaluated` definition — so a ReducerSink (or CsvTraceSink) attached
/// here produces statistics directly comparable with every online lane.
class ReplaySession {
 public:
  ReplaySession(const SessionConfig& config,
                std::unique_ptr<ReplayEstimator> estimator);

  /// Attach a sink (non-owning; must outlive run()).
  void add_sink(SampleSink& sink);

  /// Replay the whole trace and return the final summary. A trace with
  /// fewer than two non-lost samples yields zero evaluated records (an
  /// "n/a" row downstream) instead of throwing: a total-loss scenario must
  /// not fail its whole grid cell.
  const SessionSummary& run(const ReplayTrace& trace);

  [[nodiscard]] const SessionSummary& summary() const { return summary_; }
  [[nodiscard]] ReplayEstimator& estimator() { return *estimator_; }
  [[nodiscard]] const ReplayEstimator& estimator() const {
    return *estimator_;
  }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  void emit(const SampleRecord& record);

  SessionConfig config_;
  std::unique_ptr<ReplayEstimator> estimator_;
  std::vector<SampleSink*> sinks_;
  SessionSummary summary_;
};

// Replay estimators are built through the EstimatorSpec registry
// (harness/estimator_spec.hpp): estimator_registry().make_replay(spec, …).
// The `offline` family self-registers at the bottom of replay.cpp.

}  // namespace tscclock::harness
