#include "harness/sinks.hpp"

#include <span>

#include "common/allan.hpp"
#include "common/table.hpp"

namespace tscclock::harness {

ReducerSink::ReducerSink(double tau0, std::size_t adev_short_factor,
                         std::size_t adev_long_factor, GroundTruthMode mode)
    : tau0_(tau0),
      short_factor_(adev_short_factor),
      long_factor_(adev_long_factor),
      mode_(mode) {}

void ReducerSink::on_sample(const SampleRecord& record) {
  if (!record.evaluated) return;
  times_.push_back(record.raw.tb);
  // In relative mode abs_clock_error is structurally 0 (no reference): it
  // must never enter a summary where it would read as perfect tracking.
  if (mode_ == GroundTruthMode::kReference)
    clock_errors_.push_back(record.abs_clock_error);
  offset_errors_.push_back(record.offset_error);
}

void ReducerSink::on_batch(const SampleBatch& batch) {
  times_.insert(times_.end(), batch.tb.begin(), batch.tb.end());
  if (mode_ == GroundTruthMode::kReference) {
    clock_errors_.insert(clock_errors_.end(), batch.abs_clock_error.begin(),
                         batch.abs_clock_error.end());
  }
  offset_errors_.insert(offset_errors_.end(), batch.offset_error.begin(),
                        batch.offset_error.end());
}

namespace {

/// Fill both ADEV scales from one resampled series; allan_deviation skips
/// factors the trace is too short to support, leaving the 0 sentinel.
///
/// Computed over the longest stretch free of gaps > 4·tau0: interpolating
/// across an outage would fabricate collinear samples whose second
/// differences are exactly zero, biasing ADEV low for precisely the
/// robustness schedules a sweep is meant to compare. Ordinary packet loss
/// (a 2·tau0 hole) stays within one stretch.
void fill_adev(const std::vector<double>& times,
               const std::vector<double>& errors, double tau0,
               std::size_t short_factor, std::size_t long_factor,
               ReducerSink::Reduction& out) {
  if (times.size() < 3) return;
  std::size_t best_begin = 0;
  std::size_t best_len = 0;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= times.size(); ++i) {
    if (i == times.size() || times[i] - times[i - 1] > 4 * tau0) {
      if (i - begin > best_len) {
        best_len = i - begin;
        best_begin = begin;
      }
      begin = i;
    }
  }
  if (best_len < 3) return;
  const std::span<const double> seg_times(times.data() + best_begin, best_len);
  const std::span<const double> seg_errors(errors.data() + best_begin,
                                           best_len);
  const auto regular = resample_linear(seg_times, seg_errors, tau0);
  const std::size_t factors[] = {short_factor, long_factor};
  for (const auto& point : allan_deviation(regular, tau0, factors)) {
    if (point.tau == out.adev_short_tau) out.adev_short = point.deviation;
    if (point.tau == out.adev_long_tau) out.adev_long = point.deviation;
  }
}

}  // namespace

ReducerSink::Reduction ReducerSink::reduce() const {
  Reduction out;
  out.evaluated = offset_errors_.size();
  // A stream can end with no evaluable points (warm-up discard covering the
  // whole duration, or total loss); summarize() requires a non-empty series.
  if (!clock_errors_.empty()) out.clock_error = summarize(clock_errors_);
  if (!offset_errors_.empty()) out.offset_error = summarize(offset_errors_);
  out.adev_short_tau = static_cast<double>(short_factor_) * tau0_;
  out.adev_long_tau = static_cast<double>(long_factor_) * tau0_;
  fill_adev(times_,
            mode_ == GroundTruthMode::kReference ? clock_errors_
                                                 : offset_errors_,
            tau0_, short_factor_, long_factor_, out);
  return out;
}

StreamingReducerSink::StreamingReducerSink(double tau0,
                                           std::size_t adev_short_factor,
                                           std::size_t adev_long_factor,
                                           GroundTruthMode mode)
    : tau0_(tau0),
      short_factor_(adev_short_factor),
      long_factor_(adev_long_factor),
      mode_(mode),
      adev_(tau0, {adev_short_factor, adev_long_factor}) {}

void StreamingReducerSink::on_sample(const SampleRecord& record) {
  if (!record.evaluated) return;
  const bool reference = mode_ == GroundTruthMode::kReference;
  if (reference) clock_error_.add(record.abs_clock_error);
  offset_error_.add(record.offset_error);
  adev_.add(record.raw.tb,
            reference ? record.abs_clock_error : record.offset_error);
}

void StreamingReducerSink::on_batch(const SampleBatch& batch) {
  const bool reference = mode_ == GroundTruthMode::kReference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (reference) clock_error_.add(batch.abs_clock_error[i]);
    offset_error_.add(batch.offset_error[i]);
    adev_.add(batch.tb[i], reference ? batch.abs_clock_error[i]
                                     : batch.offset_error[i]);
  }
}

StreamingReducerSink::Reduction StreamingReducerSink::reduce() const {
  Reduction out;
  out.evaluated = offset_error_.count();
  if (clock_error_.count() > 0) out.clock_error = clock_error_.summary();
  if (offset_error_.count() > 0) out.offset_error = offset_error_.summary();
  out.adev_short_tau = static_cast<double>(short_factor_) * tau0_;
  out.adev_long_tau = static_cast<double>(long_factor_) * tau0_;
  for (const auto& point : adev_.result()) {
    if (point.tau == out.adev_short_tau) out.adev_short = point.deviation;
    if (point.tau == out.adev_long_tau) out.adev_long = point.deviation;
  }
  return out;
}

namespace {

const std::vector<std::string>& trace_columns() {
  static const std::vector<std::string> columns = {
      "scenario",      "estimator",      "index",          "lost",
      "ref_available", "in_warmup",      "evaluated",
      "server_changed", "warmed_up",
      "t_day",         "tb_stamp",       "truth_tb",
      "offset_estimate",
      "reference_offset", "offset_error", "naive_error",
      "point_error",   "abs_clock_error", "period",
      "sanity_triggered", "upshift",      "downshift",
      // Trailing so existing column positions (CI cuts field 2 for the
      // estimator label) survive the fleet extension.
      "client"};
  return columns;
}

}  // namespace

CsvTraceSink::CsvTraceSink(const std::string& path)
    : writer_(path, trace_columns()) {}

CsvTraceSink::CsvTraceSink(const std::string& path, Append)
    : writer_(path, trace_columns(), CsvWriter::Append{}) {}

void CsvTraceSink::on_sample(const SampleRecord& r) {
  const bool upshift = r.report.shift && r.report.shift->upward;
  const bool downshift = r.report.shift && !r.report.shift->upward;
  // truth_tb is the one time column lost records carry (no reply, no
  // tb_stamp), so gap/loss timing survives into offline analysis. The
  // ref_available flag marks rows whose reference-aligned error columns are
  // not meaningful (printed as zeros) — without it they would read as
  // spurious perfect-tracking samples.
  //
  // The row vector is a member reused across calls: a long trace dump emits
  // millions of rows and must not pay a fresh vector per record.
  row_.resize(trace_columns().size());
  std::size_t c = 0;
  row_[c++] = scenario_;
  row_[c++] = estimator_;
  row_[c++] = format_count(r.index);
  row_[c++] = r.lost ? "1" : "0";
  row_[c++] = r.ref_available ? "1" : "0";
  row_[c++] = r.in_warmup ? "1" : "0";
  row_[c++] = r.evaluated ? "1" : "0";
  row_[c++] = r.server_changed ? "1" : "0";
  row_[c++] = r.warmed_up ? "1" : "0";
  row_[c++] = strfmt("%.6f", r.t_day);
  row_[c++] = strfmt("%.6f", r.raw.tb);
  row_[c++] = strfmt("%.6f", r.truth_tb);
  row_[c++] = strfmt("%.9e", r.report.offset_estimate);
  row_[c++] = strfmt("%.9e", r.reference_offset);
  row_[c++] = strfmt("%.9e", r.offset_error);
  row_[c++] = strfmt("%.9e", r.naive_error);
  row_[c++] = strfmt("%.9e", r.report.point_error);
  row_[c++] = strfmt("%.9e", r.abs_clock_error);
  row_[c++] = strfmt("%.12e", r.period);
  row_[c++] = r.report.sanity_triggered ? "1" : "0";
  row_[c++] = upshift ? "1" : "0";
  row_[c++] = downshift ? "1" : "0";
  row_[c++] = format_count(r.client_id);
  writer_.write_row(row_);
}

}  // namespace tscclock::harness
