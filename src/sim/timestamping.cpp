#include "sim/timestamping.hpp"

#include "common/contracts.hpp"

namespace tscclock::sim {

HostTimestamper::HostTimestamper(const TimestampingConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  TSC_EXPECTS(config.send_latency_min >= 0.0);
  TSC_EXPECTS(config.send_latency_mean >= config.send_latency_min);
  TSC_EXPECTS(config.recv_latency_min >= 0.0);
  TSC_EXPECTS(config.recv_latency_mean >= config.recv_latency_min);
  TSC_EXPECTS(config.outlier_max >= config.outlier_min);
}

Seconds HostTimestamper::draw_send_lead() {
  return config_.send_latency_min +
         rng_.exponential(config_.send_latency_mean - config_.send_latency_min +
                          1e-12);
}

HostTimestamper::RecvLag HostTimestamper::draw_recv_lag_detailed() {
  RecvLag lag;
  lag.base = config_.recv_latency_min +
             rng_.exponential(config_.recv_latency_mean -
                              config_.recv_latency_min + 1e-12);
  lag.total = lag.base;
  if (rng_.bernoulli(config_.side_mode_10us_prob)) lag.total += 10e-6;
  if (rng_.bernoulli(config_.side_mode_31us_prob)) lag.total += 31e-6;
  if (rng_.bernoulli(config_.outlier_prob))
    lag.total += rng_.uniform(config_.outlier_min, config_.outlier_max);
  return lag;
}

}  // namespace tscclock::sim
