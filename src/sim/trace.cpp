#include "sim/trace.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tscclock::sim {

namespace {

constexpr char kHeader[] =
    "index,lost,ta_counts,tb_stamp,te_stamp,tf_counts,tf_counts_corrected,"
    "ref_available,tg,server_id,server_stratum,"
    "true_ta,true_tb,true_te,true_tf,d_forward,d_server,d_backward";

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size())
    throw std::runtime_error("trace: bad integer field '" + s + "'");
  return value;
}

double parse_double(const std::string& s) {
  try {
    std::size_t used = 0;
    const double value = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("trace: bad numeric field '" + s + "'");
  }
}

}  // namespace

void write_trace(const std::string& path,
                 const std::vector<Exchange>& exchanges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace: cannot open " + path);
  out << kHeader << '\n';
  // max_digits10: doubles round-trip losslessly through the text form.
  out.precision(17);
  for (const auto& ex : exchanges) {
    out << ex.index << ',' << (ex.lost ? 1 : 0) << ',' << ex.ta_counts << ','
        << ex.tb_stamp << ',' << ex.te_stamp << ',' << ex.tf_counts << ','
        << ex.tf_counts_corrected << ',' << (ex.ref_available ? 1 : 0) << ','
        << ex.tg << ',' << ex.server_id << ','
        << static_cast<unsigned>(ex.server_stratum) << ',' << ex.truth.ta
        << ',' << ex.truth.tb << ',' << ex.truth.te << ',' << ex.truth.tf
        << ',' << ex.truth.d_forward << ',' << ex.truth.d_server << ','
        << ex.truth.d_backward << '\n';
  }
  if (!out) throw std::runtime_error("write_trace: write failed: " + path);
}

std::vector<Exchange> read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::runtime_error("read_trace: bad header in " + path);

  std::vector<Exchange> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split(line);
    if (cells.size() != 18)
      throw std::runtime_error("read_trace: bad row arity in " + path);
    Exchange ex;
    ex.index = parse_u64(cells[0]);
    ex.lost = parse_u64(cells[1]) != 0;
    ex.ta_counts = parse_u64(cells[2]);
    ex.tb_stamp = parse_double(cells[3]);
    ex.te_stamp = parse_double(cells[4]);
    ex.tf_counts = parse_u64(cells[5]);
    ex.tf_counts_corrected = parse_u64(cells[6]);
    ex.ref_available = parse_u64(cells[7]) != 0;
    ex.tg = parse_double(cells[8]);
    ex.server_id = static_cast<std::uint32_t>(parse_u64(cells[9]));
    ex.server_stratum = static_cast<std::uint8_t>(parse_u64(cells[10]));
    ex.truth.ta = parse_double(cells[11]);
    ex.truth.tb = parse_double(cells[12]);
    ex.truth.te = parse_double(cells[13]);
    ex.truth.tf = parse_double(cells[14]);
    ex.truth.d_forward = parse_double(cells[15]);
    ex.truth.d_server = parse_double(cells[16]);
    ex.truth.d_backward = parse_double(cells[17]);
    out.push_back(ex);
  }
  return out;
}

}  // namespace tscclock::sim
