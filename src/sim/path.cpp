#include "sim/path.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::sim {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

OneWayDelayModel::OneWayDelayModel(const OneWayDelayConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  TSC_EXPECTS(config.min_delay > 0.0);
  TSC_EXPECTS(config.jitter_mean > 0.0);
  TSC_EXPECTS(config.spike_prob >= 0.0 && config.spike_prob <= 1.0);
  TSC_EXPECTS(config.pareto_shape > 1.0);
  next_episode_ = rng_.exponential(config.congestion_mean_interval);
}

void OneWayDelayModel::advance_episodes(Seconds t) {
  while (t >= next_episode_) {
    episode_start_ = next_episode_;
    episode_end_ =
        episode_start_ + rng_.exponential(config_.congestion_mean_duration);
    next_episode_ =
        episode_end_ + rng_.exponential(config_.congestion_mean_interval);
  }
}

bool OneWayDelayModel::in_congestion(Seconds t) const {
  return t >= episode_start_ && t < episode_end_;
}

double OneWayDelayModel::spike_probability(Seconds t) const {
  // Diurnal utilisation: raised around the peak hour, reduced at night.
  const double phase =
      kTwoPi * (t - config_.diurnal_peak_time) / duration::kDay;
  const double load = 1.0 + config_.diurnal_load * std::cos(phase);
  double p = config_.spike_prob * load;
  if (in_congestion(t)) p = std::max(p, config_.congestion_spike_prob);
  return std::clamp(p, 0.0, 1.0);
}

Seconds OneWayDelayModel::delay(Seconds t) {
  advance_episodes(t);
  Seconds q = rng_.exponential(config_.jitter_mean);
  if (rng_.bernoulli(spike_probability(t))) {
    const Seconds mean = in_congestion(t) ? config_.congestion_spike_mean
                                          : config_.spike_mean;
    // Pareto with the requested mean: mean = scale / (shape - 1).
    const double scale = mean * (config_.pareto_shape - 1.0);
    q += rng_.pareto(config_.pareto_shape, scale);
  }
  return config_.min_delay + q;
}

PathModel::PathModel(const PathConfig& config, const EventSchedule* events,
                     Rng rng)
    : config_(config),
      events_(events),
      forward_model_(config.forward, rng.fork(1)),
      backward_model_(config.backward, rng.fork(2)),
      loss_rng_(rng.fork(3).engine()()),
      transit_cursor_(events),
      query_cursor_(events) {
  TSC_EXPECTS(config.loss_prob >= 0.0 && config.loss_prob <= 1.0);
}

PathModel::Transit PathModel::forward(Seconds t) {
  Transit tr;
  tr.lost = loss_rng_.bernoulli(config_.loss_prob);
  tr.delay = forward_model_.delay(t) + transit_cursor_.path_shift(t).forward;
  return tr;
}

PathModel::Transit PathModel::backward(Seconds t) {
  Transit tr;
  tr.lost = loss_rng_.bernoulli(config_.loss_prob);
  tr.delay = backward_model_.delay(t) + transit_cursor_.path_shift(t).backward;
  return tr;
}

Seconds PathModel::forward_min(Seconds t) const {
  return config_.forward.min_delay + query_cursor_.path_shift(t).forward;
}

Seconds PathModel::backward_min(Seconds t) const {
  return config_.backward.min_delay + query_cursor_.path_shift(t).backward;
}

Seconds PathModel::asymmetry(Seconds t) const {
  return forward_min(t) - backward_min(t);
}

}  // namespace tscclock::sim
