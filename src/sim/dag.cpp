#include "sim/dag.hpp"

#include "common/contracts.hpp"

namespace tscclock::sim {

DagMonitor::DagMonitor(const DagConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  TSC_EXPECTS(config.timestamp_noise_std >= 0.0);
  TSC_EXPECTS(config.card_latency >= 0.0);
  TSC_EXPECTS(config.frame_time > 0.0);
  TSC_EXPECTS(config.missing_prob >= 0.0 && config.missing_prob <= 1.0);
}

DagMonitor::Stamp DagMonitor::observe(Seconds full_arrival) {
  Stamp s;
  if (rng_.bernoulli(config_.missing_prob)) return s;  // unmatched
  // The first bit passes the tap frame_time before full arrival; the card
  // needs card_latency to stamp it; the +frame_time correction is applied
  // as in the paper, so the corrected stamp refers to full arrival.
  const Seconds raw = (full_arrival - config_.frame_time) +
                      config_.card_latency +
                      rng_.normal(config_.timestamp_noise_std);
  s.available = true;
  s.corrected = raw + config_.frame_time;
  return s;
}

}  // namespace tscclock::sim
