// Trace persistence: save a generated exchange stream to CSV and load it
// back. This is the bridge to offline workflows (core/offline.hpp): collect
// once, post-process many times — and the natural import point for traces
// captured on real hardware (counter stamps + server stamps + optional
// reference stamps).
//
// Counter values are written as exact decimal integers; seconds with
// max_digits10 significant digits, so every double round-trips losslessly.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace tscclock::sim {

/// Write `exchanges` to `path`. Throws std::runtime_error on I/O failure.
void write_trace(const std::string& path,
                 const std::vector<Exchange>& exchanges);

/// Read a trace written by write_trace. Throws std::runtime_error on I/O
/// or format errors.
std::vector<Exchange> read_trace(const std::string& path);

}  // namespace tscclock::sim
