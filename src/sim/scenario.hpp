// Testbed composition: host oscillator + driver timestamping + network path
// + stratum-1 server + DAG reference monitor (paper §2, Fig. 1).
//
// A Testbed plays out the NTP client/server exchange for each poll:
//
//   host: Ta = TSC read            (just before send)
//     --- forward path d→ = d + q→ --->
//   server: Tb stamp, processing d↑, Te stamp
//     <--- backward path d← = d + q← ---
//   host: Tf = TSC read            (after full arrival + interrupt latency)
//   DAG:  Tg                       (passive tap, corrected to full arrival)
//
// Timestamps Tb/Te really travel through the 48-byte NTP wire format
// (encode → decode round trip, ~233 ps quantization) so the wire substrate
// is exercised on the main data path, exactly as in a real deployment.
//
// Three server presets reproduce Table 2 (ServerLoc / ServerInt / ServerExt)
// and two temperature environments reproduce §3.1 (laboratory/machine room).
//
// The per-client machinery lives in ClientNode so a fleet (sim/fleet.hpp)
// can own N of them; Testbed is the single-client special case, a thin
// wrapper around one ClientNode — which is what makes the 1-client fleet
// reproduce today's Testbed stream bit for bit by construction.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "sim/dag.hpp"
#include "sim/events.hpp"
#include "sim/oscillator.hpp"
#include "sim/path.hpp"
#include "sim/server.hpp"
#include "sim/timestamping.hpp"

namespace tscclock::sim {

enum class ServerKind { kLoc, kInt, kExt };
enum class Environment { kLaboratory, kMachineRoom };

std::string to_string(ServerKind kind);
std::string to_string(Environment environment);

struct ScenarioConfig {
  ServerKind server = ServerKind::kInt;
  Environment environment = Environment::kMachineRoom;
  Seconds poll_period = 16.0;
  Seconds poll_jitter = 0.25;  ///< uniform ± jitter on each poll instant
  Seconds duration = duration::kDay;
  std::uint64_t seed = 42;
  EventSchedule events;
  /// Apply the NTP wire format's ~233 ps timestamp truncation to Tb/Te. The
  /// hot path computes it algebraically (wire::quantize_timestamp_at_epoch,
  /// provably identical to the packet encode→decode round trip).
  bool use_wire_format = true;
  /// Diagnostic: additionally run every exchange's stamps through the real
  /// 48-byte packet encode→decode round trip and assert the algebraic
  /// quantization matches bit for bit. Results are identical either way, so
  /// this flag must never enter a run fingerprint; it only costs time.
  bool check_wire = false;

  /// Mid-trace server changes (the paper's campaign switched ServerInt →
  /// ServerLoc → ServerExt, §6.1). Must be in increasing time order.
  struct ServerSwitch {
    Seconds time = 0;
    ServerKind kind = ServerKind::kLoc;
  };
  std::vector<ServerSwitch> server_switches;

  /// Optional component overrides; when unset the preset for
  /// (server, environment) applies.
  std::optional<PathConfig> path_override;
  std::optional<ServerConfig> server_override;
  std::optional<OscillatorConfig> oscillator_override;
  std::optional<TimestampingConfig> timestamping_override;

  /// Table 2 path/server preset for a server kind.
  static PathConfig path_preset(ServerKind kind);
  static ServerConfig server_preset(ServerKind kind);
};

/// True event times and delay decomposition for one exchange (ground truth).
struct ExchangeTruth {
  Seconds ta = 0;  ///< wire departure from host
  Seconds tb = 0;  ///< arrival at server
  Seconds te = 0;  ///< wire departure from server
  Seconds tf = 0;  ///< full arrival at host
  Seconds d_forward = 0;
  Seconds d_server = 0;
  Seconds d_backward = 0;
  [[nodiscard]] Seconds rtt() const {
    return d_forward + d_server + d_backward;
  }
};

/// One completed (or lost) NTP exchange as seen by the host and the monitor.
struct Exchange {
  std::uint64_t index = 0;  ///< poll sequence number
  bool lost = false;        ///< no reply reached the host

  // What the synchronization algorithm sees:
  TscCount ta_counts = 0;  ///< host TSC stamp before send
  TscCount tf_counts = 0;  ///< host TSC stamp after arrival
  Seconds tb_stamp = 0;    ///< server receive stamp (from the packet)
  Seconds te_stamp = 0;    ///< server transmit stamp (from the packet)

  /// Tf with the side-mode/outlier latency removed — the paper's
  /// "corrected Tf,i" (§2.4), used by the characterization analyses
  /// (Fig. 3) but NOT by the synchronization algorithms.
  TscCount tf_counts_corrected = 0;

  /// Transport-level identity of the server that answered (unique per
  /// attachment; changes exactly at configured server switches).
  std::uint32_t server_id = 0;
  std::uint8_t server_stratum = 0;

  // What the reference monitor sees:
  bool ref_available = false;
  Seconds tg = 0;  ///< DAG corrected stamp of the returning packet

  ExchangeTruth truth;
};

/// Struct-of-arrays exchange stream: one column per Exchange field, filled
/// directly by ClientNode::generate_batch so the generator writes columns
/// and the session's batched fast lane reads them without ever materializing
/// ~200-byte Exchange rows. Row i across all columns reconstructs exactly
/// the Exchange next() would have produced (materialize(); columns a loss
/// left unproduced hold the same zeros as a default Exchange field).
struct ExchangeBatch {
  std::vector<std::uint64_t> index;
  std::vector<std::uint8_t> lost;
  std::vector<TscCount> ta_counts;
  std::vector<TscCount> tf_counts;
  std::vector<Seconds> tb_stamp;
  std::vector<Seconds> te_stamp;
  std::vector<TscCount> tf_counts_corrected;
  std::vector<std::uint32_t> server_id;
  std::vector<std::uint8_t> server_stratum;
  std::vector<std::uint8_t> ref_available;
  std::vector<Seconds> tg;
  // Ground-truth columns (ExchangeTruth).
  std::vector<Seconds> truth_ta;
  std::vector<Seconds> truth_tb;
  std::vector<Seconds> truth_te;
  std::vector<Seconds> truth_tf;
  std::vector<Seconds> d_forward;
  std::vector<Seconds> d_server;
  std::vector<Seconds> d_backward;

  [[nodiscard]] std::size_t size() const { return index.size(); }
  [[nodiscard]] bool empty() const { return index.empty(); }
  void clear();
  void reserve(std::size_t rows);
  /// Set every column to `rows` elements (new tail value-initialized).
  /// generate_batch() sizes the batch up front and writes rows by index —
  /// cheaper than 18 push_backs per row — then trims to the produced count.
  void resize(std::size_t rows);

  /// Reconstruct row i as the Exchange the scalar stream would have
  /// produced (for record-shaped consumers: trace recorders and sessions
  /// degrading to per-record processing).
  void materialize(std::size_t i, Exchange& out) const;

  /// Inverse of materialize: write `in` into row i (the fleet merge path,
  /// which interleaves per-client scalar streams into SoA columns).
  void store(std::size_t i, const Exchange& in);

  /// Append row i of `src` to this batch (the fleet demux path: one merged
  /// stream scattered back into per-client column batches).
  void push_row(const ExchangeBatch& src, std::size_t i);
};

/// Deterministic model of the clock a bridge client *serves* to downstream
/// slaves (gPTP-style master → bridge → slave, one level of hierarchy). The
/// bridge's served stamps carry a residual affine error against true time —
/// the offset + skew its own synchronization left behind — and the bridge
/// answers nothing until it has warmed up against its own upstream pool
/// (`start`). Affine-by-construction keeps the model order-independent:
/// slaves poll at times interleaved with the bridge's own generation, and a
/// stateful bridge oscillator cannot be read at those times without
/// violating its monotone-read contract.
struct BridgeLink {
  Seconds start = 0;   ///< polls arriving before this go unanswered
  Seconds offset = 0;  ///< served-clock error at t = 0
  double skew = 0;     ///< served-clock drift rate (dimensionless)
  [[nodiscard]] Seconds error_at(Seconds t) const { return offset + skew * t; }
};

/// The per-client half of the simulation: one host oscillator + driver
/// timestamping + poll schedule + server attachment walk. Exactly the state
/// a Testbed used to own; a fleet owns N of these. The RNG fork layout is
/// part of the determinism contract — for a given ScenarioConfig a
/// ClientNode's stream is bit-identical to the historical Testbed's.
class ClientNode {
 public:
  explicit ClientNode(const ScenarioConfig& config, std::uint32_t client_id = 0,
                      std::optional<BridgeLink> bridge = std::nullopt);

  /// Generate the next exchange; std::nullopt when `duration` is exhausted.
  /// Polls falling inside scheduled outages are skipped entirely (no element
  /// is produced for them, matching a data-collection gap).
  std::optional<Exchange> next();

  /// Generate the next exchange directly into `out` (no optional round-trip,
  /// no return-value copy). Returns false — leaving `out` untouched — when
  /// `duration` is exhausted. The produced stream is identical to next()'s.
  bool next_into(Exchange& out);

  /// Fill `out` from the front with up to out.size() exchanges; returns how
  /// many were produced (< out.size() only when the duration ran out). The
  /// batched hot-path equivalent of calling next() in a loop.
  std::size_t next_batch(std::span<Exchange> out);

  /// Generate up to `max_rows` exchanges straight into SoA columns (the
  /// batched drives' hot path: per-batch invariants are hoisted and no
  /// Exchange row is ever built). Clears `out` first; returns the row count
  /// (< max_rows only when the duration ran out). Row-for-row identical to
  /// the next() stream — pinned by the batch-lane goldens, and must be kept
  /// in lockstep with next_into() (same draw sequence, same arithmetic).
  std::size_t generate_batch(ExchangeBatch& out, std::size_t max_rows);

  /// Poll slots remaining until `duration` (an upper bound on how many more
  /// exchanges next() can produce; outage-skipped slots still count here).
  [[nodiscard]] std::uint64_t polls_remaining() const;

  /// Drain the whole configured duration.
  std::vector<Exchange> generate_all();

  /// Poll slots enumerated so far, including outage-skipped ones (after a
  /// full drain: the total slot count of the configured duration).
  [[nodiscard]] std::uint64_t polls_enumerated() const { return poll_index_; }

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const Oscillator& oscillator() const { return oscillator_; }
  [[nodiscard]] Oscillator& oscillator() { return oscillator_; }
  /// The initial (t = 0) attachment's path.
  [[nodiscard]] const PathModel& path() const {
    return attachments_.front().path;
  }

  /// The p the rate algorithms should estimate (mean true period).
  [[nodiscard]] double true_period() const { return oscillator_.mean_period(); }
  /// The configured (spec-sheet) period used as the initial guess.
  [[nodiscard]] double nominal_period() const {
    return oscillator_.nominal_period();
  }

  /// Position of this client in its fleet (0 for a standalone Testbed).
  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  /// Set when this client is a hierarchy slave attached to a bridge.
  [[nodiscard]] const std::optional<BridgeLink>& bridge() const {
    return bridge_;
  }

 private:
  /// One host↔server attachment: the path and server in use from
  /// `start_time` until the next switch.
  struct Attachment {
    Seconds start_time = 0;
    ServerKind kind = ServerKind::kInt;
    std::uint32_t id = 0;
    PathModel path;
    NtpServer server;
  };

  [[nodiscard]] Attachment& active_attachment(Seconds t);

  ScenarioConfig config_;  ///< owns the EventSchedule the components borrow
  Rng rng_;
  Oscillator oscillator_;
  HostTimestamper host_;
  std::vector<Attachment> attachments_;
  DagMonitor dag_;
  std::uint64_t poll_index_ = 0;
  EventCursor outage_cursor_;         ///< poll times are monotone
  std::size_t attachment_index_ = 0;  ///< monotone active-attachment cursor
  std::uint32_t client_id_ = 0;
  std::optional<BridgeLink> bridge_;  ///< upstream bridge, when a slave
};

/// The single-client testbed: one ClientNode against the configured server
/// pool. Kept as the canonical entry point for every single-client drive
/// (sessions, benches, goldens); delegates wholesale to its node.
class Testbed {
 public:
  explicit Testbed(const ScenarioConfig& config) : node_(config) {}

  std::optional<Exchange> next() { return node_.next(); }
  bool next_into(Exchange& out) { return node_.next_into(out); }
  std::size_t next_batch(std::span<Exchange> out) {
    return node_.next_batch(out);
  }
  std::size_t generate_batch(ExchangeBatch& out, std::size_t max_rows) {
    return node_.generate_batch(out, max_rows);
  }
  [[nodiscard]] std::uint64_t polls_remaining() const {
    return node_.polls_remaining();
  }
  std::vector<Exchange> generate_all() { return node_.generate_all(); }
  [[nodiscard]] std::uint64_t polls_enumerated() const {
    return node_.polls_enumerated();
  }

  [[nodiscard]] const ScenarioConfig& config() const { return node_.config(); }
  [[nodiscard]] const Oscillator& oscillator() const {
    return node_.oscillator();
  }
  [[nodiscard]] Oscillator& oscillator() { return node_.oscillator(); }
  [[nodiscard]] const PathModel& path() const { return node_.path(); }
  [[nodiscard]] double true_period() const { return node_.true_period(); }
  [[nodiscard]] double nominal_period() const {
    return node_.nominal_period();
  }
  [[nodiscard]] const ClientNode& node() const { return node_; }
  [[nodiscard]] ClientNode& node() { return node_; }

 private:
  ClientNode node_;
};

}  // namespace tscclock::sim
