// Parametric model of the host CPU oscillator driving the TSC register.
//
// The paper (§3.1) reduces the hardware to two validated facts: the Simple
// Skew Model holds up to τ* ≈ 1000 s, and the rate error is bounded by
// 0.1 PPM over all scales. This model produces a counter whose Allan
// deviation reproduces Fig. 3:
//
//   * a constant skew γ0 (tens of PPM from nominal — irrelevant to stability
//     but exactly what the rate algorithms must estimate);
//   * a diurnal temperature component (amplitude depends on environment:
//     open-plan laboratory vs temperature-controlled machine room);
//   * the low-amplitude (~0.05 PPM) oscillatory component with a slowly
//     wandering 100–200 min period the paper observed in the machine room
//     (attributed to cooling-fan control);
//   * an Ornstein–Uhlenbeck random wander, bounded in distribution, giving
//     the large-τ flattening of the Allan plot below 0.1 PPM.
//
// The phase (cycle count) is integrated with bounded substeps so that the
// counter is exact to well below one cycle over multi-month simulations.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time_types.hpp"

namespace tscclock::sim {

struct OscillatorConfig {
  double nominal_frequency_hz = 548.6552e6;  ///< advertised counter frequency
  double skew_ppm = 52.4;  ///< constant offset of true rate from nominal
                           ///< (paper §2.1: typically ~50 PPM)
  // Diurnal (24 h) temperature-driven rate swing.
  double diurnal_amplitude_ppm = 0.02;
  double diurnal_phase_rad = 0.0;
  // Second harmonic (working-hours asymmetry).
  double semidiurnal_amplitude_ppm = 0.008;
  // Machine-room oscillatory component: amplitude and period band.
  double oscillatory_amplitude_ppm = 0.0;
  Seconds oscillatory_period_min_s = 6000;   // 100 min
  Seconds oscillatory_period_max_s = 12000;  // 200 min
  // Ornstein-Uhlenbeck wander: stationary std dev and relaxation time.
  double ou_sigma_ppm = 0.01;
  Seconds ou_relaxation_s = 3000;
  // Largest integration substep.
  Seconds max_substep_s = 20.0;
  std::uint64_t seed = 1;

  /// Open-plan, non-airconditioned laboratory (paper Fig. 2 "laboratory").
  static OscillatorConfig laboratory(std::uint64_t seed);
  /// Temperature-controlled machine room (±2°C band) with the ~0.05 PPM
  /// oscillatory component the paper reports.
  static OscillatorConfig machine_room(std::uint64_t seed);
};

/// The TSC register: maps monotonically increasing true time to cycle counts.
class Oscillator {
 public:
  explicit Oscillator(const OscillatorConfig& config);

  /// Counter value at true time `t` [s]. `t` must not decrease between calls.
  TscCount read(Seconds t);

  /// Instantaneous dimensionless rate error γ(t) at the last read position
  /// (skew plus wander); exposed for tests and characterization benches.
  [[nodiscard]] double rate_error() const;

  /// Long-run mean period [s/cycle]: 1 / (f_nominal * (1 + skew)).
  /// This is the p the rate-synchronization algorithms should converge to.
  [[nodiscard]] double mean_period() const;

  /// Nominal period [s/cycle] implied by the spec-sheet frequency — the
  /// "initial guess" a deployment would configure.
  [[nodiscard]] double nominal_period() const;

  [[nodiscard]] const OscillatorConfig& config() const { return config_; }

 private:
  void advance_to(Seconds t);
  [[nodiscard]] double wander_at(Seconds t) const;  // deterministic terms

  OscillatorConfig config_;
  Rng rng_;
  Seconds now_ = 0.0;
  long double phase_cycles_ = 0.0L;  // 64-bit mantissa: exact to < 1 cycle
  double ou_state_ = 0.0;            // dimensionless rate error
  double osc_phase_ = 0.0;           // oscillatory component phase [rad]
  double osc_period_ = 0.0;          // current oscillatory period [s]
  // Cache of wander_at(now_) from the last substep's end (see advance_to).
  double wander_now_ = 0.0;
  bool wander_cached_ = false;
};

}  // namespace tscclock::sim
