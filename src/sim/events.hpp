// Fault/event schedules for robustness experiments (paper §6, Fig. 11).
//
// Three kinds of scheduled events drive the "extreme conditions" scenarios:
//   * Outage      — no NTP exchanges at all (data-collection gap / loss of
//                   connectivity / server unavailability), Fig. 11(a);
//   * ServerFault — the server's Tb/Te timestamps are offset by a constant
//                   (the 150 ms server error of Fig. 11(b));
//   * LevelShift  — a step change in the minimum one-way delay of one or
//                   both directions (route change), temporary or permanent,
//                   Fig. 11(c)/(d).
#pragma once

#include <limits>
#include <vector>

#include "common/time_types.hpp"

namespace tscclock::sim {

constexpr Seconds kForever = std::numeric_limits<double>::infinity();

struct Outage {
  Seconds start = 0;
  Seconds end = 0;
};

struct ServerFault {
  Seconds start = 0;
  Seconds end = 0;
  Seconds offset = 0;  ///< added to both Tb and Te while active
};

struct LevelShift {
  Seconds start = 0;
  Seconds end = kForever;      ///< kForever for a permanent shift
  Seconds forward_delta = 0;   ///< added to the forward minimum delay
  Seconds backward_delta = 0;  ///< added to the backward minimum delay
};

/// Immutable schedule of events, queried by the testbed components.
class EventSchedule {
 public:
  EventSchedule() = default;

  EventSchedule& add_outage(Seconds start, Seconds end);
  EventSchedule& add_server_fault(Seconds start, Seconds end, Seconds offset);
  EventSchedule& add_level_shift(const LevelShift& shift);

  /// True if polling is suppressed at time t.
  [[nodiscard]] bool in_outage(Seconds t) const;

  /// Sum of active server timestamp fault offsets at time t.
  [[nodiscard]] Seconds server_fault_offset(Seconds t) const;

  /// Net (forward, backward) minimum-delay displacement at time t.
  struct PathShift {
    Seconds forward = 0;
    Seconds backward = 0;
  };
  [[nodiscard]] PathShift path_shift(Seconds t) const;

  [[nodiscard]] const std::vector<Outage>& outages() const { return outages_; }
  [[nodiscard]] const std::vector<ServerFault>& server_faults() const {
    return server_faults_;
  }
  [[nodiscard]] const std::vector<LevelShift>& level_shifts() const {
    return level_shifts_;
  }

 private:
  std::vector<Outage> outages_;
  std::vector<ServerFault> server_faults_;
  std::vector<LevelShift> level_shifts_;
};

}  // namespace tscclock::sim
