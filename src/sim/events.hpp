// Fault/event schedules for robustness experiments (paper §6, Fig. 11).
//
// Three kinds of scheduled events drive the "extreme conditions" scenarios:
//   * Outage      — no NTP exchanges at all (data-collection gap / loss of
//                   connectivity / server unavailability), Fig. 11(a);
//   * ServerFault — the server's Tb/Te timestamps are offset by a constant
//                   (the 150 ms server error of Fig. 11(b));
//   * LevelShift  — a step change in the minimum one-way delay of one or
//                   both directions (route change), temporary or permanent,
//                   Fig. 11(c)/(d).
#pragma once

#include <limits>
#include <vector>

#include "common/time_types.hpp"

namespace tscclock::sim {

constexpr Seconds kForever = std::numeric_limits<double>::infinity();

struct Outage {
  Seconds start = 0;
  Seconds end = 0;
};

struct ServerFault {
  Seconds start = 0;
  Seconds end = 0;
  Seconds offset = 0;  ///< added to both Tb and Te while active
};

struct LevelShift {
  Seconds start = 0;
  Seconds end = kForever;      ///< kForever for a permanent shift
  Seconds forward_delta = 0;   ///< added to the forward minimum delay
  Seconds backward_delta = 0;  ///< added to the backward minimum delay
};

/// Immutable schedule of events, queried by the testbed components.
class EventSchedule {
 public:
  EventSchedule() = default;

  EventSchedule& add_outage(Seconds start, Seconds end);
  EventSchedule& add_server_fault(Seconds start, Seconds end, Seconds offset);
  EventSchedule& add_level_shift(const LevelShift& shift);

  /// True if polling is suppressed at time t.
  [[nodiscard]] bool in_outage(Seconds t) const;

  /// Sum of active server timestamp fault offsets at time t.
  [[nodiscard]] Seconds server_fault_offset(Seconds t) const;

  /// Net (forward, backward) minimum-delay displacement at time t.
  struct PathShift {
    Seconds forward = 0;
    Seconds backward = 0;
  };
  [[nodiscard]] PathShift path_shift(Seconds t) const;

  /// One piece of the compiled piecewise-constant timeline: all three query
  /// answers are constant on [start, next segment's start). Values are
  /// computed by evaluating the naive scans at `start`, so active-interval
  /// sums happen in the same vector order and the compiled answers are
  /// bit-identical to the per-call scans.
  struct Segment {
    Seconds start = 0;
    bool outage = false;
    Seconds fault_offset = 0;
    PathShift shift;
  };

  /// The compiled timeline, built lazily on first access and invalidated by
  /// any add_*. Always non-empty: segment 0 starts at -infinity with no
  /// event active.
  [[nodiscard]] const std::vector<Segment>& segments() const;

  /// Bumped by every add_*; cursors use it to detect recompilation.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  [[nodiscard]] const std::vector<Outage>& outages() const { return outages_; }
  [[nodiscard]] const std::vector<ServerFault>& server_faults() const {
    return server_faults_;
  }
  [[nodiscard]] const std::vector<LevelShift>& level_shifts() const {
    return level_shifts_;
  }

 private:
  std::vector<Outage> outages_;
  std::vector<ServerFault> server_faults_;
  std::vector<LevelShift> level_shifts_;
  std::uint64_t revision_ = 0;
  // Lazy compilation cache (logically const: derived from the event lists).
  mutable std::vector<Segment> segments_;
  mutable std::uint64_t compiled_revision_ = ~0ULL;
};

/// Incremental lookup into an EventSchedule for a monotone query stream (the
/// testbed's case: poll/arrival times only move forward). Advancing to the
/// next segment is O(1); a query earlier than the current segment — or one
/// after the schedule gained events — falls back to a from-scratch binary
/// search, so non-monotonic use is still correct, just not amortized-O(1).
/// A cursor over a null schedule answers every query with "no event active".
class EventCursor {
 public:
  EventCursor() = default;
  explicit EventCursor(const EventSchedule* schedule) : schedule_(schedule) {}

  bool in_outage(Seconds t) { return locate(t).outage; }
  Seconds server_fault_offset(Seconds t) { return locate(t).fault_offset; }
  EventSchedule::PathShift path_shift(Seconds t) { return locate(t).shift; }

 private:
  const EventSchedule::Segment& locate(Seconds t);

  const EventSchedule* schedule_ = nullptr;  ///< not owned; may be nullptr
  std::size_t index_ = 0;
  std::uint64_t revision_ = ~0ULL;
};

}  // namespace tscclock::sim
