// Multi-node topology simulation: N ClientNodes polling a shared server
// pool through *correlated* path conditions, merged into one deterministic
// exchange stream.
//
// Topology model
//   * flat (default): every client polls the configured server pool over
//     its own private path — independent oscillators, timestamping, and
//     path/server draws, all from per-client identity-derived seeds.
//   * shared_congestion: one shared schedule component (identical
//     congestion windows injected into every client's EventSchedule) plus a
//     per-client private asymmetric level shift, both riding the existing
//     EventSchedule/segment-cursor machinery. The shared windows are what
//     couple the population: every client's RTT inflates over the same
//     wall-clock intervals.
//   * hierarchy: client 0 is a bridge (gPTP-style master → bridge → slave,
//     one level): it polls the real pool; clients 1..N-1 attach to the
//     bridge over a local-segment path and receive stamps from the clock
//     the bridge *serves* — true time plus the bridge's residual affine
//     error — and nothing at all before the bridge has warmed up.
//
// Seed-identity contract: client 0 uses the scenario seed verbatim; client
// k > 0 uses splitmix64(seed ^ fnv1a64("client<k>")). A 1-client fleet with
// every other knob at its default therefore reproduces today's Testbed
// stream bit for bit (pinned by tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scenario.hpp"

namespace tscclock::sim {

/// The fleet axis of a scenario. Defaults describe the single-client
/// special case: FleetConfig{} must behave exactly like a plain Testbed.
struct FleetConfig {
  std::size_t n_clients = 1;
  bool shared_congestion = false;
  bool hierarchy = false;
  /// How long the bridge synchronizes against its own upstream before it
  /// starts answering slaves (hierarchy only).
  Seconds bridge_warmup = 900.0;
};

/// SoA exchange stream with a client column: the fleet's merged equivalent
/// of ExchangeBatch. Row order is the fleet's deterministic merge order.
struct FleetBatch {
  ExchangeBatch exchanges;
  std::vector<std::uint32_t> client_id;

  [[nodiscard]] std::size_t size() const { return client_id.size(); }
  [[nodiscard]] bool empty() const { return client_id.empty(); }
  void clear() {
    exchanges.clear();
    client_id.clear();
  }
  void resize(std::size_t rows) {
    exchanges.resize(rows);
    client_id.resize(rows);
  }
};

/// N clients against one scenario, drained as a single interleaved exchange
/// stream, merged by send time (truth.ta; ties broken by client id). Each
/// client's private stream is exactly what a standalone ClientNode with the
/// same derived config would produce, so the merge is a pure reordering —
/// demultiplexing by client reconstructs the per-client streams verbatim.
class FleetTestbed {
 public:
  FleetTestbed(const ScenarioConfig& base, const FleetConfig& fleet);

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] ClientNode& client(std::size_t k) { return *clients_[k]; }
  [[nodiscard]] const ClientNode& client(std::size_t k) const {
    return *clients_[k];
  }
  [[nodiscard]] const FleetConfig& fleet_config() const { return fleet_; }

  /// The shared congestion windows injected into every client's schedule
  /// (empty unless shared_congestion). Exposed so tests can check the
  /// cross-client RTT correlation against the actual windows.
  [[nodiscard]] const std::vector<LevelShift>& shared_congestion_windows()
      const {
    return shared_windows_;
  }

  /// Produce the next exchange in merge order; false when every client's
  /// duration is exhausted.
  bool next_into(std::uint32_t& client, Exchange& out);

  /// Fill `out` with up to `max_rows` merged exchanges; returns the row
  /// count (< max_rows only when the fleet ran dry). Row-for-row identical
  /// to the next_into() stream.
  std::size_t generate_batch(FleetBatch& out, std::size_t max_rows);

  /// Poll slots enumerated so far, summed over clients.
  [[nodiscard]] std::uint64_t polls_enumerated() const;

  /// Identity-derived per-client seed (k = 0 returns base_seed verbatim).
  static std::uint64_t client_seed(std::uint64_t base_seed, std::size_t k);

 private:
  [[nodiscard]] std::size_t best_pending() const;
  void refill(std::size_t k);

  FleetConfig fleet_;
  std::vector<LevelShift> shared_windows_;
  std::vector<std::unique_ptr<ClientNode>> clients_;

  /// One-exchange lookahead per client, feeding the k-way merge. Clients
  /// draw from independent RNG streams, so pulling ahead on one client
  /// never perturbs another's stream.
  struct Lookahead {
    Exchange ex;
    bool valid = false;
  };
  std::vector<Lookahead> pending_;
};

}  // namespace tscclock::sim
