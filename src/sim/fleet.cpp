#include "sim/fleet.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"
#include "common/serialize.hpp"

namespace tscclock::sim {

namespace {

/// Same finalizer the sweep uses for scenario seeds: decorrelates the
/// client-identity hash from the base seed's bit patterns.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The shared-congestion schedule component: identical level-shift windows
/// injected into every client's EventSchedule. A pure function of the
/// scenario duration (which is part of the grid fingerprint), so the
/// coupling is reproducible without any extra descriptor state. Both deltas
/// are positive — a level shift displaces the path's delay floor, and delay
/// floors must stay positive.
std::vector<LevelShift> shared_congestion_plan(Seconds duration) {
  const Seconds window = std::max(600.0, duration / 48.0);
  std::vector<LevelShift> shifts;
  for (const double at : {0.25, 0.55, 0.80}) {
    LevelShift shift;
    shift.start = at * duration;
    shift.end = shift.start + window;
    shift.forward_delta = 1.5e-3;
    shift.backward_delta = 1.2e-3;
    shifts.push_back(shift);
  }
  return shifts;
}

/// Per-client private component: one asymmetric level shift (forward and
/// backward deltas differ) modelling this client's own last-mile routing,
/// derived from the client's identity seed so it rides shard/thread/merge
/// unchanged.
LevelShift private_asymmetry(std::uint64_t client_seed, Seconds duration) {
  Rng rng(splitmix64(client_seed ^ 0x70617468ull));  // "path"
  LevelShift shift;
  shift.start = rng.uniform(0.10, 0.85) * duration;
  shift.end = shift.start + std::max(300.0, duration / 96.0);
  shift.forward_delta = rng.uniform(0.2e-3, 0.8e-3);
  shift.backward_delta = rng.uniform(0.05e-3, 0.2e-3);
  return shift;
}

/// The residual error of the clock the bridge serves downstream, derived
/// from the *base* seed (the bridge's identity): every slave sees the same
/// bridge clock, whichever order their polls arrive in.
BridgeLink bridge_link_for(std::uint64_t base_seed, Seconds warmup) {
  Rng rng(splitmix64(base_seed ^ 0x627269646765ull));  // "bridge"
  BridgeLink link;
  link.start = warmup;
  link.offset = rng.uniform(-40e-6, 40e-6);
  link.skew = rng.uniform(-2e-8, 2e-8);
  return link;
}

}  // namespace

std::uint64_t FleetTestbed::client_seed(std::uint64_t base_seed,
                                        std::size_t k) {
  if (k == 0) return base_seed;  // the seed-identity contract
  return splitmix64(base_seed ^ fnv1a64("client" + std::to_string(k)));
}

FleetTestbed::FleetTestbed(const ScenarioConfig& base,
                           const FleetConfig& fleet)
    : fleet_(fleet) {
  TSC_EXPECTS(fleet.n_clients >= 1);
  TSC_EXPECTS(fleet.bridge_warmup >= 0.0);
  if (fleet_.shared_congestion)
    shared_windows_ = shared_congestion_plan(base.duration);

  for (std::size_t k = 0; k < fleet_.n_clients; ++k) {
    ScenarioConfig config = base;
    config.seed = client_seed(base.seed, k);
    // Append the correlated components to the *copied* base schedule: the
    // base events keep their positions, so a default fleet leaves the
    // schedule byte-identical to the single-client one.
    for (const auto& window : shared_windows_)
      config.events.add_level_shift(window);
    if (fleet_.shared_congestion)
      config.events.add_level_shift(
          private_asymmetry(config.seed, base.duration));

    std::optional<BridgeLink> bridge;
    if (fleet_.hierarchy && k > 0) {
      // Slave: attach to the bridge over a quiet local segment instead of
      // the configured pool, for the whole run (no server switches), and
      // receive the bridge's served clock at stratum 2.
      bridge = bridge_link_for(base.seed, fleet_.bridge_warmup);
      config.path_override = ScenarioConfig::path_preset(ServerKind::kLoc);
      ServerConfig served = ServerConfig{};
      served.stratum = 2;
      config.server_override = served;
      config.server_switches.clear();
    }
    clients_.push_back(std::make_unique<ClientNode>(
        config, static_cast<std::uint32_t>(k), bridge));
  }

  pending_.resize(clients_.size());
  for (std::size_t k = 0; k < clients_.size(); ++k) refill(k);
}

void FleetTestbed::refill(std::size_t k) {
  pending_[k].valid = clients_[k]->next_into(pending_[k].ex);
}

std::size_t FleetTestbed::best_pending() const {
  // k-way merge by send time: each client's truth.ta is strictly
  // increasing, so taking the minimum head yields a globally monotone
  // stream. Strict less-than keeps the lowest client id on ties.
  std::size_t best = pending_.size();
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (!pending_[k].valid) continue;
    if (best == pending_.size() ||
        pending_[k].ex.truth.ta < pending_[best].ex.truth.ta)
      best = k;
  }
  return best;
}

bool FleetTestbed::next_into(std::uint32_t& client, Exchange& out) {
  const std::size_t best = best_pending();
  if (best == pending_.size()) return false;
  out = pending_[best].ex;
  client = static_cast<std::uint32_t>(best);
  refill(best);
  return true;
}

std::size_t FleetTestbed::generate_batch(FleetBatch& out,
                                         std::size_t max_rows) {
  out.resize(max_rows);
  std::size_t rows = 0;
  while (rows < max_rows) {
    const std::size_t best = best_pending();
    if (best == pending_.size()) break;
    out.exchanges.store(rows, pending_[best].ex);
    out.client_id[rows] = static_cast<std::uint32_t>(best);
    refill(best);
    ++rows;
  }
  out.resize(rows);
  return rows;
}

std::uint64_t FleetTestbed::polls_enumerated() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) total += client->polls_enumerated();
  return total;
}

}  // namespace tscclock::sim
