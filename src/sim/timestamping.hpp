// Host timestamping latency model (paper §2.2.1, §2.4).
//
// The paper timestamps NTP packets early in the NIC driver code. The
// residual errors it measured against the DAG reference:
//   * a dominant mode of width ≈5 µs centered near zero (interrupt latency);
//   * small side modes at +10 µs and +31 µs (longer interrupt-latency paths);
//   * ~1 timestamp in 10,000 hit by scheduling, with errors up to ~1 ms.
// δ = 15 µs is adopted as the calibration unit for "maximum timestamping
// error" in the filtering algorithms.
//
// Send timestamps are taken just before the packet leaves (Ta < ta); receive
// timestamps after full arrival plus interrupt latency (Tf > tf).
#pragma once

#include "common/rng.hpp"
#include "common/time_types.hpp"

namespace tscclock::sim {

struct TimestampingConfig {
  // Send side: gap between making Ta and the first bit on the wire.
  Seconds send_latency_min = 0.5e-6;
  Seconds send_latency_mean = 1.5e-6;  ///< total mean = min + exp(mean - min)
  // Receive side: interrupt latency after full arrival.
  Seconds recv_latency_min = 1.0e-6;
  Seconds recv_latency_mean = 3.5e-6;
  // Side modes (extra fixed latency on some interrupts).
  double side_mode_10us_prob = 0.012;
  double side_mode_31us_prob = 0.004;
  // Rare scheduling outliers.
  double outlier_prob = 1e-4;
  Seconds outlier_min = 0.1e-3;
  Seconds outlier_max = 1.0e-3;
};

/// Draws per-packet host timestamping latencies.
class HostTimestamper {
 public:
  HostTimestamper(const TimestampingConfig& config, Rng rng);

  /// How long before wire departure the send timestamp is made (>= 0).
  Seconds draw_send_lead();

  /// Receive-side interrupt latency decomposition. `base` is the narrow
  /// dominant mode; `total` adds the +10/+31 µs side modes and rare
  /// scheduling outliers. The paper's "corrected Tf,i" (§2.4) detects and
  /// removes the latter against the DAG reference — i.e. corrected stamps
  /// carry only `base`.
  struct RecvLag {
    Seconds total = 0;
    Seconds base = 0;
  };
  RecvLag draw_recv_lag_detailed();

  /// Convenience: the total receive lag only.
  Seconds draw_recv_lag() { return draw_recv_lag_detailed().total; }

  [[nodiscard]] const TimestampingConfig& config() const { return config_; }

 private:
  TimestampingConfig config_;
  Rng rng_;
};

}  // namespace tscclock::sim
