#include "sim/server.hpp"

#include "common/contracts.hpp"

namespace tscclock::sim {

NtpServer::NtpServer(const ServerConfig& config, const EventSchedule* events,
                     Rng rng)
    : config_(config), events_(events), rng_(rng), fault_cursor_(events) {
  TSC_EXPECTS(config.min_processing > 0.0);
  TSC_EXPECTS(config.processing_jitter_mean > 0.0);
  TSC_EXPECTS(config.te_early_mean >= 0.0);
}

NtpServer::Reply NtpServer::handle(Seconds arrival) {
  Reply r;
  r.tb_true = arrival;

  Seconds processing =
      config_.min_processing + rng_.exponential(config_.processing_jitter_mean);
  if (rng_.bernoulli(config_.sched_spike_prob))
    processing += rng_.exponential(config_.sched_spike_mean);
  r.te_true = r.tb_true + processing;

  const Seconds fault = fault_cursor_.server_fault_offset(arrival);

  // Tb: stamped shortly after true arrival; synchronized clock + white noise.
  r.tb_stamp = r.tb_true + rng_.normal(config_.clock_noise_std) + fault;

  // Te: stamped before the reply actually leaves (so usually early), with
  // rare late outliers the paper observed against the DAG reference.
  Seconds te_error = -rng_.exponential(config_.te_early_mean + 1e-12);
  if (rng_.bernoulli(config_.te_late_prob))
    te_error = rng_.uniform(0.2e-3, config_.te_late_max);
  r.te_stamp =
      r.te_true + te_error + rng_.normal(config_.clock_noise_std) + fault;

  return r;
}

}  // namespace tscclock::sim
