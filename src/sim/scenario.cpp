#include "sim/scenario.hpp"

#include "common/contracts.hpp"
#include "wire/ntp_packet.hpp"

namespace tscclock::sim {

namespace {

/// NTP-era seconds of the simulation origin (mid-2004, matching the paper's
/// measurement campaign; comfortably inside era 0).
constexpr std::uint32_t kSimEpochEraSeconds = 3'297'000'000u;

OscillatorConfig oscillator_for(Environment environment, std::uint64_t seed) {
  switch (environment) {
    case Environment::kLaboratory:
      return OscillatorConfig::laboratory(seed);
    case Environment::kMachineRoom:
      return OscillatorConfig::machine_room(seed);
  }
  TSC_EXPECTS(false);
  return {};
}

}  // namespace

std::string to_string(ServerKind kind) {
  switch (kind) {
    case ServerKind::kLoc:
      return "ServerLoc";
    case ServerKind::kInt:
      return "ServerInt";
    case ServerKind::kExt:
      return "ServerExt";
  }
  return "?";
}

std::string to_string(Environment environment) {
  switch (environment) {
    case Environment::kLaboratory:
      return "laboratory";
    case Environment::kMachineRoom:
      return "machine-room";
  }
  return "?";
}

PathConfig ScenarioConfig::path_preset(ServerKind kind) {
  // Minimum RTT and asymmetry Δ per Table 2; d↑ minimum is 35 µs (server
  // preset), so d→ + d← = RTT − 35 µs split with d→ − d← = Δ.
  PathConfig p;
  switch (kind) {
    case ServerKind::kLoc: {
      // 3 m, 2 hops, RTT 0.38 ms, Δ 50 µs: a quiet local segment.
      p.forward.min_delay = 197.5e-6;
      p.backward.min_delay = 147.5e-6;
      p.forward.jitter_mean = 18e-6;
      p.backward.jitter_mean = 15e-6;
      p.forward.spike_prob = 0.010;
      p.backward.spike_prob = 0.006;
      p.forward.spike_mean = 0.35e-3;
      p.backward.spike_mean = 0.3e-3;
      p.forward.congestion_mean_interval = 12 * duration::kHour;
      p.backward.congestion_mean_interval = 12 * duration::kHour;
      p.forward.congestion_mean_duration = 5 * duration::kMinute;
      p.backward.congestion_mean_duration = 5 * duration::kMinute;
      p.forward.congestion_spike_mean = 2e-3;
      p.backward.congestion_spike_mean = 2e-3;
      p.loss_prob = 0.0008;
      break;
    }
    case ServerKind::kInt: {
      // 300 m, 5 hops, RTT 0.89 ms, Δ 50 µs; the forward path is the more
      // heavily utilised one (paper §4.2, Fig. 6's negative bias).
      p.forward.min_delay = 452.5e-6;
      p.backward.min_delay = 402.5e-6;
      p.forward.jitter_mean = 45e-6;
      p.backward.jitter_mean = 35e-6;
      p.forward.spike_prob = 0.040;
      p.backward.spike_prob = 0.018;
      p.forward.spike_mean = 1.0e-3;
      p.backward.spike_mean = 0.8e-3;
      p.forward.congestion_mean_interval = 6 * duration::kHour;
      p.backward.congestion_mean_interval = 8 * duration::kHour;
      p.forward.congestion_mean_duration = 8 * duration::kMinute;
      p.backward.congestion_mean_duration = 8 * duration::kMinute;
      p.forward.congestion_spike_mean = 4e-3;
      p.backward.congestion_spike_mean = 3e-3;
      p.loss_prob = 0.0015;
      break;
    }
    case ServerKind::kExt: {
      // 1000 km, ~10 hops, RTT 14.2 ms, Δ 500 µs; many hops make quality
      // packets much rarer (paper §5.3).
      p.forward.min_delay = 7332.5e-6;
      p.backward.min_delay = 6832.5e-6;
      p.forward.jitter_mean = 320e-6;
      p.backward.jitter_mean = 260e-6;
      p.forward.spike_prob = 0.16;
      p.backward.spike_prob = 0.11;
      p.forward.spike_mean = 1.8e-3;
      p.backward.spike_mean = 1.5e-3;
      p.forward.pareto_shape = 2.2;
      p.backward.pareto_shape = 2.2;
      p.forward.congestion_mean_interval = 3 * duration::kHour;
      p.backward.congestion_mean_interval = 4 * duration::kHour;
      p.forward.congestion_mean_duration = 12 * duration::kMinute;
      p.backward.congestion_mean_duration = 12 * duration::kMinute;
      p.forward.congestion_spike_mean = 8e-3;
      p.backward.congestion_spike_mean = 6e-3;
      p.loss_prob = 0.003;
      break;
    }
  }
  return p;
}

ServerConfig ScenarioConfig::server_preset(ServerKind kind) {
  ServerConfig s;  // the µs-scale PC server of §3.2 / Fig. 4
  switch (kind) {
    case ServerKind::kLoc:
    case ServerKind::kInt:
      break;  // defaults: GPS reference, 35 µs minimum processing
    case ServerKind::kExt:
      // Atomic-clock reference; busier public server.
      s.processing_jitter_mean = 30e-6;
      s.sched_spike_prob = 2.5e-3;
      break;
  }
  return s;
}

Testbed::Testbed(const ScenarioConfig& config)
    : config_(config),
      rng_(config.seed),
      oscillator_(config.oscillator_override
                      ? *config.oscillator_override
                      : oscillator_for(config.environment,
                                       rng_.fork(10).engine()())),
      host_(config.timestamping_override ? *config.timestamping_override
                                         : TimestampingConfig{},
            rng_.fork(11)),
      dag_(DagConfig{}, rng_.fork(14)) {
  TSC_EXPECTS(config.poll_period > 0.0);
  TSC_EXPECTS(config.poll_jitter >= 0.0);
  TSC_EXPECTS(config.poll_jitter < config.poll_period / 2);
  TSC_EXPECTS(config.duration > 0.0);

  // Base attachment (active from t = 0), then one per configured switch.
  attachments_.push_back(Attachment{
      0.0, config.server, 1,
      PathModel(config.path_override
                    ? *config.path_override
                    : ScenarioConfig::path_preset(config.server),
                &config_.events, rng_.fork(12)),
      NtpServer(config.server_override
                    ? *config.server_override
                    : ScenarioConfig::server_preset(config.server),
                &config_.events, rng_.fork(13))});
  Seconds previous_switch = 0.0;
  for (std::size_t k = 0; k < config.server_switches.size(); ++k) {
    const auto& sw = config.server_switches[k];
    TSC_EXPECTS(sw.time > previous_switch);
    previous_switch = sw.time;
    attachments_.push_back(Attachment{
        sw.time, sw.kind, static_cast<std::uint32_t>(k + 2),
        PathModel(ScenarioConfig::path_preset(sw.kind), &config_.events,
                  rng_.fork(100 + k)),
        NtpServer(ScenarioConfig::server_preset(sw.kind), &config_.events,
                  rng_.fork(200 + k))});
  }
}

Testbed::Attachment& Testbed::active_attachment(Seconds t) {
  std::size_t active = 0;
  for (std::size_t k = 1; k < attachments_.size(); ++k)
    if (t >= attachments_[k].start_time) active = k;
  return attachments_[active];
}

std::optional<Exchange> Testbed::next() {
  Exchange ex;
  if (!next_into(ex)) return std::nullopt;
  return ex;
}

bool Testbed::next_into(Exchange& out) {
  while (true) {
    const Seconds base = static_cast<double>(poll_index_) * config_.poll_period;
    if (base >= config_.duration) return false;
    const Seconds poll_time =
        base + rng_.uniform(-config_.poll_jitter, config_.poll_jitter) +
        config_.poll_jitter;  // keep strictly increasing reads
    const std::uint64_t index = poll_index_++;
    if (config_.events.in_outage(poll_time)) continue;  // gap: no exchange

    out = Exchange{};
    Exchange& ex = out;
    ex.index = index;
    auto& attachment = active_attachment(poll_time);
    ex.server_id = attachment.id;
    ex.server_stratum = attachment.server.config().stratum;

    // Host: TSC stamp just before send, then the packet hits the wire.
    ex.ta_counts = oscillator_.read(poll_time);
    const Seconds send_lead = host_.draw_send_lead();
    ex.truth.ta = poll_time + send_lead;

    // Forward path.
    const auto fwd = attachment.path.forward(ex.truth.ta);
    ex.truth.d_forward = fwd.delay;
    ex.truth.tb = ex.truth.ta + fwd.delay;
    if (fwd.lost) {
      ex.lost = true;
      return true;
    }

    // Server: stamps Tb, processes, stamps Te, replies.
    const auto reply = attachment.server.handle(ex.truth.tb);
    ex.truth.te = reply.te_true;
    ex.truth.d_server = reply.te_true - ex.truth.tb;

    Seconds tb_stamp = reply.tb_stamp;
    Seconds te_stamp = reply.te_stamp;

    if (config_.use_wire_format) {
      // Round-trip the server stamps through the real 48-byte NTP packet.
      using namespace tscclock::wire;
      const auto request = make_client_request(
          to_ntp_timestamp_at_epoch(poll_time, kSimEpochEraSeconds),
          /*poll_log2=*/4);
      const auto request_bytes = encode(request);
      const auto request_rx = decode(request_bytes);
      const auto reply_pkt = make_server_reply(
          request_rx,
          to_ntp_timestamp_at_epoch(tb_stamp, kSimEpochEraSeconds),
          to_ntp_timestamp_at_epoch(te_stamp, kSimEpochEraSeconds),
          attachment.server.config().stratum,
          reference_id_from_string(
              attachment.kind == ServerKind::kExt ? "ATOM" : "GPS"));
      const auto reply_bytes = encode(reply_pkt);
      const auto reply_rx = decode(reply_bytes);
      tb_stamp = from_ntp_timestamp_at_epoch(reply_rx.receive_time,
                                             kSimEpochEraSeconds);
      te_stamp = from_ntp_timestamp_at_epoch(reply_rx.transmit_time,
                                             kSimEpochEraSeconds);
    }
    ex.tb_stamp = tb_stamp;
    ex.te_stamp = te_stamp;

    // Backward path.
    const auto bwd = attachment.path.backward(ex.truth.te);
    ex.truth.d_backward = bwd.delay;
    ex.truth.tf = ex.truth.te + bwd.delay;
    if (bwd.lost) {
      ex.lost = true;
      return true;
    }

    // Host receive stamp (after interrupt latency) and DAG reference.
    const auto recv_lag = host_.draw_recv_lag_detailed();
    const auto dag_stamp = dag_.observe(ex.truth.tf);
    ex.tf_counts_corrected = oscillator_.read(ex.truth.tf + recv_lag.base);
    ex.tf_counts = oscillator_.read(ex.truth.tf + recv_lag.total);
    ex.ref_available = dag_stamp.available;
    ex.tg = dag_stamp.corrected;
    return true;
  }
}

std::size_t Testbed::next_batch(std::span<Exchange> out) {
  std::size_t produced = 0;
  while (produced < out.size() && next_into(out[produced])) ++produced;
  return produced;
}

std::uint64_t Testbed::polls_remaining() const {
  // First index whose poll base falls at or beyond the duration, under the
  // same arithmetic the enumeration loop uses (so the bound is exact).
  auto stop = static_cast<std::uint64_t>(config_.duration / config_.poll_period);
  while (static_cast<double>(stop) * config_.poll_period < config_.duration)
    ++stop;
  while (stop > 0 && static_cast<double>(stop - 1) * config_.poll_period >=
                         config_.duration)
    --stop;
  return stop > poll_index_ ? stop - poll_index_ : 0;
}

std::vector<Exchange> Testbed::generate_all() {
  std::vector<Exchange> out;
  out.reserve(polls_remaining());  // poll-slot count: growth-free drain
  // next_into produces at most one exchange per slot, so while slots remain
  // the emplaced element stays within the reservation; the one speculative
  // element that can go unfilled (a trailing outage swallowing every
  // remaining slot) is popped, never grown past.
  while (polls_remaining() > 0) {
    out.emplace_back();
    if (!next_into(out.back())) {
      out.pop_back();
      break;
    }
  }
  return out;
}

}  // namespace tscclock::sim
