#include "sim/scenario.hpp"

#include "common/contracts.hpp"
#include "wire/ntp_packet.hpp"

namespace tscclock::sim {

namespace {

/// NTP-era seconds of the simulation origin (mid-2004, matching the paper's
/// measurement campaign; comfortably inside era 0).
constexpr std::uint32_t kSimEpochEraSeconds = 3'297'000'000u;

/// The hot-path form of the wire truncation: algebraically identical to the
/// packet round trip (see wire::quantize_timestamp_at_epoch).
Seconds quantize_stamp(Seconds stamp) {
  return wire::quantize_timestamp_at_epoch(stamp, kSimEpochEraSeconds);
}

/// check_wire diagnostic: replay the stamps through the real 48-byte packet
/// encode→decode round trip exactly as the hot path did before the algebraic
/// quantization, and assert both paths agree bit for bit.
void check_wire_equivalence(Seconds poll_time, Seconds tb_raw, Seconds te_raw,
                            Seconds tb_quantized, Seconds te_quantized,
                            std::uint8_t stratum, ServerKind kind) {
  using namespace tscclock::wire;
  const auto request = make_client_request(
      to_ntp_timestamp_at_epoch(poll_time, kSimEpochEraSeconds),
      /*poll_log2=*/4);
  const auto request_rx = decode(encode(request));
  const auto reply_pkt = make_server_reply(
      request_rx, to_ntp_timestamp_at_epoch(tb_raw, kSimEpochEraSeconds),
      to_ntp_timestamp_at_epoch(te_raw, kSimEpochEraSeconds), stratum,
      reference_id_from_string(kind == ServerKind::kExt ? "ATOM" : "GPS"));
  const auto reply_rx = decode(encode(reply_pkt));
  TSC_ENSURES(from_ntp_timestamp_at_epoch(reply_rx.receive_time,
                                          kSimEpochEraSeconds) == tb_quantized);
  TSC_ENSURES(from_ntp_timestamp_at_epoch(reply_rx.transmit_time,
                                          kSimEpochEraSeconds) == te_quantized);
}

OscillatorConfig oscillator_for(Environment environment, std::uint64_t seed) {
  switch (environment) {
    case Environment::kLaboratory:
      return OscillatorConfig::laboratory(seed);
    case Environment::kMachineRoom:
      return OscillatorConfig::machine_room(seed);
  }
  TSC_EXPECTS(false);
  return {};
}

}  // namespace

std::string to_string(ServerKind kind) {
  switch (kind) {
    case ServerKind::kLoc:
      return "ServerLoc";
    case ServerKind::kInt:
      return "ServerInt";
    case ServerKind::kExt:
      return "ServerExt";
  }
  return "?";
}

std::string to_string(Environment environment) {
  switch (environment) {
    case Environment::kLaboratory:
      return "laboratory";
    case Environment::kMachineRoom:
      return "machine-room";
  }
  return "?";
}

PathConfig ScenarioConfig::path_preset(ServerKind kind) {
  // Minimum RTT and asymmetry Δ per Table 2; d↑ minimum is 35 µs (server
  // preset), so d→ + d← = RTT − 35 µs split with d→ − d← = Δ.
  PathConfig p;
  switch (kind) {
    case ServerKind::kLoc: {
      // 3 m, 2 hops, RTT 0.38 ms, Δ 50 µs: a quiet local segment.
      p.forward.min_delay = 197.5e-6;
      p.backward.min_delay = 147.5e-6;
      p.forward.jitter_mean = 18e-6;
      p.backward.jitter_mean = 15e-6;
      p.forward.spike_prob = 0.010;
      p.backward.spike_prob = 0.006;
      p.forward.spike_mean = 0.35e-3;
      p.backward.spike_mean = 0.3e-3;
      p.forward.congestion_mean_interval = 12 * duration::kHour;
      p.backward.congestion_mean_interval = 12 * duration::kHour;
      p.forward.congestion_mean_duration = 5 * duration::kMinute;
      p.backward.congestion_mean_duration = 5 * duration::kMinute;
      p.forward.congestion_spike_mean = 2e-3;
      p.backward.congestion_spike_mean = 2e-3;
      p.loss_prob = 0.0008;
      break;
    }
    case ServerKind::kInt: {
      // 300 m, 5 hops, RTT 0.89 ms, Δ 50 µs; the forward path is the more
      // heavily utilised one (paper §4.2, Fig. 6's negative bias).
      p.forward.min_delay = 452.5e-6;
      p.backward.min_delay = 402.5e-6;
      p.forward.jitter_mean = 45e-6;
      p.backward.jitter_mean = 35e-6;
      p.forward.spike_prob = 0.040;
      p.backward.spike_prob = 0.018;
      p.forward.spike_mean = 1.0e-3;
      p.backward.spike_mean = 0.8e-3;
      p.forward.congestion_mean_interval = 6 * duration::kHour;
      p.backward.congestion_mean_interval = 8 * duration::kHour;
      p.forward.congestion_mean_duration = 8 * duration::kMinute;
      p.backward.congestion_mean_duration = 8 * duration::kMinute;
      p.forward.congestion_spike_mean = 4e-3;
      p.backward.congestion_spike_mean = 3e-3;
      p.loss_prob = 0.0015;
      break;
    }
    case ServerKind::kExt: {
      // 1000 km, ~10 hops, RTT 14.2 ms, Δ 500 µs; many hops make quality
      // packets much rarer (paper §5.3).
      p.forward.min_delay = 7332.5e-6;
      p.backward.min_delay = 6832.5e-6;
      p.forward.jitter_mean = 320e-6;
      p.backward.jitter_mean = 260e-6;
      p.forward.spike_prob = 0.16;
      p.backward.spike_prob = 0.11;
      p.forward.spike_mean = 1.8e-3;
      p.backward.spike_mean = 1.5e-3;
      p.forward.pareto_shape = 2.2;
      p.backward.pareto_shape = 2.2;
      p.forward.congestion_mean_interval = 3 * duration::kHour;
      p.backward.congestion_mean_interval = 4 * duration::kHour;
      p.forward.congestion_mean_duration = 12 * duration::kMinute;
      p.backward.congestion_mean_duration = 12 * duration::kMinute;
      p.forward.congestion_spike_mean = 8e-3;
      p.backward.congestion_spike_mean = 6e-3;
      p.loss_prob = 0.003;
      break;
    }
  }
  return p;
}

ServerConfig ScenarioConfig::server_preset(ServerKind kind) {
  ServerConfig s;  // the µs-scale PC server of §3.2 / Fig. 4
  switch (kind) {
    case ServerKind::kLoc:
    case ServerKind::kInt:
      break;  // defaults: GPS reference, 35 µs minimum processing
    case ServerKind::kExt:
      // Atomic-clock reference; busier public server.
      s.processing_jitter_mean = 30e-6;
      s.sched_spike_prob = 2.5e-3;
      break;
  }
  return s;
}

void ExchangeBatch::clear() {
  index.clear();
  lost.clear();
  ta_counts.clear();
  tf_counts.clear();
  tb_stamp.clear();
  te_stamp.clear();
  tf_counts_corrected.clear();
  server_id.clear();
  server_stratum.clear();
  ref_available.clear();
  tg.clear();
  truth_ta.clear();
  truth_tb.clear();
  truth_te.clear();
  truth_tf.clear();
  d_forward.clear();
  d_server.clear();
  d_backward.clear();
}

void ExchangeBatch::resize(std::size_t rows) {
  index.resize(rows);
  lost.resize(rows);
  ta_counts.resize(rows);
  tf_counts.resize(rows);
  tb_stamp.resize(rows);
  te_stamp.resize(rows);
  tf_counts_corrected.resize(rows);
  server_id.resize(rows);
  server_stratum.resize(rows);
  ref_available.resize(rows);
  tg.resize(rows);
  truth_ta.resize(rows);
  truth_tb.resize(rows);
  truth_te.resize(rows);
  truth_tf.resize(rows);
  d_forward.resize(rows);
  d_server.resize(rows);
  d_backward.resize(rows);
}

void ExchangeBatch::reserve(std::size_t rows) {
  index.reserve(rows);
  lost.reserve(rows);
  ta_counts.reserve(rows);
  tf_counts.reserve(rows);
  tb_stamp.reserve(rows);
  te_stamp.reserve(rows);
  tf_counts_corrected.reserve(rows);
  server_id.reserve(rows);
  server_stratum.reserve(rows);
  ref_available.reserve(rows);
  tg.reserve(rows);
  truth_ta.reserve(rows);
  truth_tb.reserve(rows);
  truth_te.reserve(rows);
  truth_tf.reserve(rows);
  d_forward.reserve(rows);
  d_server.reserve(rows);
  d_backward.reserve(rows);
}

void ExchangeBatch::materialize(std::size_t i, Exchange& out) const {
  TSC_EXPECTS(i < size());
  out.index = index[i];
  out.lost = lost[i] != 0;
  out.ta_counts = ta_counts[i];
  out.tf_counts = tf_counts[i];
  out.tb_stamp = tb_stamp[i];
  out.te_stamp = te_stamp[i];
  out.tf_counts_corrected = tf_counts_corrected[i];
  out.server_id = server_id[i];
  out.server_stratum = server_stratum[i];
  out.ref_available = ref_available[i] != 0;
  out.tg = tg[i];
  out.truth.ta = truth_ta[i];
  out.truth.tb = truth_tb[i];
  out.truth.te = truth_te[i];
  out.truth.tf = truth_tf[i];
  out.truth.d_forward = d_forward[i];
  out.truth.d_server = d_server[i];
  out.truth.d_backward = d_backward[i];
}

void ExchangeBatch::store(std::size_t i, const Exchange& in) {
  TSC_EXPECTS(i < size());
  index[i] = in.index;
  lost[i] = in.lost ? 1 : 0;
  ta_counts[i] = in.ta_counts;
  tf_counts[i] = in.tf_counts;
  tb_stamp[i] = in.tb_stamp;
  te_stamp[i] = in.te_stamp;
  tf_counts_corrected[i] = in.tf_counts_corrected;
  server_id[i] = in.server_id;
  server_stratum[i] = in.server_stratum;
  ref_available[i] = in.ref_available ? 1 : 0;
  tg[i] = in.tg;
  truth_ta[i] = in.truth.ta;
  truth_tb[i] = in.truth.tb;
  truth_te[i] = in.truth.te;
  truth_tf[i] = in.truth.tf;
  d_forward[i] = in.truth.d_forward;
  d_server[i] = in.truth.d_server;
  d_backward[i] = in.truth.d_backward;
}

void ExchangeBatch::push_row(const ExchangeBatch& src, std::size_t i) {
  TSC_EXPECTS(i < src.size());
  index.push_back(src.index[i]);
  lost.push_back(src.lost[i]);
  ta_counts.push_back(src.ta_counts[i]);
  tf_counts.push_back(src.tf_counts[i]);
  tb_stamp.push_back(src.tb_stamp[i]);
  te_stamp.push_back(src.te_stamp[i]);
  tf_counts_corrected.push_back(src.tf_counts_corrected[i]);
  server_id.push_back(src.server_id[i]);
  server_stratum.push_back(src.server_stratum[i]);
  ref_available.push_back(src.ref_available[i]);
  tg.push_back(src.tg[i]);
  truth_ta.push_back(src.truth_ta[i]);
  truth_tb.push_back(src.truth_tb[i]);
  truth_te.push_back(src.truth_te[i]);
  truth_tf.push_back(src.truth_tf[i]);
  d_forward.push_back(src.d_forward[i]);
  d_server.push_back(src.d_server[i]);
  d_backward.push_back(src.d_backward[i]);
}

ClientNode::ClientNode(const ScenarioConfig& config, std::uint32_t client_id,
                       std::optional<BridgeLink> bridge)
    : config_(config),
      rng_(config.seed),
      oscillator_(config.oscillator_override
                      ? *config.oscillator_override
                      : oscillator_for(config.environment,
                                       rng_.fork(10).engine()())),
      host_(config.timestamping_override ? *config.timestamping_override
                                         : TimestampingConfig{},
            rng_.fork(11)),
      dag_(DagConfig{}, rng_.fork(14)),
      client_id_(client_id),
      bridge_(bridge) {
  TSC_EXPECTS(config.poll_period > 0.0);
  TSC_EXPECTS(config.poll_jitter >= 0.0);
  TSC_EXPECTS(config.poll_jitter < config.poll_period / 2);
  TSC_EXPECTS(config.duration > 0.0);

  // Base attachment (active from t = 0), then one per configured switch.
  attachments_.push_back(Attachment{
      0.0, config.server, 1,
      PathModel(config.path_override
                    ? *config.path_override
                    : ScenarioConfig::path_preset(config.server),
                &config_.events, rng_.fork(12)),
      NtpServer(config.server_override
                    ? *config.server_override
                    : ScenarioConfig::server_preset(config.server),
                &config_.events, rng_.fork(13))});
  Seconds previous_switch = 0.0;
  for (std::size_t k = 0; k < config.server_switches.size(); ++k) {
    const auto& sw = config.server_switches[k];
    TSC_EXPECTS(sw.time > previous_switch);
    previous_switch = sw.time;
    attachments_.push_back(Attachment{
        sw.time, sw.kind, static_cast<std::uint32_t>(k + 2),
        PathModel(ScenarioConfig::path_preset(sw.kind), &config_.events,
                  rng_.fork(100 + k)),
        NtpServer(ScenarioConfig::server_preset(sw.kind), &config_.events,
                  rng_.fork(200 + k))});
  }
  outage_cursor_ = EventCursor(&config_.events);
}

ClientNode::Attachment& ClientNode::active_attachment(Seconds t) {
  // Switch times are strictly increasing and poll times are monotone, so the
  // active attachment is a forward-stepping cursor; a query earlier than the
  // current attachment's start (never the generation loop's case) rescans
  // from the base attachment.
  if (t < attachments_[attachment_index_].start_time) attachment_index_ = 0;
  while (attachment_index_ + 1 < attachments_.size() &&
         t >= attachments_[attachment_index_ + 1].start_time)
    ++attachment_index_;
  return attachments_[attachment_index_];
}

std::optional<Exchange> ClientNode::next() {
  Exchange ex;
  if (!next_into(ex)) return std::nullopt;
  return ex;
}

bool ClientNode::next_into(Exchange& out) {
  while (true) {
    const Seconds base = static_cast<double>(poll_index_) * config_.poll_period;
    if (base >= config_.duration) return false;
    const Seconds poll_time =
        base + rng_.uniform(-config_.poll_jitter, config_.poll_jitter) +
        config_.poll_jitter;  // keep strictly increasing reads
    const std::uint64_t index = poll_index_++;
    if (outage_cursor_.in_outage(poll_time)) continue;  // gap: no exchange

    out = Exchange{};
    Exchange& ex = out;
    ex.index = index;
    auto& attachment = active_attachment(poll_time);
    ex.server_id = attachment.id;
    ex.server_stratum = attachment.server.config().stratum;

    // Host: TSC stamp just before send, then the packet hits the wire.
    ex.ta_counts = oscillator_.read(poll_time);
    const Seconds send_lead = host_.draw_send_lead();
    ex.truth.ta = poll_time + send_lead;

    // Forward path.
    const auto fwd = attachment.path.forward(ex.truth.ta);
    ex.truth.d_forward = fwd.delay;
    ex.truth.tb = ex.truth.ta + fwd.delay;
    if (fwd.lost) {
      ex.lost = true;
      return true;
    }

    // A hierarchy slave polling a bridge that has not warmed up against its
    // own upstream yet gets no answer: the request is simply dropped.
    if (bridge_ && ex.truth.tb < bridge_->start) {
      ex.lost = true;
      return true;
    }

    // Server: stamps Tb, processes, stamps Te, replies.
    const auto reply = attachment.server.handle(ex.truth.tb);
    ex.truth.te = reply.te_true;
    ex.truth.d_server = reply.te_true - ex.truth.tb;

    Seconds tb_stamp = reply.tb_stamp;
    Seconds te_stamp = reply.te_stamp;
    if (bridge_) {
      // The bridge stamps with the clock it serves, not true time: its own
      // residual synchronization error rides on both stamps.
      tb_stamp += bridge_->error_at(ex.truth.tb);
      te_stamp += bridge_->error_at(ex.truth.te);
    }
    const Seconds tb_raw = tb_stamp;
    const Seconds te_raw = te_stamp;

    if (config_.use_wire_format) {
      // Wire truncation of the server stamps, composed algebraically (same
      // function as the former packet encode→decode round trip; see
      // check_wire_equivalence for the end-to-end assert).
      tb_stamp = quantize_stamp(tb_stamp);
      te_stamp = quantize_stamp(te_stamp);
      if (config_.check_wire)
        check_wire_equivalence(poll_time, tb_raw, te_raw, tb_stamp, te_stamp,
                               attachment.server.config().stratum,
                               attachment.kind);
    }
    ex.tb_stamp = tb_stamp;
    ex.te_stamp = te_stamp;

    // Backward path.
    const auto bwd = attachment.path.backward(ex.truth.te);
    ex.truth.d_backward = bwd.delay;
    ex.truth.tf = ex.truth.te + bwd.delay;
    if (bwd.lost) {
      ex.lost = true;
      return true;
    }

    // Host receive stamp (after interrupt latency) and DAG reference.
    const auto recv_lag = host_.draw_recv_lag_detailed();
    const auto dag_stamp = dag_.observe(ex.truth.tf);
    ex.tf_counts_corrected = oscillator_.read(ex.truth.tf + recv_lag.base);
    ex.tf_counts = oscillator_.read(ex.truth.tf + recv_lag.total);
    ex.ref_available = dag_stamp.available;
    ex.tg = dag_stamp.corrected;
    return true;
  }
}

std::size_t ClientNode::next_batch(std::span<Exchange> out) {
  std::size_t produced = 0;
  while (produced < out.size() && next_into(out[produced])) ++produced;
  return produced;
}

std::size_t ClientNode::generate_batch(ExchangeBatch& out,
                                       std::size_t max_rows) {
  // Size the columns up front and write rows by index through raw pointers —
  // every column is written exactly once per row, so any stale tail from a
  // reused batch is fully overwritten and then trimmed away.
  out.resize(max_rows);
  std::size_t rows = 0;
  // Per-batch invariants hoisted out of the row loop; the draw sequence and
  // arithmetic below MUST stay in lockstep with next_into() — the batch-lane
  // goldens pin the two streams row-for-row bit-identical.
  const Seconds poll_period = config_.poll_period;
  const Seconds poll_jitter = config_.poll_jitter;
  const Seconds duration = config_.duration;
  const bool wire = config_.use_wire_format;
  const bool check_wire = config_.check_wire;

  while (rows < max_rows) {
    const Seconds base = static_cast<double>(poll_index_) * poll_period;
    if (base >= duration) break;
    const Seconds poll_time =
        base + rng_.uniform(-poll_jitter, poll_jitter) + poll_jitter;
    const std::uint64_t index = poll_index_++;
    if (outage_cursor_.in_outage(poll_time)) continue;  // gap: no exchange

    auto& attachment = active_attachment(poll_time);

    // Row scratch: zero-initialized like a fresh Exchange, written in the
    // scalar path's order, pushed to every column exactly once per row.
    bool lost = false;
    TscCount tf_counts = 0;
    TscCount tf_counts_corrected = 0;
    Seconds tb_stamp = 0;
    Seconds te_stamp = 0;
    bool ref_available = false;
    Seconds tg = 0;
    Seconds truth_te = 0;
    Seconds truth_tf = 0;
    Seconds d_server = 0;
    Seconds d_backward = 0;

    const TscCount ta_counts = oscillator_.read(poll_time);
    const Seconds send_lead = host_.draw_send_lead();
    const Seconds truth_ta = poll_time + send_lead;

    const auto fwd = attachment.path.forward(truth_ta);
    const Seconds d_forward = fwd.delay;
    const Seconds truth_tb = truth_ta + fwd.delay;

    if (fwd.lost || (bridge_ && truth_tb < bridge_->start)) {
      lost = true;
    } else {
      const auto reply = attachment.server.handle(truth_tb);
      truth_te = reply.te_true;
      d_server = reply.te_true - truth_tb;
      tb_stamp = reply.tb_stamp;
      te_stamp = reply.te_stamp;
      if (bridge_) {
        tb_stamp += bridge_->error_at(truth_tb);
        te_stamp += bridge_->error_at(truth_te);
      }
      const Seconds tb_raw = tb_stamp;
      const Seconds te_raw = te_stamp;
      if (wire) {
        tb_stamp = quantize_stamp(tb_stamp);
        te_stamp = quantize_stamp(te_stamp);
        if (check_wire)
          check_wire_equivalence(poll_time, tb_raw, te_raw, tb_stamp, te_stamp,
                                 attachment.server.config().stratum,
                                 attachment.kind);
      }

      const auto bwd = attachment.path.backward(truth_te);
      d_backward = bwd.delay;
      truth_tf = truth_te + bwd.delay;
      if (bwd.lost) {
        lost = true;
      } else {
        const auto recv_lag = host_.draw_recv_lag_detailed();
        const auto dag_stamp = dag_.observe(truth_tf);
        tf_counts_corrected = oscillator_.read(truth_tf + recv_lag.base);
        tf_counts = oscillator_.read(truth_tf + recv_lag.total);
        ref_available = dag_stamp.available;
        tg = dag_stamp.corrected;
      }
    }

    out.index[rows] = index;
    out.lost[rows] = lost ? 1 : 0;
    out.ta_counts[rows] = ta_counts;
    out.tf_counts[rows] = tf_counts;
    out.tb_stamp[rows] = tb_stamp;
    out.te_stamp[rows] = te_stamp;
    out.tf_counts_corrected[rows] = tf_counts_corrected;
    out.server_id[rows] = attachment.id;
    out.server_stratum[rows] = attachment.server.config().stratum;
    out.ref_available[rows] = ref_available ? 1 : 0;
    out.tg[rows] = tg;
    out.truth_ta[rows] = truth_ta;
    out.truth_tb[rows] = truth_tb;
    out.truth_te[rows] = truth_te;
    out.truth_tf[rows] = truth_tf;
    out.d_forward[rows] = d_forward;
    out.d_server[rows] = d_server;
    out.d_backward[rows] = d_backward;
    ++rows;
  }
  out.resize(rows);
  return rows;
}

std::uint64_t ClientNode::polls_remaining() const {
  // First index whose poll base falls at or beyond the duration, under the
  // same arithmetic the enumeration loop uses (so the bound is exact).
  auto stop =
      static_cast<std::uint64_t>(config_.duration / config_.poll_period);
  while (static_cast<double>(stop) * config_.poll_period < config_.duration)
    ++stop;
  while (stop > 0 && static_cast<double>(stop - 1) * config_.poll_period >=
                         config_.duration)
    --stop;
  return stop > poll_index_ ? stop - poll_index_ : 0;
}

std::vector<Exchange> ClientNode::generate_all() {
  std::vector<Exchange> out;
  out.reserve(polls_remaining());  // poll-slot count: growth-free drain
  // next_into produces at most one exchange per slot, so while slots remain
  // the emplaced element stays within the reservation; the one speculative
  // element that can go unfilled (a trailing outage swallowing every
  // remaining slot) is popped, never grown past.
  while (polls_remaining() > 0) {
    out.emplace_back();
    if (!next_into(out.back())) {
      out.pop_back();
      break;
    }
  }
  return out;
}

}  // namespace tscclock::sim
