// GPS-synchronized DAG capture card model (paper §2.4).
//
// The DAG card passively taps the Ethernet cable just before the host NIC
// and timestamps the *first bit* of each returning NTP packet with ~100 ns
// accuracy. The paper corrects each raw DAG timestamp by the 90-byte frame
// transmission time at 100 Mbps (+7.2 µs) so it refers to full arrival, and
// reports a residual verification limit of ~5 µs.
//
// observe() returns the corrected timestamp Tg. A small fraction of packets
// fail to get matching reference timestamps (the paper lost 169 of 113,401);
// those return available = false.
#pragma once

#include "common/rng.hpp"
#include "common/time_types.hpp"

namespace tscclock::sim {

struct DagConfig {
  Seconds timestamp_noise_std = 0.1e-6;  ///< card + GPS sync accuracy
  Seconds card_latency = 0.3e-6;         ///< minimum card processing time
  Seconds frame_time = 7.2e-6;           ///< 90 bytes at 100 Mbps
  double missing_prob = 0.0015;          ///< unmatched reference timestamps
};

class DagMonitor {
 public:
  DagMonitor(const DagConfig& config, Rng rng);

  struct Stamp {
    bool available = false;
    Seconds corrected = 0;  ///< Tg: first-bit stamp + frame-time correction
  };

  /// Observe a packet whose *full* arrival at the host is at true time t.
  Stamp observe(Seconds full_arrival);

  [[nodiscard]] const DagConfig& config() const { return config_; }

 private:
  DagConfig config_;
  Rng rng_;
};

}  // namespace tscclock::sim
