#include "sim/oscillator.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::sim {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

OscillatorConfig OscillatorConfig::laboratory(std::uint64_t seed) {
  OscillatorConfig c;
  c.skew_ppm = 52.4;
  // Uncontrolled open-plan temperature: strong diurnal swing, plus faster
  // short-scale wander (doors, drafts, occupancy) than the machine room.
  c.diurnal_amplitude_ppm = 0.045;
  c.semidiurnal_amplitude_ppm = 0.015;
  c.oscillatory_amplitude_ppm = 0.0;
  c.ou_sigma_ppm = 0.060;
  c.ou_relaxation_s = 1500;
  c.seed = seed;
  return c;
}

OscillatorConfig OscillatorConfig::machine_room(std::uint64_t seed) {
  OscillatorConfig c;
  c.skew_ppm = 52.4;
  // ±2°C environmental control: attenuated but visible diurnal residue...
  c.diurnal_amplitude_ppm = 0.025;
  c.semidiurnal_amplitude_ppm = 0.010;
  // ...but the distinct ~0.05 PPM oscillation with a 100-200 min period
  // (paper §3.1, visible in Fig. 8).
  c.oscillatory_amplitude_ppm = 0.05;
  c.oscillatory_period_min_s = 6000;
  c.oscillatory_period_max_s = 12000;
  c.ou_sigma_ppm = 0.008;
  c.ou_relaxation_s = 3000;
  c.seed = seed;
  return c;
}

Oscillator::Oscillator(const OscillatorConfig& config)
    : config_(config), rng_(config.seed) {
  TSC_EXPECTS(config.nominal_frequency_hz > 0.0);
  TSC_EXPECTS(config.max_substep_s > 0.0);
  TSC_EXPECTS(config.ou_relaxation_s > 0.0);
  TSC_EXPECTS(config.oscillatory_period_min_s > 0.0);
  TSC_EXPECTS(config.oscillatory_period_max_s >=
              config.oscillatory_period_min_s);
  osc_period_ = 0.5 * (config.oscillatory_period_min_s +
                       config.oscillatory_period_max_s);
  osc_phase_ = rng_.uniform(0.0, kTwoPi);
}

double Oscillator::wander_at(Seconds t) const {
  const double diurnal =
      ppm(config_.diurnal_amplitude_ppm) *
      std::sin(kTwoPi * t / duration::kDay + config_.diurnal_phase_rad);
  const double semidiurnal =
      ppm(config_.semidiurnal_amplitude_ppm) *
      std::sin(2.0 * kTwoPi * t / duration::kDay + 1.1);
  const double oscillatory =
      ppm(config_.oscillatory_amplitude_ppm) * std::sin(osc_phase_);
  return diurnal + semidiurnal + oscillatory;
}

void Oscillator::advance_to(Seconds t) {
  TSC_EXPECTS(t >= now_);
  const double f_true =
      config_.nominal_frequency_hz * (1.0 + ppm(config_.skew_ppm));
  while (now_ < t) {
    const double dt = std::min(t - now_, config_.max_substep_s);
    // Exact OU discretization for the endpoint value; trapezoidal integral.
    const double decay = std::exp(-dt / config_.ou_relaxation_s);
    const double innovation_std =
        ppm(config_.ou_sigma_ppm) * std::sqrt(1.0 - decay * decay);
    const double ou_next = ou_state_ * decay + rng_.normal(innovation_std);

    // wander_at(now_) is exactly the previous substep's wander_at(now_ + dt):
    // nothing that feeds wander_at (t, osc_phase_) changes between a substep's
    // end and the next substep's start, so the cached value is bit-identical
    // and saves two sin() calls per substep on the generator hot path.
    const double wander_start =
        wander_cached_ ? wander_now_ : wander_at(now_);
    const double gamma_start = wander_start + ou_state_;

    // Advance the oscillatory component's slowly wandering period.
    if (config_.oscillatory_amplitude_ppm > 0.0) {
      osc_phase_ += kTwoPi * dt / osc_period_;
      if (osc_phase_ > kTwoPi) osc_phase_ -= kTwoPi;
      const double span = config_.oscillatory_period_max_s -
                          config_.oscillatory_period_min_s;
      if (span > 0.0) {
        osc_period_ += rng_.normal(0.01 * span * std::sqrt(dt / 60.0));
        // Reflect at the band edges to keep the period in range.
        if (osc_period_ < config_.oscillatory_period_min_s)
          osc_period_ = 2.0 * config_.oscillatory_period_min_s - osc_period_;
        if (osc_period_ > config_.oscillatory_period_max_s)
          osc_period_ = 2.0 * config_.oscillatory_period_max_s - osc_period_;
      }
    }

    const double wander_end = wander_at(now_ + dt);
    wander_now_ = wander_end;
    wander_cached_ = true;
    const double gamma_end = wander_end + ou_next;
    const double gamma_mean = 0.5 * (gamma_start + gamma_end);

    phase_cycles_ +=
        static_cast<long double>(f_true) *
        static_cast<long double>(dt * (1.0 + gamma_mean));
    ou_state_ = ou_next;
    now_ += dt;
  }
}

TscCount Oscillator::read(Seconds t) {
  advance_to(t);
  TSC_ENSURES(phase_cycles_ >= 0.0L);
  return static_cast<TscCount>(phase_cycles_);
}

double Oscillator::rate_error() const {
  return ppm(config_.skew_ppm) + wander_at(now_) + ou_state_;
}

double Oscillator::mean_period() const {
  return 1.0 / (config_.nominal_frequency_hz * (1.0 + ppm(config_.skew_ppm)));
}

double Oscillator::nominal_period() const {
  return 1.0 / config_.nominal_frequency_hz;
}

}  // namespace tscclock::sim
