// Stratum-1 NTP server model (paper §2.3, §3.2, §6.1).
//
// The server's clock is well synchronized (GPS or atomic reference) but its
// *timestamping* is not perfect: the paper stresses that "servers are often
// just PC's" whose timestamping lacks the quality of driver-level TSC
// timestamping. Components modeled:
//   * processing delay d↑ = minimum + exponential jitter, with rare
//     millisecond-scale scheduling spikes (Fig. 4 right);
//   * white timestamp noise on Tb and Te (µs scale);
//   * Te normally made slightly *before* true departure, but occasionally
//     later than true departure by up to ~1 ms (§4.2 observes such outliers);
//   * schedulable clock faults: Tb and Te offset by a constant during a
//     fault window (the 150 ms error of Fig. 11(b)).
#pragma once

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "sim/events.hpp"

namespace tscclock::sim {

struct ServerConfig {
  Seconds min_processing = 35e-6;        ///< minimum of d↑
  Seconds processing_jitter_mean = 20e-6;
  double sched_spike_prob = 1.5e-3;      ///< ms-scale scheduling delays
  Seconds sched_spike_mean = 0.8e-3;
  Seconds clock_noise_std = 1.0e-6;      ///< white error on Tb/Te stamps
  Seconds te_early_mean = 2.0e-6;        ///< Te made before true departure
  double te_late_prob = 1.0e-4;          ///< rare Te later than departure
  Seconds te_late_max = 1.0e-3;
  std::uint8_t stratum = 1;
};

class NtpServer {
 public:
  NtpServer(const ServerConfig& config, const EventSchedule* events, Rng rng);

  struct Reply {
    Seconds tb_true = 0;   ///< true arrival instant
    Seconds te_true = 0;   ///< true departure instant
    Seconds tb_stamp = 0;  ///< Tb as written into the packet
    Seconds te_stamp = 0;  ///< Te as written into the packet
  };

  /// Process the request arriving at true time `arrival`.
  Reply handle(Seconds arrival);

  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
  const EventSchedule* events_;  ///< not owned; may be nullptr
  Rng rng_;
  EventCursor fault_cursor_;  ///< arrival times are monotone per server
};

}  // namespace tscclock::sim
