#include "sim/events.hpp"

#include "common/contracts.hpp"

namespace tscclock::sim {

EventSchedule& EventSchedule::add_outage(Seconds start, Seconds end) {
  TSC_EXPECTS(end > start);
  outages_.push_back({start, end});
  return *this;
}

EventSchedule& EventSchedule::add_server_fault(Seconds start, Seconds end,
                                               Seconds offset) {
  TSC_EXPECTS(end > start);
  server_faults_.push_back({start, end, offset});
  return *this;
}

EventSchedule& EventSchedule::add_level_shift(const LevelShift& shift) {
  TSC_EXPECTS(shift.end > shift.start);
  level_shifts_.push_back(shift);
  return *this;
}

bool EventSchedule::in_outage(Seconds t) const {
  for (const auto& o : outages_)
    if (t >= o.start && t < o.end) return true;
  return false;
}

Seconds EventSchedule::server_fault_offset(Seconds t) const {
  Seconds total = 0;
  for (const auto& f : server_faults_)
    if (t >= f.start && t < f.end) total += f.offset;
  return total;
}

EventSchedule::PathShift EventSchedule::path_shift(Seconds t) const {
  PathShift s;
  for (const auto& ls : level_shifts_) {
    if (t >= ls.start && t < ls.end) {
      s.forward += ls.forward_delta;
      s.backward += ls.backward_delta;
    }
  }
  return s;
}

}  // namespace tscclock::sim
