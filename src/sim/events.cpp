#include "sim/events.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::sim {

EventSchedule& EventSchedule::add_outage(Seconds start, Seconds end) {
  TSC_EXPECTS(end > start);
  outages_.push_back({start, end});
  ++revision_;
  return *this;
}

EventSchedule& EventSchedule::add_server_fault(Seconds start, Seconds end,
                                               Seconds offset) {
  TSC_EXPECTS(end > start);
  server_faults_.push_back({start, end, offset});
  ++revision_;
  return *this;
}

EventSchedule& EventSchedule::add_level_shift(const LevelShift& shift) {
  TSC_EXPECTS(shift.end > shift.start);
  level_shifts_.push_back(shift);
  ++revision_;
  return *this;
}

bool EventSchedule::in_outage(Seconds t) const {
  for (const auto& o : outages_)
    if (t >= o.start && t < o.end) return true;
  return false;
}

Seconds EventSchedule::server_fault_offset(Seconds t) const {
  Seconds total = 0;
  for (const auto& f : server_faults_)
    if (t >= f.start && t < f.end) total += f.offset;
  return total;
}

EventSchedule::PathShift EventSchedule::path_shift(Seconds t) const {
  PathShift s;
  for (const auto& ls : level_shifts_) {
    if (t >= ls.start && t < ls.end) {
      s.forward += ls.forward_delta;
      s.backward += ls.backward_delta;
    }
  }
  return s;
}

const std::vector<EventSchedule::Segment>& EventSchedule::segments() const {
  if (compiled_revision_ == revision_) return segments_;

  // Breakpoints: every instant where some interval's active set can change.
  // Intervals are half-open [start, end), so both edges are breakpoints;
  // kForever never ends and contributes no end breakpoint.
  std::vector<Seconds> breaks;
  breaks.reserve(2 * (outages_.size() + server_faults_.size() +
                      level_shifts_.size()));
  const auto edge = [&breaks](Seconds start, Seconds end) {
    breaks.push_back(start);
    if (std::isfinite(end)) breaks.push_back(end);
  };
  for (const auto& o : outages_) edge(o.start, o.end);
  for (const auto& f : server_faults_) edge(f.start, f.end);
  for (const auto& ls : level_shifts_) edge(ls.start, ls.end);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

  segments_.clear();
  segments_.reserve(breaks.size() + 1);
  // Leading segment: before the earliest breakpoint nothing is active.
  segments_.push_back(
      Segment{-std::numeric_limits<double>::infinity(), false, 0.0, {}});
  for (const Seconds b : breaks)
    segments_.push_back(Segment{b, in_outage(b), server_fault_offset(b),
                                path_shift(b)});
  compiled_revision_ = revision_;
  return segments_;
}

const EventSchedule::Segment& EventCursor::locate(Seconds t) {
  static const EventSchedule::Segment kNoEvents{};
  if (schedule_ == nullptr) return kNoEvents;
  const auto& segments = schedule_->segments();
  if (revision_ != schedule_->revision() || index_ >= segments.size() ||
      t < segments[index_].start) {
    // From-scratch fallback: the schedule changed or the query went
    // backward. Last segment whose start is <= t (segment 0 starts at
    // -infinity, so the search never lands before the front).
    revision_ = schedule_->revision();
    const auto it = std::upper_bound(
        segments.begin(), segments.end(), t,
        [](Seconds value, const EventSchedule::Segment& s) {
          return value < s.start;
        });
    index_ = static_cast<std::size_t>(it - segments.begin()) - 1;
    return segments[index_];
  }
  while (index_ + 1 < segments.size() && t >= segments[index_ + 1].start)
    ++index_;
  return segments[index_];
}

}  // namespace tscclock::sim
