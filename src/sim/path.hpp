// One-way network delay model (paper §3.2).
//
// Each direction is modeled as the paper observes:
//
//     d_i = d + q_i,   d   = deterministic minimum (propagation + per-hop
//                            store-and-forward),
//                      q_i = positive random queueing component.
//
// The queueing component is a mixture: a light "always on" exponential part
// (per-hop residual queueing) and a heavy spike part (bursts), whose
// probability is modulated by a diurnal utilisation profile and by randomly
// arriving congestion episodes (minutes-long periods where spikes dominate
// and can reach tens of ms — §3.2 "can take 10's of milliseconds during
// periods of congestion"). Scheduled level shifts displace the minimum.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "common/time_types.hpp"
#include "sim/events.hpp"

namespace tscclock::sim {

struct OneWayDelayConfig {
  Seconds min_delay = 200e-6;   ///< d: deterministic minimum
  Seconds jitter_mean = 30e-6;  ///< light exponential queueing component
  double spike_prob = 0.02;     ///< baseline probability of a heavy sample
  Seconds spike_mean = 0.8e-3;  ///< mean heavy excursion (Pareto distributed)
  double pareto_shape = 2.5;    ///< tail index of heavy excursions
  double diurnal_load = 0.6;    ///< relative diurnal modulation of spike_prob
  Seconds diurnal_peak_time = 15 * 3600;  ///< busiest time of day [s]
  // Congestion episodes: Poisson arrivals, exponential durations.
  Seconds congestion_mean_interval = 6 * 3600;
  Seconds congestion_mean_duration = 8 * 60;
  double congestion_spike_prob = 0.75;
  Seconds congestion_spike_mean = 4e-3;
};

/// Stateful per-direction delay generator; query times must not decrease.
class OneWayDelayModel {
 public:
  OneWayDelayModel(const OneWayDelayConfig& config, Rng rng);

  /// Total one-way delay for a packet entering the path at true time t.
  Seconds delay(Seconds t);

  /// The deterministic minimum (without any scheduled shift).
  [[nodiscard]] Seconds base_min_delay() const { return config_.min_delay; }

  /// True if t falls inside the currently scheduled congestion episode.
  [[nodiscard]] bool in_congestion(Seconds t) const;

  [[nodiscard]] const OneWayDelayConfig& config() const { return config_; }

 private:
  void advance_episodes(Seconds t);
  [[nodiscard]] double spike_probability(Seconds t) const;

  OneWayDelayConfig config_;
  Rng rng_;
  Seconds episode_start_ = 0;
  Seconds episode_end_ = -1;  ///< current/last episode; end < start of next
  Seconds next_episode_ = 0;
};

/// Full bidirectional path: forward + backward models, loss and level shifts.
struct PathConfig {
  OneWayDelayConfig forward;
  OneWayDelayConfig backward;
  double loss_prob = 0.002;  ///< per-direction independent packet loss
};

class PathModel {
 public:
  PathModel(const PathConfig& config, const EventSchedule* events, Rng rng);

  struct Transit {
    Seconds delay = 0;
    bool lost = false;
  };

  /// Forward (host→server) transit for a packet sent at true time t.
  Transit forward(Seconds t);
  /// Backward (server→host) transit for a packet sent at true time t.
  Transit backward(Seconds t);

  /// Current effective minimum one-way delays including scheduled shifts.
  [[nodiscard]] Seconds forward_min(Seconds t) const;
  [[nodiscard]] Seconds backward_min(Seconds t) const;

  /// Path asymmetry Δ = d→ − d← at time t (paper §4.2).
  [[nodiscard]] Seconds asymmetry(Seconds t) const;

  [[nodiscard]] const PathConfig& config() const { return config_; }

 private:
  PathConfig config_;
  const EventSchedule* events_;  ///< not owned; may be nullptr
  OneWayDelayModel forward_model_;
  OneWayDelayModel backward_model_;
  Rng loss_rng_;
  /// Shift lookups for the transit hot path (forward/backward query times
  /// interleave but never decrease, so the cursor advances O(1) amortized).
  EventCursor transit_cursor_;
  /// Separate cursor for the const min/asymmetry queries: analyses call
  /// those at arbitrary times and must not perturb the hot-path cursor.
  mutable EventCursor query_cursor_;
};

}  // namespace tscclock::sim
