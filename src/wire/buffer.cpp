#include "wire/buffer.hpp"

namespace tscclock::wire {

void ByteWriter::u8(std::uint8_t v) { data_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
  data_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  data_.insert(data_.end(), data.begin(), data.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n)
    throw BufferError("ByteReader: read past end of buffer");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const auto hi = static_cast<std::uint16_t>(data_[pos_]);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::u32() {
  const auto hi = static_cast<std::uint32_t>(u16());
  const auto lo = static_cast<std::uint32_t>(u16());
  return hi << 16 | lo;
}

std::uint64_t ByteReader::u64() {
  const auto hi = static_cast<std::uint64_t>(u32());
  const auto lo = static_cast<std::uint64_t>(u32());
  return hi << 32 | lo;
}

}  // namespace tscclock::wire
