// ByteWriter/SpanWriter/ByteReader are fully inline (see buffer.hpp); this
// translation unit remains so the build layout (one .cpp per header in the
// wire layer) stays uniform.
#include "wire/buffer.hpp"
