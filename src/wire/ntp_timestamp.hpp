// NTP on-wire time formats (RFC 5905 §6).
//
// The 64-bit timestamp format carries 32 bits of seconds since the NTP era
// origin (1900-01-01, era 0) and 32 bits of binary fraction (~233 ps
// resolution). The 32-bit short format (16.16) is used for root delay and
// root dispersion. The paper's NTP exchange (§2.3) carries four 64-bit
// timestamps per packet; this module provides exact round-trippable
// conversions between those formats and Seconds.
#pragma once

#include <cstdint>

#include "common/time_types.hpp"

namespace tscclock::wire {

/// Seconds between the NTP era origin (1900-01-01) and the Unix epoch
/// (1970-01-01): 70 years including 17 leap days.
constexpr std::uint64_t kNtpToUnixOffset = 2208988800ULL;

/// 64-bit NTP timestamp: 32.32 fixed point seconds since the era origin.
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  [[nodiscard]] std::uint64_t packed() const {
    return static_cast<std::uint64_t>(seconds) << 32 | fraction;
  }
  static NtpTimestamp from_packed(std::uint64_t bits) {
    return {static_cast<std::uint32_t>(bits >> 32),
            static_cast<std::uint32_t>(bits)};
  }

  /// The all-zero timestamp is "unknown/unsynchronized" on the wire.
  [[nodiscard]] bool is_zero() const { return seconds == 0 && fraction == 0; }

  friend bool operator==(const NtpTimestamp&, const NtpTimestamp&) = default;
};

/// Convert seconds-since-era-origin to wire format (rounds to nearest LSB).
/// Values are taken modulo the 136-year era span, as on the real wire.
NtpTimestamp to_ntp_timestamp(Seconds since_era);

/// Convert wire format back to seconds since the era origin (era 0 assumed).
Seconds from_ntp_timestamp(NtpTimestamp ts);

/// 32-bit NTP short format: 16.16 fixed point, used for root delay/dispersion.
struct NtpShort {
  std::uint16_t seconds = 0;
  std::uint16_t fraction = 0;

  [[nodiscard]] std::uint32_t packed() const {
    return static_cast<std::uint32_t>(seconds) << 16 | fraction;
  }
  static NtpShort from_packed(std::uint32_t bits) {
    return {static_cast<std::uint16_t>(bits >> 16),
            static_cast<std::uint16_t>(bits)};
  }
  friend bool operator==(const NtpShort&, const NtpShort&) = default;
};

NtpShort to_ntp_short(Seconds value);
Seconds from_ntp_short(NtpShort value);

/// Epoch-relative conversions. On the wire the 32.32 fixed-point format has
/// uniform ~233 ps resolution, but naively passing "seconds since 1900" in
/// and out through a double costs ~0.5 µs of rounding near era values of
/// ~3.3e9. These helpers split the integer epoch out so the double only ever
/// carries the (small) offset from the epoch, making the round trip exact to
/// one wire LSB. `since_epoch` must satisfy epoch + since_epoch within era 0.
NtpTimestamp to_ntp_timestamp_at_epoch(Seconds since_epoch,
                                       std::uint32_t epoch_era_seconds);
Seconds from_ntp_timestamp_at_epoch(NtpTimestamp ts,
                                    std::uint32_t epoch_era_seconds);

/// The exact truncation a wire round trip applies to an epoch-relative
/// timestamp: quantize_timestamp_at_epoch(x, e) ==
/// from_ntp_timestamp_at_epoch(to_ntp_timestamp_at_epoch(x, e), e) bit for
/// bit (packet encode/decode carries the packed 64-bit timestamp exactly, so
/// the at-epoch conversions are the only lossy step — pinned by the property
/// tests). Composed algebraically so the simulation hot path pays one
/// floor + llround instead of building, encoding and decoding packets.
/// Preconditions match to_ntp_timestamp_at_epoch: finite, >= 0, within era 0.
Seconds quantize_timestamp_at_epoch(Seconds since_epoch,
                                    std::uint32_t epoch_era_seconds);

/// Resolution of one LSB of the 64-bit fraction (~232.8 ps).
constexpr Seconds kNtpTimestampResolution = 1.0 / 4294967296.0;

}  // namespace tscclock::wire
