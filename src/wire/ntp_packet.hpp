// NTP v3/v4 packet header (RFC 5905 §7.3): the 48-byte payload exchanged
// between host and server in the paper (§2.3). The four timestamp fields
// carry {reference, origin (Ta), receive (Tb), transmit (Te)}; the client
// copies its send timestamp into transmit, the server moves it to origin
// and fills receive/transmit. Encode/decode are exact inverses and decode
// validates structure (length, version, mode).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "wire/ntp_timestamp.hpp"

namespace tscclock::wire {

/// Size of the NTP header payload (no extensions, no MAC).
constexpr std::size_t kNtpPacketSize = 48;

/// Total Ethernet frame size transporting the datagram: 48-byte payload +
/// UDP(8) + IP(20) + Ethernet(14) + FCS(4) + preamble/SFD(8) — the paper
/// rounds this to 90 bytes for the DAG first-bit correction.
constexpr std::size_t kNtpEthernetFrameBytes = 90;

enum class LeapIndicator : std::uint8_t {
  kNoWarning = 0,
  kLastMinute61 = 1,
  kLastMinute59 = 2,
  kUnsynchronized = 3,
};

enum class NtpMode : std::uint8_t {
  kReserved = 0,
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
  kControl = 6,
  kPrivate = 7,
};

struct NtpPacket {
  LeapIndicator leap = LeapIndicator::kNoWarning;
  std::uint8_t version = 4;
  NtpMode mode = NtpMode::kClient;
  std::uint8_t stratum = 0;
  std::int8_t poll = 0;       ///< log2 seconds
  std::int8_t precision = 0;  ///< log2 seconds
  NtpShort root_delay{};
  NtpShort root_dispersion{};
  std::uint32_t reference_id = 0;  ///< e.g. "GPS\0" for stratum-1
  NtpTimestamp reference_time{};
  NtpTimestamp origin_time{};    ///< T1: client transmit (echoed by server)
  NtpTimestamp receive_time{};   ///< T2: server receive (Tb)
  NtpTimestamp transmit_time{};  ///< T3/T1: transmit timestamp (Te / Ta)

  friend bool operator==(const NtpPacket&, const NtpPacket&) = default;
};

/// Serialize into exactly kNtpPacketSize bytes of network byte order.
std::array<std::uint8_t, kNtpPacketSize> encode(const NtpPacket& packet);

/// Parse and validate a packet. Throws PacketError on short input (a
/// truncated datagram can never half-parse into a plausible packet) and on
/// structural violations (bad version or mode nibble). Trailing bytes —
/// extensions, MAC — are ignored: only the 48-byte header is read.
NtpPacket decode(std::span<const std::uint8_t> data);

class PacketError : public std::runtime_error {
 public:
  explicit PacketError(const std::string& what) : std::runtime_error(what) {}
};

/// Four-character reference id helper ("GPS ", "ATOM", ...).
std::uint32_t reference_id_from_string(const std::string& label);

/// Inverse of reference_id_from_string, for diagnostics: the four id bytes
/// as printable ASCII (non-printable bytes rendered as '.'). A stratum-0
/// reply's reference id is its kiss-o'-death code ("DENY", "RATE", ...).
std::string reference_id_to_string(std::uint32_t reference_id);

/// Validate a decoded reply against what a well-behaved SNTP server must
/// send for `expected_origin` (the request's transmit timestamp). This is
/// the collector-path hardening layer on top of decode(): a hostile or
/// broken reply must surface as a precise PacketError, never as a garbage
/// {Ta,Tb,Te,Tf} exchange. Checks, in order:
///   * mode is server (a client/broadcast/control packet is not a reply);
///   * stratum 0 — a kiss-o'-death packet; the error names the kiss code;
///   * stratum > 15 (RFC 5905 reserves 16+);
///   * leap indicator 3 — the server itself is unsynchronized;
///   * zero receive/transmit timestamps (unknown time on the wire);
///   * zero origin timestamp, or origin ≠ expected_origin — the reply does
///     not answer our request (off-path spoofing or a confused server).
void validate_server_reply(const NtpPacket& reply,
                           const NtpTimestamp& expected_origin);

/// Build the client-mode request carrying Ta in the transmit field.
NtpPacket make_client_request(NtpTimestamp transmit, std::uint8_t poll_log2);

/// Build the server reply per RFC 5905: origin <- request.transmit,
/// receive <- Tb, transmit <- Te.
NtpPacket make_server_reply(const NtpPacket& request, NtpTimestamp receive,
                            NtpTimestamp transmit, std::uint8_t stratum,
                            std::uint32_t reference_id);

}  // namespace tscclock::wire
