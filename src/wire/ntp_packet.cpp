#include "wire/ntp_packet.hpp"

#include "common/contracts.hpp"
#include "wire/buffer.hpp"

namespace tscclock::wire {

std::array<std::uint8_t, kNtpPacketSize> encode(const NtpPacket& packet) {
  // Allocation-free: the packet size is fixed, so serialize straight into
  // the output array (the simulation encodes two packets per exchange).
  std::array<std::uint8_t, kNtpPacketSize> out{};
  SpanWriter w(out);
  const auto li_vn_mode = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(packet.leap) << 6) |
      ((packet.version & 0x7) << 3) | (static_cast<std::uint8_t>(packet.mode)));
  w.u8(li_vn_mode);
  w.u8(packet.stratum);
  w.u8(static_cast<std::uint8_t>(packet.poll));
  w.u8(static_cast<std::uint8_t>(packet.precision));
  w.u32(packet.root_delay.packed());
  w.u32(packet.root_dispersion.packed());
  w.u32(packet.reference_id);
  w.u64(packet.reference_time.packed());
  w.u64(packet.origin_time.packed());
  w.u64(packet.receive_time.packed());
  w.u64(packet.transmit_time.packed());

  TSC_ENSURES(w.size() == kNtpPacketSize);
  return out;
}

NtpPacket decode(std::span<const std::uint8_t> data) {
  if (data.size() < kNtpPacketSize)
    throw PacketError("NTP packet too short: " + std::to_string(data.size()) +
                      " bytes");
  ByteReader r(data);
  NtpPacket p;
  const std::uint8_t li_vn_mode = r.u8();
  p.leap = static_cast<LeapIndicator>(li_vn_mode >> 6);
  p.version = (li_vn_mode >> 3) & 0x7;
  p.mode = static_cast<NtpMode>(li_vn_mode & 0x7);
  if (p.version < 1 || p.version > 4)
    throw PacketError("unsupported NTP version " + std::to_string(p.version));
  if (p.mode == NtpMode::kReserved)
    throw PacketError("reserved NTP mode");
  p.stratum = r.u8();
  p.poll = static_cast<std::int8_t>(r.u8());
  p.precision = static_cast<std::int8_t>(r.u8());
  p.root_delay = NtpShort::from_packed(r.u32());
  p.root_dispersion = NtpShort::from_packed(r.u32());
  p.reference_id = r.u32();
  p.reference_time = NtpTimestamp::from_packed(r.u64());
  p.origin_time = NtpTimestamp::from_packed(r.u64());
  p.receive_time = NtpTimestamp::from_packed(r.u64());
  p.transmit_time = NtpTimestamp::from_packed(r.u64());
  return p;
}

std::string reference_id_to_string(std::uint32_t reference_id) {
  std::string out(4, '.');
  for (std::size_t i = 0; i < 4; ++i) {
    const auto byte =
        static_cast<unsigned char>(reference_id >> (8 * (3 - i)));
    if (byte >= 0x20 && byte < 0x7f) out[i] = static_cast<char>(byte);
  }
  return out;
}

void validate_server_reply(const NtpPacket& reply,
                           const NtpTimestamp& expected_origin) {
  if (reply.mode != NtpMode::kServer) {
    throw PacketError("reply is not a server-mode packet (mode " +
                      std::to_string(static_cast<int>(reply.mode)) + ")");
  }
  if (reply.stratum == 0) {
    // RFC 5905 §7.4: stratum 0 replies are kiss-o'-death packets whose
    // reference id carries an ASCII code (DENY, RSTR, RATE, ...). Obeying
    // them is mandatory for a polite client, so surface the code verbatim.
    throw PacketError("kiss-o'-death packet (code '" +
                      reference_id_to_string(reply.reference_id) + "')");
  }
  if (reply.stratum > 15) {
    throw PacketError("invalid stratum " + std::to_string(reply.stratum) +
                      " (RFC 5905 reserves 16..255)");
  }
  if (reply.leap == LeapIndicator::kUnsynchronized) {
    throw PacketError("server is unsynchronized (leap indicator 3)");
  }
  if (reply.receive_time.is_zero() || reply.transmit_time.is_zero()) {
    throw PacketError(
        "zero receive/transmit timestamp (server has no time to offer)");
  }
  if (reply.origin_time.is_zero()) {
    throw PacketError("zero origin timestamp (reply echoes no request)");
  }
  if (reply.origin_time != expected_origin) {
    throw PacketError(
        "origin timestamp does not echo our request transmit time "
        "(off-path spoofing or a crossed reply)");
  }
}

std::uint32_t reference_id_from_string(const std::string& label) {
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    id <<= 8;
    if (i < label.size()) id |= static_cast<std::uint8_t>(label[i]);
  }
  return id;
}

NtpPacket make_client_request(NtpTimestamp transmit, std::uint8_t poll_log2) {
  NtpPacket p;
  p.mode = NtpMode::kClient;
  p.version = 4;
  p.stratum = 0;  // unspecified in client requests
  p.poll = static_cast<std::int8_t>(poll_log2);
  p.precision = -20;  // ~1 µs client precision
  p.transmit_time = transmit;
  return p;
}

NtpPacket make_server_reply(const NtpPacket& request, NtpTimestamp receive,
                            NtpTimestamp transmit, std::uint8_t stratum,
                            std::uint32_t reference_id) {
  TSC_EXPECTS(request.mode == NtpMode::kClient);
  NtpPacket p;
  p.mode = NtpMode::kServer;
  p.version = request.version;
  p.stratum = stratum;
  p.poll = request.poll;
  p.precision = -20;
  p.reference_id = reference_id;
  p.reference_time = receive;  // last sync ~ now for a stratum-1 server
  p.origin_time = request.transmit_time;
  p.receive_time = receive;
  p.transmit_time = transmit;
  return p;
}

}  // namespace tscclock::wire
