#include "wire/ntp_timestamp.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::wire {

namespace {
constexpr double kTwo32 = 4294967296.0;
}

NtpTimestamp to_ntp_timestamp(Seconds since_era) {
  TSC_EXPECTS(std::isfinite(since_era));
  // Wrap into one era, matching 32-bit wire arithmetic.
  double wrapped = std::fmod(since_era, kTwo32);
  if (wrapped < 0) wrapped += kTwo32;
  const double whole = std::floor(wrapped);
  double frac = (wrapped - whole) * kTwo32;
  auto sec_bits = static_cast<std::uint64_t>(whole);
  auto frac_bits = static_cast<std::uint64_t>(std::llround(frac));
  if (frac_bits >= (1ULL << 32)) {  // rounding carried into the seconds field
    frac_bits = 0;
    ++sec_bits;
  }
  return {static_cast<std::uint32_t>(sec_bits),
          static_cast<std::uint32_t>(frac_bits)};
}

Seconds from_ntp_timestamp(NtpTimestamp ts) {
  return static_cast<double>(ts.seconds) +
         static_cast<double>(ts.fraction) / kTwo32;
}

NtpTimestamp to_ntp_timestamp_at_epoch(Seconds since_epoch,
                                       std::uint32_t epoch_era_seconds) {
  TSC_EXPECTS(std::isfinite(since_epoch));
  TSC_EXPECTS(since_epoch >= 0.0);
  const double whole = std::floor(since_epoch);
  double frac = (since_epoch - whole) * kTwo32;
  auto sec = static_cast<std::uint64_t>(whole) + epoch_era_seconds;
  auto frac_bits = static_cast<std::uint64_t>(std::llround(frac));
  if (frac_bits >= (1ULL << 32)) {
    frac_bits = 0;
    ++sec;
  }
  TSC_EXPECTS(sec <= 0xffffffffULL);  // stay within era 0
  return {static_cast<std::uint32_t>(sec),
          static_cast<std::uint32_t>(frac_bits)};
}

Seconds from_ntp_timestamp_at_epoch(NtpTimestamp ts,
                                    std::uint32_t epoch_era_seconds) {
  const auto delta =
      static_cast<std::int64_t>(ts.seconds) -
      static_cast<std::int64_t>(epoch_era_seconds);
  return static_cast<double>(delta) +
         static_cast<double>(ts.fraction) / kTwo32;
}

Seconds quantize_timestamp_at_epoch(Seconds since_epoch,
                                    std::uint32_t epoch_era_seconds) {
  TSC_EXPECTS(std::isfinite(since_epoch));
  TSC_EXPECTS(since_epoch >= 0.0);
  // Mirror to_ntp_timestamp_at_epoch's split exactly: integer seconds via
  // floor, fraction rounded to the nearest 2^-32 LSB, carry into the seconds
  // field when the fraction rounds up to 1.0.
  double whole = std::floor(since_epoch);
  auto frac_bits =
      static_cast<std::uint64_t>(std::llround((since_epoch - whole) * kTwo32));
  if (frac_bits >= (1ULL << 32)) {
    frac_bits = 0;
    whole += 1.0;
  }
  // Same era-0 range contract as the real conversion.
  TSC_EXPECTS(static_cast<std::uint64_t>(whole) + epoch_era_seconds <=
              0xffffffffULL);
  // from_ntp_timestamp_at_epoch computes double(sec − epoch) + fraction/2^32;
  // sec − epoch is exactly the integer `whole` (+ carry, folded in above) and
  // both operands are identical, so this sum is bit-identical to the round
  // trip's.
  return whole + static_cast<double>(frac_bits) / kTwo32;
}

NtpShort to_ntp_short(Seconds value) {
  TSC_EXPECTS(value >= 0.0);
  TSC_EXPECTS(value < 65536.0);
  const double scaled = value * 65536.0;
  auto bits = static_cast<std::uint64_t>(std::llround(scaled));
  if (bits > 0xffffffffULL) bits = 0xffffffffULL;
  return NtpShort::from_packed(static_cast<std::uint32_t>(bits));
}

Seconds from_ntp_short(NtpShort value) {
  return static_cast<double>(value.packed()) / 65536.0;
}

}  // namespace tscclock::wire
