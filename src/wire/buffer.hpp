// Bounds-checked big-endian (network byte order) byte buffer reader/writer,
// used to serialize NTP packets. Out-of-range access throws BufferError
// rather than invoking undefined behaviour (Core Guidelines bounds profile).
//
// All accessors are inline: the simulation round-trips every exchange's
// server stamps through the codec on the hot generation path, so the
// per-field calls must compile down to byte moves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tscclock::wire {

class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { data_.push_back(v); }

  void u16(std::uint16_t v) {
    data_.push_back(static_cast<std::uint8_t>(v >> 8));
    data_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    data_.insert(data_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Fixed-capacity big-endian serializer writing into caller storage; the
/// allocation-free twin of ByteWriter for hot paths with a known packet
/// size (overflow throws BufferError, matching the bounds profile).
class SpanWriter {
 public:
  explicit SpanWriter(std::span<std::uint8_t> out) : out_(out) {}

  void u8(std::uint8_t v) {
    require(1);
    out_[pos_++] = v;
  }

  void u16(std::uint16_t v) {
    require(2);
    out_[pos_] = static_cast<std::uint8_t>(v >> 8);
    out_[pos_ + 1] = static_cast<std::uint8_t>(v);
    pos_ += 2;
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  [[nodiscard]] std::size_t size() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (out_.size() - pos_ < n)
      throw BufferError("SpanWriter: write past end of buffer");
  }
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
};

/// Sequential big-endian deserializer over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    require(2);
    const auto hi = static_cast<std::uint16_t>(data_[pos_]);
    const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return static_cast<std::uint16_t>(hi << 8 | lo);
  }

  std::uint32_t u32() {
    const auto hi = static_cast<std::uint32_t>(u16());
    const auto lo = static_cast<std::uint32_t>(u16());
    return hi << 16 | lo;
  }

  std::uint64_t u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    const auto lo = static_cast<std::uint64_t>(u32());
    return hi << 32 | lo;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n)
      throw BufferError("ByteReader: read past end of buffer");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tscclock::wire
