// Bounds-checked big-endian (network byte order) byte buffer reader/writer,
// used to serialize NTP packets. Out-of-range access throws BufferError
// rather than invoking undefined behaviour (Core Guidelines bounds profile).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tscclock::wire {

class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Sequential big-endian deserializer over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tscclock::wire
