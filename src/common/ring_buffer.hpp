// Bounded FIFO with random access, used for the per-packet history windows
// kept by the estimators. Backed by std::deque for simplicity; the windows
// are small (≤ ~40k records for a one-week top-level window) and access
// patterns are push_back / pop_front / linear scan.
#pragma once

#include <cstddef>
#include <deque>

#include "common/contracts.hpp"

namespace tscclock {

template <typename T>
class RingBuffer {
 public:
  /// capacity == 0 means unbounded.
  explicit RingBuffer(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Append; evicts the oldest element when at capacity.
  void push_back(T value) {
    if (capacity_ != 0 && data_.size() == capacity_) data_.pop_front();
    data_.push_back(std::move(value));
  }

  void pop_front() {
    TSC_EXPECTS(!data_.empty());
    data_.pop_front();
  }

  /// Drop the oldest `n` elements (n may exceed size; then clears).
  void drop_front(std::size_t n) {
    if (n >= data_.size()) {
      data_.clear();
    } else {
      data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }

  [[nodiscard]] const T& front() const {
    TSC_EXPECTS(!data_.empty());
    return data_.front();
  }
  [[nodiscard]] const T& back() const {
    TSC_EXPECTS(!data_.empty());
    return data_.back();
  }
  [[nodiscard]] T& back() {
    TSC_EXPECTS(!data_.empty());
    return data_.back();
  }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    TSC_EXPECTS(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    TSC_EXPECTS(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() { data_.clear(); }

  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> data_;
};

}  // namespace tscclock
