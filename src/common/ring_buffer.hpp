// Bounded FIFO with random access, used for the per-packet history windows
// kept by the estimators. Backed by a flat circular array (power-of-two
// physical capacity, index masking): the windows slide continuously for the
// whole run, and a node- or block-based container would pay an allocation
// every few slots as the window advances. Elements must be
// default-constructible (all window records are plain aggregates).
#pragma once

#include <cstddef>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace tscclock {

template <typename T>
class RingBuffer {
 public:
  template <typename BufferT, typename ValueT>
  class Iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = ValueT;
    using difference_type = std::ptrdiff_t;
    using pointer = ValueT*;
    using reference = ValueT&;

    Iterator() = default;
    Iterator(BufferT* buffer, std::size_t index)
        : buffer_(buffer), index_(index) {}

    reference operator*() const { return buffer_->slot(index_); }
    pointer operator->() const { return &buffer_->slot(index_); }
    reference operator[](difference_type n) const {
      return buffer_->slot(index_ + static_cast<std::size_t>(n));
    }

    Iterator& operator++() { ++index_; return *this; }
    Iterator operator++(int) { Iterator t = *this; ++index_; return t; }
    Iterator& operator--() { --index_; return *this; }
    Iterator operator--(int) { Iterator t = *this; --index_; return t; }
    Iterator& operator+=(difference_type n) {
      index_ = static_cast<std::size_t>(static_cast<difference_type>(index_) + n);
      return *this;
    }
    Iterator& operator-=(difference_type n) { return *this += -n; }
    friend Iterator operator+(Iterator it, difference_type n) { return it += n; }
    friend Iterator operator+(difference_type n, Iterator it) { return it += n; }
    friend Iterator operator-(Iterator it, difference_type n) { return it -= n; }
    friend difference_type operator-(const Iterator& a, const Iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.index_ != b.index_;
    }
    friend bool operator<(const Iterator& a, const Iterator& b) {
      return a.index_ < b.index_;
    }
    friend bool operator>(const Iterator& a, const Iterator& b) { return b < a; }
    friend bool operator<=(const Iterator& a, const Iterator& b) {
      return !(b < a);
    }
    friend bool operator>=(const Iterator& a, const Iterator& b) {
      return !(a < b);
    }

   private:
    BufferT* buffer_ = nullptr;
    std::size_t index_ = 0;  ///< logical index (0 == front)
  };

  using iterator = Iterator<RingBuffer, T>;
  using const_iterator = Iterator<const RingBuffer, const T>;

  /// capacity == 0 means unbounded.
  explicit RingBuffer(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Append; evicts the oldest element when at capacity.
  void push_back(T value) {
    if (size_ == slots_.size()) {
      if (capacity_ != 0 && size_ == capacity_) {
        // Physically full and logically at capacity: the new tail slot IS
        // the old head slot (possible only when the physical size equals
        // the bound), so overwrite in place and rotate.
        slots_[head_] = std::move(value);
        head_ = wrap(head_ + 1);
        return;
      }
      grow();
    }
    slots_[wrap(head_ + size_)] = std::move(value);
    if (capacity_ != 0 && size_ == capacity_) {
      head_ = wrap(head_ + 1);  // evict the oldest; size stays at capacity
    } else {
      ++size_;
    }
  }

  void pop_front() {
    TSC_EXPECTS(size_ > 0);
    release(head_);
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Drop the oldest `n` elements (n may exceed size; then clears).
  void drop_front(std::size_t n) {
    if (n >= size_) {
      clear();
      return;
    }
    for (std::size_t k = 0; k < n; ++k) release(wrap(head_ + k));
    head_ = wrap(head_ + n);
    size_ -= n;
  }

  [[nodiscard]] const T& front() const {
    TSC_EXPECTS(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& back() const {
    TSC_EXPECTS(size_ > 0);
    return slots_[wrap(head_ + size_ - 1)];
  }
  [[nodiscard]] T& back() {
    TSC_EXPECTS(size_ > 0);
    return slots_[wrap(head_ + size_ - 1)];
  }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    TSC_EXPECTS(i < size_);
    return slots_[wrap(head_ + i)];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    TSC_EXPECTS(i < size_);
    return slots_[wrap(head_ + i)];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() {
    for (std::size_t k = 0; k < size_; ++k) release(wrap(head_ + k));
    head_ = 0;
    size_ = 0;
  }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }
  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }

 private:
  friend iterator;
  friend const_iterator;

  /// Unchecked access by logical index (iterators carry their own bounds).
  T& slot(std::size_t i) { return slots_[wrap(head_ + i)]; }
  const T& slot(std::size_t i) const { return slots_[wrap(head_ + i)]; }

  /// Reset a vacated physical slot so it releases any held resources; a
  /// no-op for the trivially-destructible record types the estimators store.
  void release(std::size_t physical) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      slots_[physical] = T{};
  }

  [[nodiscard]] std::size_t wrap(std::size_t physical) const {
    return physical & (slots_.size() - 1);
  }

  void grow() {
    std::size_t next = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> grown(next);
    for (std::size_t k = 0; k < size_; ++k)
      grown[k] = std::move(slots_[wrap(head_ + k)]);
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::size_t capacity_;  ///< logical bound; 0 = unbounded
  std::vector<T> slots_;  ///< physical storage, always a power of two
  std::size_t head_ = 0;  ///< physical index of the logical front
  std::size_t size_ = 0;
};

}  // namespace tscclock
