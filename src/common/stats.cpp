#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock {

double percentile(std::span<const double> values, double q) {
  TSC_EXPECTS(!values.empty());
  TSC_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

PercentileSummary percentile_summary(std::span<const double> values) {
  TSC_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  PercentileSummary s;
  s.p01 = at(0.01);
  s.p25 = at(0.25);
  s.p50 = at(0.50);
  s.p75 = at(0.75);
  s.p99 = at(0.99);
  return s;
}

SeriesSummary summarize(std::span<const double> values) {
  TSC_EXPECTS(!values.empty());
  SeriesSummary s;
  s.count = values.size();
  s.percentiles = percentile_summary(values);
  RunningMoments moments;
  double mn = values.front();
  double mx = values.front();
  for (double v : values) {
    moments.update(v);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  s.min = mn;
  s.max = mx;
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  TSC_EXPECTS(hi > lo);
  TSC_EXPECTS(bins > 0);
}

void Histogram::add(double value) {
  // NaN has no bin (floor(NaN) is NaN, and casting it to an integer is
  // undefined behaviour) — count it separately so callers can surface
  // corrupt inputs instead of crediting them to an arbitrary bin.
  if (std::isnan(value)) {
    ++nan_;
    return;
  }
  // Clamp in floating point BEFORE the integer cast: casting a double
  // outside the target's range (±inf, or a huge finite value) is undefined
  // behaviour too. ±inf and out-of-range values land in the terminal bins,
  // conserving mass as documented.
  const double pos = std::floor((value - lo_) / width_);
  const double last = static_cast<double>(counts_.size() - 1);
  const auto bin = static_cast<std::size_t>(std::clamp(pos, 0.0, last));
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  TSC_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  TSC_EXPECTS(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(bin)) / static_cast<double>(total_);
}

void RunningMoments::update(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  TSC_EXPECTS(q > 0.0 && q < 1.0);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  desired_increment_[0] = 0.0;
  desired_increment_[1] = q / 2.0;
  desired_increment_[2] = q;
  desired_increment_[3] = (1.0 + q) / 2.0;
  desired_increment_[4] = 1.0;
}

void P2Quantile::add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Locate the marker cell and clamp the extremes.
  std::size_t cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += desired_increment_[i];
  ++count_;

  // Nudge interior markers toward their desired positions; parabolic (P²)
  // height update when it stays monotone, linear otherwise.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          sign / span *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else if (sign > 0.0) {
        heights_[i] += (heights_[i + 1] - heights_[i]) / above;
      } else {
        heights_[i] -= (heights_[i] - heights_[i - 1]) / below;
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  TSC_EXPECTS(count_ > 0);
  if (count_ <= 5) {
    // Exact interpolated percentile of the few stored samples (they are only
    // sorted once the fifth arrives).
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    return percentile(std::span<const double>(sorted, count_), q_);
  }
  return heights_[2];
}

StreamingSeriesSummary::StreamingSeriesSummary()
    : p01_(0.01), p25_(0.25), p50_(0.50), p75_(0.75), p99_(0.99) {}

void StreamingSeriesSummary::add(double value) {
  if (moments_.count() == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  moments_.update(value);
  p01_.add(value);
  p25_.add(value);
  p50_.add(value);
  p75_.add(value);
  p99_.add(value);
}

SeriesSummary StreamingSeriesSummary::summary() const {
  SeriesSummary s;
  if (moments_.count() == 0) return s;
  s.count = moments_.count();
  s.min = min_;
  s.max = max_;
  s.mean = moments_.mean();
  s.stddev = moments_.stddev();
  s.percentiles.p01 = p01_.value();
  s.percentiles.p25 = p25_.value();
  s.percentiles.p50 = p50_.value();
  s.percentiles.p75 = p75_.value();
  s.percentiles.p99 = p99_.value();
  return s;
}

}  // namespace tscclock
