#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock {

double percentile(std::span<const double> values, double q) {
  TSC_EXPECTS(!values.empty());
  TSC_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

PercentileSummary percentile_summary(std::span<const double> values) {
  TSC_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  PercentileSummary s;
  s.p01 = at(0.01);
  s.p25 = at(0.25);
  s.p50 = at(0.50);
  s.p75 = at(0.75);
  s.p99 = at(0.99);
  return s;
}

SeriesSummary summarize(std::span<const double> values) {
  TSC_EXPECTS(!values.empty());
  SeriesSummary s;
  s.count = values.size();
  s.percentiles = percentile_summary(values);
  RunningMoments moments;
  double mn = values.front();
  double mx = values.front();
  for (double v : values) {
    moments.update(v);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  s.min = mn;
  s.max = mx;
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  TSC_EXPECTS(hi > lo);
  TSC_EXPECTS(bins > 0);
}

void Histogram::add(double value) {
  auto bin = static_cast<long>(std::floor((value - lo_) / width_));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  TSC_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  TSC_EXPECTS(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(bin)) / static_cast<double>(total_);
}

void RunningMoments::update(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

}  // namespace tscclock
