#include "common/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace tscclock {

std::string format_double_exact(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // %a hexfloat: the shortest exact representation strtod round-trips to
  // the identical bits on every IEEE-754 platform. (%.17g would round-trip
  // too, but hexfloat cannot even be mis-rounded by a sloppy libc.)
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double parse_double_exact(std::string_view text) {
  if (text.empty()) throw std::runtime_error("empty number field");
  const std::string copy(text);  // strtod needs NUL termination
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    throw std::runtime_error("malformed number '" + copy + "'");
  }
  return value;
}

std::uint64_t parse_u64_exact(std::string_view text) {
  if (text.empty()) throw std::runtime_error("empty integer field");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("malformed integer '" + std::string(text) +
                               "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw std::runtime_error("integer overflow in '" + std::string(text) +
                               "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::string escape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) {
      throw std::runtime_error("dangling backslash in field '" +
                               std::string(text) + "'");
    }
    switch (text[++i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        throw std::runtime_error("unknown escape '\\" +
                                 std::string(1, text[i]) + "' in field '" +
                                 std::string(text) + "'");
    }
  }
  return out;
}

std::vector<std::string> split_fields(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      return fields;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace tscclock
