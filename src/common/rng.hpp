// Deterministic random number generation for the simulation substrate.
//
// Every stochastic component of the testbed draws from its own Rng instance
// seeded from a scenario master seed, so traces are reproducible run-to-run
// and component-to-component (adding noise draws to the path model does not
// perturb the server model's stream).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tscclock {

/// Seeded pseudo-random source with the distribution draws the testbed needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child generator; the label decorrelates children
  /// created from the same parent.
  [[nodiscard]] Rng fork(std::uint64_t label);

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Pareto (Lomax form): density ~ (1 + x/scale)^-(shape+1), x >= 0.
  /// Heavy-tailed queueing excursions; mean = scale/(shape-1) for shape > 1.
  double pareto(double shape, double scale);

  /// Log-normal parameterized by the *median* and the shape sigma of log(x).
  double lognormal_median(double median, double sigma);

  /// Zero-mean Gaussian with standard deviation `stddev`.
  double normal(double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Index in [0, weights.size()) chosen proportionally to `weights`.
  std::size_t categorical(const std::vector<double>& weights);

  /// Direct access for composing with <random> machinery in tests.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tscclock
