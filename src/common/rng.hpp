// Deterministic random number generation for the simulation substrate.
//
// Every stochastic component of the testbed draws from its own Rng instance
// seeded from a scenario master seed, so traces are reproducible run-to-run
// and component-to-component (adding noise draws to the path model does not
// perturb the server model's stream).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "common/contracts.hpp"

namespace tscclock {

/// Seeded pseudo-random source with the distribution draws the testbed needs.
/// The per-draw methods are inline: the simulation substrate makes ~15 draws
/// per generated exchange and the distributions themselves are header-only
/// std machinery, so an out-of-line wrapper would only add call overhead.
/// Each draw constructs its distribution fresh so no inter-draw state (e.g.
/// normal_distribution's cached second variate) can leak between components.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child generator; the label decorrelates children
  /// created from the same parent.
  [[nodiscard]] Rng fork(std::uint64_t label);

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    TSC_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    TSC_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto (Lomax form): density ~ (1 + x/scale)^-(shape+1), x >= 0.
  /// Heavy-tailed queueing excursions; mean = scale/(shape-1) for shape > 1.
  double pareto(double shape, double scale) {
    TSC_EXPECTS(shape > 0.0);
    TSC_EXPECTS(scale > 0.0);
    const double u = std::uniform_real_distribution<double>(
        std::numeric_limits<double>::min(), 1.0)(engine_);
    return scale * (std::pow(u, -1.0 / shape) - 1.0);
  }

  /// Log-normal parameterized by the *median* and the shape sigma of log(x).
  double lognormal_median(double median, double sigma) {
    TSC_EXPECTS(median > 0.0);
    TSC_EXPECTS(sigma >= 0.0);
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma)(engine_);
  }

  /// Zero-mean Gaussian with standard deviation `stddev`.
  double normal(double stddev) {
    TSC_EXPECTS(stddev >= 0.0);
    if (stddev == 0.0) return 0.0;
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    TSC_EXPECTS(p >= 0.0 && p <= 1.0);
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index in [0, weights.size()) chosen proportionally to `weights`.
  std::size_t categorical(const std::vector<double>& weights);

  /// Direct access for composing with <random> machinery in tests.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tscclock
