#include "common/csv.hpp"

#include <stdexcept>

#include "common/contracts.hpp"

namespace tscclock {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  TSC_EXPECTS(!columns.empty());
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  // Mid-run failures (disk full, quota) must surface as exceptions, not as
  // a silently truncated file reported as success.
  out_.exceptions(std::ios::badbit | std::ios::failbit);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();  // throws via the enabled exceptions
}

void CsvWriter::write_row(std::span<const double> values) {
  TSC_EXPECTS(values.size() == columns_);
  out_.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  TSC_EXPECTS(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace tscclock
