#include "common/csv.hpp"

#include <stdexcept>

#include "common/contracts.hpp"

namespace tscclock {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_split_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (quoted) {
    throw std::runtime_error("csv_split_row: unterminated quote in '" +
                             std::string(line) + "'");
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  TSC_EXPECTS(!columns.empty());
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  // Mid-run failures (disk full, quota) must surface as exceptions, not as
  // a silently truncated file reported as success.
  out_.exceptions(std::ios::badbit | std::ios::failbit);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns, Append)
    // in|out|ate (not app): fails when the file is missing — an append
    // resume against a vanished dump is an error, not a silent restart —
    // and tellp reports real absolute offsets.
    : out_(path, std::ios::in | std::ios::out | std::ios::ate),
      columns_(columns.size()) {
  TSC_EXPECTS(!columns.empty());
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path +
                             " for append");
  }
  out_.exceptions(std::ios::badbit | std::ios::failbit);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();  // throws via the enabled exceptions
}

std::uint64_t CsvWriter::byte_offset() {
  return static_cast<std::uint64_t>(out_.tellp());
}

void CsvWriter::write_row(std::span<const double> values) {
  TSC_EXPECTS(values.size() == columns_);
  out_.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  TSC_EXPECTS(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace tscclock
