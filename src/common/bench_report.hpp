// Versioned machine-readable throughput report (BENCH_throughput.json).
//
// bench/throughput measures exchanges/sec through the full
// Testbed → ClockSession/MultiEstimatorSession → estimator → sink pipeline
// and emits one BenchReport as JSON; the copy committed at the repo root
// tracks the hot-path trajectory across PRs. The schema is versioned so CI
// can detect a stale committed report: whenever a section's meaning changes
// (not merely its measured numbers), kBenchReportSchemaVersion is bumped and
// the committed file must be regenerated in the same change.
//
// The parser below reads exactly this schema back (CI's validation step and
// the unit tests round-trip through it) — it is not a general JSON library,
// but it accepts any field order and ignores unknown keys so the format can
// grow compatibly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tscclock {

/// Bump when the meaning/shape of the report changes (see file comment).
inline constexpr int kBenchReportSchemaVersion = 1;

/// One measured pipeline configuration.
struct BenchSection {
  std::string name;       ///< stable identifier, e.g. "single_robust_exact"
  std::string drive;      ///< "scalar" | "batched" | "generate"
  std::string reduction;  ///< "exact" | "streaming" | "none"
  std::uint64_t exchanges = 0;  ///< exchanges driven through the pipeline
  double seconds = 0;           ///< wall-clock time of the timed region
  double exchanges_per_sec = 0;
  /// Name of the baseline section this result compares against ("" = none).
  /// Baseline and result rows historically paired positionally, which broke
  /// the moment the campaign split one configuration into scalar/batched
  /// variants; this key makes the pairing stable. Additive: serialized only
  /// when non-empty, absent in old reports (the parser defaults it to "").
  std::string pairs_with;
};

/// Per-stage wall-clock decomposition of the single-lane batched pipeline
/// (where the time goes): `generate` is the bare SoA generator drain,
/// `estimate` adds the robust estimator with no reduction attached, `reduce`
/// is the remainder of the full exact-reduction pipeline. Derived from the
/// measured sections, so the three stages sum to the full pipeline's wall
/// time. Additive optional object in the JSON ("stage_breakdown").
struct StageBreakdown {
  bool present = false;  ///< parsed reports without the object keep false
  double generate_seconds = 0;
  double estimate_seconds = 0;
  double reduce_seconds = 0;
};

struct BenchReport {
  int schema_version = kBenchReportSchemaVersion;
  std::string tool;  ///< emitting binary, e.g. "bench_throughput"
  std::string mode;  ///< "full" | "quick"
  double simulated_days = 0;  ///< trace length behind each section
  /// Reference numbers pinned from the commit named in baseline_commit —
  /// the pre-campaign scalar pipeline — so the committed report carries the
  /// before/after comparison, not just the latest measurement.
  std::string baseline_commit;
  std::vector<BenchSection> baseline;
  std::vector<BenchSection> results;  ///< measured by this run
  StageBreakdown stage_breakdown;     ///< where the time goes (optional)
};

/// Serialize (stable field order, 2-space indent, trailing newline).
std::string to_json(const BenchReport& report);

/// Parse a report previously produced by to_json (field order free, unknown
/// keys ignored). Throws std::runtime_error with a precise message on
/// malformed JSON or a missing/mistyped required field. Does NOT reject a
/// schema_version mismatch — staleness is the caller's policy (see
/// bench/throughput --check).
BenchReport parse_bench_report(std::string_view json);

}  // namespace tscclock
