#include "common/rng.hpp"

#include "common/contracts.hpp"

namespace tscclock {

Rng Rng::fork(std::uint64_t label) {
  // splitmix-style decorrelation of the child seed from the parent stream.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL * (label + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  TSC_EXPECTS(!weights.empty());
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace tscclock
