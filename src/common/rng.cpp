#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace tscclock {

Rng Rng::fork(std::uint64_t label) {
  // splitmix-style decorrelation of the child seed from the parent stream.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL * (label + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  TSC_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  TSC_EXPECTS(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::pareto(double shape, double scale) {
  TSC_EXPECTS(shape > 0.0);
  TSC_EXPECTS(scale > 0.0);
  const double u = std::uniform_real_distribution<double>(
      std::numeric_limits<double>::min(), 1.0)(engine_);
  return scale * (std::pow(u, -1.0 / shape) - 1.0);
}

double Rng::lognormal_median(double median, double sigma) {
  TSC_EXPECTS(median > 0.0);
  TSC_EXPECTS(sigma >= 0.0);
  return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
}

double Rng::normal(double stddev) {
  TSC_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return 0.0;
  return std::normal_distribution<double>(0.0, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  TSC_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  TSC_EXPECTS(!weights.empty());
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace tscclock
