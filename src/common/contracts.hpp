// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.5/I.6: state and check preconditions). Violations throw so that tests
// can assert on them; they are never compiled out because the library is a
// measurement tool where silent contract breakage corrupts results.
#pragma once

#include <stdexcept>
#include <string>

namespace tscclock {

/// Thrown when a precondition stated by TSC_EXPECTS is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace tscclock

#define TSC_EXPECTS(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::tscclock::detail::contract_failure("precondition", #cond, __FILE__,   \
                                           __LINE__);                         \
  } while (false)

#define TSC_ENSURES(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::tscclock::detail::contract_failure("postcondition", #cond, __FILE__,  \
                                           __LINE__);                         \
  } while (false)
