// Minimal CSV export for trace inspection (every bench can dump its series
// for external plotting). Writes are unconditional overwrites.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace tscclock {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  void write_row(std::span<const double> values);
  void write_row(const std::vector<std::string>& cells);

  /// Flush and close, surfacing a failed final flush (disk full at the end
  /// of a long dump) as an exception — the ofstream destructor would
  /// swallow it. Idempotent; the writer is unusable afterwards.
  void close();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace tscclock
