// Minimal CSV export for trace inspection (every bench can dump its series
// for external plotting). Writes are unconditional overwrites.
//
// String cells are RFC-4180-quoted when they need it (comma, quote or
// newline — e.g. multi-override estimator labels like
// "robust(use_local_rate=0,enable_aging=0)"), so labels round-trip through
// the dumps unambiguously; csv_split_row is the matching reader.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tscclock {

/// RFC-4180 field quoting: returns the field verbatim unless it contains a
/// comma, double quote, CR or LF, in which case it is wrapped in quotes with
/// embedded quotes doubled.
std::string csv_escape(std::string_view field);

/// Split one CSV row into its fields, undoing csv_escape (quoted fields,
/// doubled quotes). Throws std::runtime_error on an unterminated quote.
std::vector<std::string> csv_split_row(std::string_view line);

class CsvWriter {
 public:
  /// Tag selecting the resume mode of the appending constructor.
  struct Append {};

  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Opens an *existing* `path` positioned at its end and appends rows
  /// without re-emitting the header (the sweep's checkpoint-resume path:
  /// the committed prefix of a trace dump is kept byte-for-byte and only
  /// the tail is regenerated). Throws if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns,
            Append);

  void write_row(std::span<const double> values);
  void write_row(const std::vector<std::string>& cells);

  /// Flush and close, surfacing a failed final flush (disk full at the end
  /// of a long dump) as an exception — the ofstream destructor would
  /// swallow it. Idempotent; the writer is unusable afterwards.
  void close();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Byte offset after everything written so far (absolute file position —
  /// in append mode the pre-existing prefix counts). The sweep records this
  /// watermark in its checkpoint so a resumed run knows where the committed
  /// trace prefix ends.
  [[nodiscard]] std::uint64_t byte_offset();

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace tscclock
