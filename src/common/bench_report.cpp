#include "common/bench_report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

namespace tscclock {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  // Shortest form that round-trips a throughput figure legibly; the report
  // is a measurement record, not a bit-exact artifact.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_section(std::string& out, const BenchSection& s,
                    const char* indent, bool last) {
  out += indent;
  out += "{\"name\": \"" + json_escape(s.name) + "\", ";
  out += "\"drive\": \"" + json_escape(s.drive) + "\", ";
  out += "\"reduction\": \"" + json_escape(s.reduction) + "\", ";
  out += "\"exchanges\": " + std::to_string(s.exchanges) + ", ";
  out += "\"seconds\": " + fmt_double(s.seconds) + ", ";
  out += "\"exchanges_per_sec\": " + fmt_double(s.exchanges_per_sec);
  if (!s.pairs_with.empty())
    out += ", \"pairs_with\": \"" + json_escape(s.pairs_with) + "\"";
  out += "}";
  if (!last) out += ",";
  out += "\n";
}

// ---- minimal JSON reader (objects/arrays/strings/numbers/bool/null) ------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  // Indirect: JsonValue is incomplete at member declaration time.
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bench report JSON: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    return number();
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v))
      fail("malformed number '" + token + "'");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return out;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const auto code = static_cast<unsigned>(
                std::strtoul(hex.c_str(), nullptr, 16));
            // The writer only emits \u for C0 controls; decode those and
            // reject anything needing real UTF-16 handling.
            if (code > 0x7f) fail("unsupported \\u escape \\u" + hex);
            out += static_cast<char>(code);
            break;
          }
          default:
            fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*v.object)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---- schema mapping ------------------------------------------------------

[[noreturn]] void schema_fail(const std::string& what) {
  throw std::runtime_error("bench report schema: " + what);
}

const JsonValue& require(const JsonObject& obj, const std::string& key,
                         JsonValue::Kind kind, const char* type_name) {
  const auto it = obj.find(key);
  if (it == obj.end()) schema_fail("missing field '" + key + "'");
  if (it->second.kind != kind)
    schema_fail("field '" + key + "' must be " + type_name);
  return it->second;
}

double require_number(const JsonObject& obj, const std::string& key) {
  return require(obj, key, JsonValue::Kind::kNumber, "a number").number;
}

std::string require_string(const JsonObject& obj, const std::string& key) {
  return require(obj, key, JsonValue::Kind::kString, "a string").string;
}

BenchSection section_from(const JsonValue& v, const std::string& where) {
  if (v.kind != JsonValue::Kind::kObject)
    schema_fail("entries of '" + where + "' must be objects");
  const JsonObject& obj = *v.object;
  BenchSection s;
  s.name = require_string(obj, "name");
  s.drive = require_string(obj, "drive");
  s.reduction = require_string(obj, "reduction");
  const double exchanges = require_number(obj, "exchanges");
  if (exchanges < 0 || exchanges != std::floor(exchanges))
    schema_fail("'exchanges' must be a non-negative integer in '" + where +
                "' entry '" + s.name + "'");
  s.exchanges = static_cast<std::uint64_t>(exchanges);
  s.seconds = require_number(obj, "seconds");
  s.exchanges_per_sec = require_number(obj, "exchanges_per_sec");
  // Optional (absent in pre-campaign reports); when present it must be a
  // string so a malformed report cannot silently drop its pairing.
  const auto pairs = obj.find("pairs_with");
  if (pairs != obj.end()) {
    if (pairs->second.kind != JsonValue::Kind::kString)
      schema_fail("field 'pairs_with' must be a string in '" + where +
                  "' entry '" + s.name + "'");
    s.pairs_with = pairs->second.string;
  }
  return s;
}

std::vector<BenchSection> sections_from(const JsonObject& obj,
                                        const std::string& key) {
  const JsonValue& v = require(obj, key, JsonValue::Kind::kArray, "an array");
  std::vector<BenchSection> out;
  out.reserve(v.array->size());
  for (const auto& entry : *v.array) out.push_back(section_from(entry, key));
  return out;
}

}  // namespace

std::string to_json(const BenchReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(report.schema_version) +
         ",\n";
  out += "  \"tool\": \"" + json_escape(report.tool) + "\",\n";
  out += "  \"mode\": \"" + json_escape(report.mode) + "\",\n";
  out += "  \"simulated_days\": " + fmt_double(report.simulated_days) + ",\n";
  out += "  \"baseline_commit\": \"" + json_escape(report.baseline_commit) +
         "\",\n";
  out += "  \"baseline\": [\n";
  for (std::size_t i = 0; i < report.baseline.size(); ++i)
    append_section(out, report.baseline[i], "    ",
                   i + 1 == report.baseline.size());
  out += "  ],\n";
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < report.results.size(); ++i)
    append_section(out, report.results[i], "    ",
                   i + 1 == report.results.size());
  out += "  ]";
  if (report.stage_breakdown.present) {
    const StageBreakdown& b = report.stage_breakdown;
    out += ",\n  \"stage_breakdown\": {";
    out += "\"generate_seconds\": " + fmt_double(b.generate_seconds) + ", ";
    out += "\"estimate_seconds\": " + fmt_double(b.estimate_seconds) + ", ";
    out += "\"reduce_seconds\": " + fmt_double(b.reduce_seconds) + "}";
  }
  out += "\n}\n";
  return out;
}

BenchReport parse_bench_report(std::string_view json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject)
    schema_fail("top level must be an object");
  const JsonObject& obj = *root.object;
  BenchReport report;
  const double version = require_number(obj, "schema_version");
  if (version != std::floor(version))
    schema_fail("'schema_version' must be an integer");
  report.schema_version = static_cast<int>(version);
  report.tool = require_string(obj, "tool");
  report.mode = require_string(obj, "mode");
  report.simulated_days = require_number(obj, "simulated_days");
  report.baseline_commit = require_string(obj, "baseline_commit");
  report.baseline = sections_from(obj, "baseline");
  report.results = sections_from(obj, "results");
  // Optional object (absent in pre-campaign reports); when present all three
  // stage fields are required so a partial breakdown cannot parse as valid.
  const auto breakdown = obj.find("stage_breakdown");
  if (breakdown != obj.end()) {
    if (breakdown->second.kind != JsonValue::Kind::kObject)
      schema_fail("field 'stage_breakdown' must be an object");
    const JsonObject& b = *breakdown->second.object;
    report.stage_breakdown.present = true;
    report.stage_breakdown.generate_seconds =
        require_number(b, "generate_seconds");
    report.stage_breakdown.estimate_seconds =
        require_number(b, "estimate_seconds");
    report.stage_breakdown.reduce_seconds = require_number(b, "reduce_seconds");
  }
  return report;
}

}  // namespace tscclock
