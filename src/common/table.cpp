#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/contracts.hpp"

namespace tscclock {

std::string strfmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), format, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string format_count(std::uint64_t value) {
  return strfmt("%llu", static_cast<unsigned long long>(value));
}

std::vector<std::string> percentile_row_us(const std::string& label,
                                           const PercentileSummary& summary) {
  return {label,
          strfmt("%8.1f", summary.p01 * 1e6),
          strfmt("%8.1f", summary.p25 * 1e6),
          strfmt("%8.1f", summary.p50 * 1e6),
          strfmt("%8.1f", summary.p75 * 1e6),
          strfmt("%8.1f", summary.p99 * 1e6),
          strfmt("%7.1f", summary.iqr() * 1e6)};
}

std::vector<std::string> percentile_headers(const std::string& first) {
  return {first,       "p1 [us]",  "p25 [us]", "median [us]",
          "p75 [us]",  "p99 [us]", "IQR [us]"};
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TSC_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TSC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += "  " + std::string(widths[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

void print_comparison(std::ostream& os, const std::string& quantity,
                      const std::string& paper_value,
                      const std::string& measured_value) {
  os << "  [paper-vs-measured] " << quantity << ": paper=" << paper_value
     << "  measured=" << measured_value << '\n';
}

}  // namespace tscclock
