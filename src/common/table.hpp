// Fixed-width ASCII table output for the benchmark harness. Each bench
// prints the rows/series of the corresponding paper table or figure through
// this printer so the output format is uniform across experiments.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace tscclock {

/// printf-style formatting into a std::string.
std::string strfmt(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// Canonical rendering of an event/packet counter for table cells and
/// reports. All counter columns in the sweep and bench tables go through
/// this one helper so they stay consistent (and so the unsigned-long-long
/// cast printf requires lives in exactly one place).
std::string format_count(std::uint64_t value);

/// Column-aligned table writer.
///
///   TablePrinter t({"tau [s]", "ADEV [PPM]"});
///   t.add_row({strfmt("%g", tau), strfmt("%.4f", adev)});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a percentile summary (input seconds, printed in µs), matching the
/// five curves of paper figures 9/10. Shared by the figure benches and the
/// sweep's estimator-comparison table so every surface renders percentile
/// rows identically.
std::vector<std::string> percentile_row_us(const std::string& label,
                                           const PercentileSummary& summary);

/// Standard column headers matching percentile_row_us.
std::vector<std::string> percentile_headers(const std::string& first);

/// Section banner used by every bench binary:
///   ==== Figure 9(a): sensitivity to window size ====
void print_banner(std::ostream& os, const std::string& title);

/// One-line "paper vs measured" comparison record.
void print_comparison(std::ostream& os, const std::string& quantity,
                      const std::string& paper_value,
                      const std::string& measured_value);

}  // namespace tscclock
