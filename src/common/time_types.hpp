// Core time/counter vocabulary shared by the whole library.
//
// Conventions (paper §2.1-2.2):
//   * "true time" t is in seconds (double) from an arbitrary simulation origin;
//   * the TSC register is a 64-bit unsigned counter (TscCount);
//   * the counter period p is in seconds-per-count (~1.8e-9 for ~550 MHz);
//   * rate errors are dimensionless, usually quoted in PPM (1e-6).
//
// Floating-point discipline: absolute counter values (~1e15 after months)
// must never be multiplied by the period directly — always difference two
// counters first, then convert (see CounterTimescale). Differencing keeps
// every product small enough that double has sub-nanosecond resolution.
#pragma once

#include <cstdint>
#include <string>

namespace tscclock {

/// Raw TSC register value, in CPU cycles.
using TscCount = std::uint64_t;

/// Signed difference between two TSC readings, in cycles.
using TscDelta = std::int64_t;

/// Seconds as a double. Used for true time, clock readings and durations.
using Seconds = double;

/// Convert a dimensionless rate error quoted in parts-per-million.
constexpr double ppm(double parts_per_million) { return parts_per_million * 1e-6; }

/// Express a dimensionless rate error in parts-per-million.
constexpr double to_ppm(double rate_error) { return rate_error * 1e6; }

/// Common duration literals used throughout the paper.
namespace duration {
constexpr Seconds kMicrosecond = 1e-6;
constexpr Seconds kMillisecond = 1e-3;
constexpr Seconds kSecond = 1.0;
constexpr Seconds kMinute = 60.0;
constexpr Seconds kHour = 3600.0;
constexpr Seconds kDay = 86400.0;
constexpr Seconds kWeek = 7 * kDay;
}  // namespace duration

/// Signed difference of two unsigned counters (well-defined for |a-b| < 2^63).
constexpr TscDelta counter_delta(TscCount later, TscCount earlier) {
  return static_cast<TscDelta>(later - earlier);
}

/// Convert a counter difference to seconds at period `period` [s/count].
constexpr Seconds delta_to_seconds(TscDelta delta, double period) {
  return static_cast<double>(delta) * period;
}

/// Convert a duration in seconds to counter units at period `period`.
constexpr double seconds_to_delta(Seconds interval, double period) {
  return interval / period;
}

/// An affine map from raw counter values to clock readings:
///
///     C(T) = (T - anchor_count) * period + anchor_time
///
/// This is the paper's clock C(t) = TSC(t)*p̂ + C in a form that is exact
/// under re-anchoring. `rebase(T)` moves the anchor to T without changing
/// the clock function; `set_period_preserving_reading(T, p)` implements the
/// paper's clock-continuity rule (§6.1 "Clock Offset Consistency"): the new
/// clock agrees with the old one at T exactly.
class CounterTimescale {
 public:
  CounterTimescale() = default;
  CounterTimescale(TscCount anchor_count, Seconds anchor_time, double period);

  /// Clock reading at raw counter value `count`. Defined inline: this is the
  /// single hottest function in the library (the offset algorithm reads the
  /// clock twice per window entry per packet) and must not pay a call.
  [[nodiscard]] Seconds read(TscCount count) const {
    return delta_to_seconds(counter_delta(count, anchor_count_), period_) +
           anchor_time_;
  }

  /// Duration between two raw counter values under the current period.
  /// This is the *difference clock* (paper eq. (6)): Cd(T2) - Cd(T1).
  [[nodiscard]] Seconds between(TscCount earlier, TscCount later) const {
    return delta_to_seconds(counter_delta(later, earlier), period_);
  }

  [[nodiscard]] double period() const { return period_; }
  [[nodiscard]] TscCount anchor_count() const { return anchor_count_; }
  [[nodiscard]] Seconds anchor_time() const { return anchor_time_; }

  /// Move the anchor to `count`; the clock function is unchanged.
  void rebase(TscCount count);

  /// Change the period so that the reading at `count` is preserved
  /// (the paper's continuity rule when p̂ is updated).
  void set_period_preserving_reading(TscCount count, double new_period);

  /// Shift the whole timescale by `delta` seconds (used when an offset
  /// correction is folded into the absolute clock).
  void shift(Seconds delta) { anchor_time_ += delta; }

 private:
  TscCount anchor_count_ = 0;
  Seconds anchor_time_ = 0.0;
  double period_ = 1.0;
};

/// Pretty-print a duration with an adaptive unit (ns/µs/ms/s), e.g. "30.1us".
std::string format_duration(Seconds seconds);

/// Pretty-print a dimensionless rate error, e.g. "0.031 PPM".
std::string format_rate_error(double rate_error);

}  // namespace tscclock
