#include "common/allan.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock {

std::vector<AllanPoint> allan_deviation(std::span<const double> phase,
                                        double tau0,
                                        std::span<const std::size_t> m_values) {
  TSC_EXPECTS(tau0 > 0.0);
  std::vector<AllanPoint> out;
  const std::size_t n = phase.size();
  for (std::size_t m : m_values) {
    if (m == 0 || n < 2 * m + 2) continue;
    const std::size_t terms = n - 2 * m;
    double acc = 0.0;
    for (std::size_t k = 0; k < terms; ++k) {
      const double d2 = phase[k + 2 * m] - 2.0 * phase[k + m] + phase[k];
      acc += d2 * d2;
    }
    const double tau = static_cast<double>(m) * tau0;
    const double avar = acc / (2.0 * tau * tau * static_cast<double>(terms));
    out.push_back({tau, std::sqrt(avar), terms});
  }
  return out;
}

std::vector<std::size_t> log_spaced_factors(std::size_t n,
                                            std::size_t points_per_decade) {
  TSC_EXPECTS(points_per_decade > 0);
  std::vector<std::size_t> out;
  if (n < 4) return out;
  const auto max_m = static_cast<double>(n / 3);
  const double step = 1.0 / static_cast<double>(points_per_decade);
  for (double e = 0.0; std::pow(10.0, e) <= max_m; e += step) {
    const auto m = static_cast<std::size_t>(std::llround(std::pow(10.0, e)));
    if (out.empty() || m > out.back()) out.push_back(m);
  }
  return out;
}

std::vector<double> resample_linear(std::span<const double> times,
                                    std::span<const double> values,
                                    double tau0) {
  TSC_EXPECTS(times.size() == values.size());
  TSC_EXPECTS(times.size() >= 2);
  TSC_EXPECTS(tau0 > 0.0);
  std::vector<double> out;
  const double t0 = times.front();
  const double t_end = times.back();
  std::size_t seg = 0;  // current segment [times[seg], times[seg+1]]
  for (double t = t0; t <= t_end; t += tau0) {
    while (seg + 2 < times.size() && times[seg + 1] < t) ++seg;
    const double span_t = times[seg + 1] - times[seg];
    TSC_EXPECTS(span_t > 0.0);
    const double frac = std::clamp((t - times[seg]) / span_t, 0.0, 1.0);
    out.push_back(values[seg] * (1.0 - frac) + values[seg + 1] * frac);
  }
  return out;
}

}  // namespace tscclock
