#include "common/allan.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock {

std::vector<AllanPoint> allan_deviation(std::span<const double> phase,
                                        double tau0,
                                        std::span<const std::size_t> m_values) {
  TSC_EXPECTS(tau0 > 0.0);
  std::vector<AllanPoint> out;
  const std::size_t n = phase.size();
  for (std::size_t m : m_values) {
    if (m == 0 || n < 2 * m + 2) continue;
    const std::size_t terms = n - 2 * m;
    double acc = 0.0;
    for (std::size_t k = 0; k < terms; ++k) {
      const double d2 = phase[k + 2 * m] - 2.0 * phase[k + m] + phase[k];
      acc += d2 * d2;
    }
    const double tau = static_cast<double>(m) * tau0;
    const double avar = acc / (2.0 * tau * tau * static_cast<double>(terms));
    out.push_back({tau, std::sqrt(avar), terms});
  }
  return out;
}

std::vector<std::size_t> log_spaced_factors(std::size_t n,
                                            std::size_t points_per_decade) {
  TSC_EXPECTS(points_per_decade > 0);
  std::vector<std::size_t> out;
  if (n < 4) return out;
  const auto max_m = static_cast<double>(n / 3);
  const double step = 1.0 / static_cast<double>(points_per_decade);
  for (double e = 0.0; std::pow(10.0, e) <= max_m; e += step) {
    const auto m = static_cast<std::size_t>(std::llround(std::pow(10.0, e)));
    if (out.empty() || m > out.back()) out.push_back(m);
  }
  return out;
}

StreamingGapAdev::StreamingGapAdev(double tau0,
                                   std::vector<std::size_t> factors,
                                   double gap_factor)
    : tau0_(tau0), factors_(std::move(factors)), gap_factor_(gap_factor) {
  TSC_EXPECTS(tau0 > 0.0);
  TSC_EXPECTS(gap_factor > 0.0);
  scales_.reserve(factors_.size());
  for (const std::size_t m : factors_) {
    TSC_EXPECTS(m > 0);
    ScaleAccumulator acc;
    acc.m = m;
    acc.ring.assign(2 * m, 0.0);
    scales_.push_back(std::move(acc));
  }
}

void StreamingGapAdev::ScaleAccumulator::add(double x) {
  const std::size_t window = 2 * m;
  if (points >= window) {
    // Same association as the buffered loop: (x − 2·x_m) + x_0.
    const double x0 = ring[points % window];
    const double xm = ring[(points - m) % window];
    const double d2 = x - 2.0 * xm + x0;
    sum_d2 += d2 * d2;
  }
  ring[points % window] = x;
  ++points;
}

void StreamingGapAdev::feed_grid_point(double x) {
  for (auto& scale : scales_) scale.add(x);
}

StreamingGapAdev::StretchResult StreamingGapAdev::current_result() const {
  StretchResult result;
  result.samples = stretch_samples_;
  result.scales.reserve(scales_.size());
  for (const auto& scale : scales_)
    result.scales.emplace_back(scale.points, scale.sum_d2);
  return result;
}

void StreamingGapAdev::finish_stretch() {
  // Strictly-longer comparison: the earliest of equally long stretches wins,
  // matching the buffered selection.
  if (stretch_samples_ > best_.samples) best_ = current_result();
  stretch_samples_ = 0;
  for (auto& scale : scales_) {
    scale.points = 0;
    scale.sum_d2 = 0.0;
  }
}

void StreamingGapAdev::add(double time, double value) {
  if (samples_ > 0) TSC_EXPECTS(time > prev_time_);
  ++samples_;

  const bool gap =
      stretch_samples_ > 0 && time - prev_time_ > gap_factor_ * tau0_;
  if (gap) finish_stretch();

  if (stretch_samples_ == 0) {
    // First sample of a stretch: the grid starts here, but the first grid
    // point is interpolated only once the first segment exists, exactly
    // like the buffered resampler.
    stretch_samples_ = 1;
    prev_time_ = time;
    prev_value_ = value;
    next_grid_ = time;
    return;
  }

  // Emit every grid point in (prev_time_, time] — plus the stretch-origin
  // point at next_grid_ == prev_time_ when this is the second sample. The
  // grid walks by repeated `+= tau0` and interpolates with the identical
  // clamp/lerp expressions, so the emitted series matches resample_linear
  // bit-for-bit.
  while (next_grid_ <= time) {
    const double span_t = time - prev_time_;
    const double frac =
        std::clamp((next_grid_ - prev_time_) / span_t, 0.0, 1.0);
    feed_grid_point(prev_value_ * (1.0 - frac) + value * frac);
    next_grid_ += tau0_;
  }
  ++stretch_samples_;
  prev_time_ = time;
  prev_value_ = value;
}

std::vector<AllanPoint> StreamingGapAdev::points_for(
    const StretchResult& stretch) const {
  std::vector<AllanPoint> out;
  if (stretch.samples < 3) return out;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    const std::size_t m = factors_[i];
    const std::size_t n = stretch.scales[i].first;
    if (n < 2 * m + 2) continue;
    const std::size_t terms = n - 2 * m;
    const double tau = static_cast<double>(m) * tau0_;
    const double avar = stretch.scales[i].second /
                        (2.0 * tau * tau * static_cast<double>(terms));
    out.push_back({tau, std::sqrt(avar), terms});
  }
  return out;
}

std::vector<AllanPoint> StreamingGapAdev::result() const {
  const StretchResult current = current_result();
  return points_for(current.samples > best_.samples ? current : best_);
}

std::vector<double> resample_linear(std::span<const double> times,
                                    std::span<const double> values,
                                    double tau0) {
  TSC_EXPECTS(times.size() == values.size());
  TSC_EXPECTS(times.size() >= 2);
  TSC_EXPECTS(tau0 > 0.0);
  std::vector<double> out;
  const double t0 = times.front();
  const double t_end = times.back();
  std::size_t seg = 0;  // current segment [times[seg], times[seg+1]]
  for (double t = t0; t <= t_end; t += tau0) {
    while (seg + 2 < times.size() && times[seg + 1] < t) ++seg;
    const double span_t = times[seg + 1] - times[seg];
    TSC_EXPECTS(span_t > 0.0);
    const double frac = std::clamp((t - times[seg]) / span_t, 0.0, 1.0);
    out.push_back(values[seg] * (1.0 - frac) + values[seg + 1] * frac);
  }
  return out;
}

}  // namespace tscclock
