// Allan variance / deviation analysis of clock offset (phase) series.
//
// The paper (§3.1, Fig. 3) characterizes the oscillator by the Allan
// deviation of the time-scale dependent rate y_tau(t) — "essentially a Haar
// wavelet spectral analysis". Given offset samples x_k = θ(k·tau0), the
// overlapping Allan variance at τ = m·tau0 is
//
//   AVAR(τ) = 1 / (2 τ² (N − 2m)) · Σ_{k=0}^{N−2m−1} (x_{k+2m} − 2 x_{k+m} + x_k)²
//
// and the Allan deviation is its square root: the typical size of the rate
// variations at scale τ (in the same dimensionless units as skew).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tscclock {

struct AllanPoint {
  double tau = 0;        ///< averaging time-scale [s]
  double deviation = 0;  ///< Allan deviation (dimensionless rate error)
  std::size_t terms = 0; ///< number of second differences averaged
};

/// Overlapping Allan deviation of a regularly sampled phase series.
/// `phase` holds offset samples [s] at spacing `tau0` [s]; `m_values` are the
/// averaging factors (τ = m·tau0). m values with fewer than 2 usable second
/// differences are skipped.
std::vector<AllanPoint> allan_deviation(std::span<const double> phase,
                                        double tau0,
                                        std::span<const std::size_t> m_values);

/// Log-spaced averaging factors suitable for a series of length `n`:
/// `points_per_decade` values per decade from 1 up to n/3.
std::vector<std::size_t> log_spaced_factors(std::size_t n,
                                            std::size_t points_per_decade);

/// Resample an irregularly sampled series onto a regular grid of spacing
/// `tau0` by linear interpolation, for feeding into allan_deviation.
/// `times` must be strictly increasing and the same length as `values`.
std::vector<double> resample_linear(std::span<const double> times,
                                    std::span<const double> values,
                                    double tau0);

/// Streaming equivalent of the buffered gap-aware ADEV pipeline
///
///     split the (t, x) series at gaps > gap_factor·tau0,
///     take the longest stretch (earliest wins ties, by raw sample count),
///     resample_linear() it onto the tau0 grid,
///     allan_deviation() at the given averaging factors
///
/// computed incrementally: each stretch keeps a ring of the last 2m grid
/// points per factor plus a running sum of squared second differences, so
/// memory is O(max m) instead of O(trace length). Every arithmetic step
/// (the `t += tau0` grid walk, the lerp, the d² accumulation order)
/// replicates the buffered pipeline exactly, so results are bit-identical —
/// tests/test_allan.cpp pins this.
class StreamingGapAdev {
 public:
  StreamingGapAdev(double tau0, std::vector<std::size_t> factors,
                   double gap_factor = 4.0);

  /// Consume one sample. `time` must be strictly greater than the previous
  /// sample's time.
  void add(double time, double value);

  [[nodiscard]] std::size_t samples() const { return samples_; }

  /// ADEV points of the longest stretch so far (the in-progress stretch
  /// counts as if it ended here). Factors whose stretch is too short
  /// (fewer than 2m+2 resampled points) are omitted, exactly like
  /// allan_deviation().
  [[nodiscard]] std::vector<AllanPoint> result() const;

 private:
  /// Per-factor accumulator over one stretch's resampled series.
  struct ScaleAccumulator {
    std::size_t m = 0;
    std::vector<double> ring;  ///< last 2m resampled values
    std::size_t points = 0;    ///< resampled points consumed
    double sum_d2 = 0;         ///< Σ (x_{k+2m} − 2·x_{k+m} + x_k)²

    void add(double x);
  };

  /// Finalized per-factor numbers of a completed stretch (no rings needed).
  struct StretchResult {
    std::size_t samples = 0;  ///< raw (pre-resampling) sample count
    std::vector<std::pair<std::size_t, double>> scales;  ///< {points, sum_d2}
  };

  void feed_grid_point(double x);
  void finish_stretch();
  [[nodiscard]] StretchResult current_result() const;
  [[nodiscard]] std::vector<AllanPoint> points_for(
      const StretchResult& stretch) const;

  double tau0_;
  std::vector<std::size_t> factors_;
  double gap_factor_;

  std::size_t samples_ = 0;  ///< total samples across all stretches

  // Current stretch state.
  std::size_t stretch_samples_ = 0;
  double prev_time_ = 0;
  double prev_value_ = 0;
  double next_grid_ = 0;  ///< walks t0, t0+tau0, ... exactly like resample
  std::vector<ScaleAccumulator> scales_;

  StretchResult best_;  ///< longest finished stretch (earliest wins ties)
};

}  // namespace tscclock
