// Allan variance / deviation analysis of clock offset (phase) series.
//
// The paper (§3.1, Fig. 3) characterizes the oscillator by the Allan
// deviation of the time-scale dependent rate y_tau(t) — "essentially a Haar
// wavelet spectral analysis". Given offset samples x_k = θ(k·tau0), the
// overlapping Allan variance at τ = m·tau0 is
//
//   AVAR(τ) = 1 / (2 τ² (N − 2m)) · Σ_{k=0}^{N−2m−1} (x_{k+2m} − 2 x_{k+m} + x_k)²
//
// and the Allan deviation is its square root: the typical size of the rate
// variations at scale τ (in the same dimensionless units as skew).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tscclock {

struct AllanPoint {
  double tau = 0;        ///< averaging time-scale [s]
  double deviation = 0;  ///< Allan deviation (dimensionless rate error)
  std::size_t terms = 0; ///< number of second differences averaged
};

/// Overlapping Allan deviation of a regularly sampled phase series.
/// `phase` holds offset samples [s] at spacing `tau0` [s]; `m_values` are the
/// averaging factors (τ = m·tau0). m values with fewer than 2 usable second
/// differences are skipped.
std::vector<AllanPoint> allan_deviation(std::span<const double> phase,
                                        double tau0,
                                        std::span<const std::size_t> m_values);

/// Log-spaced averaging factors suitable for a series of length `n`:
/// `points_per_decade` values per decade from 1 up to n/3.
std::vector<std::size_t> log_spaced_factors(std::size_t n,
                                            std::size_t points_per_decade);

/// Resample an irregularly sampled series onto a regular grid of spacing
/// `tau0` by linear interpolation, for feeding into allan_deviation.
/// `times` must be strictly increasing and the same length as `values`.
std::vector<double> resample_linear(std::span<const double> times,
                                    std::span<const double> values,
                                    double tau0);

}  // namespace tscclock
