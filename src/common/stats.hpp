// Statistics utilities used by the estimators, the benches and the tests.
//
// The estimators need two specialized pieces: a running minimum (the paper's
// r̂(t)) and an O(1)-amortized sliding-window minimum (the paper's r̂_l over
// the level-shift window Ts). The benches need percentile summaries matching
// the ones reported in the paper's figures (1/25/50/75/99 percentiles) and
// simple fixed-bin histograms (Fig. 12).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace tscclock {

/// Running minimum of a stream; `reset` supports the paper's window update
/// and level-shift reactions which recompute the minimum from recent data.
template <typename T>
class RunningMin {
 public:
  void update(T value) {
    if (!valid_ || value < min_) {
      min_ = value;
      valid_ = true;
    }
  }
  void reset() { valid_ = false; }
  void reset_to(T value) {
    min_ = value;
    valid_ = true;
  }
  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] T value() const { return min_; }

 private:
  T min_{};
  bool valid_ = false;
};

/// Sliding-window minimum over the last `capacity` samples, using the
/// standard monotonic-deque technique: push/evict are O(1) amortized.
/// Implements the paper's windowed local minimum r̂_l (§6.2).
template <typename T>
class WindowedMin {
 public:
  explicit WindowedMin(std::size_t capacity) : capacity_(capacity) {}

  void push(T value) {
    while (!monotone_.empty() && monotone_.back().value >= value)
      monotone_.pop_back();
    monotone_.push_back({next_index_, value});
    if (next_index_ >= capacity_ &&
        monotone_.front().index <= next_index_ - capacity_) {
      monotone_.pop_front();
    }
    ++next_index_;
  }

  [[nodiscard]] bool valid() const { return !monotone_.empty(); }
  [[nodiscard]] T min() const { return monotone_.front().value; }
  [[nodiscard]] std::size_t samples_seen() const { return next_index_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// True once the window has been filled at least once.
  [[nodiscard]] bool full() const { return next_index_ >= capacity_; }

  void clear() {
    monotone_.clear();
    next_index_ = 0;
  }

 private:
  struct Entry {
    std::size_t index;
    T value;
  };
  std::size_t capacity_;
  std::size_t next_index_ = 0;
  std::deque<Entry> monotone_;
};

/// Linear-interpolation percentile of a sample set; `q` in [0, 1].
/// The input span is copied and sorted internally.
double percentile(std::span<const double> values, double q);

/// The five percentile curves the paper plots in figures 9 and 10.
struct PercentileSummary {
  double p01 = 0;
  double p25 = 0;
  double p50 = 0;  ///< median
  double p75 = 0;
  double p99 = 0;
  [[nodiscard]] double iqr() const { return p75 - p25; }
};

PercentileSummary percentile_summary(std::span<const double> values);

/// Full descriptive summary used by EXPERIMENTS.md and the benches.
struct SeriesSummary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  PercentileSummary percentiles;
};

SeriesSummary summarize(std::span<const double> values);

/// Fixed-bin histogram over [lo, hi); out-of-range samples (±inf included)
/// are clamped into the terminal bins so mass is conserved (matches the
/// paper's Fig. 12 which shows "exactly 99% of all values"). NaN samples
/// have no bin: they are counted separately (nan_count) and excluded from
/// total() and the densities.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  /// Binned samples only (excludes NaN rejects).
  [[nodiscard]] std::size_t total() const { return total_; }
  /// NaN samples rejected by add() — corrupt-input telemetry.
  [[nodiscard]] std::size_t nan_count() const { return nan_; }
  /// Fraction of all binned samples in `bin`.
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

/// Welford online mean/variance, used for long traces where storing every
/// sample is unnecessary.
class RunningMoments {
 public:
  void update(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// P² single-quantile estimator (Jain & Chlamtac, CACM 1985): tracks one
/// quantile of a stream with five markers — O(1) memory and O(1) per
/// sample, no buffering. Exact for the first five observations, a
/// piecewise-parabolic approximation afterwards; accuracy tests live in
/// tests/test_stats.cpp.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Current estimate; exact while count() <= 5. Requires count() > 0.
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};    ///< marker heights q_i
  double positions_[5] = {1, 2, 3, 4, 5};  ///< actual positions n_i
  double desired_[5] = {0, 0, 0, 0, 0};    ///< desired positions n'_i
  double desired_increment_[5] = {0, 0, 0, 0, 0};
};

/// O(1)-memory replacement for summarize(): count/min/max/mean/stddev are
/// exact (the same Welford recurrence in the same order, so they match the
/// buffered reduction bit-for-bit), the five percentiles are P²
/// approximations. This is the streaming half of the sweep's
/// StreamingReducerSink.
class StreamingSeriesSummary {
 public:
  StreamingSeriesSummary();

  void add(double value);
  [[nodiscard]] std::size_t count() const { return moments_.count(); }
  /// Zero-initialized when no samples were consumed (mirrors the buffered
  /// reduction's empty-stream convention).
  [[nodiscard]] SeriesSummary summary() const;

 private:
  RunningMoments moments_;
  double min_ = 0;
  double max_ = 0;
  P2Quantile p01_, p25_, p50_, p75_, p99_;
};

}  // namespace tscclock
