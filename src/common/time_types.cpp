#include "common/time_types.hpp"

#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"

namespace tscclock {

CounterTimescale::CounterTimescale(TscCount anchor_count, Seconds anchor_time,
                                   double period)
    : anchor_count_(anchor_count), anchor_time_(anchor_time), period_(period) {
  TSC_EXPECTS(period > 0.0);
  TSC_EXPECTS(std::isfinite(anchor_time));
}

void CounterTimescale::rebase(TscCount count) {
  anchor_time_ = read(count);
  anchor_count_ = count;
}

void CounterTimescale::set_period_preserving_reading(TscCount count,
                                                     double new_period) {
  TSC_EXPECTS(new_period > 0.0);
  rebase(count);
  period_ = new_period;
}

std::string format_duration(Seconds seconds) {
  const double mag = std::fabs(seconds);
  char buf[64];
  if (mag < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1fns", seconds * 1e9);
  } else if (mag < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", seconds * 1e6);
  } else if (mag < 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", seconds);
  }
  return buf;
}

std::string format_rate_error(double rate_error) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g PPM", to_ppm(rate_error));
  return buf;
}

}  // namespace tscclock
