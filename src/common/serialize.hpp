// Exact, line-oriented serialization primitives shared by the sweep's
// machine-readable artifacts (per-shard result dumps, resumable
// checkpoints) and any future trace format.
//
// The merge contract of the fleet-scale sweep is *byte identity*: a table
// rendered from deserialized results must equal the table rendered from the
// in-memory originals. That forces two properties on these helpers:
//
//   * doubles round-trip bit-exactly — format_double_exact emits C99
//     hexfloat (%a), which strtod parses back to the identical bits,
//     including ±0, denormals, ±inf and NaN;
//   * free-form strings (scenario names, exception texts) survive embedding
//     in a tab-separated record — escape_field turns the record separators
//     into backslash escapes and unescape_field inverts it exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tscclock {

/// Render a double so that parse_double_exact returns the identical bits
/// (hexfloat for finite values; "inf"/"-inf"/"nan" otherwise).
std::string format_double_exact(double value);

/// Inverse of format_double_exact; also accepts plain decimal. Throws
/// std::runtime_error on empty input, trailing garbage or no conversion.
double parse_double_exact(std::string_view text);

/// Strict non-negative integer parse: digits only, no sign, no whitespace,
/// no overflow. Throws std::runtime_error otherwise.
std::uint64_t parse_u64_exact(std::string_view text);

/// Escape a free-form string into a token safe inside a tab-separated,
/// newline-terminated record: \t, \n, \r and backslash become two-character
/// backslash escapes; everything else passes through verbatim.
std::string escape_field(std::string_view text);

/// Inverse of escape_field. Throws std::runtime_error on an unknown escape
/// or a dangling trailing backslash (a torn record, not a valid field).
std::string unescape_field(std::string_view text);

/// Split `line` at every occurrence of `sep` (no quoting — fields are
/// expected to be escape_field output). "a\tb\t" yields {"a","b",""}.
std::vector<std::string> split_fields(std::string_view line, char sep = '\t');

/// FNV-1a 64-bit hash (the repo's canonical cheap content hash: scenario
/// seed identities and sweep grid fingerprints both use it).
std::uint64_t fnv1a64(std::string_view text);

}  // namespace tscclock
