// Trace file format + I/O: the seam that lets real internet data ride the
// replay pipeline.
//
// Everything downstream of TraceRecorder — ReplaySession scoring, the
// ReducerSink reduction, the sweep's comparison tables — consumes a
// ReplayTrace and does not care where it came from. This module gives that
// trace a durable on-disk form:
//
//   * a versioned, self-describing text format ("tscclock-trace 1") whose
//     doubles are C99 hexfloats via common/serialize, so write∘read is
//     bit-identity — a sim-exported trace replays byte-identical to the
//     in-memory recording (tests/test_trace_replay.cpp pins this);
//   * a ground-truth mode designed into the header, not bolted on: a
//     reference-bearing trace (simulation, GPS-disciplined capture) carries
//     the truth columns, a relative-only trace (anything a real collector
//     can produce) structurally has none — see GroundTruthMode in
//     harness/replay.hpp for what that does to the reduction;
//   * precise validation errors on read — version skew, torn tails, mixed
//     clients, non-monotone send times — naming the offending record, plus
//     recoverable warnings (unscorable length, zero reference coverage)
//     that tools/trace-import surfaces as exit 1.
//
// Layout (tab-separated, newline-terminated, strings escape_field-encoded):
//
//   tscclock-trace 1
//   ground_truth reference|relative
//   nominal_period <hexfloat>          # [s/count] of the Ta/Tf counter
//   poll_period <hexfloat>             # [s] nominal polling period (tau0)
//   client <u64>
//   label <escaped>                    # optional provenance line
//   samples
//   x\t<index>\t<lost>\t<in_warmup>\t<server_changed>\t<ref>\t<ta>\t<tb>
//     \t<te>\t<tf>\t<tf_corrected>[\t<truth_ta>\t<truth_tb>\t<tg>]
//   ...
//   end <exchanges> <lost> <polls_enumerated>
//
// The three truth fields exist exactly when the header declares `reference`;
// a record with the wrong field count for its declared mode is malformed
// (the reader never guesses). The end marker is the completeness witness:
// counts must match what was read, and a missing/torn final line is
// refused as a kill-mid-write signature (same contract as sweep/result_io).
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/replay.hpp"

namespace tscclock::trace {

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

/// Format version this build writes and the only one it reads.
constexpr int kTraceFormatVersion = 1;

/// Header block of a trace file: everything a replay needs besides the
/// samples themselves.
struct TraceMeta {
  harness::GroundTruthMode mode = harness::GroundTruthMode::kReference;
  /// Nominal period of the Ta/Tf counter [s/count] (1e-9 for the
  /// ntp-collect monotonic-nanosecond clock; the testbed oscillator's
  /// nominal for sim exports).
  double nominal_period = 0;
  /// Nominal polling period [s]: the reduction's tau0 and the replayed
  /// estimator's window unit.
  Seconds poll_period = 0;
  std::uint32_t client_id = 0;
  /// Optional free-form provenance ("pool.ntp.org via ntp-collect", a
  /// scenario name, ...). Empty means the line is omitted.
  std::string label;
};

/// Everything read_trace() returns: the reconstructed trace (ground_truth
/// already set from the header) plus recoverable oddities.
struct ReadTrace {
  TraceMeta meta;
  harness::ReplayTrace trace;
  /// Recoverable warnings (trace-import exit 1): declared-reference trace
  /// with zero reference samples, fewer than two arrivals (unscorable),
  /// non-monotone server stamps. Each names the offending record.
  std::vector<std::string> warnings;
};

/// Streaming writer: header at construction, one record per write(), end
/// marker at close(). A file abandoned before close() has no end marker and
/// is refused by read_trace — exactly the torn-tail contract. Used as a
/// live sink by ntp-collect (one record per poll, flushed, so a ^C keeps
/// every completed exchange on disk).
class TraceWriter {
 public:
  /// Opens `path` (overwriting). Throws TraceIoError on open failure or a
  /// meta with non-positive periods.
  TraceWriter(const std::string& path, const TraceMeta& meta);

  /// Append one sample. Under a relative-only meta the truth columns are
  /// not written and the reference flag is forced to 0 — exporting a
  /// reference trace through a relative writer deliberately strips the
  /// ground truth (how a "what would the field see" trace is made).
  void write(const harness::ReplaySample& sample);

  /// Write the end marker and close. `polls_enumerated` includes
  /// outage-skipped slots (== samples written when no enumeration gaps).
  void close(std::uint64_t polls_enumerated);

  [[nodiscard]] std::size_t exchanges() const { return exchanges_; }
  [[nodiscard]] std::size_t lost() const { return lost_; }

 private:
  std::ofstream out_;
  std::string path_;
  TraceMeta meta_;
  std::size_t exchanges_ = 0;
  std::size_t lost_ = 0;
  bool closed_ = false;
};

/// One-shot export of a recorded trace (TraceRecorder output or a replayed
/// import). Equivalent to TraceWriter + write per sample +
/// close(trace.polls_enumerated).
void write_trace(const std::string& path, const TraceMeta& meta,
                 const harness::ReplayTrace& trace);

/// Parse and validate a trace file. Throws TraceIoError with a precise
/// message (naming the record index where applicable) on: unreadable file,
/// version skew, unknown/duplicate/missing header keys, wrong per-mode
/// field count, a reference sample declared inside a relative-only trace,
/// client ids mixing mid-file, non-monotone Ta across non-lost records,
/// torn tails, missing end marker, end-marker count mismatches, and
/// trailing content after `end`. Recoverable oddities land in warnings.
ReadTrace read_trace(const std::string& path);

}  // namespace tscclock::trace
