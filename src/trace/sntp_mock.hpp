// In-process loopback SNTP server: lets the collector be exercised offline
// (CI has no network, and hammering a public pool from tests would be
// hostile anyway). One thread, one UDP socket bound to 127.0.0.1:0, a
// configurable misbehavior per instance — each Behavior is one of the
// hostile-input cases wire::validate_server_reply (or decode) must refuse.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace tscclock::trace {

class MockSntpServer {
 public:
  enum class Behavior {
    kNormal,          ///< well-formed stratum-2 replies from the wall clock
    kKissOfDeath,     ///< stratum 0, reference id "RATE"
    kUnsynchronized,  ///< leap indicator 3
    kZeroTimestamps,  ///< zero receive/transmit stamps
    kWrongOrigin,     ///< origin field does not echo the request
    kTruncated,       ///< 20-byte datagram (short of the 48-byte header)
    kSilent,          ///< swallows every request (collector-timeout path)
  };

  /// Binds and starts serving immediately. Sandboxes may refuse loopback
  /// sockets: check ok() and skip the test instead of failing it.
  explicit MockSntpServer(Behavior behavior = Behavior::kNormal);
  ~MockSntpServer();
  MockSntpServer(const MockSntpServer&) = delete;
  MockSntpServer& operator=(const MockSntpServer&) = delete;

  /// False when the socket could not be created/bound (no serving thread).
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  /// Bound port (valid when ok()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests received so far.
  [[nodiscard]] std::size_t requests_seen() const { return requests_seen_; }

 private:
  void serve();

  Behavior behavior_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> requests_seen_{0};
  std::thread thread_;
};

}  // namespace tscclock::trace
