// Live SNTP collection: the piece that turns a real internet path into a
// relative-only trace the replay pipeline can consume.
//
// SntpCollector is a deliberately small unicast SNTP client (RFC 4330
// subset) over the repo's own wire::NtpPacket codec:
//
//   * Ta/Tf are CLOCK_MONOTONIC nanosecond counts — the collector's "TSC"
//     with nominal_period 1e-9 s/count. Monotonic, not wall time, for the
//     same reason the paper insists on the raw counter (§2): a disciplined
//     system clock would fold someone else's NTP feedback loop into the
//     data;
//   * the request's transmit timestamp carries CLOCK_REALTIME rebased to
//     the NTP era, purely so the server's origin echo can be verified
//     (wire::validate_server_reply) — it never enters the exchange data;
//   * Tb/Te are rebased from the wire's 32.32 format via
//     from_ntp_timestamp_at_epoch against the first reply's integer
//     second, so every server stamp is a small double carrying the full
//     ~233 ps wire resolution;
//   * timeouts become lost records (the trace preserves the gap); replies
//     that fail validation (kiss-o'-death, unsynchronized, zero stamps,
//     bad origin echo) are refused — kiss-o'-death aborts the run
//     outright, as RFC 5905 demands.
//
// The output is a harness::ReplaySample stream fed straight into
// trace::TraceWriter under a kRelativeOnly meta. No reference clock exists
// on a real path, and the format says so instead of pretending.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "harness/replay.hpp"
#include "trace/trace_io.hpp"

namespace tscclock::trace {

class CollectorError : public std::runtime_error {
 public:
  explicit CollectorError(const std::string& what)
      : std::runtime_error(what) {}
};

struct CollectorOptions {
  std::string host;            ///< server name or address (required)
  std::uint16_t port = 123;    ///< NTP port
  std::size_t count = 16;      ///< polls to attempt
  Seconds interval = 1.0;      ///< nominal polling period (the trace's tau0)
  Seconds timeout = 2.0;       ///< per-poll reply wait
  std::uint32_t client_id = 0; ///< client column of the emitted trace
  std::string label;           ///< provenance line for the trace header
};

struct CollectorReport {
  std::size_t attempted = 0;
  std::size_t received = 0;   ///< validated replies (non-lost records)
  std::size_t lost = 0;       ///< timeouts
  std::size_t refused = 0;    ///< decoded but failed validation (non-fatal)
};

/// Collect `options.count` exchanges from the server and stream them into
/// `writer` (which must have been opened with a kRelativeOnly meta whose
/// nominal_period is collector_nominal_period() and poll_period is
/// options.interval). `progress`, when set, receives a one-line status per
/// poll (the CLI prints it). Throws CollectorError on socket/resolve
/// failures and on kiss-o'-death (naming the kiss code). Returns the tally;
/// the caller closes the writer.
CollectorReport collect(const CollectorOptions& options, TraceWriter& writer,
                        const std::function<void(const std::string&)>&
                            progress = nullptr);

/// The collector's counter resolution: Ta/Tf are CLOCK_MONOTONIC
/// nanoseconds, one count per nanosecond.
constexpr double collector_nominal_period() { return 1e-9; }

/// TraceMeta for a collection run (relative-only by construction).
TraceMeta collector_meta(const CollectorOptions& options);

}  // namespace tscclock::trace
