#include "trace/trace_io.hpp"

#include <sstream>

#include "common/serialize.hpp"
#include "common/time_types.hpp"

namespace tscclock::trace {

namespace {

constexpr const char* kTraceMagic = "tscclock-trace";

/// Fields of one `x` record after the tag, per declared mode.
constexpr std::size_t kRelativeFields = 10;
constexpr std::size_t kReferenceFields = kRelativeFields + 3;

std::string mode_token(harness::GroundTruthMode mode) {
  return mode == harness::GroundTruthMode::kReference ? "reference"
                                                      : "relative";
}

std::string record_context(std::size_t index) {
  return "record " + std::to_string(index);
}

}  // namespace

// -- TraceWriter -------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      meta_(meta) {
  if (!out_) {
    throw TraceIoError("cannot open trace " + path + " for writing");
  }
  if (!(meta.nominal_period > 0)) {
    throw TraceIoError("trace meta: nominal_period must be positive");
  }
  if (!(meta.poll_period > 0)) {
    throw TraceIoError("trace meta: poll_period must be positive");
  }
  out_.exceptions(std::ios::badbit | std::ios::failbit);
  out_ << kTraceMagic << ' ' << kTraceFormatVersion << '\n';
  out_ << "ground_truth " << mode_token(meta_.mode) << '\n';
  out_ << "nominal_period " << format_double_exact(meta_.nominal_period)
       << '\n';
  out_ << "poll_period " << format_double_exact(meta_.poll_period) << '\n';
  out_ << "client " << meta_.client_id << '\n';
  if (!meta_.label.empty()) {
    out_ << "label " << escape_field(meta_.label) << '\n';
  }
  out_ << "samples\n";
  out_.flush();
}

void TraceWriter::write(const harness::ReplaySample& sample) {
  if (closed_) throw TraceIoError("trace " + path_ + " already closed");
  const bool reference = meta_.mode == harness::GroundTruthMode::kReference;
  const bool ref = reference && sample.ref_available;
  out_ << "x\t" << sample.index << '\t' << (sample.lost ? 1 : 0) << '\t'
       << (sample.in_warmup ? 1 : 0) << '\t'
       << (sample.server_changed ? 1 : 0) << '\t' << (ref ? 1 : 0) << '\t'
       << sample.raw.ta << '\t' << format_double_exact(sample.raw.tb) << '\t'
       << format_double_exact(sample.raw.te) << '\t' << sample.raw.tf << '\t'
       << sample.tf_counts_corrected;
  if (reference) {
    out_ << '\t' << format_double_exact(sample.truth_ta) << '\t'
         << format_double_exact(sample.truth_tb) << '\t'
         << format_double_exact(sample.tg);
  }
  out_ << '\n';
  ++exchanges_;
  if (sample.lost) ++lost_;
  // One flush per record bounds a kill's loss window to the in-flight line,
  // which read_trace then refuses as a torn tail — never half-trusts.
  out_.flush();
}

void TraceWriter::close(std::uint64_t polls_enumerated) {
  if (closed_) return;
  out_ << "end " << exchanges_ << ' ' << lost_ << ' ' << polls_enumerated
       << '\n';
  out_.close();
  closed_ = true;
}

void write_trace(const std::string& path, const TraceMeta& meta,
                 const harness::ReplayTrace& trace) {
  TraceWriter writer(path, meta);
  for (const auto& sample : trace.samples) writer.write(sample);
  writer.close(trace.polls_enumerated);
}

// -- read_trace --------------------------------------------------------------

namespace {

/// Minimal clone of result_io's line reader (that one is file-local there
/// on purpose: each artifact format owns its torn-tail policy).
class LineReader {
 public:
  explicit LineReader(const std::string& content) : content_(content) {}

  bool next_line(std::string& line) {
    if (offset_ >= content_.size()) return false;
    const std::size_t newline = content_.find('\n', offset_);
    if (newline == std::string::npos) {
      torn_ = true;
      return false;
    }
    line.assign(content_, offset_, newline - offset_);
    offset_ = newline + 1;
    return true;
  }

  [[nodiscard]] bool torn() const { return torn_; }
  [[nodiscard]] bool exhausted() const {
    return !torn_ && offset_ >= content_.size();
  }

 private:
  const std::string& content_;
  std::size_t offset_ = 0;
  bool torn_ = false;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("trace " + path + ": cannot open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw TraceIoError("trace " + path + ": read error");
  return buffer.str();
}

double parse_positive(const std::string& text, const char* key,
                      const std::string& context) {
  double value = 0;
  try {
    value = parse_double_exact(text);
  } catch (const std::exception& e) {
    throw TraceIoError(context + ": malformed " + key + " '" + text +
                       "': " + e.what());
  }
  if (!(value > 0)) {
    throw TraceIoError(context + ": " + key + " must be positive, got '" +
                       text + "'");
  }
  return value;
}

}  // namespace

ReadTrace read_trace(const std::string& path) {
  const std::string content = read_file(path);
  const std::string context = "trace " + path;
  LineReader lines(content);
  std::string line;
  const auto next_line = [&]() -> const std::string& {
    if (!lines.next_line(line)) {
      throw TraceIoError(context + (lines.torn()
                                        ? ": torn trailing line (the file "
                                          "ends mid-record)"
                                        : ": truncated (unexpected end of "
                                          "file)"));
    }
    return line;
  };

  // Magic + version gate, naming both versions on skew.
  {
    const std::string expected_prefix = std::string(kTraceMagic) + " ";
    next_line();
    if (line.compare(0, expected_prefix.size(), expected_prefix) != 0) {
      throw TraceIoError(context + ": not a " + kTraceMagic +
                         " file (first line '" + line + "')");
    }
    const std::string version = line.substr(expected_prefix.size());
    if (version != std::to_string(kTraceFormatVersion)) {
      throw TraceIoError(context + ": format version " + version +
                         " is not supported by this build (expected version " +
                         std::to_string(kTraceFormatVersion) + ")");
    }
  }

  // Header block: key-value lines until the `samples` marker. Every key is
  // required once (label optional); unknown keys are refused, not skipped —
  // a trace from a future minor variant must fail loudly, not half-load.
  ReadTrace out;
  bool have_mode = false, have_nominal = false, have_poll = false,
       have_client = false;
  for (;;) {
    next_line();
    if (line == "samples") break;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) {
      throw TraceIoError(context + ": malformed header line '" + line + "'");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const auto require_fresh = [&](bool& have) {
      if (have) {
        throw TraceIoError(context + ": duplicate header key '" + key + "'");
      }
      have = true;
    };
    if (key == "ground_truth") {
      require_fresh(have_mode);
      if (value == "reference") {
        out.meta.mode = harness::GroundTruthMode::kReference;
      } else if (value == "relative") {
        out.meta.mode = harness::GroundTruthMode::kRelativeOnly;
      } else {
        throw TraceIoError(context + ": unknown ground_truth mode '" + value +
                           "' (expected 'reference' or 'relative')");
      }
    } else if (key == "nominal_period") {
      require_fresh(have_nominal);
      out.meta.nominal_period =
          parse_positive(value, "nominal_period", context);
    } else if (key == "poll_period") {
      require_fresh(have_poll);
      out.meta.poll_period = parse_positive(value, "poll_period", context);
    } else if (key == "client") {
      require_fresh(have_client);
      try {
        const std::uint64_t id = parse_u64_exact(value);
        if (id > 0xffffffffull) throw std::runtime_error("out of range");
        out.meta.client_id = static_cast<std::uint32_t>(id);
      } catch (const std::exception& e) {
        throw TraceIoError(context + ": malformed client id '" + value +
                           "': " + e.what());
      }
    } else if (key == "label") {
      if (!out.meta.label.empty()) {
        throw TraceIoError(context + ": duplicate header key 'label'");
      }
      try {
        out.meta.label = unescape_field(value);
      } catch (const std::exception& e) {
        throw TraceIoError(context + ": malformed label: " + e.what());
      }
    } else {
      throw TraceIoError(context + ": unknown header key '" + key + "'");
    }
  }
  if (!have_mode) throw TraceIoError(context + ": missing ground_truth");
  if (!have_nominal) throw TraceIoError(context + ": missing nominal_period");
  if (!have_poll) throw TraceIoError(context + ": missing poll_period");
  if (!have_client) throw TraceIoError(context + ": missing client");

  const bool reference =
      out.meta.mode == harness::GroundTruthMode::kReference;
  const std::size_t expected_fields =
      reference ? kReferenceFields : kRelativeFields;
  harness::ReplayTrace& trace = out.trace;
  trace.ground_truth = out.meta.mode;

  // Sample records until the end marker.
  bool have_end = false;
  std::uint64_t end_exchanges = 0, end_lost = 0, end_polls = 0;
  bool prev_arrived = false;
  bool warned_tb_backwards = false;
  TscCount prev_ta = 0;
  Seconds prev_tb = 0;
  while (!have_end) {
    next_line();
    if (line.compare(0, 4, "end ") == 0) {
      const auto fields = split_fields(line.substr(4), ' ');
      if (fields.size() != 3) {
        throw TraceIoError(context + ": malformed end marker '" + line + "'");
      }
      try {
        end_exchanges = parse_u64_exact(fields[0]);
        end_lost = parse_u64_exact(fields[1]);
        end_polls = parse_u64_exact(fields[2]);
      } catch (const std::exception& e) {
        throw TraceIoError(context + ": malformed end marker '" + line +
                           "': " + e.what());
      }
      have_end = true;
      break;
    }
    if (line.compare(0, 2, "x\t") != 0) {
      throw TraceIoError(context + ", " + record_context(trace.samples.size()) +
                         ": expected a sample record, got '" + line + "'");
    }
    const auto fields = split_fields(std::string_view(line).substr(2));
    const std::string rec = context + ", " +
                            record_context(trace.samples.size());
    if (fields.size() != expected_fields) {
      if (!reference && fields.size() == kReferenceFields) {
        throw TraceIoError(rec + ": carries reference-mode truth fields in a "
                                 "relative-only trace");
      }
      if (reference && fields.size() == kRelativeFields) {
        throw TraceIoError(rec + ": missing the truth fields a "
                                 "reference-mode trace declares");
      }
      throw TraceIoError(rec + ": has " + std::to_string(fields.size()) +
                         " fields, expected " +
                         std::to_string(expected_fields));
    }
    harness::ReplaySample sample;
    try {
      std::size_t f = 0;
      const auto next_bool = [&]() {
        const std::string& token = fields[f++];
        if (token == "0") return false;
        if (token == "1") return true;
        throw std::runtime_error("malformed bool field '" + token + "'");
      };
      sample.index = parse_u64_exact(fields[f++]);
      sample.lost = next_bool();
      sample.in_warmup = next_bool();
      sample.server_changed = next_bool();
      sample.ref_available = next_bool();
      sample.raw.ta = parse_u64_exact(fields[f++]);
      sample.raw.tb = parse_double_exact(fields[f++]);
      sample.raw.te = parse_double_exact(fields[f++]);
      sample.raw.tf = parse_u64_exact(fields[f++]);
      sample.tf_counts_corrected = parse_u64_exact(fields[f++]);
      if (reference) {
        sample.truth_ta = parse_double_exact(fields[f++]);
        sample.truth_tb = parse_double_exact(fields[f++]);
        sample.tg = parse_double_exact(fields[f++]);
      }
    } catch (const std::exception& e) {
      throw TraceIoError(rec + ": " + e.what());
    }
    if (!reference && sample.ref_available) {
      throw TraceIoError(rec + ": declares a reference sample inside a "
                               "relative-only trace");
    }
    sample.client_id = out.meta.client_id;
    if (!sample.lost) {
      sample.t_day = sample.raw.tb / duration::kDay;
      if (prev_arrived && sample.raw.ta <= prev_ta) {
        throw TraceIoError(rec + ": send time Ta " +
                           std::to_string(sample.raw.ta) +
                           " is not after the previous arrival's " +
                           std::to_string(prev_ta) +
                           " (records out of order, or two interleaved "
                           "captures)");
      }
      if (prev_arrived && sample.raw.tb < prev_tb && !warned_tb_backwards) {
        // Warning, not error: a server stepping backwards is exactly the
        // kind of real-world artifact a trace exists to preserve.
        warned_tb_backwards = true;
        out.warnings.push_back(
            record_context(trace.samples.size()) +
            ": server receive stamp moves backwards (server step?)");
      }
      prev_arrived = true;
      prev_ta = sample.raw.ta;
      prev_tb = sample.raw.tb;
    } else {
      ++trace.lost;
    }
    ++trace.exchanges;
    trace.samples.push_back(sample);
  }

  // The end marker is the completeness witness: its counts must match what
  // was actually read (a truncated-then-reglued file fails here).
  if (end_exchanges != trace.exchanges || end_lost != trace.lost) {
    throw TraceIoError(
        context + ": end marker declares " + std::to_string(end_exchanges) +
        " exchanges / " + std::to_string(end_lost) + " lost, file holds " +
        std::to_string(trace.exchanges) + " / " + std::to_string(trace.lost));
  }
  if (end_polls < trace.exchanges) {
    throw TraceIoError(context + ": end marker declares " +
                       std::to_string(end_polls) +
                       " enumerated polls, fewer than the " +
                       std::to_string(trace.exchanges) + " records present");
  }
  trace.polls_enumerated = end_polls;
  if (lines.next_line(line)) {
    throw TraceIoError(context + ": content after the end marker ('" + line +
                       "')");
  }
  if (lines.torn()) {
    throw TraceIoError(context + ": torn trailing line after the end marker");
  }

  // Recoverable oddities, in record order where applicable.
  if (reference) {
    bool any_ref = false;
    for (const auto& sample : trace.samples) any_ref |= sample.ref_available;
    if (!trace.samples.empty() && !any_ref) {
      out.warnings.push_back(
          "declared reference-mode but no record carries a reference sample "
          "(re-export with ground_truth relative?)");
    }
  }
  if (trace.arrived() < 2) {
    out.warnings.push_back("only " + std::to_string(trace.arrived()) +
                           " arrived exchange(s): not scorable (replay "
                           "needs at least 2)");
  }
  return out;
}

}  // namespace tscclock::trace
